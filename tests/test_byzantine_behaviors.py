"""Tests for the generic Byzantine network behaviours, including their
effect on live protocols (idempotency under duplication, liveness under
selective silence within the fault budget)."""

from repro.faults import Delayer, Duplicator, SelectiveSilence, Silence
from repro.protocols.minbft import run_minbft
from repro.protocols.pbft import run_pbft


class TestBehaviorMechanics:
    def test_silence_drops_everything(self, cluster):
        from dataclasses import dataclass
        from repro.core import Node
        from repro.net import Message

        @dataclass(frozen=True)
        class Ping(Message):
            k: int

        class Sink(Node):
            def __init__(self, sim, network, name):
                super().__init__(sim, network, name)
                self.got = []

            def handle_ping(self, msg, src):
                self.got.append(msg.k)

        a = cluster.add_node(Sink, "a")
        b = cluster.add_node(Sink, "b")
        behavior = Silence(cluster, "a").install()
        cluster.sim.call_soon(lambda: a.send("b", Ping(1)))
        cluster.run()
        assert not b.got and behavior.messages_affected == 1
        behavior.uninstall()
        cluster.sim.call_soon(lambda: a.send("b", Ping(2)))
        cluster.run()
        assert b.got == [2]

    def test_duplicator_replays(self, cluster):
        from dataclasses import dataclass
        from repro.core import Node
        from repro.net import Message

        @dataclass(frozen=True)
        class Ping(Message):
            k: int

        class Sink(Node):
            def __init__(self, sim, network, name):
                super().__init__(sim, network, name)
                self.got = []

            def handle_ping(self, msg, src):
                self.got.append(msg.k)

        a = cluster.add_node(Sink, "a")
        b = cluster.add_node(Sink, "b")
        Duplicator(cluster, "a", copies=2).install()
        cluster.sim.call_soon(lambda: a.send("b", Ping(7)))
        cluster.run()
        assert b.got == [7, 7, 7]

    def test_delayer_defers_delivery(self, make_cluster):
        from dataclasses import dataclass
        from repro.core import Node
        from repro.net import Message, SynchronousModel

        @dataclass(frozen=True)
        class Ping(Message):
            k: int

        class Sink(Node):
            def __init__(self, sim, network, name):
                super().__init__(sim, network, name)
                self.at = None

            def handle_ping(self, msg, src):
                self.at = self.sim.now

        cluster = make_cluster(seed=0, delivery=SynchronousModel(1.0))
        a = cluster.add_node(Sink, "a")
        b = cluster.add_node(Sink, "b")
        Delayer(cluster, "a", delay=10.0).install()
        cluster.sim.call_soon(lambda: a.send("b", Ping(1)))
        cluster.run()
        assert b.at == 11.0  # 10 held + 1 transit


class TestProtocolsUnderBehaviors:
    def test_pbft_survives_duplicating_replica(self, make_cluster):
        cluster = make_cluster(seed=3, monitors=True)
        cluster.attach_monitors("pbft", n=4, f=1)
        Duplicator(cluster, "r2", copies=2).install()
        result = run_pbft(cluster, f=1, n_clients=1, operations_per_client=3)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()
        # Replayed messages must not read as equivocation or double
        # executes — the monitors stay quiet under pure duplication.
        cluster.monitors.finish()
        assert cluster.monitors.ok, cluster.monitors.anomalies

    def test_pbft_survives_selectively_silent_backup(self, make_cluster):
        cluster = make_cluster(seed=4)
        # r3 starves half the cluster — within the f=1 budget.
        SelectiveSilence(cluster, "r3", starved=("r1", "r2")).install()
        result = run_pbft(cluster, f=1, n_clients=1, operations_per_client=3)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()

    def test_minbft_survives_delaying_replica(self, make_cluster):
        cluster = make_cluster(seed=5)
        Delayer(cluster, "r2", delay=8.0).install()
        result = run_minbft(cluster, f=1, operations=3)
        assert result.clients[0].done
        assert result.logs_consistent()

    def test_pbft_fails_liveness_beyond_budget_but_stays_safe(self,
                                                              make_cluster):
        cluster = make_cluster(seed=6, monitors=True)
        cluster.attach_monitors("pbft", n=4, f=1)
        # Two silent replicas exceed f=1: liveness gone, safety intact.
        Silence(cluster, "r2").install()
        Silence(cluster, "r3").install()
        result = run_pbft(cluster, f=1, n_clients=1,
                          operations_per_client=2, horizon=400.0)
        assert not all(c.done for c in result.clients)
        assert result.logs_consistent()
        # The monitors draw the same line the theory does: the liveness
        # watchdog trips (no decisions), every safety monitor stays ok.
        cluster.monitors.finish()
        categories = {a.category for a in cluster.monitors.anomalies}
        assert "liveness" in categories
        assert "safety" not in categories

    def test_equivocating_primary_trips_the_monitor(self, make_cluster):
        from repro.protocols.pbft import EquivocatingPrimary
        cluster = make_cluster(seed=4, monitors=True)
        cluster.attach_monitors("pbft", n=4, f=1)
        result = run_pbft(cluster, f=1, n_clients=1,
                          operations_per_client=2,
                          primary_class=EquivocatingPrimary)
        assert result.logs_consistent()  # the protocol masks the attack...
        cluster.monitors.finish()
        tripped = [a for a in cluster.monitors.anomalies
                   if a.monitor == "equivocation"]
        assert tripped  # ...but the monitor still names the attacker
        assert tripped[0].node == "r0"
        assert tripped[0].context  # with its causal trail
