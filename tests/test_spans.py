"""Tests for the derived span layer: request correlation, critical-path
attribution (the telescoping-sum invariant), txn span trees with fast
path vs full 2PC, abandoned spans after a mid-2PC crash, the SLO
time-series, Chrome export, and byte-stable span JSON across parallel
worker counts (pinned against committed goldens)."""

import json
import pathlib

import pytest

from repro.__main__ import main
from repro.core import Cluster
from repro.obs import (
    SpanBuilder,
    build_timeseries,
    chrome_to_json,
    parse_request_id,
    render_spans_summary,
    render_waterfall,
    slo_summary,
    span_to_dict,
    spans_report,
    to_chrome,
    write_chrome,
)
from repro.protocols.multipaxos import run_multipaxos
from repro.shard import ShardedCluster
from repro.telemetry.instruments import Histogram, NullHistogram

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _spans_multipaxos(seed=0, **kwargs):
    cluster = Cluster(seed=seed, trace=True)
    run_multipaxos(cluster, n_replicas=3, n_clients=1,
                   commands_per_client=5, **kwargs)
    return SpanBuilder(cluster.trace).build()


def _sharded(seed=0, n_shards=2):
    cluster = Cluster(seed=seed, trace=True)
    return ShardedCluster(n_shards=n_shards, replicas=3, cluster=cluster)


def _cross_shard_pair(sharded):
    first = sharded.key(0)
    for i in range(1, sharded.key_space):
        if sharded.shard_of(sharded.key(i)) != sharded.shard_of(first):
            return first, sharded.key(i)
    raise AssertionError("no cross-shard pair in the key space")


def _all_spans(roots):
    for span in roots:
        yield span
        for child in span.children:
            yield child


class TestParseRequestId:
    def test_round_ids_decompose(self):
        assert parse_request_id("tx7-txn_prepare-12") == \
            ("tx7", "txn_prepare")
        assert parse_request_id("tx0-txn_lock-0") == ("tx0", "txn_lock")
        assert parse_request_id("tx3-timeout-abort-4") == \
            ("tx3", "txn_abort")

    def test_plain_client_ids_do_not(self):
        assert parse_request_id("c0-1") == (None, None)
        assert parse_request_id("tx7") == (None, None)
        # A kind marker with a non-numeric tail is not a round id.
        assert parse_request_id("tx7-txn_lock-oops") == (None, None)


class TestCriticalPathInvariant:
    def test_segments_sum_to_latency_multipaxos(self):
        spans = _spans_multipaxos()
        assert spans and all(s.completed for s in spans)
        for span in spans:
            assert span.segments, span.req
            assert sum(span.segments.values()) == \
                pytest.approx(span.latency, abs=1e-9), span.req

    def test_segments_sum_to_latency_sharded(self):
        sharded = _sharded(seed=11)
        a, b = _cross_shard_pair(sharded)
        sharded.put(a, 100)
        sharded.put(b, 10)
        assert sharded.transfer(a, b, 40) == "committed"
        sharded.settle()
        roots = SpanBuilder(sharded.cluster.trace).build()
        checked = 0
        for span in _all_spans(roots):
            if span.latency is None:
                continue
            assert sum(span.segments.values()) == \
                pytest.approx(span.latency, abs=1e-9), span.req
            checked += 1
        assert checked >= 4  # txn roots plus their round children

    def test_waterfall_and_summary_render(self):
        spans = _spans_multipaxos()
        lines = render_waterfall(spans[0])
        assert lines[0].startswith("span %s (request)" % spans[0].req)
        assert any("#" in line for line in lines[1:])
        report = spans_report(spans, protocol="multi-paxos", seed=0,
                              virtual_time=100.0)
        text = render_spans_summary(report)
        assert "completed" in text and "p999=" in text


class TestTxnSpanTrees:
    def test_single_shard_fast_path_skips_2pc(self):
        sharded = _sharded(seed=3)
        key = sharded.key(0)
        assert sharded.put(key, 7) == "committed"
        sharded.settle()
        roots = SpanBuilder(sharded.cluster.trace).build()
        txns = [s for s in roots if s.kind == "txn"]
        assert len(txns) == 1
        txn = txns[0]
        assert txn.completed and txn.outcome == "committed"
        kinds = [child.round_kind for child in txn.children]
        assert kinds == ["txn_lock", "txn_apply"]
        assert "2pc-prepare" not in txn.segments
        assert "2pc-commit" not in txn.segments
        assert "apply" in txn.segments

    def test_cross_shard_commit_runs_full_2pc(self):
        sharded = _sharded(seed=5)
        a, b = _cross_shard_pair(sharded)
        sharded.put(a, 100)
        sharded.put(b, 10)
        assert sharded.transfer(a, b, 40) == "committed"
        sharded.settle()
        roots = SpanBuilder(sharded.cluster.trace).build()
        transfer = [s for s in roots if s.kind == "txn"][-1]
        assert transfer.completed and transfer.outcome == "committed"
        kinds = {child.round_kind for child in transfer.children}
        assert {"txn_lock", "txn_prepare", "txn_decide"} <= kinds
        for segment in ("lock", "2pc-prepare", "2pc-decide"):
            assert transfer.segments.get(segment, 0.0) > 0.0, segment
        # Two participant shards -> two lock rounds, two prepare rounds.
        locks = [c for c in transfer.children
                 if c.round_kind == "txn_lock"]
        assert len(locks) == 2

    def test_crash_mid_2pc_leaves_abandoned_round_spans(self):
        sharded = _sharded(seed=8)
        a, b = _cross_shard_pair(sharded)
        sharded.put(a, 50)
        victim = sharded.shard_of(b)
        sharded.cluster.sim.schedule(
            2.0, lambda: sharded.crash_shard(victim))
        txn = sharded.submit(
            (a, b), lambda r: {a: r[a] - 5, b: (r[b] or 0) + 5})
        sharded.cluster.run_until(lambda: txn.outcome is not None,
                                  until=sharded.now + 2000.0)
        assert txn.outcome == "aborted"
        roots = SpanBuilder(sharded.cluster.trace).build()
        doomed = next(s for s in roots if s.req == txn.txid)
        # The coordinator still finishes the txn (outcome recorded) ...
        assert doomed.completed and doomed.outcome == "aborted"
        assert "timeout" in doomed.segments
        # ... but the crashed shard's round never got its reply.
        abandoned = [c for c in doomed.children if not c.completed]
        assert abandoned, [c.req for c in doomed.children]
        for child in abandoned:
            assert child.end is child.events[-1]
            entry = span_to_dict(child)
            assert entry["completed"] is False


class TestTimeseriesAndSlo:
    def test_windows_are_sparse_and_sorted(self):
        spans = _spans_multipaxos()
        rows = build_timeseries(spans, window=5.0)
        assert rows == sorted(rows, key=lambda r: r["t0"])
        assert sum(row["count"] for row in rows) == \
            sum(1 for s in spans if s.completed)
        for row in rows:
            assert row["count"] > 0  # empty windows omitted
            assert row["latency"]["p999"] is not None

    def test_slo_burn_rate_extremes(self):
        spans = _spans_multipaxos()
        strict = slo_summary(spans, threshold=0.0, budget=0.01)
        assert strict["violation_fraction"] == 1.0
        assert strict["burn_rate"] == pytest.approx(100.0)
        lax = slo_summary(spans, threshold=10 ** 9)
        assert lax["violations"] == 0
        assert lax["compliance"] == 1.0
        assert lax["worst_window_burn_rate"] == 0.0

    def test_report_includes_slo_block_only_when_asked(self):
        spans = _spans_multipaxos()
        plain = spans_report(spans, protocol="multi-paxos", seed=0)
        assert "slo" not in plain
        gated = spans_report(spans, protocol="multi-paxos", seed=0,
                             slo=5.0)
        assert gated["slo"]["threshold"] == 5.0


class TestChromeExport:
    def test_document_shape_and_determinism(self, tmp_path):
        spans = _spans_multipaxos()
        document = to_chrome(spans, protocol="multi-paxos")
        events = document["traceEvents"]
        assert any(e["ph"] == "M" for e in events)
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["dur"] >= 0 and event["ts"] >= 0
        assert chrome_to_json(document) == \
            chrome_to_json(to_chrome(_spans_multipaxos(),
                                     protocol="multi-paxos"))
        # write_chrome creates missing parent directories (ioutil).
        target = tmp_path / "deep" / "nested" / "trace.json"
        count = write_chrome(document, str(target))
        assert count == len(events)
        assert json.loads(target.read_text())["traceEvents"]


class TestHistogramSatellites:
    def test_overflow_quantile_reports_observed_max(self):
        histogram = Histogram()
        histogram.observe(5000.0)  # beyond the last finite bucket edge
        histogram.observe(9000.0)
        assert histogram.quantile(0.5) == 9000.0
        assert histogram.quantile(0.999) == 9000.0

    def test_summary_has_p999(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert "p999" in summary and summary["p999"] is not None
        assert NullHistogram().summary()["p999"] is None


class TestAnomalySpanLink:
    def test_record_links_offending_request_span(self):
        from repro.monitor.base import Monitor
        from repro.trace.events import LOCAL
        cluster = Cluster(seed=0, trace=True)
        run_multipaxos(cluster, n_replicas=3, n_clients=1,
                       commands_per_client=2)
        event = next(e for e in cluster.trace.events
                     if e.kind == LOCAL and e.mtype == "apply"
                     and e.get("req") is not None)
        anomaly = Monitor().record("synthetic violation", event=event)
        detail = dict(anomaly.detail)
        assert detail["span"] == event.get("req")
        # An explicit span= wins over the derived one.
        pinned = Monitor().record("synthetic", event=event, span="x")
        assert dict(pinned.detail)["span"] == "x"


class TestSpansCli:
    def test_spans_json_matches_golden(self, tmp_path, capsys):
        out = tmp_path / "spans.json"
        exit_code = main(["spans", "multi-paxos", "--seed", "0",
                          "--json", str(out)])
        capsys.readouterr()
        assert exit_code == 0
        golden = GOLDEN_DIR / "multi-paxos_seed0.spans.json"
        assert out.read_bytes() == golden.read_bytes()

    def test_sharded_spans_json_matches_golden(self, tmp_path, capsys):
        out = tmp_path / "spans.json"
        exit_code = main(["spans", "shards", "--seed", "0",
                          "--json", str(out)])
        capsys.readouterr()
        assert exit_code == 0
        golden = GOLDEN_DIR / "shards_seed0.spans.json"
        assert out.read_bytes() == golden.read_bytes()

    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_parallel_spans_byte_identical(self, workers, tmp_path,
                                           capsys):
        out = tmp_path / "spans.json"
        exit_code = main(["spans", "shards", "--seed", "0",
                          "--workers", str(workers), "--json", str(out)])
        capsys.readouterr()
        assert exit_code == 0
        golden = GOLDEN_DIR / "shards_par_seed0.spans.json"
        assert out.read_bytes() == golden.read_bytes(), \
            "workers=%d span JSON diverged from the workers=1 golden" \
            % workers

    def test_unknown_request_id_exits_2(self, tmp_path, capsys):
        exit_code = main(["spans", "multi-paxos", "--seed", "0",
                          "--req", "no-such-request"])
        capsys.readouterr()
        assert exit_code == 2

    def test_single_request_waterfall(self, capsys):
        exit_code = main(["spans", "multi-paxos", "--seed", "0",
                          "--req", "c0-0"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "span c0-0 (request)" in output
