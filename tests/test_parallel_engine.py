"""Unit tests for the conservative parallel engine.

The golden suite (test_parallel_determinism.py) proves end-to-end byte
equality; these tests pin the engine's moving parts individually — the
partitioner's invariants, the lookahead guarantee, barrier edge cases
(a message due exactly at an epoch horizon, epochs with no local work),
inline-vs-process agreement, and worker-fault propagation with clean
shutdown.
"""

import multiprocessing
import time
from dataclasses import replace

import pytest

from repro.__main__ import _parse_seeds, main
from repro.parallel import (
    FAIL_ENV,
    CTL_DOMAIN,
    FleetSpec,
    WorkerFailure,
    assign_domains,
    merge_trace,
    merged_consistency,
    run_parallel_shards,
    sweep,
)
from repro.parallel.partition import domain_weights
from repro.parallel.worker import FleetWorker

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


# -- partitioner -------------------------------------------------------------

def test_partitioner_pins_control_tier_to_worker_zero():
    for workers in (1, 2, 5):
        assignment = assign_domains(FleetSpec(n_shards=6, workers=workers))
        assert CTL_DOMAIN in assignment[0]


def test_partitioner_assigns_every_domain_exactly_once():
    spec = FleetSpec(n_shards=5, workers=4)
    assignment = assign_domains(spec)
    assert len(assignment) == 4
    flat = [domain for domains in assignment for domain in domains]
    assert sorted(flat) == sorted(spec.domains())


def test_partitioner_idles_surplus_workers():
    spec = FleetSpec(n_shards=2, workers=6)
    assignment = assign_domains(spec)
    assert len(assignment) == 6
    flat = [domain for domains in assignment for domain in domains]
    assert sorted(flat) == sorted(spec.domains())
    assert sum(1 for domains in assignment if not domains) == 3


def test_partitioner_is_deterministic_and_balanced():
    spec = FleetSpec(n_shards=8, workers=4)
    first = assign_domains(spec)
    assert first == assign_domains(spec)
    weight = dict(domain_weights(spec))
    loads = [sum(weight[d] for d in domains) for domains in first]
    # LPT bound: the spread never exceeds one domain's weight.
    assert max(loads) - min(loads) <= max(weight.values())


# -- epoch mechanics ---------------------------------------------------------

def test_epoch_outbox_respects_lookahead():
    """No cross-domain message produced in an epoch may be due before
    that epoch's horizon — the conservative-correctness invariant."""
    spec = FleetSpec(txns=4)
    worker = FleetWorker(spec, 0, spec.domains())
    pending = []
    saw_traffic = False
    for epoch in range(12):
        horizon = (epoch + 1) * spec.epoch
        status = worker.run_epoch(epoch, horizon, pending)
        for entry in status["outbox"]:
            assert entry[0] >= horizon
        saw_traffic = saw_traffic or bool(status["outbox"])
        pending = sorted(status["outbox"],
                         key=lambda e: (e[0], e[1], e[2], e[3]))
    assert saw_traffic


def test_message_due_exactly_at_horizon_is_not_lost():
    """A barrier-exchanged message whose deliver time lands exactly on
    the epoch horizon must still reach its node (in that epoch or the
    next — either way, deterministically)."""
    spec = FleetSpec(txns=1)
    worker = FleetWorker(spec, 0, spec.domains())
    entry = None
    epoch = 0
    while entry is None and epoch < 10:
        status = worker.run_epoch(epoch, (epoch + 1) * spec.epoch, [])
        if status["outbox"]:
            entry = status["outbox"][0]
        epoch += 1
    assert entry is not None, "fleet produced no cross-domain traffic"
    _time, src_dom, dst_dom, seq, src, dst, message = entry
    node = worker.cluster.network._nodes[dst]
    seen = []
    original = node.deliver

    def spying_deliver(msg, sender):
        seen.append(msg)
        return original(msg, sender)

    node.deliver = spying_deliver
    horizon = (epoch + 1) * spec.epoch
    worker.run_epoch(
        epoch, horizon,
        [(horizon, src_dom, dst_dom, seq, src, dst, message)])
    if not seen:  # at-horizon events may belong to the next epoch
        worker.run_epoch(epoch + 1, horizon + spec.epoch, [])
    assert len(seen) == 1


def test_control_tier_worker_survives_empty_epochs():
    """Before the settle delay the control tier has no events at all:
    empty epochs must advance cleanly and report nothing."""
    spec = FleetSpec(workers=3)
    worker = FleetWorker(spec, 0, [CTL_DOMAIN])
    for epoch in range(2):  # settle=10 fires in epoch 2, not 0 or 1
        status = worker.run_epoch(epoch, (epoch + 1) * spec.epoch, [])
        assert status["outbox"] == []
        assert not status["driver_done"]
    status = worker.run_epoch(2, 3 * spec.epoch, [])
    assert status["outbox"], "driver start-up should emit 2PC traffic"


# -- inline vs process engines ----------------------------------------------

@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_process_and_inline_engines_agree(tmp_path):
    from repro.trace import write_jsonl
    base = FleetSpec(txns=8, workers=2, trace=True)
    inline_run = run_parallel_shards(replace(base, inline=True))
    forked_run = run_parallel_shards(base)
    inline_path = tmp_path / "inline.jsonl"
    forked_path = tmp_path / "forked.jsonl"
    write_jsonl(merge_trace(inline_run), str(inline_path))
    write_jsonl(merge_trace(forked_run), str(forked_path))
    assert inline_path.read_bytes() == forked_path.read_bytes()
    assert merged_consistency(inline_run) == merged_consistency(forked_run)
    assert inline_run.virtual_time == forked_run.virtual_time


# -- fault propagation -------------------------------------------------------

def test_worker_failure_propagates_inline():
    spec = FleetSpec(txns=4, fail_worker=(0, 1))
    with pytest.raises(WorkerFailure, match="epoch 1"):
        run_parallel_shards(spec)


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_worker_failure_propagates_across_processes():
    spec = FleetSpec(txns=4, workers=2, fail_worker=(1, 2))
    with pytest.raises(WorkerFailure, match="worker 1"):
        run_parallel_shards(spec)
    # Clean shutdown: no orphaned worker processes.
    deadline = time.time() + 5.0
    while multiprocessing.active_children() and time.time() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children()


def test_fail_env_injects_fault(monkeypatch):
    monkeypatch.setenv(FAIL_ENV, "0:1")
    with pytest.raises(WorkerFailure):
        run_parallel_shards(FleetSpec(txns=4))


def test_cli_parallel_fault_exits_one(monkeypatch, capsys):
    monkeypatch.setenv(FAIL_ENV, "0:0")
    exit_code = main(["shards", "--workers", "1", "--txns", "4"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "PARALLEL RUN FAILED" in out


def test_cli_rejects_sequential_only_scenarios(capsys):
    assert main(["shards", "--workers", "2", "--split"]) == 2
    assert main(["shards", "--workers", "2", "--crash-shard"]) == 2
    assert main(["trace", "paxos", "--workers", "2"]) == 2
    assert main(["check", "shards", "--workers", "2",
                 "--faults", "crash"]) == 2
    capsys.readouterr()


# -- seed-fanout runner ------------------------------------------------------

def test_parse_seeds():
    assert _parse_seeds("0..3") == [0, 1, 2, 3]
    assert _parse_seeds("7") == [7]
    assert _parse_seeds("1,5,2") == [1, 5, 2]
    assert _parse_seeds("5..5") == [5]
    assert _parse_seeds("3..1") is None
    assert _parse_seeds("x") is None


def test_sweep_rows_are_worker_count_independent():
    sequential = sweep("paxos", [0, 1, 2], workers=1)
    parallel = sweep("paxos", [0, 1, 2], workers=2)
    assert sequential == parallel
    assert [row["seed"] for row in sequential] == [0, 1, 2]
