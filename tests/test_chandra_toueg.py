"""Tests for Chandra–Toueg consensus and the heartbeat failure detector."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.net import AsynchronousModel
from repro.protocols.chandra_toueg import (
    AlwaysSuspecting,
    CTProcess,
    HeartbeatFailureDetector,
    run_chandra_toueg,
)


class TestFailureDetector:
    class _Owner:
        name = "me"

    def test_suspects_after_timeout(self):
        detector = HeartbeatFailureDetector(self._Owner(), ["me", "p1"],
                                            initial_timeout=5.0)
        assert not detector.suspects("p1", 4.0)
        assert detector.suspects("p1", 6.0)

    def test_heartbeat_unsuspects_and_backs_off(self):
        detector = HeartbeatFailureDetector(self._Owner(), ["me", "p1"],
                                            initial_timeout=5.0)
        assert detector.suspects("p1", 10.0)
        detector.observe("p1", 10.0)  # it was alive after all
        assert detector.timeouts["p1"] == 10.0  # doubled
        assert detector.false_suspicions == 1
        assert not detector.suspects("p1", 15.0)

    def test_never_suspects_self_or_strangers(self):
        detector = HeartbeatFailureDetector(self._Owner(), ["me", "p1"])
        assert not detector.suspects("me", 100.0)
        assert not detector.suspects("ghost", 100.0)


class TestConsensus:
    def test_agreement_and_termination(self, make_cluster):
        for seed in range(6):
            result = run_chandra_toueg(make_cluster(seed=seed), n=5, f=2)
            assert result.agreement(), seed
            assert result.all_decided(), seed

    def test_decided_value_was_proposed(self, make_cluster):
        values = ["a", "b", "c", "d", "e"]
        result = run_chandra_toueg(make_cluster(seed=1), n=5, f=2,
                                   initial_values=values)
        assert result.decided_values()[0] in values

    def test_tolerates_f_crashes_including_coordinators(self, make_cluster):
        # Crash the coordinators of rounds 1 and 2 (indices 1, 2).
        result = run_chandra_toueg(make_cluster(seed=2), n=5, f=2,
                                   crash_indices=(1, 2))
        assert result.agreement()
        assert result.all_decided()

    def test_terminates_under_asynchrony(self, make_cluster):
        # FLP's setting; the oracle provides the escape hatch.
        for seed in range(4):
            cluster = make_cluster(
                seed=seed,
                delivery=AsynchronousModel(mean=1.5, tail_prob=0.1,
                                           tail_factor=20.0),
            )
            result = run_chandra_toueg(cluster, n=5, f=2)
            assert result.all_decided(), seed
            assert result.agreement(), seed

    def test_wrong_oracle_costs_liveness_never_safety(self, make_cluster):
        result = run_chandra_toueg(
            make_cluster(seed=4), n=5, f=2,
            detector_factory=lambda owner: AlwaysSuspecting(),
            horizon=300.0, max_rounds=40,
        )
        # Agreement holds vacuously or not — but never two values.
        assert result.agreement()

    def test_configuration_bound(self, cluster):
        with pytest.raises(ConfigurationError):
            CTProcess(cluster.sim, cluster.network, "p0",
                      ["p0", "p1", "p2", "p3"], "v", f=2)  # n <= 2f

    def test_majority_crash_blocks_but_stays_safe(self, make_cluster):
        result = run_chandra_toueg(make_cluster(seed=5), n=5, f=2,
                                   crash_indices=(0, 1, 2), horizon=200.0,
                                   max_rounds=30)
        assert not result.all_decided()
        assert result.agreement()
