"""Tests for the Dynamo-style eventually consistent store."""

import pytest

from repro.dynamo import (
    EventualKV,
    VectorClock,
    Versioned,
    last_writer_wins,
    reconcile,
)


class TestVectorClocks:
    def test_increment_and_descent(self):
        a = VectorClock().increment("n1")
        b = a.increment("n1")
        assert b.descends_from(a)
        assert not a.descends_from(b)

    def test_concurrency(self):
        a = VectorClock().increment("n1")
        b = VectorClock().increment("n2")
        assert a.concurrent_with(b)
        merged = a.merge(b)
        assert merged.descends_from(a) and merged.descends_from(b)

    def test_self_descent(self):
        a = VectorClock().increment("n1")
        assert a.descends_from(a)
        assert not a.concurrent_with(a)

    def test_reconcile_drops_dominated(self):
        old = Versioned("old", VectorClock.of({"n1": 1}), (1.0, "n1"))
        new = Versioned("new", VectorClock.of({"n1": 2}), (2.0, "n1"))
        assert reconcile([old, new]) == [new]

    def test_reconcile_keeps_concurrent_siblings(self):
        a = Versioned("a", VectorClock.of({"n1": 1}), (1.0, "n1"))
        b = Versioned("b", VectorClock.of({"n2": 1}), (2.0, "n2"))
        frontier = reconcile([a, b])
        assert len(frontier) == 2

    def test_lww_picks_newest_stamp(self):
        a = Versioned("a", VectorClock.of({"n1": 1}), (1.0, "n1"))
        b = Versioned("b", VectorClock.of({"n2": 1}), (2.0, "n2"))
        assert last_writer_wins([a, b]).value == "b"


class TestEventualKV:
    def test_basic_put_get(self):
        store = EventualKV(seed=1)
        store.put("k", 42)
        value, _ctx = store.get("k")
        assert value == 42

    def test_causal_chain_reads_own_writes(self):
        # R + W > N (2 + 2 > 3): quorum intersection, no staleness.
        store = EventualKV(n=3, r=2, w=2, seed=2)
        ctx = store.put("list", ["a"])
        value, ctx = store.get("list")
        store.put("list", value + ["b"], context=ctx)
        value, _ = store.get("list")
        assert value == ["a", "b"]

    def test_blind_concurrent_writes_create_siblings(self):
        store = EventualKV(seed=3, n_coordinators=2)
        store.put("k", "A", via=0)
        store.put("k", "B", via=1)
        siblings = store.get_siblings("k")
        assert sorted(str(s.value) for s in siblings) == ["A", "B"]

    def test_contextual_write_resolves_siblings(self):
        store = EventualKV(seed=3, n_coordinators=2)
        store.put("k", "A", via=0)
        store.put("k", "B", via=1)
        _value, ctx = store.get("k")
        store.put("k", "merged", context=ctx)
        assert [s.value for s in store.get_siblings("k")] == ["merged"]

    def test_same_writer_blind_writes_stay_ordered(self):
        store = EventualKV(seed=4)
        store.put("j", 1)
        store.put("j", 2)
        assert [s.value for s in store.get_siblings("j")] == [2]

    def test_rw_quorum_intersection_reads_latest(self):
        # With R + W > N every read overlaps the last write quorum.
        store = EventualKV(n=3, r=2, w=2, seed=5, gossip_interval=0)
        for i in range(5):
            store.put("x", i)
            value, _ = store.get("x")
            assert value == i

    def test_weak_quorums_can_be_stale_then_converge(self):
        # R = W = 1 with N = 3, and one preferred replica losing writes
        # (a flaky link): R=1 reads that land on it return stale data —
        # the window R + W <= N opens.  Anti-entropy then converges it.
        store = EventualKV(n=3, r=1, w=1, seed=11, gossip_interval=5.0)
        laggard = store.coordinator.preference_list("y")[0]

        def drop_puts_to_laggard(src, dst, message):
            if dst == laggard and message.mtype == "dynput":
                return False
            return None

        store.cluster.network.add_interceptor(drop_puts_to_laggard)
        stale_seen = False
        for i in range(15):
            store.put("y", i)
            value, _ = store.get("y")
            if value != i:
                stale_seen = True
        assert stale_seen  # the weak setting really is weaker
        store.cluster.network.remove_interceptor(drop_puts_to_laggard)
        store.settle(200.0)
        value, _ = store.get("y")
        assert value == 14  # anti-entropy converged on the last write
        assert store.converged("y")

    def test_anti_entropy_converges_full_preference_list(self):
        store = EventualKV(n=3, r=1, w=1, seed=6, gossip_interval=5.0)
        store.put("k", "v")
        store.settle(200.0)
        assert store.converged("k")

    def test_survives_replica_crash_with_slack(self):
        # W = 2 of N = 3: one crashed replica in the preference list is
        # tolerable.
        store = EventualKV(n=3, r=2, w=2, seed=7)
        pref = store.coordinator.preference_list("k")
        index = [r.name for r in store.replicas].index(pref[0])
        store.crash_replica(index)
        store.put("k", "still-works")
        value, _ = store.get("k")
        assert value == "still-works"

    def test_read_repair_heals_stale_replica(self):
        store = EventualKV(n=3, r=3, w=1, seed=8, gossip_interval=0)
        store.put("k", "v1")
        # R = N forces reading every replica; repairs flow to laggards.
        store.get("k")
        store.cluster.sim.run_for(20.0)
        repairs = sum(r.read_repairs for r in store.replicas)
        assert repairs >= 0  # repairs occur when laggards existed
        assert store.converged("k")

    def test_invalid_quorum_configs_rejected(self):
        with pytest.raises(ValueError):
            EventualKV(n=3, r=4, w=1)
        with pytest.raises(ValueError):
            EventualKV(n_replicas=3, n=5)


class TestPartitionBehaviour:
    def test_diverge_under_partition_converge_after_heal(self):
        store = EventualKV(n_replicas=4, n=3, r=1, w=1, seed=9,
                           gossip_interval=5.0)
        store.put("k", "before")
        store.settle(100.0)
        pref = store.coordinator.preference_list("k")
        # Cut the last preferred replica off with the spares.
        isolated = pref[-1]
        rest = [r.name for r in store.replicas if r.name != isolated]
        store.partition(rest, [isolated])
        store.put("k", "during")
        store.settle(60.0)
        isolated_replica = next(r for r in store.replicas
                                if r.name == isolated)
        local = [v.value for v in isolated_replica.store.get("k", ())]
        assert "during" not in local  # diverged
        store.heal()
        store.settle(200.0)
        assert store.converged("k")
        value, _ = store.get("k")
        assert value == "during"
