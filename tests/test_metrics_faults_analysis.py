"""Tests for metrics accounting, complexity fitting, fault injection and
the analysis layer."""

import pytest

from repro.analysis import (
    LOWER_BOUNDS,
    PAPER_TABLE,
    claim_for,
    comparison_table,
    render_table,
)
from repro.faults import FaultPlan
from repro.metrics import MetricsCollector, classify_order, fit_order
from repro.net import Message


class TestComplexityFitting:
    def test_linear(self):
        samples = [(n, 10 * n) for n in (4, 7, 10, 13)]
        assert abs(fit_order(samples) - 1.0) < 0.01
        assert classify_order(fit_order(samples)) == "O(N)"

    def test_quadratic(self):
        samples = [(n, 3 * n * n) for n in (4, 7, 10, 13)]
        assert classify_order(fit_order(samples)) == "O(N^2)"

    def test_cubic(self):
        samples = [(n, n ** 3) for n in (4, 7, 10)]
        assert classify_order(fit_order(samples)) == "O(N^3)"

    def test_noisy_linear_still_classified(self):
        samples = [(4, 45), (7, 66), (10, 108), (13, 120)]
        assert classify_order(fit_order(samples)) == "O(N)"

    def test_out_of_band_exponent_labelled_explicitly(self):
        assert classify_order(5.0) == "O(N^5.0)"

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            fit_order([(4, 10), (4, 12)])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_order([(4, 0), (8, 10)])

    def test_classify_boundary_inclusive(self):
        # tolerance=0.5 is inclusive: exactly halfway still buckets low.
        assert classify_order(1.5) == "O(N)"
        assert classify_order(2.5) == "O(N^2)"
        assert classify_order(3.5) == "O(N^3)"
        assert classify_order(0.5) == "O(N)"

    def test_classify_just_past_boundary_is_formatted(self):
        assert classify_order(3.51) == "O(N^3.5)"
        assert classify_order(0.49) == "O(N^0.5)"

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            fit_order([(4, -3), (8, 10)])
        with pytest.raises(ValueError):
            fit_order([(-4, 3), (8, 10)])

    def test_rejects_zero_n(self):
        with pytest.raises(ValueError):
            fit_order([(0, 3), (8, 10)])

    def test_perfect_quadratic_fit_is_exact(self):
        samples = [(n, 7 * n * n) for n in (3, 5, 9, 17, 33)]
        assert abs(fit_order(samples) - 2.0) < 1e-9


class TestMetricsCollector:
    def test_request_latency_tracking(self):
        metrics = MetricsCollector()
        metrics.start_request("r1", 1.0)
        metrics.finish_request("r1", 4.0, phases=2)
        assert metrics.latencies() == [3.0]
        assert metrics.mean_latency() == 3.0

    def test_phase_marks_deduplicated_in_order(self):
        metrics = MetricsCollector()
        metrics.mark_phase("p", "prepare", 1.0)
        metrics.mark_phase("p", "accept", 2.0)
        metrics.mark_phase("p", "prepare", 3.0)
        metrics.mark_phase("q", "other", 4.0)
        assert metrics.phases_for("p") == ["prepare", "accept"]

    def test_snapshot_and_reset(self):
        metrics = MetricsCollector()
        metrics.mark_phase("p", "x", 0.0)
        snap = metrics.snapshot()
        assert snap["messages_total"] == 0
        metrics.reset()
        assert metrics.phase_marks == []


class TestFaultPlan:
    def test_scheduled_crash_and_restart(self, cluster):
        from repro.core import Node
        node = cluster.add_node(Node, "n0")
        plan = FaultPlan(cluster)
        plan.crash_at(5.0, "n0")
        plan.restart_at(10.0, "n0")
        cluster.sim.run(until=7.0)
        assert node.crashed
        cluster.sim.run(until=12.0)
        assert not node.crashed
        kinds = [kind for _t, kind, _d in plan.events]
        assert kinds == ["crash", "restart"]

    def test_partition_and_heal(self, cluster):
        plan = FaultPlan(cluster)
        plan.partition_at(1.0, ["a"], ["b"])
        plan.heal_at(5.0)
        cluster.sim.run(until=2.0)
        assert not cluster.network.partitions.connected("a", "b")
        cluster.sim.run(until=6.0)
        assert cluster.network.partitions.connected("a", "b")

    def test_windowed_message_drop(self, cluster):
        from dataclasses import dataclass
        from repro.core import Node

        @dataclass(frozen=True)
        class Beep(Message):
            k: int

        class Sink(Node):
            def __init__(self, sim, network, name):
                super().__init__(sim, network, name)
                self.got = []

            def handle_beep(self, msg, src):
                self.got.append(msg.k)

        a = cluster.add_node(Sink, "a")
        b = cluster.add_node(Sink, "b")
        plan = FaultPlan(cluster)
        plan.drop_messages(lambda src, dst, msg: src == "a",
                           between=(5.0, 10.0))
        cluster.sim.schedule(1.0, lambda: a.send("b", Beep(1)))
        cluster.sim.schedule(7.0, lambda: a.send("b", Beep(2)))
        cluster.sim.schedule(12.0, lambda: a.send("b", Beep(3)))
        cluster.run()
        assert b.got == [1, 3]

    def test_isolate_node(self, cluster):
        from repro.core import Node
        cluster.add_node(Node, "x")
        cluster.add_node(Node, "y")
        plan = FaultPlan(cluster)
        plan.isolate_node("x")
        assert cluster.network.send("x", "y", _DummyMsg()) is False
        assert cluster.network.send("y", "x", _DummyMsg()) is False


from dataclasses import dataclass as _dc  # noqa: E402


@_dc(frozen=True)
class _DummyMsg(Message):
    pass


class TestAnalysis:
    def test_paper_table_covers_headline_protocols(self):
        names = {claim.protocol for claim in PAPER_TABLE}
        assert {"paxos", "pbft", "hotstuff", "zyzzyva", "minbft",
                "pow"} <= names

    def test_claim_lookup(self):
        claim = claim_for("pbft")
        assert claim.nodes == "3f+1" and claim.complexity == "O(N^2)"
        with pytest.raises(KeyError):
            claim_for("nonexistent")

    def test_nodes_of_f_formulas(self):
        assert claim_for("paxos").nodes_of_f(2) == 5
        assert claim_for("pbft").nodes_of_f(2) == 7
        assert claim_for("minbft").nodes_of_f(2) == 5

    def test_lower_bounds(self):
        assert LOWER_BOUNDS["byzantine_agreement_nodes"](1) == 4
        assert LOWER_BOUNDS["hybrid_nodes"](1, 1) == 6
        assert LOWER_BOUNDS["bft_quorum_intersection"](2) == 3

    def test_render_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": None}]
        text = render_table(rows, title="T")
        assert "T" in text and "22" in text and "-" in text

    def test_render_empty(self):
        assert render_table([]) == "(no rows)"

    def test_comparison_table_nonempty(self):
        import repro.protocols  # noqa: F401
        rows = comparison_table()
        assert len(rows) >= 15
