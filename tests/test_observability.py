"""Tests for the observability hot path rebuilt around subscriptions:
ring-buffer capture with lazy materialization, typed sink dispatch on
the tracer, batched collector flushes, monitor finish idempotency, and
the CI perf gate's pure evaluation function."""

from repro.core import Cluster
from repro.metrics.collector import MetricsCollector
from repro.monitor import MonitorHub
from repro.monitor.library import AgreementMonitor, LivenessWatchdog
from repro.protocols.paxos import run_basic_paxos
from repro.protocols.pbft import run_pbft
from repro.telemetry.perfgate import evaluate_gate
from repro.trace import DELIVER, LOCAL, SEND, to_jsonl


def traced_pbft(seed=0, **kwargs):
    cluster = Cluster(seed=seed, trace=True, **kwargs)
    run_pbft(cluster, f=1, n_clients=1, operations_per_client=2)
    return cluster


class TestRingBuffer:
    def test_unbounded_by_default_keeps_everything(self):
        cluster = traced_pbft()
        trace = cluster.trace
        assert len(trace) == trace.events[-1].seq + 1
        assert trace.events[0].seq == 0

    def test_bounded_ring_keeps_only_the_newest_window(self):
        capacity = 50
        full = traced_pbft()
        ring = traced_pbft(trace_capacity=capacity)
        events = ring.trace.events
        assert len(events) == capacity
        assert len(full.trace) > capacity  # the run really overflowed
        # The window is the *tail* of the full trace: same seqs, same
        # kinds, in order.
        tail = full.trace.events[-capacity:]
        assert [e.seq for e in events] == [e.seq for e in tail]
        assert [e.kind for e in events] == [e.kind for e in tail]
        assert [e.node for e in events] == [e.node for e in tail]

    def test_ring_below_capacity_is_identical_to_unbounded(self):
        full = traced_pbft()
        roomy = traced_pbft(trace_capacity=10 ** 6)
        assert to_jsonl(full.trace) == to_jsonl(roomy.trace)


class TestLazyMaterialization:
    def test_mid_run_query_then_extend_equals_one_shot(self):
        """Incremental materialization (query, keep running, query
        again) must produce exactly the clocks a single end-of-run
        materialization computes."""
        one_shot = traced_pbft(seed=5)
        incremental = Cluster(seed=5, trace=True)
        # Force a materialization mid-run by peeking at the trace from
        # a scheduled callback, then let the run continue.
        incremental.sim.schedule(4.0, lambda: incremental.trace.events)
        run_pbft(incremental, f=1, n_clients=1, operations_per_client=2)
        assert to_jsonl(one_shot.trace) == to_jsonl(incremental.trace)

    def test_streamed_events_defer_clocks(self):
        """Subscription sinks see lamport=0 — clocks are a lazy,
        query-time product, never computed on the hot path."""
        cluster = Cluster(seed=0, trace=True)
        streamed = []
        cluster.tracer.subscribe(streamed.append)
        run_basic_paxos(cluster, n_acceptors=3, proposals=("X",))
        assert streamed
        assert all(event.lamport == 0 for event in streamed)
        # The materialized trace has real clocks for the same events.
        assert any(event.lamport > 0 for event in cluster.trace.events)

    def test_bounded_window_clocks_match_unbounded_tail_order(self):
        """Window rebuild uses fresh clocks: lamport stays monotone per
        node inside the window even after eviction."""
        ring = traced_pbft(trace_capacity=60)
        last = {}
        for event in ring.trace.events:
            if event.kind in (SEND, DELIVER):
                assert event.lamport > last.get(event.node, 0)
                last[event.node] = event.lamport


class TestSubscriptionDispatch:
    def run_with_sinks(self):
        cluster = Cluster(seed=0, trace=True)
        tracer = cluster.tracer
        log = {"all": [], "local": [], "raw": [], "counts": []}
        tracer.subscribe(log["all"].append)
        tracer.subscribe(log["local"].append, kinds=(LOCAL,),
                         mtypes=("decide",))
        tracer.subscribe_raw(
            lambda *args: log["raw"].append(args),
            kinds=(DELIVER,))
        tracer.subscribe_counters(
            lambda kind, node, mtype: log["counts"].append(kind))
        run_basic_paxos(cluster, n_acceptors=3, proposals=("X",))
        return cluster, log

    def test_typed_subscription_sees_only_its_kinds(self):
        cluster, log = self.run_with_sinks()
        assert log["local"]
        assert all(e.kind is LOCAL and e.mtype == "decide"
                   for e in log["local"])
        kinds_seen = {e.kind for e in log["all"]}
        assert SEND in kinds_seen and DELIVER in kinds_seen

    def test_catchall_and_counter_channels_cover_every_event(self):
        cluster, log = self.run_with_sinks()
        assert len(log["all"]) == len(log["counts"]) == len(cluster.trace)

    def test_raw_channel_carries_the_live_message_object(self):
        from repro.net.message import Message
        cluster, log = self.run_with_sinks()
        assert log["raw"]
        for kind, _time, _node, _peer, _mtype, _msg_id, payload in \
                log["raw"]:
            assert kind is DELIVER
            assert isinstance(payload, Message)

    def test_subscriptions_do_not_perturb_the_trace(self):
        plain = Cluster(seed=0, trace=True)
        run_basic_paxos(plain, n_acceptors=3, proposals=("X",))
        observed, _ = self.run_with_sinks()
        assert to_jsonl(plain.trace) == to_jsonl(observed.trace)


class TestBatchedCollector:
    def test_slot_counts_fold_into_aggregates(self):
        collector = MetricsCollector()
        slot = collector.slot_for("a", "b", "ping")
        slot[0] += 3
        slot[1] += 120
        assert collector.messages_total == 3
        assert collector.bytes_total == 120
        assert collector.by_type["ping"] == 3
        assert collector.by_link[("a", "b")] == 3

    def test_mid_run_reads_are_exact_at_any_boundary(self):
        """Every read folds pending slots first, so a monitor reading
        messages_total mid-run never sees a stale batched value."""
        collector = MetricsCollector()
        slot = collector.slot_for("a", "b", "ping")
        for count in range(1, 6):
            slot[0] += 1
            slot[1] += 10
            assert collector.messages_total == count
            assert collector.bytes_total == 10 * count

    def test_reset_zeroes_live_slot_references(self):
        """The network holds direct slot references; reset must zero
        them in place, not replace them, or post-reset sends vanish."""
        collector = MetricsCollector()
        slot = collector.slot_for("a", "b", "ping")
        slot[0] += 2
        slot[1] += 20
        assert collector.messages_total == 2
        collector.reset()
        assert collector.messages_total == 0
        slot[0] += 1  # the network's cached reference, still live
        slot[1] += 10
        assert collector.messages_total == 1
        assert collector.bytes_total == 10

    def test_network_counts_stay_internally_consistent(self):
        """After a real run through the batched network lane, every
        aggregate view must describe the same message population."""
        cluster = Cluster(seed=0)
        run_pbft(cluster, f=1, n_clients=1, operations_per_client=2)
        metrics = cluster.metrics
        assert metrics.messages_total > 0
        assert metrics.messages_total == sum(metrics.by_type.values())
        assert metrics.messages_total == sum(metrics.by_sender.values())
        assert metrics.messages_total == sum(metrics.by_link.values())
        # Flushed slots hold no residue.
        assert all(slot == [0, 0] for slot in metrics._slots.values())


class TestFinishSemantics:
    def test_finish_is_idempotent_per_monitor(self):
        cluster = Cluster(seed=0, trace=True)
        hub = MonitorHub(cluster.tracer)
        hub.add(LivenessWatchdog(("decide",)))
        hub.finish()
        first = len(hub.anomalies)
        hub.finish()
        hub.finish()
        assert len(hub.anomalies) == first == 1

    def test_monitor_added_after_finish_still_finishes(self):
        """The double-record bug: a hub-level guard silently skipped
        monitors added after an earlier finish, losing their end-of-run
        anomalies.  The guard is per-monitor now."""
        cluster = Cluster(seed=0, trace=True)
        hub = MonitorHub(cluster.tracer)
        hub.add(AgreementMonitor(("decide",)))
        hub.finish()
        late = hub.add(LivenessWatchdog(("decide",)))
        hub.finish()
        assert len(late.anomalies) == 1  # "no decision at all" emitted
        assert "no decision" in late.anomalies[0].message

    def test_mid_view_end_still_emits_watchdog_anomaly(self):
        """A run that ends before any decision (mid-view) must surface
        the liveness anomaly even across repeated finish calls."""
        cluster = Cluster(seed=0, monitors=True)
        cluster.attach_monitors("pbft", n=4, f=1)
        # No protocol driven: the run "ends" with zero decisions.
        anomalies = cluster.monitors.finish()
        again = cluster.monitors.finish()
        watchdog = [a for a in anomalies if a.monitor == "liveness-watchdog"]
        assert len(watchdog) == 1
        assert list(again) == list(anomalies)  # no double-record


class TestPerfGate:
    BASELINE = {
        "E23_throughput": {
            "pbft_f1_events_per_sec": 100_000,
            "pbft_f1_msgs_per_sec": 90_000,
            "quick": False,
        },
        "E24_monitor_overhead": {
            "pbft_off_events_per_sec": 100_000,
            "pbft_on_events_per_sec": 60_000,
            "pbft_overhead_x": 1.7,
            "quick": False,
        },
    }

    def test_identical_snapshots_pass(self):
        assert evaluate_gate(self.BASELINE, self.BASELINE) == []

    def test_injected_25_percent_regression_fails(self):
        regressed = {
            exp: {k: (v * 0.75 if isinstance(v, (int, float))
                      and not isinstance(v, bool)
                      and k.endswith("_per_sec") else v)
                  for k, v in entry.items()}
            for exp, entry in self.BASELINE.items()
        }
        failures = evaluate_gate(self.BASELINE, regressed)
        assert failures, "a 25% regression must trip the 20% gate"
        assert any("regressed" in failure for failure in failures)

    def test_small_wobble_within_tolerance_passes(self):
        wobbled = {
            exp: {k: (v * 0.9 if isinstance(v, (int, float))
                      and not isinstance(v, bool)
                      and k.endswith("_per_sec") else v)
                  for k, v in entry.items()}
            for exp, entry in self.BASELINE.items()
        }
        assert evaluate_gate(self.BASELINE, wobbled) == []

    def test_overhead_above_cap_fails(self):
        bloated = {
            "E24_monitor_overhead":
                dict(self.BASELINE["E24_monitor_overhead"],
                     pbft_overhead_x=3.4),
        }
        failures = evaluate_gate(self.BASELINE, bloated)
        assert any("overhead" in failure.lower() or "cap" in failure
                   for failure in failures)

    def test_quick_vs_full_rates_not_compared(self):
        """Quick-mode workloads are smaller, so their rates are a
        different measurement; only the overhead ratios gate."""
        quick = {
            exp: dict(entry, quick=True,
                      **{k: v * 0.5 for k, v in entry.items()
                         if k.endswith("_per_sec")})
            for exp, entry in self.BASELINE.items()
        }
        assert evaluate_gate(self.BASELINE, quick) == []

    def test_missing_keys_are_skipped_not_failed(self):
        assert evaluate_gate(self.BASELINE, {}) == []
        assert evaluate_gate({}, self.BASELINE) == []
