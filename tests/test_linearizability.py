"""Tests for the linearizability checker and live-history recording."""

import pytest

from repro.core import Cluster
from repro.smr import KVStateMachine
from repro.smr.linearizability import (
    Operation,
    check_linearizable,
    record_concurrent_history,
)


def op(client, command, result, start, end):
    return Operation(client, tuple(command), result, start, end)


class TestChecker:
    def test_empty_history(self):
        assert check_linearizable([])

    def test_sequential_history(self):
        history = [
            op("c1", ("put", "x", 1), None, 0.0, 1.0),
            op("c1", ("get", "x"), 1, 2.0, 3.0),
        ]
        assert check_linearizable(history)

    def test_stale_read_rejected(self):
        # The get strictly follows the put in real time but returns the
        # old value: not linearizable.
        history = [
            op("c1", ("put", "x", 1), None, 0.0, 1.0),
            op("c2", ("get", "x"), None, 2.0, 3.0),
        ]
        assert not check_linearizable(history)

    def test_concurrent_read_may_see_either(self):
        # The get overlaps the put: both old and new value are legal.
        for read_result in (None, 1):
            history = [
                op("c1", ("put", "x", 1), None, 0.0, 5.0),
                op("c2", ("get", "x"), read_result, 1.0, 2.0),
            ]
            assert check_linearizable(history), read_result

    def test_lost_update_rejected(self):
        # Two sequential increments both returning 1: the second lost
        # the first's effect.
        history = [
            op("c1", ("incr", "k"), 1, 0.0, 1.0),
            op("c2", ("incr", "k"), 1, 2.0, 3.0),
        ]
        assert not check_linearizable(history)

    def test_concurrent_increments_order_free(self):
        history = [
            op("c1", ("incr", "k"), 1, 0.0, 4.0),
            op("c2", ("incr", "k"), 2, 1.0, 3.0),
        ]
        assert check_linearizable(history)
        history_swapped = [
            op("c1", ("incr", "k"), 2, 0.0, 4.0),
            op("c2", ("incr", "k"), 1, 1.0, 3.0),
        ]
        assert check_linearizable(history_swapped)

    def test_real_time_order_enforced(self):
        # c2's incr=1 completes before c1's incr=2 starts — fine; but the
        # reverse labelling violates real time.
        bad = [
            op("c1", ("incr", "k"), 1, 5.0, 6.0),
            op("c2", ("incr", "k"), 2, 0.0, 1.0),
        ]
        assert not check_linearizable(bad)

    def test_cas_semantics(self):
        history = [
            op("c1", ("put", "x", "a"), None, 0.0, 1.0),
            op("c1", ("cas", "x", "a", "b"), True, 2.0, 3.0),
            op("c2", ("cas", "x", "a", "c"), False, 4.0, 5.0),
            op("c2", ("get", "x"), "b", 6.0, 7.0),
        ]
        assert check_linearizable(history)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            op("c1", ("get", "x"), None, 5.0, 1.0)


class TestLiveHistories:
    def _cluster_with_replicas(self, seed):
        from repro.protocols.multipaxos import MultiPaxosReplica
        cluster = Cluster(seed=seed)
        names = ["r%d" % i for i in range(3)]
        cluster.add_nodes(MultiPaxosReplica, names, names,
                          state_machine_factory=KVStateMachine)
        return cluster, names

    def test_multipaxos_histories_linearizable(self):
        for seed in (1, 7, 21):
            cluster, names = self._cluster_with_replicas(seed)
            history = record_concurrent_history(cluster, names, {
                "cA": [("incr", "k"), ("put", "x", "a"), ("get", "k")],
                "cB": [("incr", "k"), ("get", "x"), ("incr", "k")],
                "cC": [("get", "k"), ("cas", "x", "a", "b")],
            })
            assert len(history) == 8, seed
            assert check_linearizable(history), seed

    def test_history_with_leader_crash_still_linearizable(self):
        from repro.protocols.multipaxos import MultiPaxosReplica
        cluster = Cluster(seed=5)
        names = ["r%d" % i for i in range(3)]
        replicas = cluster.add_nodes(MultiPaxosReplica, names, names,
                                     state_machine_factory=KVStateMachine)
        cluster.sim.schedule(8.0, replicas[0].crash)
        history = record_concurrent_history(cluster, names, {
            "cA": [("incr", "k"), ("incr", "k"), ("incr", "k")],
            "cB": [("incr", "k"), ("get", "k")],
        })
        assert len(history) == 5
        assert check_linearizable(history)
        # The counter ends at exactly 4: no lost or doubled increments.
        incr_results = sorted(o.result for o in history
                              if o.command[0] == "incr")
        assert incr_results == [1, 2, 3, 4]
