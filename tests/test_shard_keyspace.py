"""Property tests for the sharded keyspace: partitioners and ShardMap.

Hypothesis drives random key sets through hash and range assignment,
then through splits, pinning the routing laws the rest of the shard
subsystem leans on: every key has exactly one home, assignment is
deterministic, and a split moves exactly the keys in the split-off
range — nothing else.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import (
    HashPartitioner,
    RangePartitioner,
    ShardMap,
    polynomial_hash,
)

keys = st.text(alphabet="abcdefghijklmnop0123456789", min_size=1,
               max_size=12)
key_sets = st.sets(keys, min_size=1, max_size=40)


class TestHashPartitioner:
    @given(key_sets, st.integers(min_value=1, max_value=16))
    def test_every_key_has_exactly_one_bucket(self, key_set, n):
        part = HashPartitioner(n)
        for key in key_set:
            index = part.index_of(key)
            assert 0 <= index < n
            assert part.index_of(key) == index  # deterministic

    @given(keys)
    def test_hash_is_stable_not_pythons(self, key):
        # Built-in hash() is salted per process; ours must not be.
        assert polynomial_hash(key) == polynomial_hash(str(key))
        assert 0 <= polynomial_hash(key) < (1 << 30)

    def test_hash_buckets_cannot_split(self):
        with pytest.raises(ValueError):
            HashPartitioner(4).split(0, "m")
        with pytest.raises(ValueError):
            HashPartitioner(4).bounds(0)


class TestRangePartitioner:
    @given(key_sets, st.sets(keys, min_size=1, max_size=6))
    def test_key_lands_in_bucket_whose_bounds_contain_it(self, key_set,
                                                         boundary_set):
        part = RangePartitioner(sorted(boundary_set))
        for key in key_set:
            lo, hi = part.bounds(part.index_of(key))
            assert lo is None or key >= lo
            assert hi is None or key < hi

    @given(st.sets(keys, min_size=2, max_size=6))
    def test_boundary_key_belongs_to_upper_bucket(self, boundary_set):
        boundaries = sorted(boundary_set)
        part = RangePartitioner(boundaries)
        for position, boundary in enumerate(boundaries):
            assert part.index_of(boundary) == position + 1

    def test_boundaries_must_strictly_increase(self):
        with pytest.raises(ValueError):
            RangePartitioner(["b", "a"])
        with pytest.raises(ValueError):
            RangePartitioner(["a", "a"])

    def test_split_is_immutable(self):
        part = RangePartitioner(["m"])
        wider = part.split(0, "f")
        assert part.boundaries == ("m",)
        assert wider.boundaries == ("f", "m")

    def test_split_outside_bucket_refused(self):
        part = RangePartitioner(["m"])
        with pytest.raises(ValueError):
            part.split(0, "m")  # at == hi
        with pytest.raises(ValueError):
            part.split(1, "m")  # at == lo


class TestShardMap:
    @given(key_sets, st.integers(min_value=1, max_value=8))
    def test_hash_map_routes_every_key(self, key_set, n):
        shard_map = ShardMap(HashPartitioner(n))
        ids = set(shard_map.shard_ids)
        assert len(ids) == n
        for key in key_set:
            assert shard_map.shard_of(key) in ids

    @settings(max_examples=200)
    @given(key_sets, st.sets(keys, min_size=1, max_size=6), keys)
    def test_split_moves_exactly_the_upper_slice(self, key_set,
                                                 boundary_set, at):
        shard_map = ShardMap(RangePartitioner(sorted(boundary_set)))
        victim = shard_map.shard_of(at)
        lo, _hi = shard_map.bounds(victim)
        if lo is not None and at == lo:
            # A split at the bucket's own lower bound is degenerate and
            # must be refused, not silently create an empty shard.
            with pytest.raises(ValueError):
                shard_map.split(victim, at, "new")
            return
        before = {key: shard_map.shard_of(key) for key in key_set}
        epoch = shard_map.epoch
        shard_map.split(victim, at, "new")
        assert shard_map.epoch == epoch + 1
        for key in key_set:
            after = shard_map.shard_of(key)
            if before[key] != victim:
                # Keys on other shards must be untouched by the split.
                assert after == before[key]
            elif key < at:
                assert after == victim
            else:
                assert after == "new"

    def test_split_routing_after_cutover(self):
        shard_map = ShardMap(RangePartitioner(["k4"]))
        assert shard_map.shard_of("k2") == "s0"
        assert shard_map.shard_of("k6") == "s1"
        shard_map.split("s1", "k7", "s2")
        assert shard_map.shard_of("k6") == "s1"
        assert shard_map.shard_of("k7") == "s2"
        assert shard_map.shard_of("k9") == "s2"
        assert shard_map.bounds("s1") == ("k4", "k7")
        assert shard_map.bounds("s2") == ("k7", None)

    def test_duplicate_shard_id_refused(self):
        shard_map = ShardMap(RangePartitioner(["m"]))
        with pytest.raises(ValueError):
            shard_map.split("s1", "p", "s0")
