"""Tests for the streaming conformance monitors.

Unit-level: each library monitor against hand-built event streams
(violations trip, clean streams don't).  Integration-level: the hub's
kind-indexed dispatch, the null twins, ``Cluster(monitors=True)``
wiring, the non-perturbation guarantee (same seed, same trace, monitors
or not), and ``run_check`` end to end — clean runs pass, an
equivocating primary is caught and named with causal context.
"""

import pytest

from repro.analysis.claims import PAPER_TABLE, claim_for
from repro.core import Cluster
from repro.monitor import (
    CONFORMANCE,
    NULL_HUB,
    AgreementMonitor,
    ComplexityEnvelopeMonitor,
    EquivocationMonitor,
    LeaderUniquenessMonitor,
    LivenessWatchdog,
    MonitorHub,
    MONITOR_SPECS,
    PhaseConformanceMonitor,
    QuorumCertificateMonitor,
    SAFETY,
    build_monitors,
    check_protocols,
    render_report,
    report_to_json,
    run_check,
    spec_for,
)
from repro.monitor.base import render_context
from repro.trace import DELIVER, LOCAL, PHASE, TraceEvent, canonical_detail


def ev(number, kind, node, mtype, peer="", **detail):
    """A synthetic trace event for feeding monitors directly."""
    return TraceEvent(seq=number, time=float(number), kind=kind, node=node,
                      peer=peer, mtype=mtype,
                      detail=canonical_detail(detail))


class FakeCollector:
    def __init__(self):
        self.messages_total = 0


class FakeHub:
    """Just enough hub for a monitor used outside a real run."""

    trace = None
    tracer = None

    def __init__(self, collector=None):
        self.collector = collector


def attach(monitor, collector=None):
    monitor.attach(FakeHub(collector))
    return monitor


class TestAgreementMonitor:
    def test_clean_stream_no_anomaly(self):
        m = attach(AgreementMonitor(("decide",), slot_key="seq"))
        m.observe(ev(0, LOCAL, "a", "decide", seq=1, value="x"))
        m.observe(ev(1, LOCAL, "b", "decide", seq=1, value="x"))
        m.observe(ev(2, LOCAL, "a", "decide", seq=2, value="y"))
        assert m.anomalies == []
        assert m.decisions == 2

    def test_conflicting_values_trip(self):
        m = attach(AgreementMonitor(("decide",), slot_key="seq"))
        m.observe(ev(0, LOCAL, "a", "decide", seq=1, value="x"))
        m.observe(ev(1, LOCAL, "b", "decide", seq=1, value="y"))
        assert len(m.anomalies) == 1
        anomaly = m.anomalies[0]
        assert anomaly.category == SAFETY
        assert anomaly.node == "b"
        assert "already decided" in anomaly.message

    def test_single_decree_mode(self):
        m = attach(AgreementMonitor(("decide", "learn")))
        m.observe(ev(0, LOCAL, "a", "decide", value="x"))
        m.observe(ev(1, LOCAL, "b", "learn", value="z"))
        assert len(m.anomalies) == 1
        assert "the decree" in m.anomalies[0].message


class TestLeaderUniquenessMonitor:
    def test_one_leader_per_epoch_ok(self):
        m = attach(LeaderUniquenessMonitor("term"))
        m.observe(ev(0, LOCAL, "a", "lead", term=1))
        m.observe(ev(1, LOCAL, "a", "lead", term=1))  # re-assertion is fine
        m.observe(ev(2, LOCAL, "b", "lead", term=2))
        assert m.anomalies == []

    def test_split_brain_trips(self):
        m = attach(LeaderUniquenessMonitor("term"))
        m.observe(ev(0, LOCAL, "a", "lead", term=3))
        m.observe(ev(1, LOCAL, "b", "lead", term=3))
        assert len(m.anomalies) == 1
        assert "already held by a" in m.anomalies[0].message


class TestQuorumCertificateMonitor:
    def make(self):
        return attach(QuorumCertificateMonitor(
            "decide", "ack", need=2, link_keys=("ballot",)))

    def test_decide_after_quorum_ok(self):
        m = self.make()
        m.observe(ev(0, DELIVER, "a", "ack", peer="p1", ballot=1))
        m.observe(ev(1, DELIVER, "a", "ack", peer="p2", ballot=1))
        m.observe(ev(2, LOCAL, "a", "decide", ballot=1))
        assert m.anomalies == []

    def test_decide_without_quorum_trips(self):
        m = self.make()
        m.observe(ev(0, DELIVER, "a", "ack", peer="p1", ballot=1))
        m.observe(ev(1, LOCAL, "a", "decide", ballot=1))
        assert len(m.anomalies) == 1
        assert "1/2" in m.anomalies[0].message

    def test_acks_for_other_ballot_do_not_count(self):
        m = self.make()
        m.observe(ev(0, DELIVER, "a", "ack", peer="p1", ballot=7))
        m.observe(ev(1, DELIVER, "a", "ack", peer="p2", ballot=7))
        m.observe(ev(2, LOCAL, "a", "decide", ballot=8))
        assert len(m.anomalies) == 1


class TestEquivocationMonitor:
    def make(self):
        return attach(EquivocationMonitor(
            ("preprepare",), epoch_keys=("view",), slot_key="seq"))

    def test_consistent_proposals_ok(self):
        m = self.make()
        m.observe(ev(0, DELIVER, "a", "preprepare", peer="p",
                     view=0, seq=1, digest="d1"))
        m.observe(ev(1, DELIVER, "b", "preprepare", peer="p",
                     view=0, seq=1, digest="d1"))
        assert m.anomalies == []

    def test_two_values_one_slot_trips(self):
        m = self.make()
        m.observe(ev(0, DELIVER, "a", "preprepare", peer="p",
                     view=0, seq=1, digest="d1"))
        m.observe(ev(1, DELIVER, "b", "preprepare", peer="p",
                     view=0, seq=1, digest="d2"))
        assert len(m.anomalies) == 1
        assert m.anomalies[0].node == "p"

    def test_one_value_two_slots_trips(self):
        m = self.make()
        m.observe(ev(0, DELIVER, "a", "preprepare", peer="p",
                     view=0, seq=1, digest="d1"))
        m.observe(ev(1, DELIVER, "b", "preprepare", peer="p",
                     view=0, seq=2, digest="d1"))
        assert len(m.anomalies) == 1

    def test_null_sentinel_ignored(self):
        # PBFT re-proposes the null request at many slots while filling
        # view-change gaps; that must never read as equivocation.
        m = self.make()
        m.observe(ev(0, DELIVER, "a", "preprepare", peer="p",
                     view=1, seq=1, digest="null"))
        m.observe(ev(1, DELIVER, "a", "preprepare", peer="p",
                     view=1, seq=2, digest="null"))
        assert m.anomalies == []

    def test_slotless_mode_keys_on_epoch(self):
        m = attach(EquivocationMonitor(
            ("tmproposal",), epoch_keys=("height", "round"), slot_key=None))
        m.observe(ev(0, DELIVER, "a", "tmproposal", peer="p",
                     height=1, round=0, digest="b1"))
        m.observe(ev(1, DELIVER, "b", "tmproposal", peer="p",
                     height=1, round=0, digest="b2"))
        m.observe(ev(2, DELIVER, "a", "tmproposal", peer="p",
                     height=2, round=0, digest="b3"))
        assert len(m.anomalies) == 1


class TestPhaseConformanceMonitor:
    def make(self, **kwargs):
        return attach(PhaseConformanceMonitor(
            ("pbft",), ("pre-prepare", "prepare", "commit"),
            exceptional=("view-change",), **kwargs))

    def test_claimed_alphabet_ok(self):
        m = self.make()
        for phase in ("pre-prepare", "prepare", "commit", "view-change"):
            m.observe(ev(0, PHASE, "", phase, protocol="pbft"))
        m.finish()
        assert m.anomalies == []
        assert m.observed_phases() == ["pre-prepare", "prepare", "commit"]

    def test_unknown_phase_trips(self):
        m = self.make()
        m.observe(ev(0, PHASE, "", "speculate", protocol="pbft"))
        assert len(m.anomalies) == 1
        assert m.anomalies[0].category == CONFORMANCE

    def test_missing_expected_phase_reported_at_finish(self):
        m = self.make()
        m.observe(ev(0, PHASE, "", "pre-prepare", protocol="pbft"))
        m.finish()
        assert len(m.anomalies) == 1
        assert "never entered" in m.anomalies[0].message

    def test_other_protocols_phases_ignored(self):
        m = self.make()
        m.observe(ev(0, PHASE, "", "election", protocol="raft"))
        m.finish()
        assert m.anomalies == []


class TestComplexityEnvelopeMonitor:
    def make(self, collector, **kwargs):
        monitor = ComplexityEnvelopeMonitor(
            ("decide",), n=4, exponent=1, factor=16.0, slot_key="seq",
            **kwargs)
        return attach(monitor, collector)

    def test_within_envelope_ok(self):
        collector = FakeCollector()
        m = self.make(collector)
        for seq in range(1, 4):
            collector.messages_total += 20  # 20 msgs/decision < 64
            m.observe(ev(seq, LOCAL, "a", "decide", seq=seq))
        m.finish()
        assert m.anomalies == []
        assert m.mean_cost() == 20.0

    def test_blowup_trips(self):
        collector = FakeCollector()
        m = self.make(collector)
        collector.messages_total = 500
        m.observe(ev(0, LOCAL, "a", "decide", seq=1))
        m.finish()
        assert len(m.anomalies) == 1
        assert "envelope" in m.anomalies[0].message
        assert m.bound == 64.0

    def test_exceptional_phase_taints_window(self):
        collector = FakeCollector()
        m = self.make(collector, exceptional_phases=("view-change",),
                      phase_protocols=("pbft",))
        collector.messages_total = 500  # view-change storm...
        m.observe(ev(0, PHASE, "", "view-change", protocol="pbft"))
        m.observe(ev(1, LOCAL, "a", "decide", seq=1))  # ...window skipped
        collector.messages_total += 20
        m.observe(ev(2, LOCAL, "a", "decide", seq=2))
        m.finish()
        assert m.anomalies == []
        assert m.samples == [20]


class TestLivenessWatchdog:
    def test_trips_at_horizon_and_rearms(self):
        m = attach(LivenessWatchdog(("decide",), horizon_events=3))
        for seq in range(6):
            m.observe(ev(seq, DELIVER, "a", "noise", peer="b"))
        assert len(m.anomalies) == 2  # once per horizon, not per event

    def test_decision_resets_the_clock(self):
        m = attach(LivenessWatchdog(("decide",), horizon_events=3))
        for seq in range(2):
            m.observe(ev(seq, DELIVER, "a", "noise", peer="b"))
        m.observe(ev(2, LOCAL, "a", "decide"))
        for seq in range(3, 5):
            m.observe(ev(seq, DELIVER, "a", "noise", peer="b"))
        m.finish()
        assert m.anomalies == []

    def test_no_decision_at_all_reported_at_finish(self):
        m = attach(LivenessWatchdog(("decide",), horizon_events=1000))
        m.observe(ev(0, DELIVER, "a", "noise", peer="b"))
        m.finish()
        assert len(m.anomalies) == 1
        assert "no decision at all" in m.anomalies[0].message


class TestHubAndNullTwins:
    def test_kind_indexed_dispatch(self):
        cluster = Cluster(seed=0, trace=True)
        hub = MonitorHub(cluster.tracer, cluster.metrics)
        local_only = hub.add(AgreementMonitor(("decide",)))
        watchdog = hub.add(LivenessWatchdog(("decide",), horizon_events=10))
        seen = []
        local_only.observe = seen.append  # spy
        hub.observe(ev(0, DELIVER, "a", "ack", peer="b"))
        assert seen == []  # LOCAL-only monitor never saw the deliver
        hub.observe(ev(1, LOCAL, "a", "decide", value="x"))
        assert len(seen) == 1
        assert watchdog.decisions == 1  # catchall saw both

    def test_finish_is_idempotent(self):
        cluster = Cluster(seed=0, trace=True)
        hub = MonitorHub(cluster.tracer)
        hub.add(LivenessWatchdog(("decide",)))
        hub.finish()
        first = len(hub.anomalies)
        hub.finish()
        assert len(hub.anomalies) == first == 1

    def test_null_hub_is_inert(self):
        assert NULL_HUB.ok
        assert NULL_HUB.anomalies == ()
        NULL_HUB.observe(ev(0, LOCAL, "a", "decide"))
        assert NULL_HUB.finish() == ()
        assert NULL_HUB.extend([]) is NULL_HUB

    def test_render_context_filters_by_node(self):
        cluster = Cluster(seed=0, trace=True)
        tracer = cluster.tracer
        tracer.trace.append(ev(0, DELIVER, "a", "ack", peer="b"))
        tracer.trace.append(ev(1, LOCAL, "c", "decide"))
        tracer.trace.append(ev(2, LOCAL, "a", "decide"))
        lines = render_context(tracer.trace, "a", 2, window=5)
        assert len(lines) == 2  # c's milestone filtered out
        assert "deliver" in lines[0] and "<-b" in lines[0]


class TestSpecs:
    def test_spec_table_covers_paper_table(self):
        assert set(MONITOR_SPECS) == {c.protocol for c in PAPER_TABLE}

    def test_build_monitors_pbft(self):
        battery = build_monitors(spec_for("pbft"), n=4, f=1)
        names = {m.name for m in battery}
        assert {"agreement", "leader-uniqueness", "quorum-certificate",
                "equivocation", "phase-conformance", "complexity-envelope",
                "liveness-watchdog"} <= names

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            spec_for("nopeos")


class TestClusterWiring:
    def test_monitors_flag_builds_hub(self):
        cluster = Cluster(seed=0, monitors=True)
        assert isinstance(cluster.monitors, MonitorHub)
        assert cluster.tracer is not None

    def test_monitors_off_is_null_hub(self):
        cluster = Cluster(seed=0)
        assert cluster.monitors is NULL_HUB
        assert cluster.tracer is None  # no tracer, no per-event overhead

    def test_attach_monitors_requires_flag(self):
        cluster = Cluster(seed=0, trace=True)
        with pytest.raises(ValueError):
            cluster.attach_monitors("pbft", n=4, f=1)

    def test_monitors_do_not_perturb_the_run(self):
        """The non-perturbation guarantee: a monitored run records the
        exact same trace as a trace-only run with the same seed."""
        from repro.protocols.pbft import run_pbft
        from repro.trace import to_jsonl

        plain = Cluster(seed=3, trace=True)
        run_pbft(plain, f=1, n_clients=1, operations_per_client=2)

        monitored = Cluster(seed=3, monitors=True)
        monitored.attach_monitors("pbft", n=4, f=1)
        run_pbft(monitored, f=1, n_clients=1, operations_per_client=2)
        monitored.monitors.finish()

        assert to_jsonl(plain.trace) == to_jsonl(monitored.trace)
        assert monitored.monitors.ok


class TestRunCheck:
    def test_clean_pbft_passes_and_matches_claim(self):
        report = run_check("pbft", seed=0)
        assert report["ok"] is True
        assert report["anomalies"] == []
        assert report["claim"]["failure_model"] == \
            claim_for("pbft").failure_model
        assert report["measured"]["decisions"] >= 1
        assert report["measured"]["phases"] == \
            ["pre-prepare", "prepare", "commit"]
        statuses = {m["monitor"]: m["status"] for m in report["monitors"]}
        assert set(statuses.values()) == {"ok"}

    def test_equivocating_primary_is_caught(self):
        report = run_check("pbft", seed=0, faults="equivocate")
        assert report["ok"] is False
        tripped = [a for a in report["anomalies"]
                   if a["monitor"] == "equivocation"]
        assert tripped, "equivocation monitor did not trip"
        anomaly = tripped[0]
        assert anomaly["node"] == "r0"  # the Byzantine primary, by name
        assert anomaly["context"], "anomaly lacks causal context"

    def test_unknown_protocol_and_fault_rejected(self):
        with pytest.raises(KeyError):
            run_check("nopeos")
        with pytest.raises(ValueError):
            run_check("pbft", faults="meteor-strike")

    def test_report_is_deterministic(self):
        one = report_to_json(run_check("raft", seed=1))
        two = report_to_json(run_check("raft", seed=1))
        assert one == two

    def test_render_report_names_the_verdict(self):
        report = run_check("paxos", seed=0)
        text = render_report(report)
        assert "verdict" in text and "PASS" in text
        assert "conformance: paxos" in text

    def test_every_table_protocol_is_checkable(self):
        assert set(check_protocols()) == {c.protocol for c in PAPER_TABLE}
