"""Detail tests for protocol mechanisms not covered by scenario runs."""




class TestZyzzyvaHistoryChain:
    def test_replica_rejects_inconsistent_history(self, cluster):
        from repro.protocols.zyzzyva import (OrderReq, ZyzRequest,
                                             ZyzzyvaReplica)
        names = ["r%d" % i for i in range(4)]
        replicas = cluster.add_nodes(ZyzzyvaReplica, names, names, 1)
        cluster.add_node(__import__("repro.core", fromlist=["Node"]).Node,
                         "cli")
        backup = replicas[1]
        request = ZyzRequest("op", 0.0, "cli")
        # A primary claiming a history hash that doesn't chain from the
        # backup's current history must be refused (no execution).
        bogus = OrderReq(0, 0, "f" * 64, request)
        backup.handle_orderreq(bogus, "r0")
        assert backup.speculative_log == []

    def test_history_hash_chains_across_requests(self, cluster):
        from repro.protocols.zyzzyva import run_zyzzyva
        result = run_zyzzyva(cluster, f=1, operations=3)
        histories = {r.history for r in result.replicas}
        assert len(histories) == 1  # all replicas end on the same chain


class TestXftLazyUpdates:
    def test_passive_replicas_learn_lazily(self, cluster):
        from repro.protocols.xft import run_xft
        result = run_xft(cluster, f=2, operations=3)  # n=5, group of 3
        cluster.sim.run_for(40.0)
        group = set(result.replicas[0].sync_group)
        passive = [r for r in result.replicas if r.name not in group]
        assert passive  # f passive replicas exist
        for replica in passive:
            assert len(replica.executed) == 3  # lazy updates arrived

    def test_lazy_update_count_matches_operations(self, cluster):
        from repro.protocols.xft import run_xft
        run_xft(cluster, f=1, operations=4)
        cluster.sim.run_for(40.0)
        assert cluster.metrics.by_type["xlazyupdate"] == 4  # 1 passive x 4


class TestHotStuffClientRotation:
    def test_queue_follows_the_rotating_leader(self, cluster):
        from repro.protocols.hotstuff import run_basic_hotstuff
        result = run_basic_hotstuff(cluster, f=1, operations=4)
        assert result.clients[0].done
        # Each commit rotates the leader; four ops pass through at least
        # two distinct leaders' queues.
        assert max(r.view for r in result.replicas) >= 4


class TestTendermintPayloads:
    def test_custom_payload_source(self, cluster):
        from repro.protocols.tendermint import TendermintNode
        names = ["v%d" % i for i in range(4)]
        validators = [
            cluster.add_node(TendermintNode, name, names, 1,
                             payload_source=lambda h: {"height": h},
                             target_height=2)
            for name in names
        ]
        cluster.start_all()
        cluster.run_until(
            lambda: all(len(v.chain) >= 2 for v in validators), until=500.0
        )
        payloads = [block.payload for block in validators[0].chain]
        assert payloads == [{"height": 1}, {"height": 2}]


class TestBenOrCoinUsage:
    def test_coin_flips_only_on_total_ambiguity(self, make_cluster):
        # With 4-of-5 agreeing initially, the majority report short-circuits
        # any coin flip: decided in round 1.
        from repro.protocols.benor import run_benor
        result = run_benor(make_cluster(seed=3), n=5, f=1,
                           initial_values=[1, 1, 1, 1, 0])
        assert result.max_round() == 1
        assert set(result.decided_values()) == {1}


class TestChandraTouegRotation:
    def test_coordinator_rotates_past_crash(self, make_cluster):
        from repro.protocols.chandra_toueg import run_chandra_toueg
        result = run_chandra_toueg(make_cluster(seed=6), n=5, f=2,
                                   crash_indices=(1,))
        # Round 1's coordinator (index 1) is dead: deciders needed >= 2
        # rounds.
        rounds = [p.decided_round for p in result.processes
                  if p.decided_round is not None]
        assert min(rounds) >= 2
        assert result.agreement()


class TestMinerMempool:
    def test_confirmed_transactions_leave_mempool(self, cluster):
        from repro.blockchain.miner import Miner
        from repro.blockchain import make_transaction
        from repro.crypto import HASH_SPACE, KeyRegistry
        keys = KeyRegistry()
        names = ["m0", "m1"]
        params = {"initial_target": int(HASH_SPACE / (200.0 * 10.0)),
                  "target_block_time": 10.0, "pow_check": False,
                  "keys": keys}
        miners = [cluster.add_node(Miner, n, names, 100.0,
                                   chain_params=params) for n in names]
        cluster.start_all()
        tx = make_transaction(keys, "satoshi", "alice", 1.0, 0)
        miners[0].submit_transaction(tx)
        cluster.run(until=600.0)
        for miner in miners:
            miner.hashrate = 0.0
        cluster.run(until=1000.0)
        confirmed = any(
            miner.chain.ledger().balance("alice") == 1.0 for miner in miners
        )
        assert confirmed
        assert all(tx.txid not in miner.mempool for miner in miners)
