"""Tests for workload generation, including end-to-end store driving."""

import random

import pytest

from repro.load.workloads import (
    OpMix,
    ZipfKeys,
    _cumulative_weights,
    generate_commands,
)


class TestZipfKeys:
    def test_uniform_at_zero_skew(self):
        keys = ZipfKeys(10, s=0.0)
        for rank in range(10):
            assert keys.probability(rank) == pytest.approx(0.1)

    def test_skew_orders_probabilities(self):
        keys = ZipfKeys(10, s=1.0)
        probs = [keys.probability(rank) for rank in range(10)]
        assert probs == sorted(probs, reverse=True)
        assert probs[0] > 3 * probs[-1]

    def test_empirical_matches_exact(self):
        keys = ZipfKeys(5, s=1.0)
        rng = random.Random(1)
        counts = {}
        draws = 20000
        for _ in range(draws):
            key = keys.sample(rng)
            counts[key] = counts.get(key, 0) + 1
        for rank in range(5):
            expected = keys.probability(rank)
            observed = counts.get("key-%d" % rank, 0) / draws
            assert abs(observed - expected) < 0.02, rank

    def test_deterministic_given_rng(self):
        keys = ZipfKeys(8, s=0.9)
        a = [keys.sample(random.Random(7)) for _ in range(1)]
        b = [keys.sample(random.Random(7)) for _ in range(1)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfKeys(0)
        with pytest.raises(ValueError):
            ZipfKeys(5, s=-1)

    def test_probabilities_sum_to_one(self):
        for s in (0.0, 0.5, 0.99, 1.2):
            keys = ZipfKeys(64, s=s)
            total = sum(keys.probability(rank) for rank in range(64))
            assert total == pytest.approx(1.0, abs=1e-12)

    def test_sample_rank_matches_sample(self):
        keys = ZipfKeys(16, s=0.9, prefix="obj")
        rank = keys.sample_rank(random.Random(5))
        assert keys.sample(random.Random(5)) == "obj-%d" % rank

    def test_cumulative_table_interned_across_prefixes(self):
        # The weight table depends only on (n_keys, s): equivalent
        # samplers share one immutable tuple, and construction after
        # the first is a cache hit rather than an O(n) rebuild.
        a = ZipfKeys(1000, s=0.99, prefix="key")
        b = ZipfKeys(1000, s=0.99, prefix="other")
        assert a._cumulative is b._cumulative
        assert a._cumulative is _cumulative_weights(1000, 0.99)
        assert ZipfKeys(1000, s=0.5)._cumulative is not a._cumulative


class TestLegacyImportPath:
    def test_old_module_warns_and_reexports(self):
        import importlib

        with pytest.warns(DeprecationWarning, match="repro.load.workloads"):
            import repro.workloads as legacy
            legacy = importlib.reload(legacy)
        assert legacy.ZipfKeys is ZipfKeys
        assert legacy.OpMix is OpMix
        assert legacy.generate_commands is generate_commands


class TestOpMix:
    def test_ratios_respected(self):
        mix = OpMix(ZipfKeys(5), reads=0.7, writes=0.3, increments=0.0)
        rng = random.Random(2)
        ops = [mix.sample(rng)[0] for _ in range(4000)]
        read_ratio = ops.count("get") / len(ops)
        assert abs(read_ratio - 0.7) < 0.03
        assert "incr" not in ops

    def test_write_values_distinct(self):
        mix = OpMix(ZipfKeys(3), reads=0.0, writes=1.0, increments=0.0)
        rng = random.Random(3)
        values = [mix.sample(rng)[2] for _ in range(50)]
        assert len(set(values)) == 50

    def test_all_zero_ratios_rejected(self):
        with pytest.raises(ValueError):
            OpMix(ZipfKeys(3), reads=0, writes=0, increments=0)


class TestEndToEnd:
    def test_replicated_kv_serves_zipfian_mix(self):
        from repro.smr import ReplicatedKV
        kv = ReplicatedKV(n_replicas=3, protocol="multi-paxos", seed=41)
        commands = generate_commands(random.Random(41), 40, n_keys=8,
                                     skew=1.0)
        for command in commands:
            kv.execute(command)
        kv.settle()
        assert kv.check_consistency()

    def test_eventual_kv_serves_the_same_mix(self):
        from repro.dynamo import EventualKV
        store = EventualKV(n_replicas=3, n=3, r=2, w=2, seed=42)
        commands = generate_commands(random.Random(42), 30, n_keys=8)
        counters = {}
        for command in commands:
            if command[0] == "get":
                store.get(command[1])
            elif command[0] == "put":
                store.put(command[1], command[2])
            else:  # incr: read-modify-write through the context
                value, ctx = store.get(command[1])
                base = value if isinstance(value, int) else 0
                store.put(command[1], base + 1, context=ctx)
        store.settle(150.0)
        # Every written key converged across its preference list.
        keys = {c[1] for c in commands}
        assert all(store.converged(key) for key in keys)
