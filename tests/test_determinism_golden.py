"""Golden-file determinism regression: byte-identical traces and stats.

The determinism contract — same seed, same run, down to every RNG draw —
is what makes the library's experiments reproducible and its perf work
safe to verify.  These tests pin it: each protocol's seed-0 causal trace
(JSONL) and telemetry run report (JSON) must match the committed golden
bytes exactly.

A diff here means an observable behaviour change: RNG draw order,
event ordering, message flow, or report layout.  If the change is
*intended* (a protocol fix, a new instrument), regenerate the goldens
and say so in the commit:

    PYTHONPATH=src python -m repro trace <p> --seed 0 \\
        --jsonl tests/golden/<p>_seed0.trace.jsonl
    PYTHONPATH=src python -m repro stats <p> --seed 0 \\
        --json tests/golden/<p>_seed0.stats.json

A pure optimisation must never need that.
"""

import pathlib

import pytest

from repro.__main__ import main

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

PROTOCOLS = ("paxos", "pbft", "raft", "hotstuff", "multi-paxos",
             "tendermint", "shards")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_trace_matches_golden(protocol, tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    exit_code = main(["trace", protocol, "--seed", "0",
                      "--jsonl", str(out)])
    capsys.readouterr()  # swallow the rendered flow diagram
    assert exit_code == 0
    golden = GOLDEN_DIR / ("%s_seed0.trace.jsonl" % protocol)
    assert out.read_bytes() == golden.read_bytes(), \
        "seed-0 %s trace diverged from tests/golden/%s" % (protocol,
                                                           golden.name)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_stats_match_golden(protocol, tmp_path, capsys):
    out = tmp_path / "stats.json"
    exit_code = main(["stats", protocol, "--seed", "0",
                      "--json", str(out)])
    capsys.readouterr()  # swallow the rendered summary
    assert exit_code == 0
    golden = GOLDEN_DIR / ("%s_seed0.stats.json" % protocol)
    assert out.read_bytes() == golden.read_bytes(), \
        "seed-0 %s stats diverged from tests/golden/%s" % (protocol,
                                                           golden.name)


@pytest.mark.parametrize("workers", (1, 2, 4))
def test_loadtest_sweep_matches_golden(workers, tmp_path, capsys):
    """The load engine inherits the determinism contract at every
    worker count: a seed-0 sweep is byte-identical whether its points
    run serially or across a fork pool.  Regenerate with

        PYTHONPATH=src python -m repro loadtest multi-paxos \\
            --sweep 1..8:4 --duration 80 --slo 30 --seed 0 \\
            --json tests/golden/loadtest_multi-paxos_seed0.sweep.json
    """
    out = tmp_path / "sweep.json"
    exit_code = main(["loadtest", "multi-paxos", "--sweep", "1..8:4",
                      "--duration", "80", "--slo", "30", "--seed", "0",
                      "--workers", str(workers), "--json", str(out)])
    capsys.readouterr()  # swallow the rendered knee curve
    assert exit_code == 0
    golden = GOLDEN_DIR / "loadtest_multi-paxos_seed0.sweep.json"
    assert out.read_bytes() == golden.read_bytes(), \
        "seed-0 loadtest sweep (workers=%d) diverged from " \
        "tests/golden/%s" % (workers, golden.name)


def test_conformance_report_matches_golden(tmp_path, capsys):
    """The monitor subsystem inherits the determinism contract: a
    same-seed conformance report is byte-identical.  Regenerate with

        PYTHONPATH=src python -m repro check pbft --seed 0 \\
            --json tests/golden/pbft_seed0.conformance.json
    """
    out = tmp_path / "conformance.json"
    exit_code = main(["check", "pbft", "--seed", "0", "--json", str(out)])
    capsys.readouterr()  # swallow the rendered report
    assert exit_code == 0
    golden = GOLDEN_DIR / "pbft_seed0.conformance.json"
    assert out.read_bytes() == golden.read_bytes(), \
        "seed-0 pbft conformance report diverged from tests/golden/%s" \
        % golden.name
