"""Unit tests for the network substrate: delivery models, partitions,
transport, message sizing."""

from dataclasses import dataclass

import pytest

from repro.core import Node
from repro.net import (
    AsynchronousModel,
    DeliveryModel,
    Message,
    Network,
    PartialSynchronyModel,
    PartitionManager,
    PerLinkModel,
    SynchronousModel,
    UniformDelayModel,
)
from repro.sim import Simulator


@dataclass(frozen=True)
class Ping(Message):
    payload: str


class Recorder(Node):
    def __init__(self, sim, network, name):
        super().__init__(sim, network, name)
        self.received = []

    def handle_ping(self, msg, src):
        self.received.append((src, msg.payload, self.sim.now))


class TestDeliveryModels:
    def test_synchronous_constant_delay(self):
        model = SynchronousModel(step=2.0)
        sim = Simulator()
        assert model.delay(sim.rng, "a", "b", 0.0) == 2.0

    def test_synchronous_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SynchronousModel(step=0)

    def test_uniform_within_bounds(self):
        model = UniformDelayModel(0.5, 1.5)
        sim = Simulator(seed=1)
        for _ in range(200):
            delay = model.delay(sim.rng, "a", "b", 0.0)
            assert 0.5 <= delay <= 1.5

    def test_uniform_drop_rate(self):
        model = UniformDelayModel(0.5, 1.5, drop_rate=0.5)
        sim = Simulator(seed=1)
        outcomes = [model.delay(sim.rng, "a", "b", 0.0) for _ in range(400)]
        drops = sum(1 for o in outcomes if o is DeliveryModel.DROP)
        assert 120 < drops < 280

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformDelayModel(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformDelayModel(drop_rate=1.0)

    def test_asynchronous_has_heavy_tail(self):
        model = AsynchronousModel(mean=1.0, tail_prob=0.2, tail_factor=50.0)
        sim = Simulator(seed=2)
        delays = [model.delay(sim.rng, "a", "b", 0.0) for _ in range(500)]
        assert max(delays) > 20.0  # stragglers exist
        assert min(delays) < 2.0

    def test_partial_synchrony_stabilises_after_gst(self):
        model = PartialSynchronyModel(gst=100.0, post_low=0.5, post_high=1.0)
        sim = Simulator(seed=3)
        post = [model.delay(sim.rng, "a", "b", 150.0) for _ in range(100)]
        assert all(0.5 <= d <= 1.0 for d in post)
        pre = [model.delay(sim.rng, "a", "b", 10.0) for _ in range(200)]
        assert max(pre) > 1.0  # unbounded-ish before GST

    def test_per_link_overrides(self):
        slow = SynchronousModel(10.0)
        fast = SynchronousModel(1.0)
        model = PerLinkModel(fast, {("a", "b"): slow})
        sim = Simulator()
        assert model.delay(sim.rng, "a", "b", 0.0) == 10.0
        assert model.delay(sim.rng, "b", "a", 0.0) == 1.0
        model.set_link("b", "a", slow)
        assert model.delay(sim.rng, "b", "a", 0.0) == 10.0


class TestPartitions:
    def test_no_partition_all_connected(self):
        pm = PartitionManager()
        assert pm.connected("a", "b")
        assert not pm.active

    def test_split_blocks_cross_group(self):
        pm = PartitionManager()
        pm.split(["a", "b"], ["c"])
        assert pm.connected("a", "b")
        assert not pm.connected("a", "c")
        assert not pm.connected("c", "b")
        pm.heal()
        assert pm.connected("a", "c")

    def test_unnamed_nodes_isolated(self):
        pm = PartitionManager()
        pm.split(["a"], ["b"])
        assert not pm.connected("a", "ghost")
        assert not pm.connected("ghost", "other_ghost")

    def test_duplicate_membership_rejected(self):
        pm = PartitionManager()
        with pytest.raises(ValueError):
            pm.split(["a", "b"], ["b", "c"])

    def test_isolate_helper(self):
        pm = PartitionManager()
        pm.isolate("x", ["x", "y", "z"])
        assert not pm.connected("x", "y")
        assert pm.connected("y", "z")


class TestNetwork:
    def test_unicast_delivery(self, cluster):
        a = cluster.add_node(Recorder, "a")
        b = cluster.add_node(Recorder, "b")
        cluster.sim.call_soon(lambda: a.send("b", Ping("hi")))
        cluster.run()
        assert b.received and b.received[0][:2] == ("a", "hi")

    def test_duplicate_names_rejected(self, cluster):
        cluster.add_node(Recorder, "a")
        with pytest.raises(ValueError):
            cluster.add_node(Recorder, "a")

    def test_unknown_destination_raises(self, cluster):
        a = cluster.add_node(Recorder, "a")
        with pytest.raises(KeyError):
            a.send("nope", Ping("x"))

    def test_broadcast_excludes_self_by_default(self, cluster):
        nodes = [cluster.add_node(Recorder, "n%d" % i) for i in range(4)]
        cluster.sim.call_soon(lambda: nodes[0].broadcast(Ping("all")))
        cluster.run()
        assert not nodes[0].received
        assert all(n.received for n in nodes[1:])

    def test_broadcast_counts_unicasts_in_metrics(self, cluster):
        nodes = [cluster.add_node(Recorder, "n%d" % i) for i in range(5)]
        cluster.sim.call_soon(lambda: nodes[0].broadcast(Ping("x")))
        cluster.run()
        assert cluster.metrics.messages_total == 4

    def test_crashed_node_does_not_send_or_receive(self, cluster):
        a = cluster.add_node(Recorder, "a")
        b = cluster.add_node(Recorder, "b")
        b.crash()
        cluster.sim.call_soon(lambda: a.send("b", Ping("x")))
        cluster.run()
        assert not b.received
        a.crash()
        assert a.send("b", Ping("y")) is False

    def test_interceptor_can_drop(self, cluster):
        a = cluster.add_node(Recorder, "a")
        b = cluster.add_node(Recorder, "b")
        cluster.network.add_interceptor(
            lambda src, dst, msg: False if dst == "b" else None
        )
        cluster.sim.call_soon(lambda: a.send("b", Ping("x")))
        cluster.run()
        assert not b.received

    def test_interceptor_removal(self, cluster):
        a = cluster.add_node(Recorder, "a")
        b = cluster.add_node(Recorder, "b")
        drop = lambda src, dst, msg: False
        cluster.network.add_interceptor(drop)
        cluster.network.remove_interceptor(drop)
        cluster.sim.call_soon(lambda: a.send("b", Ping("x")))
        cluster.run()
        assert b.received

    def test_partition_blocks_traffic(self, cluster):
        a = cluster.add_node(Recorder, "a")
        b = cluster.add_node(Recorder, "b")
        cluster.network.partitions.split(["a"], ["b"])
        cluster.sim.call_soon(lambda: a.send("b", Ping("x")))
        cluster.run()
        assert not b.received

    def test_unhandled_message_ignored(self, cluster):
        @dataclass(frozen=True)
        class Mystery(Message):
            x: int

        a = cluster.add_node(Recorder, "a")
        b = cluster.add_node(Recorder, "b")
        cluster.sim.call_soon(lambda: a.send("b", Mystery(1)))
        cluster.run()  # must not raise
        assert not b.received

    def test_multicast(self, cluster):
        nodes = [cluster.add_node(Recorder, "n%d" % i) for i in range(4)]
        cluster.sim.call_soon(
            lambda: nodes[0].multicast(["n1", "n3"], Ping("m"))
        )
        cluster.run()
        assert nodes[1].received and nodes[3].received and not nodes[2].received


class TestMessageSizing:
    def test_size_estimate_grows_with_content(self):
        small = Ping("x")
        large = Ping("x" * 500)
        assert large.size_estimate() > small.size_estimate()

    def test_mtype_is_lowercased_class_name(self):
        assert Ping("x").mtype == "ping"

    def test_mtype_is_cached_on_the_class(self):
        # Stamped by __init_subclass__, not computed per instance.
        assert "mtype" in Ping.__dict__
        assert Ping.mtype == "ping"

    def test_explicit_mtype_survives_subclassing(self):
        @dataclass(frozen=True)
        class Renamed(Message):
            mtype = "wire-name"

        assert Renamed().mtype == "wire-name"

    def test_size_estimate_stable_across_calls(self):
        # The per-class field plan must not drift between invocations.
        message = Ping("hello")
        assert message.size_estimate() == message.size_estimate()


class TestDispatchCache:
    def test_handler_resolved_once_per_class(self):
        sim = Simulator()
        network = Network(sim)

        class CachedRecorder(Recorder):
            pass

        node = CachedRecorder(sim, network, "n")
        assert CachedRecorder._dispatch == {}
        node.deliver(Ping("x"), "peer")
        assert CachedRecorder._dispatch["ping"] is CachedRecorder.handle_ping
        node.deliver(Ping("y"), "peer")
        assert [payload for _src, payload, _t in node.received] == ["x", "y"]

    def test_unhandled_mtype_cached_as_none(self):
        sim = Simulator()

        @dataclass(frozen=True)
        class Mystery(Message):
            pass

        class Deaf(Node):
            def __init__(self, sim, network, name):
                super().__init__(sim, network, name)
                self.unhandled = []

            def on_unhandled(self, message, src):
                self.unhandled.append(message)

        node = Deaf(sim, Network(sim), "n")
        node.deliver(Mystery(), "peer")
        node.deliver(Mystery(), "peer")
        assert len(node.unhandled) == 2
        assert Deaf._dispatch["mystery"] is None

    def test_subclasses_get_independent_caches(self):
        # A subclass must not inherit (or pollute) its parent's cache —
        # each class resolves its own handlers.
        sim = Simulator()
        network = Network(sim)

        class Parent(Recorder):
            pass

        class Child(Parent):
            def handle_ping(self, msg, src):
                self.received.append(("child", msg.payload, self.sim.now))

        parent = Parent(sim, network, "p")
        child = Child(sim, network, "c")
        parent.deliver(Ping("a"), "peer")
        child.deliver(Ping("b"), "peer")
        assert Parent._dispatch["ping"] is Parent.handle_ping
        assert Child._dispatch["ping"] is Child.handle_ping
        assert parent.received[0][0] == "peer"
        assert child.received[0][0] == "child"


class TestEnvelope:
    def test_latency_property(self):
        from repro.net import Envelope
        envelope = Envelope("a", "b", Ping("x"), sent_at=1.0, deliver_at=3.5)
        assert envelope.latency == 2.5
        assert envelope.src == "a" and envelope.dst == "b"
