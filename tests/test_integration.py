"""Cross-module integration scenarios: realistic end-to-end runs that
exercise multiple subsystems together."""

import pytest

from repro.core import Cluster
from repro.faults import FaultPlan
from repro.net import PartialSynchronyModel, UniformDelayModel
from repro.smr import BankStateMachine, ReplicatedKV


class TestKVUnderChaos:
    def test_multipaxos_kv_with_crash_restart_cycle(self):
        kv = ReplicatedKV(n_replicas=5, protocol="multi-paxos", seed=21)
        for i in range(5):
            kv.put("k%d" % i, i)
        kv.crash_replica(1)
        kv.crash_leader()
        for i in range(5, 8):
            kv.put("k%d" % i, i)
        kv.restart_replica(1)
        kv.settle(100.0)
        assert kv.get("k0") == 0 and kv.get("k7") == 7
        assert kv.check_consistency()

    def test_raft_kv_under_partial_synchrony(self):
        kv = ReplicatedKV(
            n_replicas=3, protocol="raft", seed=5,
            delivery=PartialSynchronyModel(gst=0.0, post_low=0.5,
                                           post_high=1.5),
        )
        for i in range(4):
            kv.incr("total", i + 1)
        assert kv.get("total") == 10
        kv.settle()
        assert kv.check_consistency()

    def test_pbft_kv_sequential_semantics(self):
        kv = ReplicatedKV(n_replicas=4, protocol="pbft", seed=2)
        kv.put("x", 1)
        assert kv.execute(("cas", "x", 1, 2)) is True
        assert kv.execute(("cas", "x", 1, 3)) is False
        assert kv.get("x") == 2


class TestBankOnBft:
    def test_byzantine_resilient_bank_conserves_money(self, make_cluster):
        from repro.protocols.pbft import PbftClient, PbftReplica
        cluster = make_cluster(seed=3)
        names = ["b%d" % i for i in range(4)]
        replicas = cluster.add_nodes(
            PbftReplica, names, names, 1,
            state_machine_factory=BankStateMachine,
        )
        operations = [
            ("open", "alice", 100), ("open", "bob", 50),
            ("transfer", "alice", "bob", 30),
            ("transfer", "bob", "alice", 200),  # rejected: overdraft
            ("transfer", "bob", "alice", 80),
        ]
        client = cluster.add_node(PbftClient, "c0", names, operations, 1)
        cluster.start_all()
        cluster.run_until(lambda: client.done, until=2000.0)
        assert client.done
        cluster.sim.run_for(50.0)
        totals = {r.state_machine.total_money() for r in replicas}
        assert totals == {150}
        balances = {tuple(sorted(r.state_machine.accounts.items()))
                    for r in replicas}
        assert len(balances) == 1  # identical state everywhere


class TestPartitionScenarios:
    def test_multipaxos_minority_partition_stalls_then_recovers(self):
        kv = ReplicatedKV(n_replicas=3, protocol="multi-paxos", seed=8)
        kv.put("a", 1)
        plan = FaultPlan(kv.cluster)
        names = [r.name for r in kv.replicas]
        # Isolate the leader with no quorum; heal later.
        leader = kv._current_leader()
        others = [n for n in names if n != leader.name]
        kv.cluster.network.partitions.split([leader.name], others + ["kvclient"])
        plan.heal_at(kv.cluster.now + 60.0)
        kv.put("b", 2)  # must still complete via the majority side
        kv.settle(120.0)
        assert kv.get("a") == 1 and kv.get("b") == 2
        assert kv.check_consistency()

    def test_raft_partitioned_leader_cannot_commit(self):
        kv = ReplicatedKV(n_replicas=5, protocol="raft", seed=13)
        kv.put("a", 1)
        leader = kv._current_leader()
        names = [r.name for r in kv.replicas]
        others = [n for n in names if n != leader.name]
        kv.cluster.network.partitions.split([leader.name],
                                            others + ["kvclient"])
        kv.put("b", 2)
        kv.cluster.network.partitions.heal()
        kv.settle(150.0)
        assert kv.get("b") == 2
        assert kv.check_consistency()


class TestDeterminism:
    """The substrate-wide guarantee: seeded runs replay exactly."""

    @pytest.mark.parametrize("runner", ["paxos", "pbft", "mining"])
    def test_identical_seed_identical_trace(self, runner):
        def trace(seed):
            cluster = Cluster(seed=seed, delivery=UniformDelayModel())
            if runner == "paxos":
                from repro.protocols.paxos import run_basic_paxos
                result = run_basic_paxos(cluster, proposals=("X", "Y"),
                                         stagger=0.5)
                return (result.decided_values, result.messages, cluster.now)
            if runner == "pbft":
                from repro.protocols.pbft import run_pbft
                result = run_pbft(cluster, f=1, n_clients=1,
                                  operations_per_client=3)
                return (result.executed_logs(), result.messages, cluster.now)
            from repro.blockchain import run_mining_network
            result = run_mining_network(cluster, hashrates=(100.0,) * 3,
                                        target_block_time=20.0,
                                        duration=800.0)
            return ([b.hash for b in result.consensus_chain()],
                    result.messages)

        assert trace(77) == trace(77)
        assert trace(77) != trace(78)


class TestProtocolInteroperability:
    def test_same_workload_three_protocols_same_final_state(self):
        """The SMR promise: the protocol is interchangeable; the state
        machine outcome is identical."""
        workload = [("put", "a", 1), ("incr", "a", 0), ("put", "b", 2),
                    ("delete", "a"), ("incr", "c", 7)]
        finals = []
        for protocol, n in (("multi-paxos", 3), ("raft", 3), ("pbft", 4)):
            kv = ReplicatedKV(n_replicas=n, protocol=protocol, seed=31)
            for command in workload:
                kv.execute(command)
            kv.settle()
            machines = [r.state_machine for r in kv.replicas if not r.crashed]
            longest = max(machines, key=lambda m: m.ops_applied)
            finals.append(longest.snapshot())
        assert finals[0] == finals[1] == finals[2]
