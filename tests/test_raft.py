"""Tests for Raft: elections, log replication/repair, commit rules."""

from repro.protocols.raft import LogEntry, RaftNode, Role, run_raft
from repro.trace import assert_unique_leader_per_view


class TestElections:
    def test_exactly_one_leader_per_term(self, make_cluster):
        for seed in range(5):
            cluster = make_cluster(seed=seed, trace=True)
            result = run_raft(cluster, n_nodes=5, n_clients=1,
                              commands_per_client=2)
            leaders_by_term = {}
            for node in result.nodes:
                if node.role is Role.LEADER:
                    leaders_by_term.setdefault(node.current_term, set()).add(
                        node.name
                    )
            for term, leaders in leaders_by_term.items():
                assert len(leaders) == 1, (seed, term)
            # Stronger than the end-state scan above: no two nodes ever
            # *declared* leadership for one term, anywhere in the run.
            assert_unique_leader_per_view(cluster.trace, "term")

    def test_election_restriction_rejects_stale_logs(self, cluster):
        names = ["n0", "n1", "n2"]
        nodes = cluster.add_nodes(RaftNode, names, names)
        # n0 has a longer, newer log: it must not vote for n1.
        nodes[0].log = [LogEntry(1, "a"), LogEntry(2, "b")]
        nodes[0].current_term = 2
        nodes[1].current_term = 2
        from repro.protocols.raft import RequestVote
        nodes[0].handle_requestvote(RequestVote(3, 0, 1), "n1")
        assert nodes[0].voted_for != "n1"

    def test_higher_term_dethrones_leader(self, cluster):
        names = ["n0", "n1", "n2"]
        nodes = cluster.add_nodes(RaftNode, names, names)
        nodes[0].role = Role.LEADER
        nodes[0].current_term = 1
        from repro.protocols.raft import AppendEntries
        nodes[0].handle_appendentries(AppendEntries(5, -1, 0, (), -1), "n1")
        assert nodes[0].role is Role.FOLLOWER
        assert nodes[0].current_term == 5


class TestReplication:
    def test_commands_replicate_and_apply(self, cluster):
        result = run_raft(cluster, n_nodes=3, n_clients=1,
                          commands_per_client=5)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()
        leader = result.leader()
        assert leader is not None
        assert len(leader.committed_log()) == 5

    def test_multiple_clients_interleave_consistently(self, make_cluster):
        result = run_raft(make_cluster(seed=8), n_nodes=5, n_clients=3,
                          commands_per_client=3)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()

    def test_followers_catch_up_via_heartbeat_commit(self, cluster):
        result = run_raft(cluster, n_nodes=3, n_clients=1,
                          commands_per_client=3)
        cluster.sim.run_for(30.0)
        lengths = [len(n.committed_log()) for n in result.nodes]
        assert all(length == 3 for length in lengths)


class TestLeaderCrash:
    def test_progress_after_leader_crash(self, make_cluster):
        for seed in (11, 23):
            result = run_raft(make_cluster(seed=seed), n_nodes=5, n_clients=1,
                              commands_per_client=8, crash_leader_at=25.0)
            assert all(c.done for c in result.clients), seed
            assert result.logs_consistent(), seed

    def test_terms_increase_after_crash(self, make_cluster):
        result = run_raft(make_cluster(seed=11), n_nodes=5, n_clients=1,
                          commands_per_client=6, crash_leader_at=25.0)
        alive_terms = [n.current_term for n in result.nodes if not n.crashed]
        assert max(alive_terms) >= 2

    def test_restarted_node_rejoins_consistently(self, make_cluster):
        cluster = make_cluster(seed=13)
        result = run_raft(cluster, n_nodes=3, n_clients=1,
                          commands_per_client=5, crash_leader_at=20.0)
        crashed = [n for n in result.nodes if n.crashed]
        for node in crashed:
            node.restart()
        cluster.sim.run_for(80.0)
        assert result.logs_consistent()


class TestLogRepair:
    def test_divergent_follower_log_truncated(self, cluster):
        names = ["n0", "n1", "n2"]
        nodes = cluster.add_nodes(RaftNode, names, names)
        follower = nodes[1]
        # Follower holds uncommitted garbage from a dead leader's term.
        follower.log = [LogEntry(1, "good"), LogEntry(1, "stale-a"),
                        LogEntry(1, "stale-b")]
        from repro.protocols.raft import AppendEntries
        follower.current_term = 2
        follower.handle_appendentries(
            AppendEntries(2, 0, 1, (LogEntry(2, "new"),), 1), "n0"
        )
        commands = [entry.command for entry in follower.log]
        assert commands == ["good", "new"]

    def test_append_rejected_on_prev_mismatch(self, cluster):
        names = ["n0", "n1", "n2"]
        nodes = cluster.add_nodes(RaftNode, names, names)
        follower = nodes[1]
        from repro.protocols.raft import AppendEntries
        follower.handle_appendentries(
            AppendEntries(1, 5, 1, (LogEntry(1, "x"),), -1), "n0"
        )
        assert follower.log == []  # gap: refused


class TestLogCompaction:
    """Raft snapshots: applied prefixes are discarded; laggards get
    InstallSnapshot instead of unavailable entries."""

    def test_log_stays_bounded(self, make_cluster):
        result = run_raft(make_cluster(seed=4), n_nodes=3, n_clients=1,
                          commands_per_client=20, snapshot_threshold=5)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()
        for node in result.nodes:
            assert len(node.log) <= 6
        assert any(node.snapshots_taken > 0 for node in result.nodes)

    def test_state_survives_compaction(self, make_cluster):
        result = run_raft(make_cluster(seed=4), n_nodes=3, n_clients=1,
                          commands_per_client=15, snapshot_threshold=4)
        cluster_histories = [n.state_machine.history for n in result.nodes]
        longest = max(cluster_histories, key=len)
        assert len(longest) == 15
        for history in cluster_histories:
            assert history == longest[: len(history)]

    def test_lagging_follower_installed_snapshot(self, make_cluster):
        from repro.protocols.raft import RaftClient, RaftNode
        cluster = make_cluster(seed=7)
        names = ["n0", "n1", "n2"]
        nodes = cluster.add_nodes(RaftNode, names, names,
                                  snapshot_threshold=4)
        client = cluster.add_node(
            RaftClient, "c0", names, ["x%d" % i for i in range(12)]
        )

        def block_n2(src, dst, msg):
            if "n2" in (src, dst) and 5.0 < cluster.sim.now < 120.0:
                return False
            return None

        cluster.network.add_interceptor(block_n2)
        cluster.start_all()
        cluster.run_until(lambda: client.done, until=2000.0)
        cluster.sim.run_for(200.0)
        laggard = nodes[2]
        assert laggard.snapshots_installed >= 1
        leader_history = max((n.state_machine.history for n in nodes),
                             key=len)
        assert laggard.state_machine.history == \
            leader_history[: len(laggard.state_machine.history)]
        assert len(laggard.state_machine.history) >= 10

    def test_no_compaction_without_threshold(self, make_cluster):
        result = run_raft(make_cluster(seed=4), n_nodes=3, n_clients=1,
                          commands_per_client=10)
        assert all(node.snapshots_taken == 0 for node in result.nodes)
        assert all(node.log_base == 0 for node in result.nodes)
