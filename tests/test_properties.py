"""Property-based tests (hypothesis) on the library's core invariants:
quorum intersection, ballot ordering, canonical hashing, Merkle proofs,
ledger conservation, the OM bound, and Paxos safety under random faults."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain import Ledger, Transaction, make_coinbase
from repro.core import Ballot, ByzantineQuorum, FlexibleQuorum, HybridQuorum, MajorityQuorum
from repro.crypto import MerkleTree, canonical_bytes
from repro.protocols.interactive_consistency import majority, om_satisfies_ic

# -- ballots -----------------------------------------------------------------

ballots = st.builds(
    Ballot,
    number=st.integers(min_value=0, max_value=1000),
    pid=st.text(alphabet="abcdefgh", min_size=0, max_size=4),
)


@given(ballots, ballots, ballots)
def test_ballot_total_order(a, b, c):
    # Totality
    assert (a < b) or (b < a) or (a == b)
    # Transitivity
    if a < b and b < c:
        assert a < c
    # Antisymmetry
    if a < b:
        assert not (b < a)


@given(ballots, st.text(alphabet="xyz", min_size=1, max_size=3))
def test_successor_strictly_greater(ballot, pid):
    assert ballot.successor(pid) > ballot


# -- quorums -----------------------------------------------------------------


@given(st.integers(min_value=1, max_value=7))
@settings(max_examples=20, deadline=None)
def test_majority_quorums_always_intersect(n):
    members = ["n%d" % i for i in range(n)]
    assert MajorityQuorum(members).intersection_guaranteed()


@given(st.integers(min_value=2, max_value=7), st.data())
@settings(max_examples=30, deadline=None)
def test_flexible_quorums_intersect_iff_condition(n, data):
    members = ["n%d" % i for i in range(n)]
    q1 = data.draw(st.integers(min_value=1, max_value=n))
    q2 = data.draw(st.integers(min_value=1, max_value=n))
    if q1 + q2 > n:
        assert FlexibleQuorum(members, q1, q2).intersection_guaranteed()
    else:
        # The condition fails: disjoint Q1/Q2 of these sizes exist.
        q1_set = set(members[:q1])
        q2_set = set(members[n - q2:])
        assert not (q1_set & q2_set)


@given(st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_byzantine_quorum_overlap_exceeds_f(f):
    n = 3 * f + 1
    quorum = ByzantineQuorum(["r%d" % i for i in range(n)], f=f)
    # Worst case overlap of two 2f+1 quorums out of 3f+1 nodes:
    assert quorum.min_intersection() == f + 1
    assert quorum.min_intersection() > f  # contains a correct node


@given(st.integers(min_value=0, max_value=2),
       st.integers(min_value=0, max_value=2))
@settings(max_examples=20, deadline=None)
def test_hybrid_quorum_overlap_exceeds_m(m, c):
    if m == 0 and c == 0:
        return
    n = 3 * m + 2 * c + 1
    quorum = HybridQuorum(["r%d" % i for i in range(n)], m=m, c=c)
    assert quorum.min_intersection() == m + 1


# -- hashing -------------------------------------------------------------------

json_values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=10)
    | st.binary(max_size=10),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=10,
)


@given(json_values)
@settings(max_examples=100, deadline=None)
def test_canonical_bytes_deterministic(value):
    assert canonical_bytes(value) == canonical_bytes(value)


@given(json_values, json_values)
@settings(max_examples=100, deadline=None)
def test_distinct_values_hash_differently(a, b):
    if a != b or type(a) is not type(b):
        if canonical_bytes(a) == canonical_bytes(b):
            # Collisions are only acceptable for equal values.
            assert a == b


# -- merkle -------------------------------------------------------------------


@given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=12),
       st.data())
@settings(max_examples=50, deadline=None)
def test_merkle_proofs_verify_for_every_leaf(leaves, data):
    tree = MerkleTree(leaves)
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    assert MerkleTree.verify(leaves[index], tree.proof(index), tree.root)


@given(st.lists(st.text(min_size=1, max_size=8), min_size=2, max_size=10),
       st.data())
@settings(max_examples=50, deadline=None)
def test_merkle_wrong_leaf_rejected(leaves, data):
    tree = MerkleTree(leaves)
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    wrong = leaves[index] + "-tampered"
    assert not MerkleTree.verify(wrong, tree.proof(index), tree.root)


# -- ledger -------------------------------------------------------------------


@given(st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.sampled_from(["a", "b", "c"]),
              st.floats(min_value=0.1, max_value=30.0,
                        allow_nan=False)),
    max_size=20,
))
@settings(max_examples=60, deadline=None)
def test_ledger_conserves_supply(transfers):
    ledger = Ledger()
    for name in ("a", "b", "c"):
        ledger.apply(make_coinbase(name, 100.0, 0))
    supply = ledger.total_supply()
    nonces = {"a": 0, "b": 0, "c": 0}
    for sender, recipient, amount in transfers:
        tx = Transaction(sender, recipient, amount, nonces[sender])
        if ledger.can_apply(tx):
            ledger.apply(tx)
            nonces[sender] += 1
        assert abs(ledger.total_supply() - supply) < 1e-6
        assert all(balance >= -1e-9 for balance in ledger.balances.values())


# -- oral messages --------------------------------------------------------------


@given(st.integers(min_value=3, max_value=7), st.data())
@settings(max_examples=25, deadline=None)
def test_om1_bound_exactly_at_four(n, data):
    traitor = data.draw(st.integers(min_value=0, max_value=n - 1))
    satisfied = om_satisfies_ic(1, n, {traitor})
    if n >= 4:
        # At or above 3m+1 every traitor placement is survived.
        assert satisfied
    else:
        # Below the bound a traitorous *lieutenant* breaks the algorithm
        # (a traitorous commander alone yields consistent UNKNOWNs, which
        # vacuously satisfies IC — the impossibility needs only one bad
        # placement).
        assert not om_satisfies_ic(1, n, {n - 1})


@given(st.lists(st.sampled_from(["x", "y", "z"]), max_size=9))
def test_majority_is_strict(values):
    result = majority(values)
    if result != "UNKNOWN":
        assert values.count(result) * 2 > len(values)


# -- end-to-end Paxos safety under random crash patterns ------------------------


@given(st.integers(min_value=0, max_value=10000), st.data())
@settings(max_examples=15, deadline=None)
def test_paxos_never_decides_two_values(seed, data):
    from repro.core import Cluster
    from repro.protocols.paxos import (RandomizedBackoff, chosen_value,
                                       run_basic_paxos)
    n = data.draw(st.sampled_from([3, 5]))
    n_crash = data.draw(st.integers(min_value=0, max_value=(n - 1) // 2))
    crash = tuple(range(n_crash))
    cluster = Cluster(seed=seed)
    result = run_basic_paxos(
        cluster, n_acceptors=n, proposals=("X", "Y"),
        retry=RandomizedBackoff(), stagger=0.5,
        crash_acceptors=crash, horizon=400.0,
    )
    decided = {v for v in result.decided_values if v is not None}
    assert len(decided) <= 1
    quorums = MajorityQuorum([a.name for a in result.acceptors])
    chosen = chosen_value(result.acceptors, quorums)
    if decided and chosen is not None:
        assert chosen in decided


# -- transactional state machine: serializability on a small model ---------------


@given(st.lists(
    st.tuples(st.sampled_from(["t1", "t2", "t3"]),
              st.sampled_from(["lock", "prepare", "commit", "abort"])),
    max_size=25,
))
@settings(max_examples=60, deadline=None)
def test_txn_state_machine_lock_invariants(script):
    """Whatever command sequence arrives, the lock table never assigns a
    key to two transactions and committed writes only come from lock
    holders."""
    from repro.dtxn import TxnKVStateMachine
    sm = TxnKVStateMachine()
    sm.apply(("put", "k", 0))
    locked_by = {}
    for txid, action in script:
        if action == "lock":
            result = sm.apply(("txn_lock", txid, ("k",)))
            if result[0] == "ok":
                locked_by["k"] = txid
        elif action == "prepare":
            sm.apply(("txn_prepare", txid, (("k", txid),)))
        elif action == "commit":
            sm.apply(("txn_commit", txid))
            if locked_by.get("k") == txid:
                del locked_by["k"]
        else:
            sm.apply(("txn_abort", txid))
            if locked_by.get("k") == txid:
                del locked_by["k"]
        # Invariant: at most one holder, and it matches our model.
        assert len(sm.locks) <= 1
        if "k" in sm.locks:
            assert sm.locks["k"] == locked_by.get("k", sm.locks["k"])
    # A committed value was written by a transaction that held the lock
    # at prepare time (the SM refuses prepares without locks).
    final = sm.apply(("get", "k"))
    assert final == 0 or final in ("t1", "t2", "t3")


# -- lock service: lease model ----------------------------------------------------


@given(st.lists(
    st.tuples(st.sampled_from(["s1", "s2"]),
              st.sampled_from(["acquire", "release", "keepalive"]),
              st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
    max_size=20,
))
@settings(max_examples=60, deadline=None)
def test_lock_lease_never_two_live_holders(script):
    from repro.smr import LockStateMachine
    sm = LockStateMachine()
    script = sorted(script, key=lambda item: item[2])  # time-ordered
    for session, action, now in script:
        if action == "acquire":
            sm.apply(("acquire", "L", session, now, 10.0))
        elif action == "release":
            sm.apply(("release", "L", session, now))
        else:
            sm.apply(("keepalive", session, now, 10.0))
        # At any instant, at most one *live* holder exists by
        # construction (single entry per lock); and an expired entry is
        # never reported as the holder.
        holder = sm.apply(("holder", "L", now))
        entry = sm.locks.get("L")
        if holder is not None:
            assert entry is not None and entry[0] == holder
            assert entry[1] > now


# -- DPoS election --------------------------------------------------------------


@given(st.dictionaries(st.sampled_from(["v1", "v2", "v3", "v4"]),
                       st.floats(min_value=1.0, max_value=100.0,
                                 allow_nan=False),
                       min_size=1),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=50, deadline=None)
def test_dpos_witness_set_is_top_k_by_approved_stake(stakes, k):
    from repro.blockchain import elect_witnesses
    votes = {voter: ["w-%s" % voter] for voter in stakes}
    witnesses, weight = elect_witnesses(stakes, votes, k)
    assert len(witnesses) == min(k, len(weight))
    cutoff = min(weight[w] for w in witnesses)
    for candidate, approved in weight.items():
        if candidate not in witnesses:
            assert approved <= cutoff


# -- Tendermint block hashing ------------------------------------------------------


@given(st.integers(min_value=1, max_value=100), st.text(max_size=8),
       st.text(max_size=8))
def test_tendermint_block_hash_binds_fields(height, payload_a, payload_b):
    from repro.protocols.tendermint import TmBlock
    block_a = TmBlock(height, "prev", payload_a)
    block_b = TmBlock(height, "prev", payload_b)
    if payload_a != payload_b:
        assert block_a.hash != block_b.hash
    assert TmBlock(height + 1, "prev", payload_a).hash != block_a.hash


# -- vector clocks ---------------------------------------------------------------


clock_events = st.lists(st.sampled_from(["n1", "n2", "n3"]), max_size=8)


@given(clock_events, clock_events)
@settings(max_examples=80, deadline=None)
def test_vector_clock_partial_order_laws(events_a, events_b):
    from repro.dynamo import VectorClock
    a = VectorClock()
    for node in events_a:
        a = a.increment(node)
    b = VectorClock()
    for node in events_b:
        b = b.increment(node)
    # Reflexivity and antisymmetry of descent.
    assert a.descends_from(a)
    if a.descends_from(b) and b.descends_from(a):
        assert a == b
    # The merge is an upper bound of both.
    merged = a.merge(b)
    assert merged.descends_from(a) and merged.descends_from(b)
    # Concurrency is symmetric and exclusive with descent.
    assert a.concurrent_with(b) == b.concurrent_with(a)
    if a.concurrent_with(b):
        assert not a.descends_from(b) and not b.descends_from(a)


@given(st.lists(
    st.tuples(st.sampled_from(["w1", "w2", "w3"]),
              st.integers(min_value=0, max_value=50)),
    min_size=1, max_size=8,
))
@settings(max_examples=60, deadline=None)
def test_reconcile_frontier_is_an_antichain(writes):
    from repro.dynamo import Versioned, VectorClock, reconcile
    counters = {"w1": 0, "w2": 0, "w3": 0}
    versions = []
    for writer, _salt in writes:
        counters[writer] += 1
        clock = VectorClock.of({writer: counters[writer]})
        versions.append(Versioned("%s-%d" % (writer, counters[writer]),
                                  clock, (float(counters[writer]), writer)))
    frontier = reconcile(versions)
    # Nothing in the frontier dominates anything else in it.
    for x in frontier:
        for y in frontier:
            if x is not y and x.clock != y.clock:
                assert not x.clock.descends_from(y.clock) or \
                    not y.clock.descends_from(x.clock)
    # Every dropped version is dominated by (or LWW-tied with) a survivor.
    for version in versions:
        if version not in frontier:
            assert any(
                survivor.clock.descends_from(version.clock)
                or (survivor.clock == version.clock
                    and survivor.stamp >= version.stamp)
                for survivor in frontier
            )
