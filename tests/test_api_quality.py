"""Library-wide quality gates: documentation and API surface checks."""

import importlib
import pathlib
import pkgutil

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def _all_modules():
    for info in pkgutil.walk_packages([str(PACKAGE_ROOT)], prefix="repro."):
        yield info.name


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = []
        for name in _all_modules():
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, undocumented

    def test_every_package_exports_all(self):
        missing = []
        for name in _all_modules():
            module = importlib.import_module(name)
            if hasattr(module, "__path__") and not hasattr(module, "__all__"):
                if name not in ("repro.protocols",):
                    missing.append(name)
        # protocols exposes submodules via __all__ too — so really: none.
        assert not missing, missing

    def test_public_classes_documented(self):
        undocumented = []
        for name in _all_modules():
            module = importlib.import_module(name)
            for attr_name in dir(module):
                if attr_name.startswith("_"):
                    continue
                attr = getattr(module, attr_name)
                if isinstance(attr, type) and \
                        attr.__module__ == module.__name__:
                    if not (attr.__doc__ or "").strip():
                        undocumented.append("%s.%s" % (name, attr_name))
        assert not undocumented, undocumented


class TestApiSurface:
    def test_all_exports_resolve(self):
        for name in _all_modules():
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                assert hasattr(module, symbol), (name, symbol)

    def test_protocol_profiles_complete(self):
        import repro.protocols  # noqa: F401
        from repro.core import all_profiles
        for profile in all_profiles():
            assert profile.nodes_label
            assert profile.phases >= 1
            assert profile.complexity.startswith("O(")

    def test_every_protocol_module_has_a_driver_or_classes(self):
        import repro.protocols as protocols
        for module_name in protocols.__all__:
            module = importlib.import_module("repro.protocols.%s"
                                             % module_name)
            runners = [attr for attr in dir(module)
                       if attr.startswith("run_")]
            assert runners, module_name

    def test_paper_claims_cover_registered_protocols(self):
        import repro.protocols  # noqa: F401
        from repro.analysis import PAPER_TABLE
        from repro.core import profile_names
        claimed = {claim.protocol for claim in PAPER_TABLE}
        assert set(profile_names()) <= claimed | {"pow"}
