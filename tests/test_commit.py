"""Tests for 2PC and 3PC: atomicity, vetoes, the blocking window, and
the termination protocol."""

from repro.core import CCPhase
from repro.protocols.commit import TxState, run_commit


class TestHappyPaths:
    def test_2pc_all_yes_commits(self, cluster):
        result = run_commit(cluster, protocol="2pc")
        assert all(s is TxState.COMMITTED for s in result.outcomes())
        assert result.atomic()

    def test_3pc_all_yes_commits(self, cluster):
        result = run_commit(cluster, protocol="3pc")
        assert all(s is TxState.COMMITTED for s in result.outcomes())

    def test_message_counts_2pc_vs_3pc(self, make_cluster):
        costs = {}
        for protocol in ("2pc", "3pc"):
            cluster = make_cluster(seed=1)
            run_commit(cluster, protocol=protocol, n_cohorts=4)
            costs[protocol] = cluster.metrics.messages_total
        # 3PC pays an extra phase: pre-commit + acks = 2n more messages.
        assert costs["3pc"] == costs["2pc"] + 8

    def test_many_cohorts(self, make_cluster):
        result = run_commit(make_cluster(seed=2), protocol="3pc", n_cohorts=8)
        assert all(s is TxState.COMMITTED for s in result.outcomes())


class TestVeto:
    def test_single_no_vote_aborts_everyone(self, make_cluster):
        for protocol in ("2pc", "3pc"):
            result = run_commit(make_cluster(seed=1), protocol=protocol,
                                votes=[True, False, True])
            assert all(s is TxState.ABORTED for s in result.outcomes())
            assert result.atomic()

    def test_all_no_aborts(self, cluster):
        result = run_commit(cluster, protocol="2pc", votes=[False] * 3)
        assert all(s is TxState.ABORTED for s in result.outcomes())


class TestBlocking:
    """2PC's fundamental flaw: the uncertainty window blocks."""

    def test_2pc_blocks_when_coordinator_dies_after_votes(self, cluster):
        result = run_commit(cluster, protocol="2pc", crash_after="votes")
        assert len(result.blocked_cohorts()) == 3
        assert all(s is TxState.READY for s in result.outcomes())

    def test_cooperative_termination_cannot_help_when_nobody_knows(self, cluster):
        # All cohorts are uncertain: querying peers yields nothing.
        result = run_commit(cluster, protocol="2pc", crash_after="votes",
                            cooperative=True)
        assert result.blocked_cohorts()

    def test_cooperative_termination_spreads_partial_decision(self, cluster):
        # One cohort learned COMMIT before the crash: peers adopt it.
        result = run_commit(cluster, protocol="2pc",
                            crash_after="partial_decision", partial_count=1)
        assert all(s is TxState.COMMITTED for s in result.outcomes())
        assert not result.blocked_cohorts()
        assert result.atomic()


class TestThreePCTermination:
    """3PC replicates the decision (C&C FT-agreement) before deciding."""

    def test_crash_after_votes_terminates_with_abort(self, cluster):
        result = run_commit(cluster, protocol="3pc", crash_after="votes")
        assert not result.blocked_cohorts()
        # Nobody pre-committed → nobody could have committed → abort safe.
        assert all(s is TxState.ABORTED for s in result.outcomes())

    def test_crash_after_precommits_terminates_with_commit(self, cluster):
        result = run_commit(cluster, protocol="3pc", crash_after="precommits")
        assert not result.blocked_cohorts()
        assert all(s is TxState.COMMITTED for s in result.outcomes())

    def test_termination_is_atomic(self, make_cluster):
        for seed in range(4):
            for crash in ("votes", "precommits"):
                result = run_commit(make_cluster(seed=seed), protocol="3pc",
                                    crash_after=crash)
                assert result.atomic(), (seed, crash)
                assert not result.blocked_cohorts(), (seed, crash)


class TestCCDecomposition:
    def test_2pc_trace_skips_ft_agreement(self, cluster):
        result = run_commit(cluster, protocol="2pc")
        phases = result.coordinator.trace.phases_seen()
        assert CCPhase.VALUE_DISCOVERY in phases
        assert CCPhase.DECISION in phases
        assert CCPhase.FT_AGREEMENT not in phases

    def test_3pc_trace_includes_ft_agreement(self, cluster):
        result = run_commit(cluster, protocol="3pc")
        phases = result.coordinator.trace.phases_seen()
        assert CCPhase.FT_AGREEMENT in phases

    def test_3pc_termination_trace_has_leader_election(self, cluster):
        result = run_commit(cluster, protocol="3pc", crash_after="votes")
        recovery = [c for c in result.cohorts if c.is_recovery_coordinator]
        assert len(recovery) == 1
        assert CCPhase.LEADER_ELECTION in recovery[0].trace.phases_seen()
