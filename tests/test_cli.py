"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "paxos" in out and "tendermint" in out

    @pytest.mark.parametrize("protocol", ["paxos", "raft", "pbft",
                                          "tendermint", "ben-or",
                                          "chandra-toueg", "hotstuff"])
    def test_run_each_protocol(self, protocol, capsys):
        assert main(["run", protocol, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert protocol in out
        assert "measured messages" in out

    def test_run_unknown_protocol(self, capsys):
        assert main(["run", "carrier-pigeon"]) == 1
        assert "unknown" in capsys.readouterr().out

    def test_kv(self, capsys):
        assert main(["kv", "--protocol", "multi-paxos"]) == 0
        out = capsys.readouterr().out
        assert "consistent: True" in out
        assert "greeting='hello'" in out

    def test_mine(self, capsys):
        assert main(["mine", "--duration", "2000"]) == 0
        out = capsys.readouterr().out
        assert "fork-rate" in out and "m0" in out

    def test_deterministic_across_invocations(self, capsys):
        main(["run", "paxos", "--seed", "7"])
        first = capsys.readouterr().out
        main(["run", "paxos", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second
