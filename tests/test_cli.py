"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "paxos" in out and "tendermint" in out

    @pytest.mark.parametrize("protocol", ["paxos", "raft", "pbft",
                                          "tendermint", "ben-or",
                                          "chandra-toueg", "hotstuff"])
    def test_run_each_protocol(self, protocol, capsys):
        assert main(["run", protocol, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert protocol in out
        assert "measured messages" in out

    def test_run_unknown_protocol(self, capsys):
        assert main(["run", "carrier-pigeon"]) == 1
        assert "unknown" in capsys.readouterr().out

    def test_profile_prints_hot_call_sites(self, capsys):
        assert main(["profile", "paxos", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out  # pstats table, sorted as promised
        assert "profiled:" in out and "events" in out

    def test_profile_with_telemetry(self, capsys):
        assert main(["profile", "paxos", "--telemetry", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out

    def test_profile_unknown_protocol(self, capsys):
        assert main(["profile", "carrier-pigeon"]) == 1

    def test_kv(self, capsys):
        assert main(["kv", "--protocol", "multi-paxos"]) == 0
        out = capsys.readouterr().out
        assert "consistent: True" in out
        assert "greeting='hello'" in out

    def test_mine(self, capsys):
        assert main(["mine", "--duration", "2000"]) == 0
        out = capsys.readouterr().out
        assert "fork-rate" in out and "m0" in out

    def test_deterministic_across_invocations(self, capsys):
        main(["run", "paxos", "--seed", "7"])
        first = capsys.readouterr().out
        main(["run", "paxos", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second

    def test_table_works_from_any_cwd(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "paxos" in out and "pbft" in out

    def test_experiments_hints_when_artifacts_missing(self, tmp_path,
                                                      monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["experiments"]) == 1
        out = capsys.readouterr().out
        assert "missing" in out
        assert "test_bench_paxos.py" in out
        assert "pytest benchmarks/" in out

    def test_run_help_mentions_trace(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "trace" in out


class TestTraceCli:
    def test_trace_paxos_renders_message_flow(self, capsys):
        assert main(["trace", "paxos", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        # The paper's figure, reconstructed from the run: all three
        # phases, arrows between columns, and 2f+1 acceptor columns.
        assert "phase: prepare" in out
        assert "phase: accept" in out
        assert "phase: decide" in out
        assert "o---" in out
        assert "a0" in out and "a4" in out
        assert "trace:" in out

    def test_trace_unknown_protocol(self, capsys):
        assert main(["trace", "smoke-signals"]) == 1
        assert "unknown" in capsys.readouterr().out

    def test_trace_jsonl_export(self, tmp_path, capsys):
        import json
        path = tmp_path / "paxos.jsonl"
        assert main(["trace", "paxos", "--jsonl", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert len(lines) > 0
        first = json.loads(lines[0])
        assert {"seq", "time", "kind", "node", "lamport"} <= set(first)

    def test_trace_same_seed_byte_identical_jsonl(self, tmp_path, capsys):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(["trace", "paxos", "--seed", "0",
                         "--jsonl", str(path)]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_trace_limit_caps_rows(self, capsys):
        assert main(["trace", "paxos", "--limit", "5"]) == 0
        assert "more events not shown" in capsys.readouterr().out

    @pytest.mark.parametrize("protocol", ["pbft", "raft", "hotstuff"])
    def test_trace_other_protocols(self, protocol, capsys):
        assert main(["trace", protocol, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "o---" in out


class TestCheckCli:
    """The ``repro check`` exit-code contract: 0 clean, 1 anomalies,
    2 usage errors."""

    def test_clean_run_exits_zero(self, capsys):
        assert main(["check", "pbft", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "conformance: pbft" in out
        assert "PASS" in out

    def test_injected_fault_exits_one_and_names_the_monitor(self, capsys):
        assert main(["check", "pbft", "--seed", "0",
                     "--faults", "equivocate"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "equivocation" in out
        assert "r0" in out  # the offending primary, by name

    def test_json_export(self, tmp_path, capsys):
        import json
        path = tmp_path / "report.json"
        assert main(["check", "raft", "--seed", "0",
                     "--json", str(path)]) == 0
        capsys.readouterr()
        report = json.loads(path.read_text())
        assert report["protocol"] == "raft"
        assert report["ok"] is True

    def test_missing_protocol_is_usage_error(self, capsys):
        assert main(["check"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_protocol_is_usage_error(self, capsys):
        assert main(["check", "smoke-signals"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_unsupported_fault_is_usage_error(self, capsys):
        assert main(["check", "paxos", "--faults", "equivocate"]) == 2
        out = capsys.readouterr().out
        assert "fault" in out

    def test_check_all_covers_the_table(self, capsys):
        assert main(["check", "--all", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        for protocol in ("paxos", "pbft", "tendermint", "pow"):
            assert "conformance: %s" % protocol in out
