"""Tests for Pease–Shostak–Lamport interactive consistency and OM(m):
the 3f+1 lower bound, including the paper's worked N=4 and N=3 cases."""

import pytest

from repro.net import SynchronousModel
from repro.protocols.interactive_consistency import (
    UNKNOWN,
    majority,
    om_decide,
    om_satisfies_ic,
    run_interactive_consistency,
)


@pytest.fixture
def ic_cluster(make_cluster):
    return make_cluster(seed=0, delivery=SynchronousModel(0.5))


class TestMajority:
    def test_strict_majority(self):
        assert majority([1, 1, 2]) == 1
        assert majority([1, 2]) == UNKNOWN
        assert majority([1]) == 1
        assert majority([]) == UNKNOWN
        assert majority([1, 2, 3]) == UNKNOWN
        assert majority([2, 2, 2, 1, 1]) == 2


class TestWorkedExamples:
    def test_case_one_n4_f1(self, ic_cluster):
        """The slides' Case I: honest processes compute (1,2,UNKNOWN,4),
        identically."""
        result = run_interactive_consistency(ic_cluster, n=4, faulty=(2,))
        assert result.agreement()
        assert result.validity()
        assert result.honest_results()[0] == (1, 2, UNKNOWN, 4)

    def test_case_two_n3_f1_all_unknown(self, ic_cluster):
        """Case II: below 3f+1 every entry ties out to UNKNOWN."""
        result = run_interactive_consistency(ic_cluster, n=3, faulty=(2,))
        for vector in result.honest_results():
            assert vector == (UNKNOWN, UNKNOWN, UNKNOWN)
        assert not result.validity()

    def test_no_faults_full_vector(self, ic_cluster):
        result = run_interactive_consistency(ic_cluster, n=4, faulty=())
        assert result.honest_results()[0] == (1, 2, 3, 4)
        assert result.agreement() and result.validity()

    def test_faulty_position_varies(self, make_cluster):
        for position in range(4):
            cluster = make_cluster(seed=1, delivery=SynchronousModel(0.5))
            result = run_interactive_consistency(cluster, n=4,
                                                 faulty=(position,))
            assert result.agreement(), position
            assert result.validity(), position
            vector = result.honest_results()[0]
            assert vector[position] == UNKNOWN

    def test_larger_clusters_one_fault(self, make_cluster):
        cluster = make_cluster(seed=2, delivery=SynchronousModel(0.5))
        result = run_interactive_consistency(cluster, n=7, faulty=(3,))
        assert result.agreement() and result.validity()


class TestOmRecursive:
    def test_bound_holds_at_3f_plus_1(self):
        assert om_satisfies_ic(1, 4, {2})
        assert om_satisfies_ic(1, 4, {0})  # faulty commander
        assert om_satisfies_ic(2, 7, {1, 4})

    def test_bound_fails_below_3f_plus_1(self):
        assert not om_satisfies_ic(1, 3, {2})
        assert not om_satisfies_ic(2, 6, {1, 4})

    def test_loyal_commander_value_preserved(self):
        decisions = om_decide(1, "RETREAT", 4, {3})
        assert set(decisions.values()) == {"RETREAT"}

    def test_faulty_commander_still_agreement(self):
        decisions = om_decide(1, "whatever", 4, {0})
        values = set(decisions.values())
        assert len(values) == 1  # IC1 even when the source lies

    def test_om0_trusts_sender(self):
        decisions = om_decide(0, "GO", 4, set())
        assert set(decisions.values()) == {"GO"}

    def test_no_traitors_any_m(self):
        for m in (0, 1, 2):
            assert om_satisfies_ic(m, 3 * m + 1 if m else 4, set())
