"""Tests for PBFT: the three phases, quorum arithmetic, Byzantine
primaries, view change, and garbage collection."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.protocols.pbft import (
    EquivocatingPrimary,
    PbftReplica,
    SilentPrimary,
    run_pbft,
)
from repro.trace import (
    assert_quorum_before_decide,
    assert_unique_leader_per_view,
)


class TestConfiguration:
    def test_rejects_too_few_replicas(self, cluster):
        with pytest.raises(ConfigurationError):
            PbftReplica(cluster.sim, cluster.network, "r0",
                        ["r0", "r1", "r2"], f=1)

    def test_quorum_is_2f_plus_1(self, cluster):
        names = ["r%d" % i for i in range(7)]
        replica = PbftReplica(cluster.sim, cluster.network, "r0", names, f=2)
        assert replica.quorum == 5


class TestNormalCase:
    def test_clients_complete_logs_consistent(self, make_cluster):
        cluster = make_cluster(trace=True)
        result = run_pbft(cluster, f=1, n_clients=2, operations_per_client=4)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()
        # Causal invariant: every execute milestone must be causally
        # preceded by commit messages for that sequence number from 2f
        # distinct peers (the replica's own commit never hits the wire).
        assert_quorum_before_decide(cluster.trace, "execute", "pbftcommit",
                                    quorum=2, link_keys=("seq",))

    def test_three_phase_message_types_present(self, cluster):
        run_pbft(cluster, f=1, n_clients=1, operations_per_client=2)
        by_type = cluster.metrics.by_type
        assert by_type["preprepare"] > 0
        assert by_type["pbftprepare"] > 0
        assert by_type["pbftcommit"] > 0

    def test_quadratic_message_complexity(self, make_cluster):
        counts = {}
        for f in (1, 2, 3):
            cluster = make_cluster(seed=1)
            run_pbft(cluster, f=f, n_clients=1, operations_per_client=2)
            n = 3 * f + 1
            counts[n] = cluster.metrics.by_type["pbftprepare"] + \
                cluster.metrics.by_type["pbftcommit"]
        # prepare+commit grow ~n² (each replica broadcasts to n−1 others).
        assert counts[10] > 4 * counts[4]

    def test_f2_cluster(self, make_cluster):
        result = run_pbft(make_cluster(seed=5), f=2, n_clients=1,
                          operations_per_client=3)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()

    def test_execution_strictly_in_sequence_order(self, cluster):
        result = run_pbft(cluster, f=1, n_clients=2, operations_per_client=3)
        for replica in result.honest_replicas():
            seqs = [seq for seq, _op in replica.executed_requests]
            assert seqs == sorted(seqs)


class TestCrashedPrimary:
    def test_view_change_restores_liveness(self, make_cluster):
        for seed in (2, 6):
            cluster = make_cluster(seed=seed, trace=True)
            result = run_pbft(cluster, f=1, n_clients=1,
                              operations_per_client=3, crash_primary_at=5.0)
            assert all(c.done for c in result.clients), seed
            assert result.logs_consistent(), seed
            live_views = [r.view for r in result.replicas if not r.crashed]
            assert all(v >= 1 for v in live_views)
            # Across the whole run, at most one replica ever became
            # primary for any given view.
            assert_unique_leader_per_view(cluster.trace, "view")

    def test_committed_requests_survive_view_change(self, make_cluster):
        # The prepared-certificate transfer: nothing executed before the
        # crash may be reassigned a different request.
        for seed in range(2, 10):
            result = run_pbft(make_cluster(seed=seed), f=1, n_clients=1,
                              operations_per_client=3, crash_primary_at=5.0)
            assert result.logs_consistent(), seed


class TestByzantinePrimaries:
    def test_silent_primary_triggers_view_change(self, make_cluster):
        result = run_pbft(make_cluster(seed=3), f=1, n_clients=1,
                          operations_per_client=2,
                          primary_class=SilentPrimary)
        assert all(c.done for c in result.clients)
        backups = result.replicas[1:]
        assert all(r.view >= 1 for r in backups)

    def test_equivocating_primary_cannot_split_execution(self, make_cluster):
        """The attack PBFT's prepare phase exists for: same sequence
        number, different requests.  No two honest replicas may execute
        different operations at one sequence number."""
        for seed in (4, 5, 6):
            result = run_pbft(make_cluster(seed=seed), f=1, n_clients=1,
                              operations_per_client=2,
                              primary_class=EquivocatingPrimary)
            assert result.logs_consistent(), seed
            assert all(c.done for c in result.clients), seed

    def test_client_needs_f_plus_1_matching_replies(self, cluster):
        result = run_pbft(cluster, f=1, n_clients=1, operations_per_client=1)
        client = result.clients[0]
        assert client.f + 1 == 2
        assert client.done


class TestGarbageCollection:
    def test_checkpointing_truncates_log(self, make_cluster):
        result = run_pbft(make_cluster(seed=6), f=1, n_clients=1,
                          operations_per_client=20, checkpoint_interval=4)
        assert all(c.done for c in result.clients)
        stable = [r.last_stable_seq for r in result.replicas]
        assert max(stable) >= 15
        # Slots at or below the stable checkpoint were discarded.
        for replica in result.replicas:
            assert all(seq > replica.last_stable_seq for seq in replica.slots)

    def test_checkpoint_needs_quorum_of_matching_digests(self, cluster):
        names = ["r%d" % i for i in range(4)]
        replicas = cluster.add_nodes(PbftReplica, names, names, 1)
        replica = replicas[0]
        replica._record_checkpoint_vote(3, "digest-a", "r1")
        replica._record_checkpoint_vote(3, "digest-b", "r2")
        replica._record_checkpoint_vote(3, "digest-a", "r3")
        assert replica.last_stable_seq == -1  # only 2 matching, need 3
        replica._record_checkpoint_vote(3, "digest-a", "r0")
        assert replica.last_stable_seq == 3


class TestClientAuthentication:
    """Client signatures: the defence against request fabrication."""

    def test_forging_primary_succeeds_without_auth(self, make_cluster):
        # The vulnerability demo: unauthenticated clusters can be fed
        # fabricated operations by a Byzantine primary.
        from repro.protocols.pbft import ForgingPrimary
        result = run_pbft(make_cluster(seed=4), f=1, n_clients=1,
                          operations_per_client=1,
                          primary_class=ForgingPrimary, horizon=400.0)
        forged = any(
            op == ("forged-op",)
            for replica in result.honest_replicas()
            for _seq, op in replica.executed_requests
        )
        assert forged

    def test_forging_primary_defeated_by_signatures(self, make_cluster):
        from repro.protocols.pbft import ForgingPrimary
        for seed in (4, 7):
            result = run_pbft(make_cluster(seed=seed), f=1, n_clients=1,
                              operations_per_client=1,
                              primary_class=ForgingPrimary,
                              authenticate_clients=True, horizon=800.0)
            forged = any(
                op == ("forged-op",)
                for replica in result.honest_replicas()
                for _seq, op in replica.executed_requests
            )
            assert not forged, seed
            assert result.clients[0].done, seed
            assert result.logs_consistent(), seed

    def test_honest_cluster_with_auth_still_works(self, make_cluster):
        result = run_pbft(make_cluster(seed=1), f=1, n_clients=2,
                          operations_per_client=3,
                          authenticate_clients=True)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()

    def test_unsigned_request_refused_when_auth_on(self, make_cluster):
        from repro.protocols.pbft import PbftRequest
        cluster = make_cluster(seed=1)
        names = ["r%d" % i for i in range(4)]
        replicas = cluster.add_nodes(PbftReplica, names, names, 1,
                                     keys=cluster.keys)
        primary = replicas[0]
        primary.deliver(PbftRequest(("put", "x", 1), 0.0, "mallory"), "r1")
        cluster.run(until=50.0)
        assert primary.next_seq == 0  # nothing was ordered
