"""Unit tests for the simulated crypto substrate."""

import pytest

from repro.crypto import (
    HASH_SPACE,
    KeyRegistry,
    MerkleTree,
    ThresholdScheme,
    UsigAuthority,
    UsigLogChecker,
    canonical_bytes,
    sha256_hex,
    sha256_int,
)


class TestHashing:
    def test_deterministic(self):
        assert sha256_hex("a", 1, [2, 3]) == sha256_hex("a", 1, [2, 3])

    def test_type_tags_distinguish(self):
        assert sha256_hex("12") != sha256_hex(12)
        assert sha256_hex([1, 2]) != sha256_hex((1, "2"))
        assert sha256_hex(True) != sha256_hex(1)
        assert sha256_hex(None) != sha256_hex("")

    def test_dict_order_independent(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_nested_containers(self):
        value = {"k": [1, (2, 3)], "s": "x"}
        assert sha256_hex(value) == sha256_hex({"s": "x", "k": [1, (2, 3)]})

    def test_sha256_int_in_range(self):
        value = sha256_int("block")
        assert 0 <= value < HASH_SPACE

    def test_uncanonicalisable_raises(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())


class TestSignatures:
    def test_sign_verify_roundtrip(self):
        keys = KeyRegistry()
        sig = keys.signer("alice").sign("msg", 42)
        assert keys.verify(sig, "msg", 42)

    def test_wrong_content_fails(self):
        keys = KeyRegistry()
        sig = keys.signer("alice").sign("msg", 42)
        assert not keys.verify(sig, "msg", 43)

    def test_forgery_fails(self):
        keys = KeyRegistry()
        forged = keys.forge("alice", "msg")
        assert not keys.verify(forged, "msg")

    def test_cross_signer_fails(self):
        keys = KeyRegistry()
        sig = keys.signer("alice").sign("msg")
        bob_claim = type(sig)("bob", sig.tag)
        assert not keys.verify(bob_claim, "msg")

    def test_different_registries_incompatible(self):
        sig = KeyRegistry(seed=b"one").signer("alice").sign("msg")
        assert not KeyRegistry(seed=b"two").verify(sig, "msg")

    def test_non_signature_rejected(self):
        assert not KeyRegistry().verify("not-a-signature", "msg")


class TestThreshold:
    def setup_method(self):
        self.members = ["r0", "r1", "r2", "r3"]
        self.scheme = ThresholdScheme(3, self.members)

    def test_combine_and_verify(self):
        shares = [self.scheme.sign_share(m, "v") for m in self.members[:3]]
        qc = self.scheme.combine(shares, "v")
        assert self.scheme.verify(qc, "v")
        assert not self.scheme.verify(qc, "w")

    def test_too_few_shares_rejected(self):
        shares = [self.scheme.sign_share(m, "v") for m in self.members[:2]]
        with pytest.raises(ValueError):
            self.scheme.combine(shares, "v")

    def test_duplicate_signers_do_not_count_twice(self):
        share = self.scheme.sign_share("r0", "v")
        with pytest.raises(ValueError):
            self.scheme.combine([share, share, share], "v")

    def test_invalid_shares_filtered(self):
        good = [self.scheme.sign_share(m, "v") for m in self.members[:2]]
        bad = self.scheme.sign_share("r3", "DIFFERENT")
        with pytest.raises(ValueError):
            self.scheme.combine(good + [bad], "v")

    def test_non_member_cannot_sign(self):
        with pytest.raises(KeyError):
            self.scheme.sign_share("intruder", "v")

    def test_combined_is_constant_size(self):
        shares = [self.scheme.sign_share(m, "v") for m in self.members]
        qc = self.scheme.combine(shares, "v")
        assert qc.size_estimate() == 32

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ThresholdScheme(5, ["a", "b"])

    def test_share_verification(self):
        share = self.scheme.sign_share("r0", "v")
        assert self.scheme.verify_share(share, "v")
        assert not self.scheme.verify_share(share, "w")


class TestUsig:
    def test_counters_increment(self):
        authority = UsigAuthority()
        usig = authority.provision("r0")
        ui1 = usig.create_ui("a")
        ui2 = usig.create_ui("b")
        assert (ui1.counter, ui2.counter) == (1, 2)

    def test_cross_replica_verification(self):
        authority = UsigAuthority()
        ui = authority.provision("r0").create_ui("msg")
        assert authority.provision("r1").verify_ui(ui, "msg")
        assert not authority.provision("r1").verify_ui(ui, "other")

    def test_reprovision_keeps_counter(self):
        authority = UsigAuthority()
        usig = authority.provision("r0")
        usig.create_ui("x")
        again = authority.provision("r0")
        assert again is usig and again.counter == 1

    def test_equivocation_impossible_by_construction(self):
        # Two UIs from one USIG always carry distinct counters — the
        # property MinBFT's 2f+1 bound rests on.
        usig = UsigAuthority().provision("r0")
        uis = [usig.create_ui("same-message") for _ in range(10)]
        counters = [ui.counter for ui in uis]
        assert counters == sorted(set(counters))

    def test_log_checker_enforces_order(self):
        authority = UsigAuthority()
        sender = authority.provision("r0")
        receiver = authority.provision("r1")
        checker = UsigLogChecker(receiver, "r0")
        ui1 = sender.create_ui("a")
        ui2 = sender.create_ui("b")
        assert not checker.accept(ui2, "b")  # gap
        assert checker.accept(ui1, "a")
        assert checker.accept(ui2, "b")
        assert not checker.accept(ui2, "b")  # replay

    def test_log_checker_rejects_wrong_issuer(self):
        authority = UsigAuthority()
        other = authority.provision("r2").create_ui("x")
        checker = UsigLogChecker(authority.provision("r1"), "r0")
        assert not checker.accept(other, "x")


class TestMerkle:
    def test_proofs_verify(self):
        leaves = ["tx%d" % i for i in range(7)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert MerkleTree.verify(leaf, tree.proof(index), tree.root)

    def test_wrong_leaf_fails(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        assert not MerkleTree.verify("z", tree.proof(1), tree.root)

    def test_root_changes_with_any_leaf(self):
        base = MerkleTree(["a", "b", "c"]).root
        assert MerkleTree(["a", "b", "x"]).root != base
        assert MerkleTree(["a", "b"]).root != base

    def test_single_leaf(self):
        tree = MerkleTree(["only"])
        assert MerkleTree.verify("only", tree.proof(0), tree.root)
        assert tree.proof(0) == []

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_out_of_range_proof(self):
        with pytest.raises(IndexError):
            MerkleTree(["a"]).proof(5)

    def test_order_matters(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["b", "a"]).root
