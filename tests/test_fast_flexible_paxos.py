"""Tests for Fast Paxos (fast rounds, collisions) and Flexible Paxos
(generalized quorums, grid quorums, the unsafe counterexample)."""

import pytest

from repro.net import SynchronousModel, UniformDelayModel
from repro.protocols.fast_paxos import FastPaxosLeader, run_fast_paxos
from repro.protocols.flexible_paxos import (
    UnsafeDisjointQuorum,
    demonstrate_unsafe_quorums,
    run_flexible_paxos,
    run_grid_paxos,
)


class TestFastRound:
    def test_two_message_delays(self, make_cluster):
        cluster = make_cluster(seed=1, delivery=SynchronousModel(1.0))
        result = run_fast_paxos(cluster, f=1, values=("X",))
        assert result.decided == "X"
        assert not result.collision
        # client -> replicas (1) + replicas -> leader (1) = 2 delays,
        # versus Basic Paxos's 3 from client request to leader learning.
        assert result.learn_delay() == pytest.approx(2.0)

    def test_requires_3f_plus_1(self, cluster):
        with pytest.raises(ValueError):
            FastPaxosLeader(cluster.sim, cluster.network, "leader",
                            ["r0", "r1", "r2"], f=1)

    def test_value_raced_ahead_of_any_message_buffers(self, make_cluster):
        # Client value may beat the leader's Any message; must not be lost.
        for seed in range(6):
            cluster = make_cluster(seed=seed,
                                   delivery=UniformDelayModel(0.2, 3.0))
            result = run_fast_paxos(cluster, f=1, values=("X",),
                                    client_offsets=[0.0])
            assert result.decided == "X", seed


class TestCollision:
    def test_racing_clients_always_decide_exactly_one(self, make_cluster):
        collisions = 0
        for seed in range(20):
            cluster = make_cluster(seed=seed,
                                   delivery=UniformDelayModel(0.5, 1.5))
            result = run_fast_paxos(cluster, f=1, values=("X", "Y"))
            assert result.decided in ("X", "Y"), seed
            collisions += result.collision
        assert collisions >= 3  # the race does produce real collisions

    def test_collision_recovery_costs_extra_phases(self, make_cluster):
        fast_delays, classic_delays = [], []
        for seed in range(20):
            cluster = make_cluster(seed=seed,
                                   delivery=SynchronousModel(1.0))
            # Stagger breaks ties deterministically; jitter seeds vary which
            # replica sees which value first.
            cluster2 = make_cluster(seed=seed,
                                    delivery=UniformDelayModel(0.9, 1.1))
            result = run_fast_paxos(cluster2, f=1, values=("X", "Y"))
            if result.collision:
                classic_delays.append(result.learn_delay())
            else:
                fast_delays.append(result.learn_delay())
        if fast_delays and classic_delays:
            assert min(classic_delays) > max(fast_delays) * 1.3

    def test_possibly_chosen_value_repropsed(self, make_cluster):
        """If f+1 replicas reported v, a fast quorum might have chosen v;
        recovery must re-propose it."""
        for seed in range(15):
            cluster = make_cluster(seed=seed,
                                   delivery=UniformDelayModel(0.5, 1.5))
            result = run_fast_paxos(cluster, f=1, values=("X", "Y"))
            if not result.collision:
                continue
            votes = {}
            for value in result.leader.fast_votes.values():
                votes[value] = votes.get(value, 0) + 1
            candidates = {v for v, c in votes.items() if c >= 2}
            if len(candidates) == 1:
                assert result.decided in candidates


class TestFlexiblePaxos:
    def test_asymmetric_quorums_decide(self, cluster):
        result = run_flexible_paxos(cluster, n_acceptors=6, q1=4, q2=3,
                                    proposals=("X",))
        assert result.value == "X"

    def test_small_replication_quorum_survives_more_crashes(self, make_cluster):
        # |Q2| = 2 with |Q1| = 5 on n=6: replication tolerates 4 crashes
        # (as long as no new election is needed).
        cluster = make_cluster(seed=1)
        result = run_flexible_paxos(cluster, n_acceptors=6, q1=5, q2=2,
                                    proposals=("X",))
        assert result.value == "X"

    def test_replication_survives_beyond_majority_crashes(self, make_cluster):
        """The FPaxos payoff: with |Q2|=2 on n=6, replication tolerates
        n−|Q2|=4 crashes — a majority system dies at 3.  (Phase 1 ran
        while enough nodes were up; steady-state replication continues.)
        Here 4 of 6 acceptors crash and q1=2/q2=... can't re-elect, so we
        instead verify the quorum predicates directly, which is what the
        claim is about."""
        from repro.core import FlexibleQuorum, MajorityQuorum
        members = ["a%d" % i for i in range(6)]
        flexible = FlexibleQuorum(members, 5, 2)
        majority = MajorityQuorum(members)
        survivors = set(members[:2])  # 4 crashed
        assert flexible.is_phase2_quorum(survivors)
        assert not majority.is_phase2_quorum(survivors)

    def test_condition_is_tight(self, make_cluster):
        # |Q1| + |Q2| = n is already rejected by the constructor — the
        # exact boundary of the generalized quorum condition.
        from repro.core import FlexibleQuorum
        members = ["a%d" % i for i in range(6)]
        FlexibleQuorum(members, 4, 3)  # 7 > 6: fine
        with pytest.raises(ValueError):
            FlexibleQuorum(members, 3, 3)


class TestGridQuorums:
    def test_grid_paxos_decides(self, make_cluster):
        outcome = run_grid_paxos(make_cluster(seed=2), rows=3, cols=4,
                                 proposals=("G",))
        assert outcome.result.value == "G"

    def test_replication_quorum_below_majority(self, make_cluster):
        outcome = run_grid_paxos(make_cluster(seed=2), rows=4, cols=3,
                                 proposals=("G",))
        majority = outcome.grid.n // 2 + 1
        assert outcome.grid.phase2_size() < majority


class TestUnsafeQuorums:
    def test_nonintersecting_quorums_violate_safety(self, make_cluster):
        chosen = demonstrate_unsafe_quorums(make_cluster(seed=3))
        assert len(chosen) == 2  # two values chosen: safety broken

    def test_unsafe_class_refuses_intersecting_config(self):
        with pytest.raises(ValueError):
            UnsafeDisjointQuorum(list("abcde"), 3)  # 2*3 > 5: would be safe
