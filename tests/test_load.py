"""Unit tests for the load subsystem's building blocks: arrival
processes, the hot-key storm, SLO-grade latency accounting, knee
detection, and the finite-ingress delivery model that makes saturation
observable."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load import (
    DiurnalArrivals,
    HotKeyStorm,
    LatencyAccountant,
    PoissonArrivals,
    ZipfKeys,
    detect_knee,
)
from repro.net.delivery import QueuedDelayModel

# -- arrival processes -------------------------------------------------------


class TestPoissonArrivals:
    def test_same_seed_streams_identical(self):
        process = PoissonArrivals(2.0)
        a = list(process.times(random.Random(7), 50.0))
        b = list(process.times(random.Random(7), 50.0))
        assert a == b and a

    def test_rate_is_constant(self):
        process = PoissonArrivals(3.0)
        assert process.rate_at(0.0) == process.rate_at(1e6) == 3.0

    def test_mean_rate_close_to_nominal(self):
        process = PoissonArrivals(5.0)
        count = len(list(process.times(random.Random(1), 2000.0)))
        assert count == pytest.approx(10000, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestDiurnalArrivals:
    def test_rate_swings_around_mean(self):
        process = DiurnalArrivals(4.0, amplitude=0.5, period=100.0)
        assert process.rate_at(25.0) == pytest.approx(6.0)   # peak
        assert process.rate_at(75.0) == pytest.approx(2.0)   # trough
        assert process.rate_at(0.0) == pytest.approx(4.0)

    def test_same_seed_streams_identical(self):
        process = DiurnalArrivals(2.0, period=40.0)
        a = list(process.times(random.Random(3), 80.0))
        b = list(process.times(random.Random(3), 80.0))
        assert a == b and a

    def test_thinning_tracks_the_curve(self):
        # More arrivals land in the day half-period than the night one.
        process = DiurnalArrivals(4.0, amplitude=0.8, period=100.0)
        times = list(process.times(random.Random(2), 1000.0))
        day = sum(1 for t in times if (t % 100.0) < 50.0)
        night = len(times) - day
        assert day > 1.5 * night

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(0.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, period=0.0)


@settings(max_examples=30, deadline=None)
@given(rate=st.floats(min_value=0.1, max_value=20.0),
       duration=st.floats(min_value=1.0, max_value=200.0),
       start=st.floats(min_value=0.0, max_value=1000.0),
       seed=st.integers(min_value=0, max_value=2**31))
def test_poisson_times_strictly_increasing_and_bounded(rate, duration,
                                                       start, seed):
    times = list(PoissonArrivals(rate).times(random.Random(seed),
                                             duration, start=start))
    assert all(a < b for a, b in zip(times, times[1:]))
    assert all(start < t <= start + duration for t in times)


@settings(max_examples=30, deadline=None)
@given(rate=st.floats(min_value=0.1, max_value=20.0),
       amplitude=st.floats(min_value=0.0, max_value=0.95),
       duration=st.floats(min_value=1.0, max_value=200.0),
       seed=st.integers(min_value=0, max_value=2**31))
def test_diurnal_times_strictly_increasing_and_bounded(rate, amplitude,
                                                       duration, seed):
    process = DiurnalArrivals(rate, amplitude=amplitude, period=50.0)
    times = list(process.times(random.Random(seed), duration))
    assert all(a < b for a, b in zip(times, times[1:]))
    assert all(0.0 < t <= duration for t in times)


class TestHotKeyStorm:
    def _storm(self, now, fraction=1.0):
        keys = ZipfKeys(100, s=0.0)
        return HotKeyStorm(keys, clock=lambda: now[0], start=10.0,
                           duration=5.0, fraction=fraction, hot_rank=3)

    def test_inactive_outside_window(self):
        now = [0.0]
        storm = self._storm(now)
        assert not storm.active()
        now[0] = 12.0
        assert storm.active()
        now[0] = 15.0  # end is exclusive
        assert not storm.active()

    def test_full_fraction_pins_the_hot_key(self):
        now = [12.0]
        storm = self._storm(now, fraction=1.0)
        rng = random.Random(0)
        assert all(storm.sample_rank(rng) == 3 for _ in range(50))
        assert storm.sample(rng) == "key-3"

    def test_outside_window_delegates(self):
        now = [0.0]
        storm = self._storm(now)
        ranks = {storm.sample_rank(random.Random(i)) for i in range(40)}
        assert len(ranks) > 5  # uniform draws, not pinned

    def test_validation(self):
        with pytest.raises(ValueError):
            self._storm([0.0], fraction=0.0)


# -- SLO accounting ----------------------------------------------------------


class TestLatencyAccountant:
    def test_counts_and_rates(self):
        acc = LatencyAccountant(window=10.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            acc.arrive(t)
        acc.complete(1.0, 2.0)
        acc.complete(2.0, 4.0)
        acc.abandon(3.0)
        report = acc.report(duration=20.0)
        assert report["offered"] == 4
        assert report["completed"] == 2
        assert report["abandoned"] == 1
        assert report["offered_rate"] == pytest.approx(0.2)
        assert report["completed_rate"] == pytest.approx(0.1)
        # No SLO: goodput is completion rate, and no slo block appears.
        assert report["goodput_rate"] == report["completed_rate"]
        assert "slo" not in report

    def test_latency_runs_from_intended_arrival(self):
        # The coordinated-omission contract: a request intended at t=0
        # but finished at t=50 is a 50-unit latency even if the injector
        # only managed to *send* it at t=49.
        acc = LatencyAccountant()
        acc.arrive(0.0)
        acc.complete(0.0, 50.0)
        assert acc.latency.summary()["max"] == pytest.approx(50.0)

    def test_completion_before_intended_rejected(self):
        acc = LatencyAccountant()
        with pytest.raises(ValueError):
            acc.complete(10.0, 9.0)

    def test_slo_violations_and_goodput(self):
        acc = LatencyAccountant(slo=5.0)
        for t in range(4):
            acc.arrive(float(t))
        acc.complete(0.0, 1.0)    # fast: inside the objective
        acc.complete(1.0, 20.0)   # slow: violation
        acc.abandon(2.0)          # never completed: violation
        report = acc.report(duration=10.0)
        assert report["slo"]["violations"] == 2
        assert report["slo"]["violation_ratio"] == pytest.approx(0.5)
        # Goodput counts only completions inside the objective.
        assert report["goodput_rate"] == pytest.approx(0.1)

    def test_windows_keyed_by_intended_time(self):
        acc = LatencyAccountant(window=10.0)
        acc.arrive(5.0)
        acc.arrive(15.0)
        acc.complete(5.0, 6.0)
        acc.complete(15.0, 18.0)
        windows = acc.report(duration=20.0)["windows"]
        assert [w["start"] for w in windows] == [0.0, 10.0]
        assert windows[0]["count"] == windows[1]["count"] == 1

    def test_window_validation(self):
        with pytest.raises(ValueError):
            LatencyAccountant(window=0.0)


class TestDetectKnee:
    @staticmethod
    def _point(rate, offered=100, completed=100, p99=2.0):
        return {"rate": rate, "offered": offered, "completed": completed,
                "completed_rate": completed / 100.0, "p99": p99}

    def test_empty_and_never_saturated(self):
        assert detect_knee([]) is None
        points = [self._point(r) for r in (1.0, 2.0, 4.0)]
        assert detect_knee(points) is None

    def test_goodput_collapse_marks_the_knee(self):
        points = [self._point(1.0), self._point(2.0),
                  self._point(4.0, completed=60)]
        assert detect_knee(points) == 2.0

    def test_p99_blowup_marks_the_knee(self):
        points = [self._point(1.0, p99=2.0), self._point(2.0, p99=3.0),
                  self._point(4.0, p99=10.0)]
        assert detect_knee(points) == 2.0

    def test_saturated_from_the_first_point_has_no_knee(self):
        points = [self._point(4.0, completed=10), self._point(8.0)]
        assert detect_knee(points) is None

    def test_realised_offered_count_is_the_denominator(self):
        # Poisson variance: only 80 of the nominal 100 requests arrived,
        # all completed — not saturation.
        points = [self._point(1.0),
                  self._point(2.0, offered=80, completed=80)]
        assert detect_knee(points) is None


# -- finite-ingress delivery -------------------------------------------------


class TestQueuedDelayModel:
    def test_backlog_builds_at_one_destination(self):
        model = QueuedDelayModel(low=1.0, high=1.0, service=0.5)
        rng = random.Random(0)
        delays = [model.delay(rng, "src", "dst", 0.0) for _ in range(4)]
        # Same wire delay, FIFO service: each message waits for the
        # previous one's service slot.
        assert delays == [1.5, 2.0, 2.5, 3.0]

    def test_destinations_queue_independently(self):
        model = QueuedDelayModel(low=1.0, high=1.0, service=0.5)
        rng = random.Random(0)
        model.delay(rng, "src", "a", 0.0)
        assert model.delay(rng, "src", "b", 0.0) == 1.5

    def test_server_idles_between_sparse_arrivals(self):
        model = QueuedDelayModel(low=1.0, high=1.0, service=0.5)
        rng = random.Random(0)
        assert model.delay(rng, "src", "dst", 0.0) == 1.5
        # Next message arrives long after the server freed up.
        assert model.delay(rng, "src", "dst", 100.0) == 1.5

    def test_queue_depth(self):
        model = QueuedDelayModel(low=1.0, high=1.0, service=0.5)
        rng = random.Random(0)
        for _ in range(4):
            model.delay(rng, "src", "dst", 0.0)
        assert model.queue_depth("dst", 1.0) == pytest.approx(4.0)
        assert model.queue_depth("dst", 10.0) == 0.0
        assert model.queue_depth("other", 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueuedDelayModel(service=0.0)
