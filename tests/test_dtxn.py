"""Tests for distributed transactions: 2PL + 2PC over Paxos groups."""


from repro.dtxn import DistributedKV, Transaction, TxnKVStateMachine


class TestTxnStateMachine:
    def setup_method(self):
        self.sm = TxnKVStateMachine()

    def test_lock_read_prepare_commit_cycle(self):
        self.sm.apply(("put", "a", 10))
        status, reads = self.sm.apply(("txn_lock", "t1", ("a",)))
        assert status == "ok" and reads == {"a": 10}
        assert self.sm.apply(("txn_prepare", "t1", (("a", 99),))) == "prepared"
        assert self.sm.apply(("txn_commit", "t1")) == "committed"
        assert self.sm.apply(("get", "a")) == 99
        assert self.sm.locks == {}

    def test_conflicting_lock_denied_atomically(self):
        self.sm.apply(("txn_lock", "t1", ("a",)))
        status, holder = self.sm.apply(("txn_lock", "t2", ("a", "b")))
        assert status == "conflict" and holder == "t1"
        # No partial locks: b must not be held by t2.
        assert "b" not in self.sm.locks

    def test_abort_releases_and_discards(self):
        self.sm.apply(("put", "a", 1))
        self.sm.apply(("txn_lock", "t1", ("a",)))
        self.sm.apply(("txn_prepare", "t1", (("a", 2),)))
        assert self.sm.apply(("txn_abort", "t1")) == "aborted"
        assert self.sm.apply(("get", "a")) == 1
        assert self.sm.locks == {}

    def test_prepare_without_locks_refused(self):
        assert self.sm.apply(("txn_prepare", "t1", (("a", 2),))) == "no-locks"

    def test_plain_put_refused_on_locked_key(self):
        self.sm.apply(("txn_lock", "t1", ("a",)))
        assert self.sm.apply(("put", "a", 5)) == "locked"

    def test_relock_by_same_txn_is_fine(self):
        self.sm.apply(("txn_lock", "t1", ("a",)))
        status, _reads = self.sm.apply(("txn_lock", "t1", ("a", "b")))
        assert status == "ok"


class TestDistributedKV:
    def test_single_key_roundtrip(self):
        db = DistributedKV(n_partitions=2, seed=1)
        assert db.put("x", 42) == "committed"
        assert db.get("x") == 42

    def test_cross_partition_transfer(self):
        db = DistributedKV(n_partitions=3, seed=2)
        a, b = _two_keys_in_distinct_groups(db)
        db.put(a, 100)
        db.put(b, 10)
        assert db.transfer(a, b, 40) == "committed"
        assert db.get(a) == 60 and db.get(b) == 50
        assert db.total_of([a, b]) == 110

    def test_overdraft_aborts_cleanly(self):
        db = DistributedKV(n_partitions=2, seed=3)
        db.put("poor", 5)
        db.put("rich", 100)
        assert db.transfer("poor", "rich", 50) == "aborted"
        assert db.get("poor") == 5 and db.get("rich") == 100
        # Locks were released: further work proceeds.
        assert db.transfer("rich", "poor", 50) == "committed"

    def test_concurrent_conflicting_transactions_serialize(self):
        db = DistributedKV(n_partitions=3, seed=2)
        a, b, c = _three_keys_in_distinct_groups(db)
        for key in (a, b, c):
            db.put(key, 100)

        def mk(src, dst, amount, txid):
            def update(reads):
                return {src: reads[src] - amount, dst: reads[dst] + amount}
            return Transaction(txid, (src, dst), update)

        t1, t2 = mk(a, b, 20, "txA"), mk(b, c, 30, "txB")
        db.coordinator.submit(t1)
        db.coordinator.submit(t2)
        db.cluster.run_until(lambda: t1.outcome and t2.outcome, until=4000.0)
        assert t1.outcome == "committed" and t2.outcome == "committed"
        # Serializable result: both effects applied exactly once.
        assert db.get(a) == 80 and db.get(b) == 90 and db.get(c) == 130
        assert db.total_of([a, b, c]) == 300

    def test_no_wait_records_conflicts(self):
        db = DistributedKV(n_partitions=1, seed=5)
        db.put("k", 1)

        t1 = Transaction("t1", ("k",), lambda r: {"k": r["k"] + 1})
        t2 = Transaction("t2", ("k",), lambda r: {"k": r["k"] + 10})
        db.coordinator.submit(t1)
        db.coordinator.submit(t2)
        db.cluster.run_until(lambda: t1.outcome and t2.outcome, until=4000.0)
        assert t1.outcome == "committed" and t2.outcome == "committed"
        assert db.get("k") == 12  # both increments, serialized

    def test_survives_minority_replica_crashes(self):
        db = DistributedKV(n_partitions=2, replicas_per_partition=3, seed=7)
        a, b = _two_keys_in_distinct_groups(db)
        db.put(a, 50)
        db.put(b, 50)
        db.crash_one_replica_per_partition()
        assert db.transfer(a, b, 25) == "committed"
        assert db.total_of([a, b]) == 100
        db.settle()
        assert db.check_consistency()

    def test_survives_group_leader_crash(self):
        db = DistributedKV(n_partitions=2, replicas_per_partition=3, seed=8)
        a, b = _two_keys_in_distinct_groups(db)
        db.put(a, 30)
        db.put(b, 30)
        db.crash_group_leader(db.group_of(a))
        assert db.transfer(a, b, 10) == "committed"
        assert db.get(a) == 20 and db.get(b) == 40

    def test_unreachable_participant_aborts_not_hangs(self):
        # Satellite regression: a wholly crashed participant group must
        # produce a deterministic timeout-abort, never a hung txn.
        db = DistributedKV(n_partitions=2, replicas_per_partition=3, seed=11)
        a, b = _two_keys_in_distinct_groups(db)
        db.put(a, 50)
        db.put(b, 50)
        db.crash_group(db.group_of(b))
        txn = Transaction("doomed", (a, b),
                          lambda r: {a: r[a] - 5, b: (r[b] or 0) + 5})
        db.coordinator.submit(txn)
        db.cluster.run_until(lambda: txn.outcome is not None, until=2000.0)
        assert txn.outcome == "aborted"
        assert txn.state.value == "done"
        assert db.coordinator.timeout_aborts >= 1
        # Locks on the surviving group were released: it still serves.
        assert db.run_transaction(
            (a,), lambda r: {a: r[a] + 1}).outcome == "committed"

    def test_timeout_abort_is_deterministic(self):
        def doomed_finish_time(seed):
            db = DistributedKV(n_partitions=2, replicas_per_partition=3,
                               seed=seed)
            a, b = _two_keys_in_distinct_groups(db)
            db.put(a, 50)
            db.crash_group(db.group_of(b))
            txn = Transaction("doomed", (a, b), lambda r: {b: 1})
            db.coordinator.submit(txn)
            db.cluster.run_until(lambda: txn.outcome is not None,
                                 until=2000.0)
            assert txn.outcome == "aborted"
            return txn.finished_at

        assert doomed_finish_time(13) == doomed_finish_time(13)

    def test_prepared_writes_survive_in_group_log(self):
        # The point of 2PC-over-Paxos: a prepare is a *replicated* log
        # entry, visible in every group replica's committed log.
        db = DistributedKV(n_partitions=1, replicas_per_partition=3, seed=9)
        db.put("k", 1)
        db.settle()
        logs = [replica.committed_log()
                for replica in db.replicas[0] if not replica.crashed]
        ops = {value.command[0] for log in logs for _idx, value in log}
        assert {"txn_lock", "txn_prepare", "txn_commit"} <= ops


def _two_keys_in_distinct_groups(db):
    seen = {}
    for i in range(100):
        key = "acct%d" % i
        seen.setdefault(db.group_of(key), key)
        if len(seen) >= 2:
            break
    groups = sorted(seen)
    return seen[groups[0]], seen[groups[1]]


def _three_keys_in_distinct_groups(db):
    seen = {}
    for i in range(200):
        key = "acct%d" % i
        seen.setdefault(db.group_of(key), key)
        if len(seen) >= 3:
            break
    groups = sorted(seen)
    return seen[groups[0]], seen[groups[1]], seen[groups[2]]
