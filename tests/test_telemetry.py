"""Tests for the telemetry subsystem: instruments, the labeled registry,
exposition/report/render outputs, substrate instrumentation, and the
zero-cost / zero-perturbation contract."""

import json

import pytest

from repro.core import Cluster
from repro.faults import FaultPlan
from repro.metrics import MetricsCollector
from repro.net import SynchronousModel, protocol_of
from repro.protocols.paxos import FixedBackoff, run_basic_paxos
from repro.telemetry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_summary,
    report_to_json,
    run_report,
    to_prometheus,
    update_bench_snapshot,
)


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8

    def test_histogram_buckets_and_summary(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.counts == [1, 1, 1, 1]  # last is the +Inf bucket
        digest = hist.summary()
        assert digest["count"] == 4
        assert digest["min"] == 0.5 and digest["max"] == 100.0
        assert digest["sum"] == 105.0

    def test_histogram_quantile_interpolates(self):
        hist = Histogram(buckets=(10.0,))
        for _ in range(10):
            hist.observe(5.0)
        # Uniform interpolation inside [0, 10]: the median estimate is 5.
        assert hist.quantile(0.5) == 5.0
        assert hist.quantile(0.0) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_histogram_empty_quantile_is_none(self):
        assert Histogram().quantile(0.5) is None

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestRegistry:
    def test_same_series_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("m", proto="paxos", mtype="prepare")
        b = registry.counter("m", mtype="prepare", proto="paxos")
        assert a is b
        a.inc()
        assert registry.value("m", proto="paxos", mtype="prepare") == 1

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("m", proto="paxos").inc()
        registry.counter("m", proto="raft").inc(2)
        assert len(registry) == 2
        assert registry.total("m") == 3
        assert registry.names() == ["m"]

    def test_series_sorted_deterministically(self):
        registry = MetricsRegistry()
        registry.counter("z", x="2").inc()
        registry.counter("a").inc()
        registry.counter("z", x="1").inc()
        names = [(name, labels) for name, labels, _ in registry.series()]
        assert names == [("a", ()), ("z", (("x", "1"),)),
                        ("z", (("x", "2"),))]

    def test_missing_series_reads_zero(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        assert registry.value("nope") == 0
        assert registry.total("nope") == 0

    def test_null_registry_absorbs_everything(self):
        null = NullRegistry()
        null.counter("m", a="b").inc(5)
        null.gauge("g").set(3)
        null.histogram("h").observe(1.0)
        assert len(null) == 0
        assert null.series() == []
        assert null.total("m") == 0
        # The shared singletons: one instrument serves every call site.
        assert null.counter("x") is NULL_REGISTRY.counter("y")

    def test_handle_resolves_interned_instrument(self):
        registry = MetricsRegistry()
        counter = registry.handle("counter", "m", proto="paxos")
        assert counter is registry.counter("m", proto="paxos")
        gauge = registry.handle("gauge", "depth", node="a")
        assert gauge is registry.gauge("depth", node="a")
        histogram = registry.handle("histogram", "lat", proto="paxos")
        assert histogram is registry.histogram("lat", proto="paxos")
        # The contract hot paths rely on: the handle stays valid, so
        # increments through it land on the registry's series.
        counter.inc(3)
        assert registry.value("m", proto="paxos") == 3

    def test_handle_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown instrument kind"):
            MetricsRegistry().handle("timer", "m")
        with pytest.raises(ValueError, match="unknown instrument kind"):
            NullRegistry().handle("timer", "m")

    def test_null_handle_returns_shared_noops(self):
        null = NullRegistry()
        assert null.handle("counter", "m") is NULL_REGISTRY.counter("x")
        assert null.handle("gauge", "g") is NULL_REGISTRY.gauge("x")
        assert null.handle("histogram", "h") is NULL_REGISTRY.histogram("x")

    def test_null_counter_value_writes_are_absorbed(self):
        # Hot paths bump cached handles' ``value`` slot directly; the
        # null twins must absorb those writes, not raise.
        counter = NULL_REGISTRY.counter("m")
        counter.value += 5
        assert counter.value == 0
        gauge = NULL_REGISTRY.gauge("g")
        gauge.value = 3
        assert gauge.value == 0


class TestExposition:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("msgs_total", proto="paxos").inc(3)
        registry.histogram("lat", buckets=(1.0, 2.0), proto="paxos"
                           ).observe(1.5)
        text = to_prometheus(registry)
        assert "# TYPE msgs_total counter" in text
        assert 'msgs_total{proto="paxos"} 3' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1",proto="paxos"} 0' in text
        assert 'lat_bucket{le="2",proto="paxos"} 1' in text
        assert 'lat_bucket{le="+Inf",proto="paxos"} 1' in text
        assert 'lat_sum{proto="paxos"} 1.5' in text
        assert 'lat_count{proto="paxos"} 1' in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("m", link='a"b').inc()
        assert 'link="a\\"b"' in to_prometheus(registry)


class TestRunReport:
    def test_report_round_trips_as_json(self):
        registry = MetricsRegistry()
        registry.counter("m", proto="paxos").inc(2)
        report = run_report(registry, protocol="paxos", seed=7,
                            virtual_time=12.5)
        parsed = json.loads(report_to_json(report))
        assert parsed["schema"] == "repro.telemetry.run_report/1"
        assert parsed["protocol"] == "paxos" and parsed["seed"] == 7
        assert parsed["series"][0]["name"] == "m"
        assert parsed["series"][0]["value"] == 2

    def test_collector_snapshot_embedded(self):
        collector = MetricsCollector()
        collector.start_request("paxos:r", 1.0)
        collector.finish_request("paxos:r", 3.0)
        report = run_report(MetricsRegistry(), collector=collector)
        assert report["summary"]["requests"] == 1
        assert report["summary"]["mean_latency"] == 2.0

    def test_same_state_serialises_byte_identically(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b").inc()
            registry.counter("a", x="1").inc(3)
            registry.histogram("h").observe(0.25)
            return report_to_json(run_report(registry, protocol="p", seed=0))

        assert build() == build()


class TestRender:
    def test_summary_shows_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("net_messages_total", mtype="prepare").inc(5)
        registry.histogram("request_latency", proto="paxos").observe(3.0)
        text = render_summary(registry, title="demo")
        assert "demo" in text
        assert "net_messages_total" in text
        assert "mtype=prepare" in text
        assert "request_latency" in text
        assert "count=1" in text


class TestBenchSnapshot:
    def test_merge_and_stable_ordering(self, tmp_path):
        path = tmp_path / "BENCH.json"
        update_bench_snapshot(path, "E2_paxos", {"messages": 10})
        update_bench_snapshot(path, "E1_table", {"protocols": 8})
        update_bench_snapshot(path, "E2_paxos", {"messages": 12})
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.telemetry.bench_snapshot/1"
        assert data["benches"]["E2_paxos"]["messages"] == 12
        assert data["benches"]["E1_table"]["protocols"] == 8
        # Re-writing identical content produces identical bytes.
        first = path.read_bytes()
        update_bench_snapshot(path, "E2_paxos", {"messages": 12})
        assert path.read_bytes() == first


def _run_paxos(telemetry):
    cluster = Cluster(seed=3, delivery=SynchronousModel(1.0),
                      telemetry=telemetry)
    result = run_basic_paxos(cluster, n_acceptors=5, proposals=("X",),
                             retry=FixedBackoff(100.0))
    return cluster, result


class TestSubstrateInstrumentation:
    def test_network_counters_match_collector(self):
        cluster, _result = _run_paxos(telemetry=True)
        registry = cluster.telemetry
        assert registry.total("net_messages_total") == \
            cluster.metrics.messages_total
        assert registry.total("net_bytes_total") == cluster.metrics.bytes_total
        assert registry.total("node_sent_total") == \
            cluster.metrics.messages_total

    def test_series_carry_protocol_mtype_link_labels(self):
        cluster, _result = _run_paxos(telemetry=True)
        found = [labels for name, labels, _ in cluster.telemetry.series()
                 if name == "net_messages_total"]
        assert found
        for labels in found:
            keys = dict(labels)
            assert keys["protocol"] == "paxos"
            assert "->" in keys["link"]
            assert keys["mtype"]

    def test_simulator_counters(self):
        cluster, _result = _run_paxos(telemetry=True)
        registry = cluster.telemetry
        assert registry.total("sim_events_dispatched_total") > 0
        assert registry.total("sim_timers_fired_total") >= 0

    def test_phase_and_request_histograms(self):
        cluster, _result = _run_paxos(telemetry=True)
        registry = cluster.telemetry
        prepare = registry.get("phase_latency", protocol="paxos",
                               phase="prepare")
        assert prepare is not None and prepare.count > 0
        latency = registry.get("request_latency", protocol="paxos")
        assert latency is not None and latency.count > 0
        assert latency.min > 0

    def test_fault_injections_counted(self):
        cluster = Cluster(seed=0, telemetry=True)
        from repro.core import Node
        cluster.add_node(Node, "n0")
        plan = FaultPlan(cluster)
        plan.crash_at(5.0, "n0")
        plan.restart_at(10.0, "n0")
        cluster.sim.run(until=20.0)
        assert cluster.telemetry.value("fault_injections_total",
                                       kind="crash") == 1
        assert cluster.telemetry.value("fault_injections_total",
                                       kind="restart") == 1

    def test_protocol_of_is_leaf_module(self):
        cluster, _ = _run_paxos(telemetry=False)
        from repro.core.ballot import Ballot
        from repro.protocols.paxos import Prepare
        assert protocol_of(Prepare(ballot=Ballot(1, "p"))) == "paxos"
        assert cluster is not None


class TestZeroCostContract:
    def test_telemetry_off_by_default(self):
        cluster = Cluster(seed=0)
        assert cluster.telemetry is None
        assert cluster.sim.telemetry is None

    def test_same_seed_behaviour_identical_with_and_without(self):
        on_cluster, on_result = _run_paxos(telemetry=True)
        off_cluster, off_result = _run_paxos(telemetry=False)
        assert on_result.value == off_result.value
        assert on_result.decided_at == off_result.decided_at
        assert on_cluster.metrics.messages_total == \
            off_cluster.metrics.messages_total
        assert on_cluster.sim.now == off_cluster.sim.now

    def test_collector_without_registry_skips_series(self):
        collector = MetricsCollector()
        collector.mark_phase("p", "prepare", 0.0)
        collector.start_request("p:r", 0.0)
        collector.finish_request("p:r", 1.0)
        assert collector.registry is None  # nothing blew up, nothing fed


class TestUnmatchedRequests:
    def test_unmatched_finish_does_not_fabricate_latency(self):
        collector = MetricsCollector()
        collector.finish_request("ghost", 5.0)
        assert collector.latencies() == []
        assert collector.mean_latency() is None
        assert collector.unmatched_requests() == 1
        record = collector.finished_requests[0]
        assert record.unmatched and record.latency == 0.0

    def test_matched_finish_still_counts(self):
        collector = MetricsCollector()
        collector.start_request("p:a", 1.0)
        collector.finish_request("p:a", 4.0)
        collector.finish_request("ghost", 9.0)
        assert collector.latencies() == [3.0]
        assert collector.mean_latency() == 3.0
        assert collector.unmatched_requests() == 1

    def test_unmatched_feeds_dedicated_counter(self):
        registry = MetricsRegistry()
        collector = MetricsCollector(registry=registry)
        collector.finish_request("pbft:ghost", 2.0)
        assert registry.value("requests_unmatched_total",
                              protocol="pbft") == 1
        assert registry.get("request_latency", protocol="pbft") is None

    def test_snapshot_reports_unmatched_and_sorted_keys(self):
        collector = MetricsCollector()
        collector.finish_request("ghost", 1.0)
        snap = collector.snapshot()
        assert snap["unmatched_requests"] == 1
        assert snap["requests"] == 1
        assert snap["mean_latency"] is None
        assert list(snap) == sorted(snap)
        assert list(snap["by_type"]) == sorted(snap["by_type"])

    def test_request_open_lifecycle(self):
        collector = MetricsCollector()
        assert not collector.request_open("p:x")
        collector.start_request("p:x", 0.0)
        assert collector.request_open("p:x")
        collector.finish_request("p:x", 1.0)
        assert not collector.request_open("p:x")
