"""Chaos tests: longer randomized runs under combined fault schedules.

Each scenario throws several fault types at a protocol at once (crashes,
restarts, partitions, targeted message loss) and asserts the invariants
that must survive *anything*: no two replicas ever conflict on a
committed position, state machines at equal progress are identical, and
— when the fault budget is respected — the workload eventually
completes.
"""

import pytest

from repro.core import Cluster
from repro.faults import FaultPlan
from repro.net import UniformDelayModel
from repro.smr import ReplicatedKV


class TestMultiPaxosChaos:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_crash_restart_partition_storm(self, seed):
        kv = ReplicatedKV(n_replicas=5, protocol="multi-paxos", seed=seed,
                          delivery=UniformDelayModel(0.5, 2.0))
        plan = FaultPlan(kv.cluster)
        names = [r.name for r in kv.replicas]
        # Rolling crashes and restarts of two replicas.
        plan.crash_at(15.0, names[1])
        plan.restart_at(70.0, names[1])
        plan.crash_at(90.0, names[2])
        plan.restart_at(160.0, names[2])
        # A transient partition cutting one replica off.
        plan.partition_at(40.0, [names[3]],
                          [n for n in names if n != names[3]] + ["kvclient"])
        plan.heal_at(65.0)
        # Lossy link for a while.
        plan.drop_messages(
            lambda src, dst, msg: src == names[4] and
            kv.cluster.sim.rng.random() < 0.3,
            between=(100.0, 140.0),
        )
        for i in range(12):
            kv.put("key-%d" % i, i)
        kv.settle(200.0)
        assert kv.get("key-0") == 0
        assert kv.get("key-11") == 11
        assert kv.check_consistency()

    def test_repeated_leader_assassination(self):
        kv = ReplicatedKV(n_replicas=5, protocol="multi-paxos", seed=404)
        killed = []
        for i in range(2):
            kv.put("round-%d" % i, i)
            victim = kv.crash_leader()
            if victim:
                killed.append(victim)
        kv.put("final", "ok")
        assert kv.get("final") == "ok"
        assert len(killed) == 2
        kv.settle(100.0)
        assert kv.check_consistency()


class TestRaftChaos:
    @pytest.mark.parametrize("seed", [17, 71])
    def test_partition_flapping(self, seed):
        kv = ReplicatedKV(n_replicas=5, protocol="raft", seed=seed)
        names = [r.name for r in kv.replicas]
        plan = FaultPlan(kv.cluster)
        # Three partition/heal cycles hitting different replicas.
        for cycle, victim in enumerate(names[:3]):
            start = 20.0 + 60.0 * cycle
            plan.partition_at(start, [victim],
                              [n for n in names if n != victim]
                              + ["kvclient"])
            plan.heal_at(start + 30.0)
        for _ in range(10):
            kv.incr("counter")
        assert kv.get("counter") == 10
        kv.settle(150.0)
        assert kv.check_consistency()

    def test_snapshot_pressure_with_crashes(self):
        from repro.protocols.raft import run_raft
        cluster = Cluster(seed=88, monitors=True)
        cluster.attach_monitors("raft", n=3, f=1)
        result = run_raft(cluster, n_nodes=3, n_clients=2,
                          commands_per_client=12, crash_leader_at=30.0,
                          snapshot_threshold=4)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()
        # The streaming battery agrees: no split brain, no divergent
        # applies, even across the crash and the snapshot transfers.
        cluster.monitors.finish()
        assert cluster.monitors.ok, cluster.monitors.anomalies
        histories = [n.state_machine.history for n in result.nodes]
        longest = max(histories, key=len)
        assert len(longest) == 24
        for history in histories:
            assert history == longest[: len(history)]


class TestPbftChaos:
    @pytest.mark.parametrize("seed", [5, 55])
    def test_crash_plus_lossy_network(self, seed):
        from repro.protocols.pbft import run_pbft
        cluster = Cluster(seed=seed, delivery=UniformDelayModel(0.5, 1.5),
                          monitors=True)
        cluster.attach_monitors("pbft", n=4, f=1)
        plan = FaultPlan(cluster)
        plan.drop_messages(
            lambda src, dst, msg: cluster.sim.rng.random() < 0.05,
            between=(10.0, 60.0),
        )
        result = run_pbft(cluster, f=1, n_clients=1,
                          operations_per_client=5, crash_primary_at=8.0,
                          horizon=5000.0)
        assert result.logs_consistent()
        assert all(c.done for c in result.clients)
        # Crash + loss must not register as safety violations: no
        # divergent executes, no split-view primaries, no equivocation.
        cluster.monitors.finish()
        safety = [a for a in cluster.monitors.anomalies
                  if a.category == "safety"]
        assert not safety, safety

    def test_two_byzantine_one_crashed_at_f2(self):
        from repro.protocols.pbft import run_pbft, SilentPrimary
        cluster = Cluster(seed=9)
        # f=2 budget: primary silent-Byzantine AND one backup crashed.
        result = run_pbft(cluster, f=2, n_clients=1,
                          operations_per_client=3,
                          primary_class=SilentPrimary,
                          horizon=5000.0)
        cluster.sim.schedule(1.0, result.replicas[3].crash)
        cluster.run_until(lambda: all(c.done for c in result.clients),
                          until=5000.0)
        assert result.logs_consistent()


class TestBlockchainChaos:
    def test_partitioned_miners_reorg_on_heal(self):
        from repro.blockchain.miner import Miner
        from repro.crypto import HASH_SPACE
        cluster = Cluster(seed=31, delivery=UniformDelayModel(0.5, 2.0))
        names = ["m0", "m1", "m2", "m3"]
        params = {"initial_target": int(HASH_SPACE / (400.0 * 20.0)),
                  "target_block_time": 20.0, "pow_check": False}
        miners = [cluster.add_node(Miner, n, names, 100.0,
                                   chain_params=params) for n in names]
        plan = FaultPlan(cluster)
        # Split 2-2 for a while: both sides mine their own branches.
        plan.partition_at(100.0, names[:2], names[2:])
        plan.heal_at(600.0)
        cluster.start_all()
        cluster.run(until=1500.0)
        for miner in miners:
            miner.hashrate = 0.0
        cluster.run(until=2500.0)
        # After healing, everyone converged on one branch (reorgs happened).
        tips = {m.chain.tip for m in miners}
        assert len(tips) == 1
        assert any(m.chain.reorgs > 0 for m in miners)

    def test_miner_crash_and_restart(self):
        from repro.blockchain.miner import Miner
        from repro.crypto import HASH_SPACE
        cluster = Cluster(seed=32)
        names = ["m0", "m1", "m2"]
        params = {"initial_target": int(HASH_SPACE / (300.0 * 15.0)),
                  "target_block_time": 15.0, "pow_check": False}
        miners = [cluster.add_node(Miner, n, names, 100.0,
                                   chain_params=params) for n in names]
        cluster.sim.schedule(100.0, miners[2].crash)

        def revive():
            miners[2].restart()
            miners[2]._restart_race()
        cluster.sim.schedule(400.0, revive)
        cluster.start_all()
        cluster.run(until=1200.0)
        for miner in miners:
            miner.hashrate = 0.0
        cluster.run(until=2000.0)
        heights = [m.chain.height for m in miners]
        # The restarted miner caught back up with the network.
        assert max(heights) - min(heights) <= 1


class TestDtxnChaos:
    def test_transfers_under_rolling_crashes(self):
        from repro.dtxn import DistributedKV
        db = DistributedKV(n_partitions=2, replicas_per_partition=3,
                           seed=77)
        keys = ["k%d" % i for i in range(6)]
        for key in keys:
            db.put(key, 100)
        total = db.total_of(keys)
        db.crash_one_replica_per_partition()
        for i in range(5):
            src, dst = keys[i], keys[(i + 1) % len(keys)]
            outcome = db.transfer(src, dst, 10)
            assert outcome == "committed"
        assert db.total_of(keys) == total
        db.settle()
        assert db.check_consistency()
