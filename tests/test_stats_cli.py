"""Tests for ``python -m repro stats``: rendering, exports, and the
byte-identical determinism contract the CI smoke job relies on."""

import json

import pytest

from repro.__main__ import main


class TestStatsCli:
    def test_stats_renders_registry(self, capsys):
        assert main(["stats", "paxos", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "net_messages_total" in out
        assert "phase_marks_total" in out
        assert "request_latency{protocol=paxos}" in out
        assert "telemetry:" in out and "series" in out

    def test_stats_unknown_protocol(self, capsys):
        assert main(["stats", "carrier-pigeon"]) == 1
        assert "unknown" in capsys.readouterr().out

    @pytest.mark.parametrize("protocol", ["paxos", "raft", "pbft",
                                          "hotstuff"])
    def test_stats_json_byte_identical(self, protocol, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(["stats", protocol, "--seed", "2",
                         "--json", str(path)]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        parsed = json.loads(paths[0].read_text())
        assert parsed["schema"] == "repro.telemetry.run_report/1"
        assert parsed["protocol"] == protocol
        assert parsed["seed"] == 2
        assert parsed["series"]
        assert parsed["summary"]["messages_total"] > 0

    def test_stats_prometheus_export(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main(["stats", "paxos", "--seed", "1",
                     "--prom", str(path)]) == 0
        capsys.readouterr()
        text = path.read_text()
        assert "# TYPE net_messages_total counter" in text
        assert "# TYPE request_latency histogram" in text
        assert 'request_latency_bucket{le="+Inf",protocol="paxos"}' in text
        assert "request_latency_count" in text

    def test_stats_json_differs_across_seeds(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["stats", "paxos", "--seed", "1", "--json", str(a)]) == 0
        assert main(["stats", "paxos", "--seed", "4", "--json", str(b)]) == 0
        capsys.readouterr()
        assert json.loads(a.read_text())["seed"] == 1
        assert json.loads(b.read_text())["seed"] == 4

    def test_stats_histogram_bars_render(self, capsys):
        assert main(["stats", "pbft", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "histograms" in out
        assert "<=" in out and "|" in out
