"""Tests for the causal tracing subsystem: recording, queries,
determinism of the JSONL export, rendering and causal invariants."""

from dataclasses import dataclass

import pytest

from repro.core import Cluster
from repro.net.message import Message
from repro.protocols.paxos import run_basic_paxos
from repro.protocols.pbft import run_pbft
from repro.trace import (
    DELIVER,
    LOCAL,
    PHASE,
    SEND,
    TIMER,
    CausalInvariantError,
    Trace,
    TraceEvent,
    assert_quorum_before_decide,
    assert_sends_precede_delivers,
    read_jsonl,
    render_flow,
    to_jsonl,
    write_jsonl,
)


@dataclass(frozen=True)
class Ping(Message):
    seq: int = 0


def traced_paxos(seed=0):
    cluster = Cluster(seed=seed, trace=True)
    result = run_basic_paxos(cluster, n_acceptors=5, proposals=("X", "Y"),
                             stagger=1.0)
    return cluster, result


def traced_pbft(seed=0):
    cluster = Cluster(seed=seed, trace=True)
    run_pbft(cluster, f=1, n_clients=1, operations_per_client=2)
    return cluster


class TestRecording:
    def test_all_layer_kinds_recorded(self):
        cluster, _ = traced_paxos()
        kinds = {e.kind for e in cluster.trace}
        assert {SEND, DELIVER, TIMER, PHASE, LOCAL} <= kinds

    def test_disabled_by_default(self, cluster):
        run_basic_paxos(cluster, proposals=("X",))
        assert cluster.tracer is None
        assert cluster.trace is None
        assert cluster.network.tracer is None
        assert cluster.sim.tracer is None

    def test_tracing_does_not_perturb_the_run(self):
        plain = Cluster(seed=4)
        untr = run_basic_paxos(plain, proposals=("X", "Y"), stagger=1.0)
        traced = Cluster(seed=4, trace=True)
        tr = run_basic_paxos(traced, proposals=("X", "Y"), stagger=1.0)
        assert untr.value == tr.value
        assert plain.metrics.messages_total == traced.metrics.messages_total
        assert plain.now == traced.now

    def test_seq_dense_and_time_monotone(self):
        cluster, _ = traced_paxos()
        events = cluster.trace.events
        assert [e.seq for e in events] == list(range(len(events)))
        assert all(a.time <= b.time for a, b in zip(events, events[1:]))

    def test_every_deliver_links_to_a_send(self):
        cluster, _ = traced_paxos()
        assert assert_sends_precede_delivers(cluster.trace) > 0

    def test_phase_marks_mirrored_from_metrics(self):
        cluster, _ = traced_paxos()
        phases = [e.mtype for e in cluster.trace.filter(kind=PHASE)]
        assert {"prepare", "accept", "decide"} <= set(phases)

    def test_drops_recorded_with_reason(self, make_cluster):
        from repro.net import UniformDelayModel
        cluster = make_cluster(delivery=UniformDelayModel(drop_rate=0.4),
                               trace=True)
        run_basic_paxos(cluster, proposals=("X",), horizon=100.0)
        drops = cluster.trace.filter(kind="drop")
        assert len(drops) > 0
        assert all(e.get("reason") == "lost" for e in drops)


class TestQueries:
    def test_filter_by_node_kind_and_window(self):
        cluster, _ = traced_paxos()
        trace = cluster.trace
        p1_sends = trace.filter(kind=SEND, node="p1")
        assert len(p1_sends) > 0
        assert all(e.kind == SEND and e.node == "p1" for e in p1_sends)
        window = trace.filter(t0=1.0, t1=2.0)
        assert all(1.0 <= e.time <= 2.0 for e in window)
        by_mtype = trace.sends("prepare")
        assert all(e.mtype == "prepare" for e in by_mtype)

    def test_send_happens_before_its_deliver(self):
        cluster, _ = traced_paxos()
        trace = cluster.trace
        deliver = trace.delivers()[0]
        send = next(e for e in trace if e.kind == SEND
                    and e.msg_id == deliver.msg_id)
        assert trace.happens_before(send, deliver)
        assert not trace.happens_before(deliver, send)
        assert not trace.concurrent(send, deliver)

    def test_independent_proposers_start_concurrently(self):
        cluster, _ = traced_paxos()
        trace = cluster.trace
        first_p1 = trace.filter(kind=SEND, node="p1")[0]
        first_p2 = trace.filter(kind=SEND, node="p2")[0]
        # p2's first prepare leaves before any message from p1 reaches
        # p2, so the two sends are causally unordered.
        assert trace.concurrent(first_p1, first_p2)

    def test_causal_past_is_closed_under_happens_before(self):
        cluster, _ = traced_paxos()
        trace = cluster.trace
        decide = trace.locals("decide")[0]
        past = trace.causal_past(decide)
        assert len(past) > 0
        assert all(trace.happens_before(e, decide) for e in past)

    def test_request_span_extraction(self):
        cluster = Cluster(seed=0, trace=True)
        cluster.metrics.start_request("op-1", cluster.now)
        cluster.tracer.on_send("a", "b", Ping(seq=1))
        cluster.metrics.finish_request("op-1", cluster.now)
        cluster.tracer.on_send("a", "b", Ping(seq=2))
        span = cluster.trace.span("op-1")
        assert [e.kind for e in span] == ["request", SEND, "request"]
        assert span[1].get("seq") == "1"


class TestDeterminism:
    def test_paxos_same_seed_byte_identical(self):
        first = to_jsonl(traced_paxos(seed=0)[0].trace)
        second = to_jsonl(traced_paxos(seed=0)[0].trace)
        assert first == second

    def test_pbft_same_seed_byte_identical(self):
        assert to_jsonl(traced_pbft(seed=3).trace) == \
            to_jsonl(traced_pbft(seed=3).trace)

    def test_different_seed_different_trace(self):
        assert to_jsonl(traced_paxos(seed=0)[0].trace) != \
            to_jsonl(traced_paxos(seed=1)[0].trace)
        assert to_jsonl(traced_pbft(seed=3).trace) != \
            to_jsonl(traced_pbft(seed=4).trace)

    def test_jsonl_round_trip(self, tmp_path):
        cluster, _ = traced_paxos()
        path = str(tmp_path / "paxos.jsonl")
        count = write_jsonl(cluster.trace, path)
        assert count == len(cluster.trace)
        loaded = read_jsonl(path)
        assert loaded.events == cluster.trace.events


class TestRenderer:
    def test_paxos_flow_shows_the_papers_phases(self):
        cluster, _ = traced_paxos()
        art = render_flow(cluster.trace, nodes=cluster.network.node_names)
        assert "phase: prepare" in art
        assert "phase: accept" in art
        assert "phase: decide" in art
        assert "o---" in art  # message arrows
        for name in ("a0", "a4", "p1"):
            assert name in art

    def test_max_rows_caps_output(self):
        cluster, _ = traced_paxos()
        art = render_flow(cluster.trace, max_rows=5)
        assert "more events not shown" in art

    def test_milestones_rendered_as_stars(self):
        cluster, _ = traced_paxos()
        art = render_flow(cluster.trace, nodes=cluster.network.node_names)
        assert "decide" in art
        assert "*" in art


class TestInvariants:
    def test_paxos_quorum_before_decide(self):
        cluster, _ = traced_paxos()
        checked = assert_quorum_before_decide(
            cluster.trace, "decide", "acceptedmsg",
            quorum=3, link_keys=("ballot",))
        assert checked >= 1

    def test_pbft_commit_quorum_before_execute(self):
        cluster = traced_pbft()
        checked = assert_quorum_before_decide(
            cluster.trace, "execute", "pbftcommit",
            quorum=2, link_keys=("seq",))
        assert checked >= 1

    def test_missing_milestone_raises(self):
        with pytest.raises(CausalInvariantError):
            assert_quorum_before_decide(Trace(), "decide", "ack", quorum=1)

    def test_decide_without_quorum_raises(self):
        lone_decide = TraceEvent(seq=0, time=0.0, kind=LOCAL, node="n0",
                                 lamport=1, mtype="decide")
        with pytest.raises(CausalInvariantError):
            assert_quorum_before_decide(Trace([lone_decide]), "decide",
                                        "ack", quorum=1)

    def test_acks_after_decide_do_not_count(self):
        # A decide followed (not preceded) by the ack delivery: the ack
        # is causally *after* the milestone, so the invariant must fail.
        events = [
            TraceEvent(seq=0, time=0.0, kind=SEND, node="a0", lamport=1,
                       peer="n0", mtype="ack", msg_id=0),
            TraceEvent(seq=1, time=0.1, kind=LOCAL, node="n0", lamport=1,
                       mtype="decide"),
            TraceEvent(seq=2, time=0.2, kind=DELIVER, node="n0", lamport=3,
                       peer="a0", mtype="ack", msg_id=0),
        ]
        with pytest.raises(CausalInvariantError):
            assert_quorum_before_decide(Trace(events), "decide", "ack",
                                        quorum=1)
