"""Focused tests for the logical clocks in ``repro.trace.clock``:
Lamport's scalar rules and exact concurrent-vs-ordered decisions with
vector clocks."""

from repro.trace import LamportClock, VectorClock


class TestLamportClock:
    def test_tick_is_monotonic(self):
        clock = LamportClock()
        assert [clock.tick() for _ in range(3)] == [1, 2, 3]

    def test_observe_jumps_past_remote(self):
        clock = LamportClock()
        clock.tick()
        assert clock.observe(10) == 11

    def test_observe_of_stale_remote_still_advances(self):
        clock = LamportClock(5)
        assert clock.observe(2) == 6

    def test_send_receive_pair_orders_timestamps(self):
        sender, receiver = LamportClock(), LamportClock()
        sent = sender.tick()
        received = receiver.observe(sent)
        assert sent < received


class TestVectorClockOrdered:
    def test_successive_local_events_are_ordered(self):
        first = VectorClock().tick("p")
        second = first.tick("p")
        assert first.happens_before(second)
        assert not second.happens_before(first)
        assert not first.concurrent_with(second)

    def test_message_edge_orders_cross_node_events(self):
        at_send = VectorClock().tick("sender")
        at_receive = VectorClock().merge(at_send).tick("receiver")
        assert at_send.happens_before(at_receive)
        assert not at_receive.happens_before(at_send)

    def test_transitivity_through_a_relay(self):
        a = VectorClock().tick("p")
        b = VectorClock().merge(a).tick("q")     # p -> q
        c = VectorClock().merge(b).tick("r")     # q -> r
        assert a.happens_before(c)


class TestVectorClockConcurrent:
    def test_independent_events_are_concurrent(self):
        x = VectorClock().tick("p")
        y = VectorClock().tick("q")
        assert x.concurrent_with(y)
        assert y.concurrent_with(x)
        assert not x.happens_before(y)
        assert not y.happens_before(x)

    def test_diverging_histories_are_concurrent(self):
        base = VectorClock().tick("p")
        left = base.tick("p")
        right = VectorClock().merge(base).tick("q")
        assert left.concurrent_with(right)
        assert base.happens_before(left)
        assert base.happens_before(right)

    def test_merge_joins_concurrent_histories(self):
        x = VectorClock().tick("p")
        y = VectorClock().tick("q")
        joined = x.merge(y).tick("p")
        assert x.happens_before(joined)
        assert y.happens_before(joined)


class TestVectorClockAlgebra:
    def test_merge_is_componentwise_max(self):
        x = VectorClock({"p": 3, "q": 1})
        y = VectorClock({"q": 5, "r": 2})
        merged = x.merge(y)
        assert (merged["p"], merged["q"], merged["r"]) == (3, 5, 2)

    def test_zero_entries_do_not_affect_equality(self):
        assert VectorClock({"p": 0}) == VectorClock()
        assert VectorClock({"p": 1, "q": 0}) == VectorClock({"p": 1})

    def test_tick_does_not_mutate_the_original(self):
        base = VectorClock()
        base.tick("p")
        assert base["p"] == 0
