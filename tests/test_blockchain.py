"""Tests for the blockchain substrate: blocks/PoW, the chain, mining
network, attacks, and PoS selection."""

import random

import pytest

from repro.blockchain import (
    Blockchain,
    Ledger,
    Transaction,
    block_reward,
    build_block,
    doublespend_success_probability,
    make_coinbase,
    make_transaction,
    mine,
    run_mining_network,
    run_pos_simulation,
    simulate_doublespend,
    simulate_selfish_mining,
    validate_pow,
    verify_transaction,
)
from repro.crypto import HASH_SPACE, KeyRegistry
from repro.net import UniformDelayModel

EASY_TARGET = HASH_SPACE >> 10


class TestPow:
    def test_nonce_search_finds_solution(self):
        block = build_block("0" * 64, [make_coinbase("m", 50.0, 1)],
                            timestamp=1.0, target=EASY_TARGET, height=1)
        solved = mine(block)
        assert solved is not None
        assert solved.header.meets_target()
        assert validate_pow(solved)

    def test_unsolved_block_fails_pow(self):
        block = build_block("0" * 64, [make_coinbase("m", 50.0, 1)],
                            timestamp=1.0, target=1, height=1)  # impossible
        assert mine(block, max_attempts=100) is None

    def test_harder_target_needs_more_attempts(self):
        rng = random.Random(0)
        attempts = {}
        for shift, label in ((8, "easy"), (14, "hard")):
            target = HASH_SPACE >> shift
            total = 0
            for i in range(5):
                block = build_block("0" * 64,
                                    [make_coinbase("m%d" % i, 50.0, 1)],
                                    timestamp=rng.random(), target=target,
                                    height=1)
                solved = mine(block)
                total += solved.header.nonce
            attempts[label] = total
        assert attempts["hard"] > attempts["easy"]

    def test_tampering_breaks_hash_pointer(self):
        chain = Blockchain(initial_target=EASY_TARGET, keys=None)
        blk = mine(chain.next_block("m", timestamp=1.0))
        chain.add_block(blk)
        # A tampered copy (different timestamp) no longer matches the hash
        # committed by any descendant.
        tampered = build_block(blk.header.prev_hash, list(blk.transactions),
                               timestamp=99.0, target=blk.header.target,
                               nonce=blk.header.nonce, height=blk.height)
        assert tampered.hash != blk.hash


class TestTransactions:
    def setup_method(self):
        self.keys = KeyRegistry()

    def test_signature_roundtrip(self):
        tx = make_transaction(self.keys, "alice", "bob", 5.0, 0)
        assert verify_transaction(self.keys, tx)

    def test_tampered_amount_fails(self):
        tx = make_transaction(self.keys, "alice", "bob", 5.0, 0)
        fake = Transaction("alice", "bob", 500.0, 0, tx.signature)
        assert not verify_transaction(self.keys, fake)

    def test_ledger_rejects_overdraft_and_replay(self):
        ledger = Ledger()
        ledger.apply(make_coinbase("alice", 50.0, 0))
        tx = Transaction("alice", "bob", 10.0, 0)
        ledger.apply(tx)
        assert not ledger.can_apply(tx)  # nonce replay
        big = Transaction("alice", "bob", 1000.0, 1)
        assert not ledger.can_apply(big)

    def test_reward_halving_schedule(self):
        assert block_reward(0, 50.0, 210_000) == 50.0
        assert block_reward(209_999, 50.0, 210_000) == 50.0
        assert block_reward(210_000, 50.0, 210_000) == 25.0
        assert block_reward(420_000, 50.0, 210_000) == 12.5  # "currently"
        assert block_reward(64 * 210_000, 50.0, 210_000) == 0.0


class TestChain:
    def make_chain(self, **kwargs):
        defaults = dict(initial_target=EASY_TARGET, target_block_time=10.0,
                        retarget_interval=8, halving_interval=16)
        defaults.update(kwargs)
        return Blockchain(**defaults)

    def extend(self, chain, miner="m", timestamp=None, txs=()):
        block = mine(chain.next_block(miner, list(txs),
                                      timestamp=timestamp))
        assert chain.add_block(block)
        return block

    def test_growth_and_supply(self):
        chain = self.make_chain()
        for i in range(10):
            self.extend(chain, timestamp=float(i + 1) * 10)
        assert chain.height == 10
        assert chain.ledger().total_supply() == pytest.approx(50.0 * 11)

    def test_halving_applied(self):
        chain = self.make_chain()
        for i in range(17):
            self.extend(chain, timestamp=float(i + 1) * 10)
        rewards = [b.transactions[0].amount for b in chain.main_chain()]
        assert rewards[15] == 50.0 and rewards[16] == 25.0

    def test_retarget_responds_to_fast_blocks(self):
        chain = self.make_chain()
        # Blocks found 4x too fast: at the boundary the target shrinks.
        for i in range(9):
            self.extend(chain, timestamp=float(i + 1) * 2.5)
        targets = [b.header.target for b in chain.main_chain()]
        assert targets[8] < targets[7]

    def test_retarget_responds_to_slow_blocks(self):
        chain = self.make_chain()
        for i in range(9):
            self.extend(chain, timestamp=float(i + 1) * 40.0)
        targets = [b.header.target for b in chain.main_chain()]
        assert targets[8] > targets[7]

    def test_retarget_clamped_at_4x(self):
        chain = self.make_chain()
        for i in range(9):
            self.extend(chain, timestamp=float(i + 1) * 1000.0)
        targets = [b.header.target for b in chain.main_chain()]
        assert targets[8] <= targets[7] * 4

    def test_fork_resolution_by_work(self):
        chain = self.make_chain()
        base = self.extend(chain, timestamp=10.0)
        # Two children of `base`: the second branch grows longer and wins.
        fork_a = mine(build_block(base.hash,
                                  [make_coinbase("a", 50.0, 2)],
                                  timestamp=20.0, target=EASY_TARGET,
                                  height=2))
        fork_b = mine(build_block(base.hash,
                                  [make_coinbase("b", 50.0, 2)],
                                  timestamp=21.0, target=EASY_TARGET,
                                  height=2))
        chain.add_block(fork_a)
        chain.add_block(fork_b)
        assert chain.tip == fork_a.hash  # first seen wins at equal work
        fork_b2 = mine(build_block(fork_b.hash,
                                   [make_coinbase("b", 50.0, 3)],
                                   timestamp=30.0, target=EASY_TARGET,
                                   height=3))
        chain.add_block(fork_b2)
        assert chain.tip == fork_b2.hash  # longer branch overtakes
        assert chain.reorgs >= 1
        assert fork_a in chain.abandoned_blocks()

    def test_invalid_blocks_rejected(self):
        keys = KeyRegistry()
        chain = self.make_chain(keys=keys)
        # Excessive reward
        bogus = mine(build_block(chain.tip,
                                 [make_coinbase("greedy", 5000.0, 1)],
                                 timestamp=1.0, target=EASY_TARGET, height=1))
        assert not chain.add_block(bogus)
        # Wrong height
        bogus2 = mine(build_block(chain.tip,
                                  [make_coinbase("m", 50.0, 7)],
                                  timestamp=1.0, target=EASY_TARGET,
                                  height=7))
        assert not chain.add_block(bogus2)
        # Unsigned transfer
        unsigned = Transaction("satoshi", "bob", 1.0, 0)
        bogus3 = mine(chain.next_block("m", [unsigned], timestamp=2.0))
        assert not chain.add_block(bogus3)
        assert chain.rejected == 3

    def test_confirmations(self):
        chain = self.make_chain()
        first = self.extend(chain, timestamp=10.0)
        self.extend(chain, timestamp=20.0)
        self.extend(chain, timestamp=30.0)
        assert chain.confirmations(first.hash) == 2
        assert chain.confirmations(chain.tip) == 0


class TestMiningNetwork:
    def test_fork_rate_rises_with_fast_blocks(self, make_cluster):
        rates = {}
        for tbt in (5.0, 60.0):
            cluster = make_cluster(seed=7, delivery=UniformDelayModel(0.5, 2.0))
            result = run_mining_network(cluster, hashrates=(100.0,) * 4,
                                        target_block_time=tbt,
                                        duration=2500.0)
            rates[tbt] = result.fork_stats()[2]
        assert rates[5.0] > 3 * rates[60.0]

    def test_miners_converge_on_common_prefix(self, make_cluster):
        cluster = make_cluster(seed=8, delivery=UniformDelayModel(0.5, 2.0))
        result = run_mining_network(cluster, hashrates=(100.0,) * 3,
                                    target_block_time=20.0, duration=2000.0)
        agree = result.common_prefix_height()
        heights = [m.chain.height for m in result.miners]
        assert agree >= min(heights) - 2  # at most the unsettled tip differs

    def test_block_share_tracks_hash_share(self, make_cluster):
        cluster = make_cluster(seed=3)
        result = run_mining_network(
            cluster, hashrates=(600.0, 200.0, 100.0, 100.0),
            target_block_time=30.0, duration=9000.0,
        )
        counts = result.blocks_by_miner()
        total = sum(counts.values())
        assert abs(counts.get("m0", 0) / total - 0.6) < 0.12

    def test_transactions_confirm_across_network(self, make_cluster):
        cluster = make_cluster(seed=4)
        keys = KeyRegistry()
        result_holder = {}

        # Run briefly, inject a transaction, keep running.
        from repro.blockchain.miner import Miner
        names = ["m0", "m1", "m2"]
        params = {"initial_target": int(HASH_SPACE / (300.0 * 20.0)),
                  "target_block_time": 20.0, "pow_check": False,
                  "keys": keys}
        miners = [cluster.add_node(Miner, n, names, 100.0,
                                   chain_params=params) for n in names]
        cluster.start_all()
        cluster.run(until=100.0)
        tx = make_transaction(keys, "satoshi", "alice", 10.0, 0)
        miners[0].submit_transaction(tx)
        cluster.run(until=1200.0)
        balances = [m.chain.ledger().balance("alice") for m in miners]
        assert any(b == 10.0 for b in balances)


class TestAttacks:
    def test_doublespend_matches_theory(self):
        rng = random.Random(1)
        for q in (0.1, 0.3):
            for k in (1, 3):
                emp = simulate_doublespend(rng, q, k, trials=4000)
                theory = doublespend_success_probability(q, k)
                assert abs(emp - theory) < 0.03, (q, k)

    def test_majority_attacker_always_wins(self):
        assert doublespend_success_probability(0.5, 6) == 1.0
        assert doublespend_success_probability(0.6, 6) == 1.0

    def test_more_confirmations_exponentially_safer(self):
        probs = [doublespend_success_probability(0.25, k) for k in (1, 3, 6)]
        assert probs[0] > probs[1] > probs[2]
        assert probs[2] < 0.002

    def test_selfish_mining_profitable_above_third(self):
        low = simulate_selfish_mining(random.Random(2), 0.2, blocks=40000)
        high = simulate_selfish_mining(random.Random(2), 0.4, blocks=40000)
        assert not low.profitable
        assert high.profitable

    def test_gamma_helps_the_selfish_pool(self):
        base = simulate_selfish_mining(random.Random(3), 0.3, gamma=0.0,
                                       blocks=40000)
        lucky = simulate_selfish_mining(random.Random(3), 0.3, gamma=0.9,
                                        blocks=40000)
        assert lucky.revenue_share > base.revenue_share


class TestProofOfStake:
    def test_block_share_proportional_to_stake(self):
        result = run_pos_simulation(random.Random(3),
                                    {"a": 60, "b": 25, "c": 15}, blocks=8000)
        assert abs(result.share_of("a") - 0.6) < 0.05
        assert abs(result.share_of("c") - 0.15) < 0.05

    def test_coin_age_also_tracks_stake_long_run(self):
        result = run_pos_simulation(random.Random(4),
                                    {"a": 50, "b": 50}, blocks=8000,
                                    selection="coin-age")
        assert abs(result.share_of("a") - 0.5) < 0.06

    def test_coin_age_gate_and_cap(self):
        from repro.blockchain import Stakeholder
        holder = Stakeholder("x", 100.0, stake_since_day=0.0)
        assert holder.coin_age_weight(10.0) == 0.0       # < 30 days
        assert holder.coin_age_weight(31.0) == 3100.0
        assert holder.coin_age_weight(200.0) == 9000.0   # capped at 90

    def test_winner_age_resets_under_coin_age(self):
        rng = random.Random(5)
        result = run_pos_simulation(rng, {"a": 99, "b": 1}, blocks=500,
                                    selection="coin-age")
        # Even the tiny holder gets turns: the whale's age keeps resetting.
        assert result.blocks_by["b"] > 0

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            run_pos_simulation(random.Random(0), {"a": 1}, selection="wat")


class TestPosVariants:
    """DPoS and PoA from the consensus-variants slide."""

    def test_dpos_stake_weighted_election(self):
        from repro.blockchain import run_dpos
        stakes = {"whale": 70, "mid": 20, "minnow": 10}
        votes = {"whale": ["w1", "w2"], "mid": ["w3"], "minnow": ["w3"]}
        result = run_dpos(stakes, votes, k=2, blocks=100)
        # The whale's approvals dominate the election.
        assert set(result.witnesses) == {"w1", "w2"}
        assert result.votes_by_candidate["w1"] == 70
        assert result.votes_by_candidate["w3"] == 30

    def test_dpos_round_robin_production(self):
        from repro.blockchain import run_dpos
        result = run_dpos({"a": 1}, {"a": ["w1", "w2"]}, k=2, blocks=100)
        assert result.blocks_by == {"w1": 50, "w2": 50}

    def test_dpos_validation(self):
        from repro.blockchain import run_dpos
        import pytest
        with pytest.raises(ValueError):
            run_dpos({"a": 1}, {}, k=1)
        with pytest.raises(ValueError):
            run_dpos({"a": 1}, {"a": ["w"]}, k=0)

    def test_poa_round_robin(self):
        from repro.blockchain import run_poa
        result = run_poa(["a1", "a2", "a3"], blocks=90)
        assert all(count == 30 for count in result.blocks_by.values())
        assert result.skipped == 0

    def test_poa_skips_offline_authority(self):
        from repro.blockchain import run_poa
        result = run_poa(["a1", "a2", "a3"], blocks=90, offline=("a2",))
        assert "a2" not in result.blocks_by
        assert sum(result.blocks_by.values()) == 90
        assert result.skipped == 30  # a2's slots taken by the successor

    def test_poa_all_offline_rejected(self):
        from repro.blockchain import run_poa
        import pytest
        with pytest.raises(ValueError):
            run_poa(["a1"], blocks=1, offline=("a1",))
