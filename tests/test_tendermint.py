"""Tests for Tendermint-style BFT: chain agreement, rotation, locking."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.protocols.tendermint import (
    TendermintNode,
    TmBlock,
    run_tendermint,
)


class TestNormalOperation:
    def test_chain_grows_and_agrees(self, cluster):
        result = run_tendermint(cluster, f=1, heights=5)
        assert result.min_height() == 5
        assert result.chains_consistent()

    def test_one_round_per_height_when_healthy(self, cluster):
        result = run_tendermint(cluster, f=1, heights=5)
        assert all(rounds == 1 for rounds in result.rounds_per_height().values())

    def test_proposer_rotates_across_heights(self, cluster):
        result = run_tendermint(cluster, f=1, heights=4)
        validator = result.validators[0]
        proposers = [validator.proposer_of(h, 0) for h in range(1, 5)]
        assert len(set(proposers)) == 4  # all four validators led once

    def test_blocks_are_hash_linked(self, cluster):
        result = run_tendermint(cluster, f=1, heights=4)
        chain = result.validators[0].chain
        assert chain[0].prev_hash == "genesis"
        for previous, block in zip(chain, chain[1:]):
            assert block.prev_hash == previous.hash

    def test_f2_cluster(self, make_cluster):
        result = run_tendermint(make_cluster(seed=4), f=2, heights=3)
        assert result.min_height() == 3
        assert result.chains_consistent()

    def test_configuration_bound(self, cluster):
        with pytest.raises(ConfigurationError):
            TendermintNode(cluster.sim, cluster.network, "v0",
                           ["v0", "v1", "v2"], 1)


class TestFaults:
    def test_silent_proposer_skipped_by_rotation(self, make_cluster):
        result = run_tendermint(make_cluster(seed=2), f=1, heights=4,
                                silent_indices=(1,))
        assert result.min_height() == 4
        assert result.chains_consistent()
        # The height whose first proposer was silent used an extra round.
        rounds = result.rounds_per_height()
        assert max(rounds.values()) >= 2
        assert min(rounds.values()) == 1

    def test_crashed_validator_tolerated(self, make_cluster):
        cluster = make_cluster(seed=3)
        names = ["v%d" % i for i in range(4)]
        validators = [
            cluster.add_node(TendermintNode, name, names, 1, target_height=4)
            for name in names
        ]
        cluster.sim.schedule(2.0, validators[2].crash)
        cluster.start_all()
        cluster.run_until(
            lambda: all(len(v.chain) >= 4
                        for v in validators if not v.crashed),
            until=4000.0,
        )
        live = [v for v in validators if not v.crashed]
        assert all(len(v.chain) >= 4 for v in live)
        chains = [[b.hash for b in v.chain] for v in live]
        for chain_a in chains:
            for chain_b in chains:
                for x, y in zip(chain_a, chain_b):
                    assert x == y


class TestLockingRule:
    def test_locked_validator_refuses_other_blocks(self, cluster):
        names = ["v%d" % i for i in range(4)]
        nodes = cluster.add_nodes(TendermintNode, names, names, 1)
        validator = nodes[3]
        block_a = TmBlock(1, "genesis", "A")
        block_b = TmBlock(1, "genesis", "B")
        validator.locked_hash = block_a.hash
        validator.locked_block = block_a
        validator._blocks[block_a.hash] = block_a
        # A proposal for B in a later round must draw a nil prevote.
        from repro.protocols.tendermint import NIL, TmProposal
        votes_before = dict(validator._prevotes)
        validator.round = 1
        validator._on_proposal(TmProposal(1, 1, block_b),
                               validator.proposer_of(1, 1))
        own_votes = validator._prevotes.get((1, 1), {})
        assert own_votes.get(validator.name) == NIL
