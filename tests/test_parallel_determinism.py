"""Golden-file determinism for the parallel fleet engine.

The parallel engine's whole contract is that the worker count is a pure
performance knob: the merged trace, telemetry report, and conformance
report of a partitioned seed-0 run must be byte-identical at every
worker count — including workers=1, which is pinned here against
committed goldens so the contract survives refactors.

Regenerate (only for an *intended* behaviour change) with:

    PYTHONPATH=src python -m repro trace shards --workers 1 \\
        --jsonl tests/golden/shards_par_seed0.trace.jsonl
    PYTHONPATH=src python -m repro stats shards --workers 1 \\
        --json tests/golden/shards_par_seed0.stats.json
    PYTHONPATH=src python -m repro check shards --workers 1 \\
        --json tests/golden/shards_par_seed0.check.json

Worker counts above 1 must never need a regeneration: if workers=2 or
workers=4 diverge from the workers=1 golden, the merge (or the domain
rng decomposition) has a placement leak, not the golden a stale copy.
"""

import pathlib

import pytest

from repro.__main__ import main

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

WORKER_COUNTS = (1, 2, 4)


def _golden(kind):
    return GOLDEN_DIR / ("shards_par_seed0.%s" % kind)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_trace_matches_golden(workers, tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    exit_code = main(["trace", "shards", "--seed", "0",
                      "--workers", str(workers), "--jsonl", str(out)])
    capsys.readouterr()  # swallow the rendered flow diagram
    assert exit_code == 0
    assert out.read_bytes() == _golden("trace.jsonl").read_bytes(), \
        "workers=%d merged trace diverged from the workers=1 golden" \
        % workers


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_stats_match_golden(workers, tmp_path, capsys):
    out = tmp_path / "stats.json"
    exit_code = main(["stats", "shards", "--seed", "0",
                      "--workers", str(workers), "--json", str(out)])
    capsys.readouterr()  # swallow the rendered summary
    assert exit_code == 0
    assert out.read_bytes() == _golden("stats.json").read_bytes(), \
        "workers=%d merged telemetry diverged from the workers=1 golden" \
        % workers


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_check_matches_golden(workers, tmp_path, capsys):
    out = tmp_path / "check.json"
    exit_code = main(["check", "shards", "--seed", "0",
                      "--workers", str(workers), "--json", str(out)])
    capsys.readouterr()  # swallow the rendered report
    assert exit_code == 0
    assert out.read_bytes() == _golden("check.json").read_bytes(), \
        "workers=%d conformance report diverged from the workers=1 golden" \
        % workers
