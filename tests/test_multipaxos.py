"""Tests for Multi-Paxos: the replicated log, the phase-1 amortisation,
leader failover, and client semantics."""

from repro.protocols.multipaxos import run_multipaxos
from repro.smr import KVStateMachine, check_log_consistency


class TestNormalOperation:
    def test_clients_complete_and_logs_agree(self, cluster):
        result = run_multipaxos(cluster, n_replicas=3, n_clients=2,
                                commands_per_client=5)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()

    def test_log_is_gap_free_and_ordered(self, cluster):
        result = run_multipaxos(cluster, n_replicas=3, n_clients=1,
                                commands_per_client=6)
        log = result.replicas[0].committed_log()
        indices = [index for index, _ in log]
        assert indices == list(range(len(indices)))

    def test_state_machines_apply_in_log_order(self, cluster):
        result = run_multipaxos(cluster, n_replicas=3, n_clients=1,
                                commands_per_client=4)
        cluster.sim.run_for(30.0)  # commits drain to followers
        leader_history = None
        for replica in result.replicas:
            history = replica.state_machine.history
            if leader_history is None or len(history) > len(leader_history):
                leader_history = history
        # Every replica's history is a prefix of the longest one.
        for replica in result.replicas:
            history = replica.state_machine.history
            assert history == leader_history[: len(history)]

    def test_client_results_are_log_positions(self, cluster):
        result = run_multipaxos(cluster, n_replicas=3, n_clients=1,
                                commands_per_client=5)
        assert result.clients[0].results == [0, 1, 2, 3, 4]

    def test_five_replicas(self, make_cluster):
        result = run_multipaxos(make_cluster(seed=4), n_replicas=5,
                                n_clients=2, commands_per_client=4)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()


class TestPhaseOneAmortisation:
    """The slides' optimisation: phase 1 only on leader change."""

    def test_single_prepare_for_many_commands(self, cluster):
        run_multipaxos(cluster, n_replicas=3, n_clients=1,
                       commands_per_client=10)
        by_type = cluster.metrics.by_type
        # One bootstrap election: n-1 prepare messages, regardless of the
        # number of commands.
        assert by_type["mpprepare"] == 2
        assert by_type["mpaccept"] >= 10 * 2

    def test_steady_state_cost_per_command(self, make_cluster):
        # Marginal cost of extra commands excludes any phase-1 traffic.
        costs = {}
        for k in (5, 15):
            cluster = make_cluster(seed=2)
            run_multipaxos(cluster, n_replicas=3, n_clients=1,
                           commands_per_client=k)
            costs[k] = cluster.metrics.by_type["mpprepare"]
        assert costs[5] == costs[15]  # prepares don't scale with commands


class TestLeaderFailover:
    def test_view_change_after_leader_crash(self, make_cluster):
        result = run_multipaxos(make_cluster(seed=9), n_replicas=5,
                                n_clients=1, commands_per_client=8,
                                crash_leader_at=6.0)
        assert all(c.done for c in result.clients)
        assert result.logs_consistent()
        views = sum(r.view_changes for r in result.replicas)
        assert views >= 2  # bootstrap + at least one takeover

    def test_no_committed_entry_lost_on_failover(self, make_cluster):
        for seed in (3, 11, 27):
            result = run_multipaxos(make_cluster(seed=seed), n_replicas=3,
                                    n_clients=1, commands_per_client=6,
                                    crash_leader_at=8.0)
            assert all(c.done for c in result.clients), seed
            assert check_log_consistency(result.committed_logs()), seed

    def test_crashed_replica_rejoin_consistency(self, make_cluster):
        cluster = make_cluster(seed=5)
        result = run_multipaxos(cluster, n_replicas=3, n_clients=1,
                                commands_per_client=4, crash_leader_at=5.0)
        crashed = [r for r in result.replicas if r.crashed][0]
        crashed.restart()
        cluster.sim.run_for(60.0)
        assert result.logs_consistent()


class TestCustomStateMachine:
    def test_kv_state_machine_plugs_in(self, cluster):
        result = run_multipaxos(cluster, n_replicas=3, n_clients=1,
                                commands_per_client=0,
                                state_machine_factory=KVStateMachine)
        # Inject commands manually via a fresh client-less check: just
        # assert wiring produced KV machines.
        assert all(isinstance(r.state_machine, KVStateMachine)
                   for r in result.replicas)
