"""Tests for the trusted-component and hybrid-fault protocols:
MinBFT, CheapBFT, UpRight, SeeMoRe, XFT."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.protocols.cheapbft import run_cheapbft
from repro.protocols.minbft import MinBftReplica, run_minbft
from repro.protocols.seemore import run_seemore
from repro.protocols.upright import run_upright
from repro.protocols.xft import (
    in_anarchy,
    run_xft,
    run_xft_anarchy,
    run_xft_no_anarchy_control,
)


class TestMinBft:
    def test_2f_plus_1_suffices_with_usig(self, make_cluster):
        for seed in range(1, 4):
            result = run_minbft(make_cluster(seed=seed), f=1, operations=4)
            assert result.clients[0].done, seed
            assert result.logs_consistent(), seed
            assert len(result.replicas) == 3  # not 3f+1 = 4

    def test_f2_cluster(self, make_cluster):
        result = run_minbft(make_cluster(seed=9), f=2, operations=3)
        assert result.clients[0].done and result.logs_consistent()

    def test_configuration_bound(self, cluster):
        with pytest.raises(ConfigurationError):
            MinBftReplica(cluster.sim, cluster.network, "r0", ["r0", "r1"],
                          1, cluster.usig_authority)

    def test_two_phases_only(self, cluster):
        run_minbft(cluster, f=1, operations=2)
        by_type = cluster.metrics.by_type
        assert by_type["minprepare"] > 0
        assert by_type["mincommit"] > 0
        # no third phase message type exists in the module
        assert "pre-prepare" not in by_type

    def test_fewer_messages_than_pbft(self, make_cluster):
        from repro.protocols.pbft import run_pbft
        mc = make_cluster(seed=1)
        run_minbft(mc, f=1, operations=3)
        pc = make_cluster(seed=1)
        run_pbft(pc, f=1, n_clients=1, operations_per_client=3)
        assert mc.metrics.messages_total < pc.metrics.messages_total

    def test_execution_in_counter_order(self, make_cluster):
        result = run_minbft(make_cluster(seed=2), f=1, operations=5)
        for replica in result.replicas:
            counters = [counter for counter, _op in replica.executed]
            assert counters == sorted(counters)


class TestCheapBft:
    def test_fault_free_stays_in_cheaptiny(self, cluster):
        result = run_cheapbft(cluster, f=1, operations=4)
        assert result.clients[0].done
        assert result.modes() == ["tiny", "tiny", "tiny"]
        assert result.clients[0].panics_sent == 0

    def test_only_active_replicas_in_tiny_agreement(self, cluster):
        run_cheapbft(cluster, f=1, operations=3)
        by_sender = cluster.metrics.by_sender
        # The passive replica (r2) sends nothing during CheapTiny.
        assert by_sender.get("r2", 0) == 0

    def test_cheaper_than_minbft(self, make_cluster):
        cc = make_cluster(seed=1)
        run_cheapbft(cc, f=1, operations=4)
        mc = make_cluster(seed=1)
        run_minbft(mc, f=1, operations=4)
        assert cc.metrics.messages_total < mc.metrics.messages_total

    def test_active_crash_switches_to_minbft(self, make_cluster):
        for seed in (2, 5):
            result = run_cheapbft(make_cluster(seed=seed), f=1, operations=4,
                                  crash_active_at=3.0)
            assert result.clients[0].done, seed
            assert result.clients[0].panics_sent >= 1
            live_modes = [r.mode for r in result.replicas if not r.crashed]
            assert all(m == "minbft" for m in live_modes)
            assert result.logs_consistent(), seed

    def test_passive_replicas_track_state(self, cluster):
        result = run_cheapbft(cluster, f=1, operations=4)
        cluster.sim.run_for(30.0)
        passive = result.replicas[2]
        assert len(passive.executed) == 4

    def test_f2_switch(self, make_cluster):
        result = run_cheapbft(make_cluster(seed=3), f=2, operations=3,
                              crash_active_at=3.0)
        assert result.clients[0].done and result.logs_consistent()


class TestUpRight:
    def test_nodes_formula_3m_2c_1(self, cluster):
        result = run_upright(cluster, m=1, c=1, operations=2)
        assert len(result.replicas) == 6
        assert result.replicas[0].quorum == 4  # 2m+c+1
        assert result.clients[0].done

    def test_tolerates_exactly_m_and_c(self, make_cluster):
        result = run_upright(make_cluster(seed=2), m=1, c=1, operations=3,
                             crash_indices=(5,), silent_indices=(4,))
        assert result.clients[0].done
        assert result.logs_consistent()

    def test_stalls_beyond_budget(self, make_cluster):
        result = run_upright(make_cluster(seed=3), m=1, c=1, operations=2,
                             crash_indices=(4, 5), silent_indices=(3,),
                             horizon=300.0)
        assert not result.clients[0].done  # liveness gone
        assert result.logs_consistent()    # safety intact

    def test_degenerate_paxos_mode(self, make_cluster):
        # m=0: n=2c+1, quorum c+1 — Paxos arithmetic.
        result = run_upright(make_cluster(seed=4), m=0, c=1, operations=2)
        assert len(result.replicas) == 3
        assert result.replicas[0].quorum == 2
        assert result.clients[0].done


class TestSeeMoRe:
    @pytest.mark.parametrize("mode", [1, 2, 3])
    def test_all_modes_complete(self, make_cluster, mode):
        result = run_seemore(make_cluster(seed=mode), mode=mode, m=1, c=1,
                             operations=3)
        assert result.clients[0].done
        assert result.logs_consistent()

    def test_mode1_centralized_quorum(self, cluster):
        result = run_seemore(cluster, mode=1, m=1, c=1, operations=1)
        replica = result.replicas[0]
        assert replica._quorum() == 4  # 2m+c+1

    def test_modes23_proxy_quorum(self, make_cluster):
        for mode in (2, 3):
            result = run_seemore(make_cluster(seed=mode), mode=mode, m=1,
                                 c=1, operations=1)
            replica = result.replicas[0]
            assert replica._quorum() == 3  # 2m+1

    def test_mode3_has_validation_phase(self, make_cluster):
        cluster = make_cluster(seed=3)
        run_seemore(cluster, mode=3, m=1, c=1, operations=2)
        assert cluster.metrics.by_type["smvalidate"] > 0

    def test_mode2_skips_validation(self, make_cluster):
        cluster = make_cluster(seed=2)
        run_seemore(cluster, mode=2, m=1, c=1, operations=2)
        assert cluster.metrics.by_type.get("smvalidate", 0) == 0

    def test_message_cost_ordering(self, make_cluster):
        costs = {}
        for mode in (1, 2, 3):
            cluster = make_cluster(seed=7)
            run_seemore(cluster, mode=mode, m=1, c=1, operations=3)
            costs[mode] = cluster.metrics.messages_total
        assert costs[1] < costs[2] < costs[3]

    def test_untrusted_primary_sits_in_public_cloud(self, make_cluster):
        result = run_seemore(make_cluster(seed=5), mode=3, m=1, c=1,
                             operations=1)
        replica = result.replicas[0]
        assert replica.primary_name.startswith("pub")


class TestXft:
    def test_anarchy_predicate(self):
        assert in_anarchy(3, crashed=0, byzantine=1, partitioned=1)
        assert not in_anarchy(3, crashed=1, byzantine=0, partitioned=1)
        assert not in_anarchy(3, crashed=0, byzantine=1, partitioned=0)
        assert not in_anarchy(5, crashed=1, byzantine=1, partitioned=0)
        assert in_anarchy(5, crashed=2, byzantine=1, partitioned=0)

    def test_common_case_2f_plus_1_two_phases(self, cluster):
        result = run_xft(cluster, f=1, operations=3)
        assert result.clients[0].done
        assert len(result.replicas) == 3
        assert result.logs_consistent()

    def test_group_crash_triggers_view_change(self, make_cluster):
        result = run_xft(make_cluster(seed=2), f=1, operations=3,
                         crash_group_member_at=3.0)
        assert result.clients[0].done
        assert result.logs_consistent()
        live_views = [r.view for r in result.replicas if not r.crashed]
        assert max(live_views) >= 1

    def test_cheaper_than_pbft(self, make_cluster):
        from repro.protocols.pbft import run_pbft
        xc = make_cluster(seed=1)
        run_xft(xc, f=1, operations=3)
        pc = make_cluster(seed=1)
        run_pbft(pc, f=1, n_clients=1, operations_per_client=3)
        assert xc.metrics.messages_total < pc.metrics.messages_total

    def test_anarchy_divergence(self, make_cluster):
        result = run_xft_anarchy(make_cluster(seed=3))
        assert not result.logs_consistent()
        honest = {r.name: dict(r.executed) for r in result.replicas
                  if r.name in ("r1", "r2")}
        assert honest["r1"][0] != honest["r2"][0]

    def test_no_anarchy_control_safe(self, make_cluster):
        result = run_xft_no_anarchy_control(make_cluster(seed=3))
        assert result.logs_consistent()
