"""Tests for Ben-Or randomized consensus — the FLP circumvention."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.net import AsynchronousModel
from repro.protocols.benor import BenOrNode, run_benor


class TestSafety:
    def test_agreement_across_many_seeds(self, make_cluster):
        for seed in range(12):
            result = run_benor(make_cluster(seed=seed), n=5, f=1)
            assert result.agreement(), seed
            assert result.all_decided(), seed

    def test_validity_unanimous_input_decided_in_round_one(self, cluster):
        result = run_benor(cluster, n=5, f=1, initial_values=[1] * 5)
        assert result.decided_values() == [1] * 5
        assert result.max_round() == 1

    def test_validity_unanimous_zero(self, cluster):
        result = run_benor(cluster, n=5, f=1, initial_values=[0] * 5)
        assert result.decided_values() == [0] * 5

    def test_decided_value_was_an_input(self, make_cluster):
        for seed in range(6):
            result = run_benor(make_cluster(seed=seed), n=5, f=1,
                               initial_values=[0, 0, 1, 1, 1])
            values = set(result.decided_values())
            assert values <= {0, 1}

    def test_configuration_bound(self, cluster):
        with pytest.raises(ConfigurationError):
            BenOrNode(cluster.sim, cluster.network, "p0", ["p0", "p1"],
                      0, f=1)


class TestLiveness:
    def test_terminates_despite_crash(self, make_cluster):
        for seed in range(8):
            result = run_benor(make_cluster(seed=seed), n=5, f=1,
                               crash_indices=(4,))
            assert result.all_decided(), seed
            assert result.agreement(), seed

    def test_terminates_under_adversarial_asynchrony(self, make_cluster):
        # FLP's setting: unbounded delays with heavy tails — the coin
        # still gets us out.
        rounds = []
        for seed in range(10):
            cluster = make_cluster(
                seed=seed,
                delivery=AsynchronousModel(mean=1.0, tail_prob=0.15,
                                           tail_factor=30.0),
            )
            result = run_benor(cluster, n=5, f=1, crash_indices=(0,))
            assert result.all_decided(), seed
            rounds.append(result.max_round())
        assert max(rounds) <= 50  # probabilistic but fast in practice

    def test_split_inputs_need_more_rounds_than_unanimous(self, make_cluster):
        split_rounds, unanimous_rounds = [], []
        for seed in range(8):
            split = run_benor(make_cluster(seed=seed), n=5, f=1,
                              initial_values=[0, 1, 0, 1, 0])
            unanimous = run_benor(make_cluster(seed=seed + 100), n=5, f=1,
                                  initial_values=[1] * 5)
            split_rounds.append(split.max_round())
            unanimous_rounds.append(unanimous.max_round())
        assert max(unanimous_rounds) == 1
        assert max(split_rounds) >= 2
