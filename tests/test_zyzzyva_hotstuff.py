"""Tests for the optimistic/linear BFT protocols: Zyzzyva and HotStuff."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.net import SynchronousModel
from repro.protocols.hotstuff import (
    ChainedHotStuffReplica,
    run_basic_hotstuff,
    run_chained_hotstuff,
)
from repro.protocols.zyzzyva import ZyzzyvaReplica, run_zyzzyva


class TestZyzzyvaCase1:
    def test_all_healthy_completes_fast(self, cluster):
        result = run_zyzzyva(cluster, f=1, operations=4)
        ones, twos = result.case_counts()
        assert (ones, twos) == (4, 0)
        assert result.logs_consistent()

    def test_case1_single_phase_latency(self, make_cluster):
        cluster = make_cluster(seed=1, delivery=SynchronousModel(1.0))
        result = run_zyzzyva(cluster, f=1, operations=2)
        # request (1) + order (1) + spec-reply (1) = 3 one-way delays.
        assert result.clients[0].latencies[0] == pytest.approx(3.0)

    def test_speculative_faster_than_pbft(self, make_cluster):
        from repro.protocols.pbft import run_pbft
        zc = make_cluster(seed=1, delivery=SynchronousModel(1.0))
        zyz = run_zyzzyva(zc, f=1, operations=2)
        pc = make_cluster(seed=1, delivery=SynchronousModel(1.0))
        pbft = run_pbft(pc, f=1, n_clients=1, operations_per_client=2)
        assert zyz.clients[0].latencies[0] < pbft.clients[0].latencies[0]

    def test_linear_message_complexity(self, make_cluster):
        counts = {}
        for f in (1, 2, 3):
            cluster = make_cluster(seed=2)
            run_zyzzyva(cluster, f=f, operations=2)
            counts[3 * f + 1] = cluster.metrics.messages_total
        assert counts[10] < 4 * counts[4]  # linear-ish


class TestZyzzyvaCase2:
    def test_silent_replica_forces_commit_certificate(self, make_cluster):
        for seed in (2, 5):
            result = run_zyzzyva(make_cluster(seed=seed), f=1, operations=3,
                                 slow_replicas=(3,))
            ones, twos = result.case_counts()
            assert twos == 3 and ones == 0
            assert result.clients[0].done

    def test_case2_slower_than_case1(self, make_cluster):
        fast = run_zyzzyva(make_cluster(seed=1), f=1, operations=2)
        slow = run_zyzzyva(make_cluster(seed=1), f=1, operations=2,
                           slow_replicas=(3,))
        assert min(slow.clients[0].latencies) > max(fast.clients[0].latencies)

    def test_commit_cert_requires_2f_plus_1(self, cluster):
        names = ["r%d" % i for i in range(4)]
        replicas = cluster.add_nodes(ZyzzyvaReplica, names, names, 1)
        from repro.protocols.zyzzyva import CommitCert
        replica = replicas[1]
        replica.handle_commitcert(CommitCert(0, 5, "h", ("r0", "r1")), "r0")
        assert replica.max_cc_seq == -1  # 2 < 2f+1: rejected
        replica.handle_commitcert(CommitCert(0, 5, "h", ("r0", "r1", "r2")),
                                  "r0")
        assert replica.max_cc_seq == 5

    def test_configuration_bound(self, cluster):
        with pytest.raises(ConfigurationError):
            ZyzzyvaReplica(cluster.sim, cluster.network, "r0",
                           ["r0", "r1"], 1)


class TestBasicHotStuff:
    def test_seven_exchanges_end_to_end(self, make_cluster):
        cluster = make_cluster(seed=1, delivery=SynchronousModel(1.0))
        result = run_basic_hotstuff(cluster, f=1, operations=2)
        client = result.clients[0]
        assert client.done
        # request + (prepare, votes, pre-commit, votes, commit, votes,
        # decide) = 1 + 7 one-way exchanges.
        assert client.latencies[0] == pytest.approx(8.0)
        assert result.logs_consistent()

    def test_qc_phases_marked(self, cluster):
        run_basic_hotstuff(cluster, f=1, operations=1)
        phases = cluster.metrics.phases_for("hotstuff")
        assert phases == ["prepare", "pre-commit", "commit", "decide"]

    def test_linear_complexity_vs_pbft(self, make_cluster):
        hot, pbft = {}, {}
        from repro.protocols.pbft import run_pbft
        for f in (1, 2, 3):
            n = 3 * f + 1
            ch = make_cluster(seed=1)
            run_basic_hotstuff(ch, f=f, operations=2)
            hot[n] = ch.metrics.messages_total / 2
            cp = make_cluster(seed=1)
            run_pbft(cp, f=f, n_clients=1, operations_per_client=2)
            pbft[n] = cp.metrics.messages_total / 2
        # Growth factor from n=4 to n=10: HotStuff ~linear, PBFT ~quadratic.
        assert hot[10] / hot[4] < pbft[10] / pbft[4]

    def test_leader_rotates_per_commit(self, cluster):
        result = run_basic_hotstuff(cluster, f=1, operations=3)
        views = {r.view for r in result.replicas}
        assert max(views) >= 3  # one rotation per decided command


class TestChainedHotStuff:
    def test_pipeline_decides_all_commands(self, make_cluster):
        result = run_chained_hotstuff(make_cluster(seed=2), f=1, commands=8)
        for replica in result.replicas:
            assert [c for c in replica.decided if c.startswith("cmd")] == \
                ["cmd-%d" % i for i in range(8)]

    def test_one_block_per_view_at_steady_state(self, make_cluster):
        result = run_chained_hotstuff(make_cluster(seed=2), f=1, commands=12)
        replica = result.replicas[0]
        # Views consumed ≈ commands + pipeline depth (3) + bootstrap.
        assert replica.view <= 12 + 6

    def test_prefix_consistency(self, make_cluster):
        for seed in (2, 9):
            result = run_chained_hotstuff(make_cluster(seed=seed), f=1,
                                          commands=6)
            assert result.logs_consistent(), seed

    def test_crashed_leader_recovered_by_pacemaker(self, make_cluster):
        for seed in (3, 13):
            result = run_chained_hotstuff(make_cluster(seed=seed), f=1,
                                          commands=5, crash_leader_at=4.0)
            live = [r for r in result.replicas if not r.crashed]
            for replica in live:
                decided_cmds = {c for c in replica.decided
                                if c.startswith("cmd")}
                assert decided_cmds == {"cmd-%d" % i for i in range(5)}, seed
            assert result.logs_consistent(), seed

    def test_safety_rule_rejects_stale_fork(self, cluster):
        from repro.crypto import ThresholdScheme
        names = ["r%d" % i for i in range(4)]
        scheme = ThresholdScheme(3, names)
        replicas = cluster.add_nodes(
            ChainedHotStuffReplica, names, names, 1, scheme, ["c1"]
        )
        replica = replicas[0]
        replica.view = 10
        from repro.protocols.hotstuff import Block, Proposal
        stale = Block(3, "nonexistent", "evil", 2, None)
        replica.handle_proposal(Proposal(stale), replica.leader_of(3))
        assert stale.hash not in replica.blocks  # view too old: dropped
