"""Tests for single-decree Paxos: agreement, validity, fault tolerance,
the livelock figure, and quorum-safety foundations."""

import pytest

from repro.core import CCPhase, MajorityQuorum
from repro.net import SynchronousModel
from repro.protocols.paxos import (
    FixedBackoff,
    RandomizedBackoff,
    chosen_value,
    run_basic_paxos,
)
from repro.trace import assert_quorum_before_decide


class TestBasicAgreement:
    def test_single_proposer_decides_own_value(self, make_cluster):
        cluster = make_cluster(trace=True)
        result = run_basic_paxos(cluster, n_acceptors=5, proposals=("X",))
        assert result.value == "X"
        assert result.rounds == 1
        # Causal invariant, checked on the recorded trace: the proposer's
        # decide must be causally preceded by accepted-acks from a
        # majority quorum (3 of 5) for the deciding ballot — counting
        # messages can't catch a decide that races ahead of its quorum.
        assert_quorum_before_decide(cluster.trace, "decide", "acceptedmsg",
                                    quorum=3, link_keys=("ballot",))

    def test_three_acceptors_minimum_cluster(self, cluster):
        result = run_basic_paxos(cluster, n_acceptors=3, proposals=("V",))
        assert result.value == "V"

    def test_all_acceptors_learn_decision(self, cluster):
        result = run_basic_paxos(cluster, n_acceptors=5, proposals=("X",))
        cluster.sim.run_for(20.0)  # let decide messages drain
        assert all(a.decided == "X" for a in result.acceptors)

    def test_competing_proposers_agree(self, make_cluster):
        for seed in range(8):
            cluster = make_cluster(seed=seed)
            result = run_basic_paxos(
                cluster, proposals=("X", "Y"),
                retry=RandomizedBackoff(), stagger=1.0,
            )
            assert result.agreed
            assert result.value in ("X", "Y")

    def test_decided_value_was_proposed(self, make_cluster):
        # Validity: only a proposed value may be chosen.
        for seed in range(5):
            result = run_basic_paxos(
                make_cluster(seed=seed), proposals=("A", "B", "C"),
                retry=RandomizedBackoff(), stagger=0.7,
            )
            assert result.value in ("A", "B", "C")


class TestFaultTolerance:
    def test_survives_minority_crashes(self, cluster):
        result = run_basic_paxos(
            cluster, n_acceptors=5, proposals=("X",), crash_acceptors=(0, 1)
        )
        assert result.value == "X"

    def test_blocks_on_majority_crashes(self, cluster):
        result = run_basic_paxos(
            cluster, n_acceptors=5, proposals=("X",),
            crash_acceptors=(0, 1, 2), horizon=120.0, max_rounds=5,
        )
        assert not result.agreed  # liveness lost, safety intact

    def test_chosen_value_matches_decision(self, cluster):
        result = run_basic_paxos(cluster, n_acceptors=5, proposals=("X",))
        quorums = MajorityQuorum([a.name for a in result.acceptors])
        assert chosen_value(result.acceptors, quorums) == "X"


class TestLivelock:
    """The liveness figure: dueling proposers P3.1/P3.5/P4.1/P5.5."""

    def test_fixed_backoff_livelocks(self, make_cluster):
        cluster = make_cluster(seed=3, delivery=SynchronousModel(1.0))
        result = run_basic_paxos(
            cluster, proposals=("X", "Y"),
            retry=FixedBackoff(2.0), stagger=1.0, horizon=200.0,
        )
        assert not result.agreed
        assert result.rounds > 50  # many preempting rounds, zero progress

    def test_randomized_backoff_restores_liveness(self, make_cluster):
        # The paper's fix: "randomized delay before restarting".
        for seed in range(6):
            cluster = make_cluster(seed=seed, delivery=SynchronousModel(1.0))
            result = run_basic_paxos(
                cluster, proposals=("X", "Y"),
                retry=RandomizedBackoff(2.0, 8.0), stagger=1.0, horizon=500.0,
            )
            assert result.agreed, "seed %d should decide" % seed

    def test_livelock_preserves_safety(self, make_cluster):
        cluster = make_cluster(seed=3, delivery=SynchronousModel(1.0))
        result = run_basic_paxos(
            cluster, proposals=("X", "Y"),
            retry=FixedBackoff(2.0), stagger=1.0, horizon=150.0,
        )
        quorums = MajorityQuorum([a.name for a in result.acceptors])
        # Nothing was chosen by a full quorum at a single ballot.
        assert chosen_value(result.acceptors, quorums) is None


class TestValueDiscovery:
    def test_new_leader_adopts_possibly_chosen_value(self, make_cluster):
        """A value accepted by a quorum must be recovered by later ballots
        — the safety condition the overlapping acceptor carries."""
        cluster = make_cluster(seed=1, delivery=SynchronousModel(1.0))
        # p1 decides X; later p2 (staggered far behind) must also end at X.
        result = run_basic_paxos(
            cluster, proposals=("X", "Y"), stagger=30.0,
            retry=RandomizedBackoff(),
        )
        assert result.value == "X"
        assert result.decided_values == ["X", "X"]


class TestCCTrace:
    def test_paxos_phases_in_order(self, cluster):
        result = run_basic_paxos(cluster, proposals=("X",))
        trace = result.proposers[0].trace
        assert trace.phases_seen() == [
            CCPhase.LEADER_ELECTION,
            CCPhase.VALUE_DISCOVERY,
            CCPhase.FT_AGREEMENT,
            CCPhase.DECISION,
        ]
        assert trace.is_well_ordered()


class TestMessageCounts:
    def test_two_phase_message_pattern(self, sync_cluster):
        n = 5
        result = run_basic_paxos(sync_cluster, n_acceptors=n, proposals=("X",))
        by_type = sync_cluster.metrics.by_type
        # One round: n prepares, n acks, n accepts, n accepted, decides.
        assert by_type["prepare"] == n
        assert by_type["prepareack"] == n
        assert by_type["accept"] == n
        assert by_type["acceptedmsg"] == n

    def test_linear_in_cluster_size(self, make_cluster):
        counts = {}
        for n in (3, 5, 9):
            cluster = make_cluster(seed=1, delivery=SynchronousModel(1.0))
            run_basic_paxos(cluster, n_acceptors=n, proposals=("X",))
            counts[n] = cluster.metrics.messages_total
        assert counts[9] < 4 * counts[3]  # linear-ish, not quadratic

    def test_decision_latency_two_phases(self, sync_cluster):
        result = run_basic_paxos(sync_cluster, n_acceptors=5, proposals=("X",))
        # prepare(1) + ack(1) + accept(1) + accepted(1) = 4 one-way delays.
        assert result.decided_at == pytest.approx(4.0)
