"""Unit tests for core abstractions: ballots, quorums, taxonomy, C&C."""

import pytest

from repro.core import (
    Ballot,
    ByzantineQuorum,
    CCPhase,
    CCTrace,
    FlexibleQuorum,
    GridQuorum,
    HybridQuorum,
    MajorityQuorum,
    PAXOS_DECOMPOSITION,
    TWO_PC_DECOMPOSITION,
    THREE_PC_DECOMPOSITION,
    bft_minimum_nodes,
    crash_minimum_nodes,
    hybrid_minimum_nodes,
)
from repro.core.registry import all_profiles, get_profile
from repro.core.taxonomy import FailureModel


class TestBallot:
    def test_total_order_number_first(self):
        assert Ballot(2, "a") > Ballot(1, "z")

    def test_pid_breaks_ties(self):
        assert Ballot(1, "p2") > Ballot(1, "p1")

    def test_successor(self):
        ballot = Ballot(3, "p1")
        nxt = ballot.successor("p9")
        assert nxt == Ballot(4, "p9") and nxt > ballot

    def test_zero_is_minimum(self):
        assert Ballot.ZERO < Ballot(0, "a") or Ballot.ZERO == Ballot(0, "")
        assert Ballot(1, "") > Ballot.ZERO

    def test_hashable_and_stable(self):
        assert len({Ballot(1, "a"), Ballot(1, "a"), Ballot(2, "a")}) == 2


class TestMajorityQuorum:
    def test_sizes(self):
        assert MajorityQuorum(list("abc")).phase1_size() == 2
        assert MajorityQuorum(list("abcde")).phase1_size() == 3
        assert MajorityQuorum(list("abcdef")).phase1_size() == 4

    def test_intersection_guaranteed(self):
        for n in (1, 3, 4, 5):
            assert MajorityQuorum(["n%d" % i for i in range(n)]).intersection_guaranteed()

    def test_max_crash_faults(self):
        assert MajorityQuorum(list("abcde")).max_crash_faults() == 2

    def test_rejects_non_members(self):
        quorum = MajorityQuorum(list("abc"))
        with pytest.raises(ValueError):
            quorum.is_phase1_quorum({"x", "y"})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MajorityQuorum([])


class TestFlexibleQuorum:
    def test_condition_enforced(self):
        with pytest.raises(ValueError):
            FlexibleQuorum(list("abcdef"), 3, 3)  # 3+3 = 6, not > 6

    def test_asymmetric_quorums(self):
        quorum = FlexibleQuorum(list("abcdef"), 5, 2)
        assert quorum.is_phase2_quorum({"a", "b"})
        assert not quorum.is_phase1_quorum({"a", "b", "c", "d"})
        assert quorum.intersection_guaranteed()

    def test_replication_quorum_can_be_one(self):
        quorum = FlexibleQuorum(list("abcde"), 5, 1)
        assert quorum.is_phase2_quorum({"c"})
        assert quorum.intersection_guaranteed()


class TestGridQuorum:
    def test_rows_and_columns(self):
        grid = GridQuorum(3, 4)
        assert grid.n == 12
        assert grid.is_phase2_quorum(grid.row(0))
        assert not grid.is_phase2_quorum(grid.row(0)[:-1])
        assert grid.is_phase1_quorum(grid.column(2))

    def test_intersection(self):
        grid = GridQuorum(2, 3)
        assert grid.intersection_guaranteed()

    def test_phase2_far_below_majority(self):
        grid = GridQuorum(4, 3)  # n=12, majority=7, row=3
        assert grid.phase2_size() == 3 < 7

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GridQuorum(0, 3)


class TestByzantineQuorum:
    def test_sizes_at_3f_plus_1(self):
        quorum = ByzantineQuorum(["r%d" % i for i in range(4)])
        assert quorum.f == 1
        assert quorum.quorum_size() == 3
        assert quorum.min_intersection() == 2  # f+1
        assert quorum.weak_certificate_size() == 2

    def test_rejects_insufficient_nodes(self):
        with pytest.raises(ValueError):
            ByzantineQuorum(["a", "b", "c"], f=1)

    def test_intersection_contains_correct_node(self):
        # Any two quorums overlap in f+1 > f nodes: not all faulty.
        for f in (1, 2):
            quorum = ByzantineQuorum(["r%d" % i for i in range(3 * f + 1)], f=f)
            assert quorum.min_intersection() == f + 1


class TestHybridQuorum:
    def test_upright_arithmetic(self):
        members = ["r%d" % i for i in range(6)]  # 3*1+2*1+1
        quorum = HybridQuorum(members, m=1, c=1)
        assert quorum.quorum_size() == 4  # 2m+c+1
        assert quorum.min_intersection() == 2  # m+1

    def test_degenerates_to_paxos_and_pbft(self):
        paxos_like = HybridQuorum(["r%d" % i for i in range(3)], m=0, c=1)
        assert paxos_like.quorum_size() == 2
        pbft_like = HybridQuorum(["r%d" % i for i in range(4)], m=1, c=0)
        assert pbft_like.quorum_size() == 3

    def test_bound_enforced(self):
        with pytest.raises(ValueError):
            HybridQuorum(["a", "b", "c"], m=1, c=1)


class TestBounds:
    def test_formulas(self):
        assert bft_minimum_nodes(1) == 4
        assert bft_minimum_nodes(2) == 7
        assert crash_minimum_nodes(2) == 5
        assert hybrid_minimum_nodes(1, 1) == 6
        assert hybrid_minimum_nodes(1, 0) == bft_minimum_nodes(1)
        assert hybrid_minimum_nodes(0, 2) == crash_minimum_nodes(2)


class TestCCFramework:
    def test_paxos_implements_all_four(self):
        phases = PAXOS_DECOMPOSITION.implemented_phases()
        assert phases == [
            CCPhase.LEADER_ELECTION,
            CCPhase.VALUE_DISCOVERY,
            CCPhase.FT_AGREEMENT,
            CCPhase.DECISION,
        ]

    def test_2pc_skips_election_and_ft(self):
        assert not TWO_PC_DECOMPOSITION.implements(CCPhase.LEADER_ELECTION)
        assert not TWO_PC_DECOMPOSITION.implements(CCPhase.FT_AGREEMENT)
        assert TWO_PC_DECOMPOSITION.implements(CCPhase.DECISION)

    def test_3pc_adds_ft_agreement_back(self):
        assert THREE_PC_DECOMPOSITION.implements(CCPhase.FT_AGREEMENT)

    def test_trace_ordering(self):
        trace = CCTrace("x")
        trace.enter(CCPhase.LEADER_ELECTION, 0.0)
        trace.enter(CCPhase.VALUE_DISCOVERY, 1.0)
        trace.enter(CCPhase.LEADER_ELECTION, 2.0)  # re-election is fine
        trace.enter(CCPhase.DECISION, 3.0)
        assert trace.is_well_ordered()

    def test_trace_out_of_order_detected(self):
        trace = CCTrace("x")
        trace.enter(CCPhase.DECISION, 0.0)
        trace.enter(CCPhase.LEADER_ELECTION, 1.0)
        assert not trace.is_well_ordered()

    def test_trace_matches_decomposition(self):
        trace = CCTrace("2pc")
        trace.enter(CCPhase.VALUE_DISCOVERY, 0.0)
        trace.enter(CCPhase.DECISION, 1.0)
        assert trace.matches(TWO_PC_DECOMPOSITION)
        assert not trace.matches(THREE_PC_DECOMPOSITION)


class TestRegistry:
    def test_all_protocols_registered(self):
        import repro.protocols  # noqa: F401
        names = {p.name for p in all_profiles()}
        expected = {
            "paxos", "multi-paxos", "fast-paxos", "flexible-paxos", "raft",
            "2pc", "3pc", "pbft", "zyzzyva", "hotstuff", "minbft",
            "cheapbft", "upright", "seemore", "xft", "ben-or",
            "interactive-consistency",
        }
        assert expected <= names

    def test_profile_rows_complete(self):
        import repro.protocols  # noqa: F401
        for profile in all_profiles():
            row = profile.as_row()
            assert row["protocol"] and row["nodes"] and row["complexity"]

    def test_byzantine_protocols_need_3f_plus_1(self):
        import repro.protocols  # noqa: F401
        for name in ("pbft", "zyzzyva", "hotstuff"):
            profile = get_profile(name)
            assert profile.failure_model is FailureModel.BYZANTINE
            assert profile.nodes_label == "3f+1"
