"""Engine-level tests for the open-loop load subsystem: end-to-end
points against real protocol fleets, worker-count byte-identity for
sweeps, monitor conformance under load, and the loadtest CLI's exit
codes."""

import json

import pytest

from repro.__main__ import _parse_rate_sweep, main
from repro.load import LoadSpec, run_loadtest, run_sweep

#: Short but real: long enough for elections + a few dozen requests.
FAST = dict(rate=1.0, duration=40.0, seed=0)


def _sweep_bytes(spec, rates, workers):
    report = run_sweep(spec, rates, workers=workers)
    return json.dumps(report, sort_keys=True).encode()


class TestRunLoadtest:
    def test_multi_paxos_point_completes_cleanly(self):
        report = run_loadtest(LoadSpec(protocol="multi-paxos", **FAST))
        accounting = report["accounting"]
        assert accounting["offered"] > 10
        assert accounting["completed"] == accounting["offered"]
        assert accounting["abandoned"] == 0
        assert report["messages"] > accounting["completed"]

    def test_raft_point_completes_cleanly(self):
        report = run_loadtest(LoadSpec(protocol="raft", **FAST))
        accounting = report["accounting"]
        assert accounting["completed"] == accounting["offered"] > 10

    def test_pbft_point_completes_cleanly(self):
        report = run_loadtest(LoadSpec(protocol="pbft", **FAST))
        accounting = report["accounting"]
        assert accounting["completed"] == accounting["offered"] > 10

    def test_same_spec_reports_byte_identical(self):
        spec = LoadSpec(protocol="multi-paxos", slo=20.0, **FAST)
        a = json.dumps(run_loadtest(spec), sort_keys=True)
        b = json.dumps(run_loadtest(spec), sort_keys=True)
        assert a == b

    def test_monitors_green_below_saturation(self):
        report = run_loadtest(LoadSpec(protocol="multi-paxos",
                                       monitors=True, **FAST))
        assert report["monitors"]["monitors"] > 0
        assert report["monitors"]["anomalies"] == 0
        assert report["monitors"]["ok"]

    def test_shards_point_stays_consistent(self):
        report = run_loadtest(LoadSpec(protocol="shards", rate=0.5,
                                       duration=40.0, seed=0))
        assert report["consistent"]
        assert report["accounting"]["completed"] > 0

    def test_diurnal_storm_point_runs(self):
        report = run_loadtest(LoadSpec(protocol="multi-paxos",
                                       arrivals="diurnal", storm=True,
                                       **FAST))
        assert report["accounting"]["completed"] > 10
        assert report["spec"]["storm"] is True

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(protocol="nope")
        with pytest.raises(ValueError):
            LoadSpec(arrivals="weekly")
        with pytest.raises(ValueError):
            LoadSpec(rate=0.0)
        with pytest.raises(ValueError):
            LoadSpec(injectors=0)


class TestSweep:
    def test_workers_do_not_change_the_bytes(self):
        # The ISSUE's headline determinism claim: a sweep is a set of
        # independent same-seed simulations, so the fork pool only
        # changes the wall clock — never the report.
        spec = LoadSpec(protocol="multi-paxos", duration=30.0, seed=0)
        rates = (1.0, 2.0)
        serial = _sweep_bytes(spec, rates, workers=1)
        forked = _sweep_bytes(spec, rates, workers=2)
        assert serial == forked

    def test_sweep_orders_rates_and_reports_knee_field(self):
        spec = LoadSpec(protocol="multi-paxos", duration=30.0, seed=0)
        report = run_sweep(spec, (2.0, 1.0))
        assert [p["rate"] for p in report["points"]] == [1.0, 2.0]
        assert "knee" in report


class TestRateSweepParsing:
    def test_default_and_explicit_counts(self):
        assert _parse_rate_sweep("1..9") == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert _parse_rate_sweep("1..8:4") == [1.0, 3.333333, 5.666667, 8.0]

    @pytest.mark.parametrize("text", ["8..1", "0..4", "x..y", "1..8:1",
                                      "1..8:x", "nope", "-1..4"])
    def test_rejects_malformed(self, text):
        assert _parse_rate_sweep(text) is None


class TestLoadtestCli:
    def test_unknown_protocol_exits_2(self, capsys):
        assert main(["loadtest", "zab"]) == 2
        assert "unknown protocol" in capsys.readouterr().out

    def test_rate_and_sweep_exclusive(self, capsys):
        assert main(["loadtest", "multi-paxos", "--rate", "1",
                     "--sweep", "1..4"]) == 2

    def test_workers_require_a_sweep(self, capsys):
        assert main(["loadtest", "multi-paxos", "--rate", "1",
                     "--workers", "2"]) == 2

    def test_bad_sweep_exits_2(self, capsys):
        assert main(["loadtest", "multi-paxos", "--sweep", "8..1"]) == 2

    def test_clean_point_exits_0(self, capsys, tmp_path):
        out = tmp_path / "point.json"
        code = main(["loadtest", "multi-paxos", "--rate", "1",
                     "--duration", "40", "--slo", "100",
                     "--json", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["accounting"]["slo"]["violations"] == 0

    def test_slo_breach_exits_1(self, capsys):
        # An impossible objective: every completion violates it.
        code = main(["loadtest", "multi-paxos", "--rate", "1",
                     "--duration", "40", "--slo", "0.001"])
        assert code == 1
