"""Tests for the EXPERIMENTS.md report generator."""

import pathlib

from repro.analysis import collect_results, generate_experiments_md
from repro.analysis.report import EXPERIMENT_NOTES


class TestReport:
    def test_collect_orders_numerically(self, tmp_path):
        for name in ("E10_x.txt", "E2_y.txt", "E1_z.txt"):
            (tmp_path / name).write_text("table")
        results = collect_results(tmp_path)
        assert list(results) == ["E1", "E2", "E10"]

    def test_generate_includes_tables_and_notes(self, tmp_path):
        (tmp_path / "E1_table.txt").write_text("THE-TABLE")
        out = tmp_path / "OUT.md"
        path, count = generate_experiments_md(results_dir=tmp_path,
                                              output=out)
        assert count == 1
        text = out.read_text()
        assert "THE-TABLE" in text
        assert "## E1" in text

    def test_unknown_experiment_gets_placeholder(self, tmp_path):
        (tmp_path / "E99_new.txt").write_text("rows")
        out = tmp_path / "OUT.md"
        generate_experiments_md(results_dir=tmp_path, output=out)
        assert "(no commentary recorded yet)" in out.read_text()

    def test_all_current_benches_have_commentary(self):
        results = collect_results("benchmarks/results")
        missing = [eid for eid in results if eid not in EXPERIMENT_NOTES]
        assert not missing, missing

    def test_real_experiments_md_is_current(self):
        # The committed EXPERIMENTS.md must match what the generator
        # produces from the committed result artifacts.
        current = pathlib.Path("EXPERIMENTS.md").read_text()
        out = pathlib.Path("EXPERIMENTS.md.check")
        try:
            generate_experiments_md(output=out)
            assert out.read_text() == current
        finally:
            out.unlink(missing_ok=True)
