"""Tests for the SMR layer: state machines, consistency checking, and
the ReplicatedKV public API."""

import pytest

from repro.core.exceptions import SafetyViolation
from repro.smr import (
    BankStateMachine,
    KVStateMachine,
    ReplicatedKV,
    check_log_consistency,
    check_state_machines,
    common_prefix_length,
)


class TestKVStateMachine:
    def setup_method(self):
        self.sm = KVStateMachine()

    def test_put_get_delete(self):
        assert self.sm.apply(("put", "k", 1)) is None
        assert self.sm.apply(("get", "k")) == 1
        assert self.sm.apply(("put", "k", 2)) == 1
        assert self.sm.apply(("delete", "k")) == 2
        assert self.sm.apply(("get", "k")) is None

    def test_incr_from_missing(self):
        assert self.sm.apply(("incr", "c")) == 1
        assert self.sm.apply(("incr", "c", 5)) == 6

    def test_cas(self):
        self.sm.apply(("put", "k", "a"))
        assert self.sm.apply(("cas", "k", "a", "b")) is True
        assert self.sm.apply(("cas", "k", "a", "c")) is False
        assert self.sm.apply(("get", "k")) == "b"

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            self.sm.apply(("frobnicate", "k"))

    def test_malformed_command_raises(self):
        with pytest.raises(ValueError):
            self.sm.apply("not-a-tuple")

    def test_determinism(self):
        commands = [("put", "a", 1), ("incr", "b"), ("cas", "a", 1, 9),
                    ("delete", "c"), ("get", "a")]
        m1, m2 = KVStateMachine(), KVStateMachine()
        r1 = [m1.apply(c) for c in commands]
        r2 = [m2.apply(c) for c in commands]
        assert r1 == r2 and m1.snapshot() == m2.snapshot()


class TestBankStateMachine:
    def test_transfers_conserve_money(self):
        bank = BankStateMachine()
        bank.apply(("open", "a", 100))
        bank.apply(("open", "b", 50))
        total = bank.total_money()
        bank.apply(("transfer", "a", "b", 30))
        bank.apply(("transfer", "b", "a", 80))
        assert bank.total_money() == total

    def test_overdraft_rejected_deterministically(self):
        bank = BankStateMachine()
        bank.apply(("open", "a", 10))
        bank.apply(("open", "b", 0))
        assert bank.apply(("transfer", "a", "b", 100)) is False
        assert bank.transfers_rejected == 1
        assert bank.apply(("balance", "a")) == 10

    def test_double_open_rejected(self):
        bank = BankStateMachine()
        assert bank.apply(("open", "a", 10)) is True
        assert bank.apply(("open", "a", 99)) is False
        assert bank.apply(("balance", "a")) == 10


class TestCheckers:
    def test_consistent_logs_pass(self):
        logs = [[(0, "a"), (1, "b")], [(0, "a")], [(0, "a"), (1, "b"), (2, "c")]]
        assert check_log_consistency(logs)

    def test_conflict_detected(self):
        logs = [[(0, "a"), (1, "b")], [(1, "X")]]
        assert not check_log_consistency(logs)
        with pytest.raises(SafetyViolation):
            check_log_consistency(logs, raise_on_violation=True)

    def test_state_machine_divergence_detected(self):
        m1, m2 = KVStateMachine(), KVStateMachine()
        m1.apply(("put", "k", 1))
        m2.apply(("put", "k", 2))
        assert not check_state_machines([m1, m2])

    def test_unequal_progress_is_not_divergence(self):
        m1, m2 = KVStateMachine(), KVStateMachine()
        m1.apply(("put", "k", 1))
        m1.apply(("put", "j", 2))
        m2.apply(("put", "k", 1))
        assert check_state_machines([m1, m2])

    def test_common_prefix_length(self):
        logs = [[(0, "a"), (1, "b"), (2, "c")], [(0, "a"), (1, "b")]]
        assert common_prefix_length(logs) == 2


@pytest.mark.parametrize("protocol,n", [("multi-paxos", 3), ("raft", 3),
                                        ("pbft", 4)])
class TestReplicatedKV:
    def test_basic_operations(self, protocol, n):
        kv = ReplicatedKV(n_replicas=n, protocol=protocol, seed=5)
        assert kv.put("a", 1) is None
        assert kv.get("a") == 1
        assert kv.incr("counter") == 1
        assert kv.delete("a") == 1
        assert kv.get("a") is None

    def test_survives_leader_crash(self, protocol, n):
        kv = ReplicatedKV(n_replicas=n, protocol=protocol, seed=5)
        kv.put("before", "crash")
        assert kv.crash_leader() is not None
        kv.put("after", "crash")
        assert kv.get("before") == "crash"
        assert kv.get("after") == "crash"
        kv.settle()
        assert kv.check_consistency()

    def test_identical_seeds_replay_identically(self, protocol, n):
        def history(seed):
            kv = ReplicatedKV(n_replicas=n, protocol=protocol, seed=seed)
            results = [kv.put("k%d" % i, i) for i in range(3)]
            results.append(kv.cluster.now)
            return results

        assert history(9) == history(9)


class TestReplicatedKVValidation:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedKV(protocol="gossip")

    def test_pbft_needs_four(self):
        with pytest.raises(ValueError):
            ReplicatedKV(n_replicas=3, protocol="pbft")
