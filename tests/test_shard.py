"""Tests for sharded multi-group SMR: fleets, 2PC-over-consensus,
fast path, replicated decisions, crashes and live splits."""

import pytest

from repro.protocols.multipaxos import LogCommand
from repro.shard import ShardedCluster


def _cross_shard_pair(sharded):
    """Two generated keys routed to different shards."""
    first = sharded.key(0)
    for i in range(1, sharded.key_space):
        if sharded.shard_of(sharded.key(i)) != sharded.shard_of(first):
            return first, sharded.key(i)
    raise AssertionError("no cross-shard pair in the key space")


def _group_ops(group):
    """Operation names committed in a group's log (any replica)."""
    ops = set()
    for log in group.committed_logs():
        for _index, value in log:
            command = value.command if isinstance(value, LogCommand) \
                else value
            if isinstance(command, tuple):
                ops.add(command[0])
    return ops


class TestFleet:
    def test_groups_share_one_simulator_and_network(self):
        sharded = ShardedCluster(n_shards=3, replicas=3, seed=1)
        names = {node.name for node in sharded.cluster.nodes}
        for gid in ("s0", "s1", "s2"):
            for r in range(3):
                assert "%s/r%d" % (gid, r) in names
        assert len(sharded.cluster.nodes) == 9 + 2  # + coord, rebalancer
        # One virtual clock: everything advanced together during setup.
        assert sharded.now > 0

    def test_every_group_elects_independently(self):
        sharded = ShardedCluster(n_shards=3, replicas=3, seed=2)
        for group in sharded.shard_groups.values():
            leader = group.leader()
            assert leader is not None
            assert leader.name.startswith(group.gid + "/")


class TestFastPath:
    def test_single_shard_txn_skips_2pc(self):
        sharded = ShardedCluster(n_shards=2, replicas=3, seed=3)
        key = sharded.key(0)
        assert sharded.put(key, 7) == "committed"
        assert sharded.coordinator.fast_commits == 1
        assert sharded.coordinator.decisions_replicated == 0
        sharded.settle()
        ops = _group_ops(sharded.shard_groups[sharded.shard_of(key)])
        assert "txn_apply" in ops
        assert "txn_prepare" not in ops and "txn_commit" not in ops

    def test_fast_path_conflicts_still_serialize(self):
        sharded = ShardedCluster(n_shards=1, replicas=3, seed=4)
        key = sharded.key(1)
        sharded.put(key, 0)
        t1 = sharded.submit((key,), lambda r: {key: (r[key] or 0) + 1})
        t2 = sharded.submit((key,), lambda r: {key: (r[key] or 0) + 10})
        sharded.cluster.run_until(
            lambda: t1.outcome and t2.outcome, until=4000.0)
        assert t1.outcome == "committed" and t2.outcome == "committed"
        assert sharded.get(key) == 11


class TestCrossShard2PC:
    def test_commit_via_two_groups_with_monitors_green(self):
        sharded = ShardedCluster(n_shards=2, replicas=3, seed=5,
                                 monitors=True)
        a, b = _cross_shard_pair(sharded)
        sharded.put(a, 100)
        sharded.put(b, 10)
        assert sharded.transfer(a, b, 40) == "committed"
        assert sharded.get(a) == 60 and sharded.get(b) == 50
        sharded.settle()
        assert sharded.check_consistency()
        sharded.monitors.finish()
        assert sharded.monitors.ok, sharded.monitors.anomalies

    def test_commit_decision_is_replicated_in_a_shard_log(self):
        sharded = ShardedCluster(n_shards=2, replicas=3, seed=6)
        a, b = _cross_shard_pair(sharded)
        sharded.put(a, 9)
        txn = sharded.run_transaction(
            (a, b), lambda r: {a: r[a] - 1, b: (r[b] or 0) + 1})
        assert txn.outcome == "committed"
        assert sharded.coordinator.decisions_replicated == 1
        sharded.settle()
        decider = min(sharded.shard_of(a), sharded.shard_of(b))
        group = sharded.shard_groups[decider]
        assert "txn_decide" in _group_ops(group)
        for machine in group.machines():
            assert machine.decisions.get(txn.txid) == "commit"

    def test_survives_participant_replica_crash(self):
        # A minority crash inside one participant group: the group
        # re-elects and the cross-shard transaction still commits.
        sharded = ShardedCluster(n_shards=2, replicas=3, seed=7,
                                 monitors=True)
        a, b = _cross_shard_pair(sharded)
        sharded.put(a, 50)
        sharded.put(b, 50)
        crashed = sharded.crash_leader(sharded.shard_of(b))
        assert crashed is not None
        assert sharded.transfer(a, b, 25) == "committed"
        assert sharded.total_of([a, b]) == 100
        sharded.settle()
        assert sharded.check_consistency()
        sharded.monitors.finish()
        assert sharded.monitors.ok, sharded.monitors.anomalies

    def test_whole_shard_crash_mid_2pc_aborts_deterministically(self):
        def doomed(seed):
            sharded = ShardedCluster(n_shards=2, replicas=3, seed=seed)
            a, b = _cross_shard_pair(sharded)
            sharded.put(a, 50)
            victim = sharded.shard_of(b)
            # Crash the whole participant shard shortly after submit —
            # genuinely mid-2PC.
            sharded.cluster.sim.schedule(
                2.0, lambda: sharded.crash_shard(victim))
            txn = sharded.submit(
                (a, b), lambda r: {a: r[a] - 5, b: (r[b] or 0) + 5})
            sharded.cluster.run_until(lambda: txn.outcome is not None,
                                      until=sharded.now + 2000.0)
            assert txn.outcome == "aborted"
            assert sharded.coordinator.timeout_aborts >= 1
            # Locks on the surviving shard were released.
            assert sharded.run_transaction(
                (a,), lambda r: {a: r[a] + 1}).outcome == "committed"
            return txn.finished_at

        assert doomed(8) == doomed(8)


class TestProtocolMix:
    def test_raft_backed_shards_commit_cross_shard(self):
        sharded = ShardedCluster(n_shards=2, replicas=3, seed=9,
                                 protocol="raft", monitors=True)
        a, b = _cross_shard_pair(sharded)
        sharded.put(a, 30)
        assert sharded.transfer(a, b, 10) == "committed"
        sharded.settle()
        assert sharded.check_consistency()
        sharded.monitors.finish()
        assert sharded.monitors.ok, sharded.monitors.anomalies

    def test_mixed_fleet_interoperates(self):
        sharded = ShardedCluster(n_shards=4, replicas=3, seed=10,
                                 protocol="mixed", monitors=True)
        protocols = {group.protocol
                     for group in sharded.shard_groups.values()}
        assert protocols == {"multi-paxos", "raft"}
        stats = sharded.run_workload(txns=16, cross_ratio=0.5)
        assert stats["committed"] == 16
        assert stats["cross_shard"] > 0
        sharded.settle()
        assert sharded.check_consistency()
        sharded.monitors.finish()
        assert sharded.monitors.ok, sharded.monitors.anomalies


class TestLiveSplit:
    def test_split_under_traffic_conserves_totals(self):
        sharded = ShardedCluster(n_shards=2, replicas=3, seed=11,
                                 partitioning="range", key_space=64,
                                 monitors=True)
        funded = [sharded.key(i) for i in range(0, 64, 4)]
        for key in funded:
            sharded.put(key, 10)
        before = sharded.run_workload(txns=10, cross_ratio=0.5)
        assert before["committed"] == 10
        split = sharded.split_shard("s1")
        assert split["done"] and split["new_sid"] == "s2"
        assert sharded.shard_map.epoch == 1
        after = sharded.run_workload(txns=10, cross_ratio=0.5)
        assert after["committed"] == 10
        # Transfers conserve the fleet total through the migration.
        assert sharded.total_of([sharded.key(i) for i in range(64)]) \
            == 10 * len(funded)
        sharded.settle()
        assert sharded.check_consistency()
        sharded.monitors.finish()
        assert sharded.monitors.ok, sharded.monitors.anomalies

    def test_split_moves_data_and_routes_new_traffic(self):
        sharded = ShardedCluster(n_shards=2, replicas=3, seed=12,
                                 partitioning="range", key_space=32)
        moved_key = sharded.key(28)  # upper half of s1's range
        kept_key = sharded.key(17)  # lower half of s1's range
        sharded.put(moved_key, 5)
        sharded.put(kept_key, 6)
        split = sharded.split_shard("s1")
        assert sharded.shard_of(moved_key) == split["new_sid"]
        assert sharded.shard_of(kept_key) == "s1"
        # Data followed the routing; reads and writes still work.
        assert sharded.get(moved_key) == 5
        assert sharded.get(kept_key) == 6
        assert sharded.put(moved_key, 50) == "committed"
        sharded.settle()
        # The source shard tombstoned the range and dropped the data.
        source = sharded.shard_groups["s1"]
        for machine in source.machines():
            assert moved_key not in machine.data
            assert machine.moved

    def test_split_refused_for_hash_partitioning(self):
        sharded = ShardedCluster(n_shards=2, replicas=3, seed=13)
        with pytest.raises(ValueError):
            sharded.split_shard("s0", at=sharded.key(1))


class TestStats:
    def test_stats_are_deterministic(self):
        def run(seed):
            sharded = ShardedCluster(n_shards=2, replicas=3, seed=seed)
            sharded.run_workload(txns=8, cross_ratio=0.5)
            return sharded.stats()

        assert run(14) == run(14)
        stats = run(14)
        assert stats["commits"] == 8
        assert stats["shards"] == 2
        assert set(stats["per_shard"]) == {"s0", "s1"}
