"""Shared fixtures for the test suite."""

import pytest

from repro.core import Cluster
from repro.net import SynchronousModel, UniformDelayModel


@pytest.fixture
def cluster():
    """A default cluster: seed 0, mildly jittered bounded delay."""
    return Cluster(seed=0)


@pytest.fixture
def make_cluster():
    """Factory: ``make_cluster(seed=…, delivery=…, trace=…, monitors=…)``."""
    def factory(seed=0, delivery=None, trace=False, monitors=False):
        return Cluster(seed=seed, delivery=delivery, trace=trace,
                       monitors=monitors)
    return factory


@pytest.fixture
def sync_cluster():
    """Constant unit delay — for exact message-delay accounting."""
    return Cluster(seed=0, delivery=SynchronousModel(1.0))


@pytest.fixture
def jittery_cluster():
    """Wider jitter — for reordering-sensitive paths."""
    return Cluster(seed=0, delivery=UniformDelayModel(0.5, 2.5))
