"""Unit tests for the discrete-event kernel: events, clock, processes."""

import pytest

from repro.sim import (
    ClockError,
    EventLimitExceeded,
    EventQueue,
    Process,
    Simulator,
)


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.push(2.0, seen.append, (2,))
        queue.push(1.0, seen.append, (1,))
        queue.push(3.0, seen.append, (3,))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.fire()
        assert seen == [1, 2, 3]

    def test_same_time_fifo(self):
        queue = EventQueue()
        seen = []
        for i in range(5):
            queue.push(1.0, seen.append, (i,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert seen == [0, 1, 2, 3, 4]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        seen = []
        event = queue.push(1.0, seen.append, (1,))
        queue.push(2.0, seen.append, (2,))
        event.cancel()
        while (evt := queue.pop()) is not None:
            evt.fire()
        assert seen == [2]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None

    def test_len_counts_live_events_only(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        gone = queue.push(2.0, lambda: None)
        assert len(queue) == 2
        gone.cancel()
        assert len(queue) == 1
        gone.cancel()  # repeated cancel must not double-decrement
        assert len(queue) == 1
        queue.pop()
        assert len(queue) == 0
        keep.cancel()  # cancel after pop: no longer queued, no effect
        assert len(queue) == 0

    def test_pop_next_horizon_leaves_future_events_queued(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(10.0, lambda: None)
        assert queue.pop_next(5.0).time == 1.0
        # The 10.0 event is beyond the horizon: not popped, still live.
        assert queue.pop_next(5.0) is None
        assert len(queue) == 1
        assert queue.pop_next().time == 10.0

    def test_pop_next_discards_cancelled_before_horizon_check(self):
        queue = EventQueue()
        stale = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        stale.cancel()
        event = queue.pop_next(5.0)
        assert event.time == 2.0 and not event.cancelled

    def test_compaction_drops_cancelled_majority(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # Compaction fired along the way: the heap has shed the bulk of
        # its corpses (never holding more than 2x the live count once
        # past COMPACT_MIN), and live events plus their order survive.
        assert len(queue._heap) <= 2 * len(queue)
        assert len(queue._heap) < 200
        assert len(queue) == 50
        popped = [queue.pop().time for _ in range(50)]
        assert popped == [float(i) for i in range(150, 200)]

    def test_no_compaction_below_min_heap_size(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        for event in events[:9]:
            event.cancel()
        # Tiny heaps keep their corpses (rebuild costs more than sifting).
        assert len(queue._heap) == 10
        assert len(queue) == 1


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ClockError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ClockError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        sim.run()  # drain the rest
        assert fired == ["a", "b"]

    def test_stop_when_predicate(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(stop_when=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_event_limit_guards_livelock(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(EventLimitExceeded):
            sim.run(max_events=100)

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [(1, None)] or fired[0] is not None
        assert len(fired) == 1

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        stale = sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        stale.cancel()
        # The old implementation reported the raw heap size, so a pile
        # of cancelled retransmit timers inflated the number.
        assert sim.pending_events == 1

    def test_determinism_same_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            values = []
            for _ in range(20):
                sim.schedule(sim.rng.random() * 10, values.append, sim.rng.random())
            sim.run()
            return values

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [3.0]


class TestProcess:
    def test_on_start_called(self):
        sim = Simulator()

        class P(Process):
            started = False

            def on_start(self):
                self.started = True

        proc = P(sim, "p")
        proc.start()
        sim.run()
        assert proc.started

    def test_double_start_is_idempotent(self):
        sim = Simulator()
        count = []

        class P(Process):
            def on_start(self):
                count.append(1)

        proc = P(sim, "p")
        proc.start()
        proc.start()
        sim.run()
        assert count == [1]

    def test_crash_cancels_timers(self):
        sim = Simulator()
        fired = []
        proc = Process(sim, "p")
        proc.set_timer(5.0, fired.append, 1)
        sim.schedule(1.0, proc.crash)
        sim.run()
        assert fired == []
        assert proc.crashed

    def test_periodic_timer_repeats(self):
        sim = Simulator()
        fired = []
        proc = Process(sim, "p")
        proc.set_periodic_timer(1.0, lambda: fired.append(sim.now))
        sim.run(until=4.5)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_timer_cancel(self):
        sim = Simulator()
        fired = []
        proc = Process(sim, "p")
        timer = proc.set_timer(1.0, fired.append, 1)
        timer.cancel()
        sim.run()
        assert fired == [] and not timer.active

    def test_restart_hooks(self):
        sim = Simulator()
        log = []

        class P(Process):
            def on_crash(self):
                log.append("crash")

            def on_restart(self):
                log.append("restart")

        proc = P(sim, "p")
        proc.crash()
        proc.restart()
        proc.restart()  # no-op when not crashed
        assert log == ["crash", "restart"]

    def test_timers_dead_after_crash_restart(self):
        sim = Simulator()
        fired = []
        proc = Process(sim, "p")
        proc.set_periodic_timer(1.0, fired.append, 1)
        sim.schedule(2.5, proc.crash)
        sim.schedule(3.0, proc.restart)
        sim.run(until=6.0)
        # Only the pre-crash firings; restart does not resurrect timers.
        assert len(fired) == 2
