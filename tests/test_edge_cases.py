"""Targeted edge-case tests for paths the scenario tests pass over."""




class TestFastPaxosRecoveryRule:
    """The collision-recovery value rule: a value reported by >= f+1
    replicas might have been chosen by an unobserved fast quorum and MUST
    be re-proposed."""

    def _leader(self, cluster):
        from repro.protocols.fast_paxos import FastPaxosLeader, FastPaxosReplica
        names = ["r%d" % i for i in range(4)]
        leader = cluster.add_node(FastPaxosLeader, "leader", names, 1)
        cluster.add_nodes(FastPaxosReplica, names, "leader")
        return leader

    def test_possibly_chosen_value_wins_recovery(self, cluster):
        from repro.protocols.fast_paxos import FastAccepted
        leader = self._leader(cluster)
        # 2 votes X (= f+1, possibly chosen), 2 votes Y arriving later
        # can't change that X is the only recoverable candidate once the
        # split is 2-2... feed 2 X then 1 Y then 1 Y: at the 4th vote the
        # collision triggers with counts {X: 2, Y: 2}; X and Y are both
        # f+1 candidates, so the count tie-break picks deterministically.
        for src, value in (("r0", "X"), ("r1", "X"), ("r2", "Y"), ("r3", "Y")):
            leader.handle_fastaccepted(FastAccepted(1, value), src)
        assert leader.collision
        cluster.run(until=50.0)
        assert leader.decided in ("X", "Y")

    def test_majority_reported_value_is_the_proposal(self, cluster):
        from repro.protocols.fast_paxos import FastAccepted
        leader = self._leader(cluster)
        # 3 votes X = fast quorum: decided without any collision.
        for src in ("r0", "r1", "r2"):
            leader.handle_fastaccepted(FastAccepted(1, "X"), src)
        assert leader.decided == "X" and not leader.collision

    def test_stale_round_votes_ignored(self, cluster):
        from repro.protocols.fast_paxos import FastAccepted
        leader = self._leader(cluster)
        leader.handle_fastaccepted(FastAccepted(99, "stale"), "r0")
        assert not leader.fast_votes


class TestHotStuffChainWalk:
    def test_extends_handles_unknown_parent(self, cluster):
        from repro.crypto import ThresholdScheme
        from repro.protocols.hotstuff import Block, ChainedHotStuffReplica
        names = ["r%d" % i for i in range(4)]
        scheme = ThresholdScheme(3, names)
        replicas = cluster.add_nodes(ChainedHotStuffReplica, names, names,
                                     1, scheme, ["c"])
        replica = replicas[0]
        orphan = Block(5, "missing-parent", "cmd", 4, None)
        assert not replica._extends(orphan, "anything")

    def test_vote_quorum_is_exact(self, cluster):
        from repro.crypto import ThresholdScheme
        from repro.protocols.hotstuff import (ChainedHotStuffReplica, GENESIS,
                                              GenericVote)
        names = ["r%d" % i for i in range(4)]
        scheme = ThresholdScheme(3, names)
        replicas = cluster.add_nodes(ChainedHotStuffReplica, names, names,
                                     1, scheme, ["c"])
        collector = replicas[2]  # leader of view 2 collects view-1 votes
        for voter in names[:2]:
            vote = GenericVote(1, GENESIS.hash,
                               scheme.sign_share(voter, 1, GENESIS.hash))
            collector.handle_genericvote(vote, voter)
        assert collector.high_qc[0] == 0  # 2 < 2f+1: no QC yet
        vote = GenericVote(1, GENESIS.hash,
                           scheme.sign_share(names[2], 1, GENESIS.hash))
        collector.handle_genericvote(vote, names[2])
        assert collector.high_qc[0] == 1  # QC formed at exactly 2f+1


class TestSeeMoReFaults:
    def test_mode1_tolerates_public_crash(self, make_cluster):
        from repro.protocols.seemore import run_seemore
        cluster = make_cluster(seed=9)
        result = run_seemore(cluster, mode=1, m=1, c=1, operations=2)
        assert result.clients[0].done  # baseline sanity

    def test_mode2_tolerates_m_byzantine_silent_proxies(self, make_cluster):
        from repro.faults import Silence
        from repro.protocols.seemore import run_seemore
        cluster = make_cluster(seed=10)
        Silence(cluster, "pub0").install()  # one of 3m+1=4 proxies silent
        result = run_seemore(cluster, mode=2, m=1, c=1, operations=2)
        assert result.clients[0].done
        assert result.logs_consistent()


class TestUsigEdgeCases:
    def test_gap_buffer_drains_in_order(self, cluster):
        from repro.core import Node
        from repro.protocols.minbft import MinBftReplica, MinPrepare, MinRequest
        names = ["r0", "r1", "r2"]
        replicas = cluster.add_nodes(MinBftReplica, names, names, 1,
                                     cluster.usig_authority)
        cluster.add_node(Node, "cX")  # reply sink
        primary, backup = replicas[0], replicas[1]
        requests = [MinRequest("op-%d" % i, float(i), "cX") for i in range(3)]
        uis = [primary.usig.create_ui("prepare", 0, r.operation, r.client,
                                      r.timestamp) for r in requests]
        # Deliver out of order: 3, 1, 2 — all must land, in counter order.
        for index in (2, 0, 1):
            backup.handle_minprepare(MinPrepare(0, requests[index],
                                                uis[index]), "r0")
        assert sorted(backup._pending) == [1, 2, 3]

    def test_forged_ui_never_accepted(self, cluster):
        from repro.crypto import UI
        from repro.protocols.minbft import MinBftReplica, MinPrepare, MinRequest
        names = ["r0", "r1", "r2"]
        replicas = cluster.add_nodes(MinBftReplica, names, names, 1,
                                     cluster.usig_authority)
        backup = replicas[1]
        request = MinRequest("evil", 0.0, "cX")
        forged = UI("r0", 1, b"not-a-real-certificate")
        backup.handle_minprepare(MinPrepare(0, request, forged), "r0")
        assert not backup._pending


class TestCheapBftEdgeCases:
    def test_passive_ignores_updates_from_non_primary(self, cluster):
        from repro.protocols.cheapbft import CheapBftReplica, StateUpdate
        names = ["r0", "r1", "r2"]
        replicas = cluster.add_nodes(CheapBftReplica, names, names, 1,
                                     cluster.usig_authority, names[:2])
        passive = replicas[2]
        passive.handle_stateupdate(StateUpdate(1, "sneaky"), "r1")  # not primary
        assert passive.executed == []

    def test_switch_is_idempotent(self, cluster):
        from repro.protocols.cheapbft import CheapBftReplica, SwitchInfo
        names = ["r0", "r1", "r2"]
        replicas = cluster.add_nodes(CheapBftReplica, names, names, 1,
                                     cluster.usig_authority, names[:2])
        replica = replicas[0]
        replica._switch_info = {"r0": SwitchInfo(0, ()),
                                "r1": SwitchInfo(0, ())}
        replica._switch_to_minbft()
        view_after = replica.view
        replica._switch_to_minbft()  # second call must be a no-op
        assert replica.view == view_after and replica.mode == "minbft"


class TestCommitEdgeCases:
    def test_all_cohorts_vote_no(self, cluster):
        from repro.protocols.commit import TxState, run_commit
        result = run_commit(cluster, protocol="3pc", votes=[False] * 3)
        assert all(s is TxState.ABORTED for s in result.outcomes())

    def test_single_cohort_transaction(self, cluster):
        from repro.protocols.commit import TxState, run_commit
        result = run_commit(cluster, protocol="2pc", n_cohorts=1)
        assert result.outcomes() == [TxState.COMMITTED]


class TestNetworkEdgeCases:
    def test_send_to_self_is_allowed(self, cluster):
        from dataclasses import dataclass
        from repro.core import Node
        from repro.net import Message

        @dataclass(frozen=True)
        class Loop(Message):
            pass

        class Echo(Node):
            def __init__(self, sim, network, name):
                super().__init__(sim, network, name)
                self.count = 0

            def handle_loop(self, msg, src):
                self.count += 1

        node = cluster.add_node(Echo, "solo")
        cluster.sim.call_soon(lambda: node.send("solo", Loop()))
        cluster.run()
        assert node.count == 1

    def test_broadcast_include_self(self, cluster):
        from dataclasses import dataclass
        from repro.core import Node
        from repro.net import Message

        @dataclass(frozen=True)
        class Ping(Message):
            pass

        class Counter(Node):
            def __init__(self, sim, network, name):
                super().__init__(sim, network, name)
                self.count = 0

            def handle_ping(self, msg, src):
                self.count += 1

        nodes = [cluster.add_node(Counter, "n%d" % i) for i in range(3)]
        cluster.sim.call_soon(
            lambda: nodes[0].broadcast(Ping(), include_self=True))
        cluster.run()
        assert [n.count for n in nodes] == [1, 1, 1]


class TestSoak:
    """Bounded soak: hundreds of commands through repeated fault cycles."""

    def test_multipaxos_200_commands_with_fault_cycles(self):
        from repro.smr import ReplicatedKV
        kv = ReplicatedKV(n_replicas=3, protocol="multi-paxos", seed=999,
                          op_timeout=4000.0)
        for i in range(200):
            kv.incr("total")
            if i % 50 == 25:
                victim = (i // 50) % 3
                kv.crash_replica(victim)
            if i % 50 == 45:
                victim = (i // 50) % 3
                kv.restart_replica(victim)
        assert kv.get("total") == 200
        kv.settle(200.0)
        assert kv.check_consistency()


class TestSmallApis:
    """Coverage for utility APIs not touched by the scenario tests."""

    def test_cancel_timers(self, cluster):
        from repro.core import Node
        node = cluster.add_node(Node, "t")
        fired = []
        node.set_timer(1.0, fired.append, 1)
        node.set_periodic_timer(1.0, fired.append, 2)
        node.cancel_timers()
        cluster.run(until=5.0)
        assert fired == []

    def test_crash_random_at(self, cluster):
        from repro.core import Node
        from repro.faults import FaultPlan
        nodes = [cluster.add_node(Node, "n%d" % i) for i in range(3)]
        plan = FaultPlan(cluster)
        plan.crash_random_at(1.0, ["n0", "n1", "n2"])
        cluster.run(until=2.0)
        assert sum(node.crashed for node in nodes) == 1

    def test_simulator_pending_events(self):
        from repro.sim import Simulator
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2

    def test_network_node_names(self, cluster):
        from repro.core import Node
        cluster.add_node(Node, "a")
        cluster.add_node(Node, "b")
        assert cluster.network.node_names == ("a", "b")
        # The tuple is cached between registrations and invalidated by
        # register().
        assert cluster.network.node_names is cluster.network.node_names
        cluster.add_node(Node, "c")
        assert cluster.network.node_names == ("a", "b", "c")

    def test_chain_height_of(self):
        from repro.blockchain import Blockchain, mine
        from repro.crypto import HASH_SPACE
        chain = Blockchain(initial_target=HASH_SPACE >> 8)
        block = mine(chain.next_block("m", timestamp=1.0))
        chain.add_block(block)
        assert chain.height_of(block.hash) == 1
        assert chain.height_of(chain.genesis.hash) == 0

    def test_pos_stake_share(self):
        import random
        from repro.blockchain import run_pos_simulation
        result = run_pos_simulation(random.Random(0), {"a": 75, "b": 25},
                                    blocks=100)
        # Final-stake share: started at 0.75, drifts with earned rewards.
        assert 0.55 < result.stake_share_of("a") < 0.9

    def test_majority_attack_harness(self, make_cluster):
        from repro.blockchain.attacks import majority_attack_on_network
        # A 60%-hashrate attacker undoing 2 confirmations: near-certain.
        wins = 0
        for seed in range(5):
            cluster = make_cluster(seed=seed)
            overtook, _public, _attacker = majority_attack_on_network(
                cluster, honest_rates=(100.0, 100.0), attacker_rate=300.0,
                fork_depth=2, duration=2000.0,
            )
            wins += overtook
        assert wins >= 4
