"""Tests for the Chubby-style lock service, SPV light clients, and the
consensus ↔ atomic-broadcast reductions."""

import dataclasses


from repro.blockchain import (
    Blockchain,
    LightClient,
    build_inclusion_proof,
    make_transaction,
    mine,
)
from repro.crypto import HASH_SPACE, KeyRegistry
from repro.smr import (
    AtomicBroadcast,
    LockService,
    LockStateMachine,
    consensus_from_broadcast,
)


class TestLockStateMachine:
    def setup_method(self):
        self.sm = LockStateMachine()

    def test_acquire_release(self):
        assert self.sm.apply(("acquire", "L", "s1", 0.0, 30.0)) is True
        assert self.sm.apply(("acquire", "L", "s2", 1.0, 30.0)) is False
        assert self.sm.apply(("release", "L", "s1", 2.0)) is True
        assert self.sm.apply(("acquire", "L", "s2", 3.0, 30.0)) is True

    def test_lease_expiry_frees_lock(self):
        self.sm.apply(("acquire", "L", "s1", 0.0, 10.0))
        assert self.sm.apply(("holder", "L", 5.0)) == "s1"
        assert self.sm.apply(("holder", "L", 10.0)) is None
        assert self.sm.apply(("acquire", "L", "s2", 11.0, 10.0)) is True

    def test_keepalive_extends_all_sessions_locks(self):
        self.sm.apply(("acquire", "L1", "s1", 0.0, 10.0))
        self.sm.apply(("acquire", "L2", "s1", 0.0, 10.0))
        assert self.sm.apply(("keepalive", "s1", 8.0, 10.0)) == 2
        assert self.sm.apply(("holder", "L1", 15.0)) == "s1"

    def test_reacquire_by_holder_refreshes(self):
        self.sm.apply(("acquire", "L", "s1", 0.0, 10.0))
        assert self.sm.apply(("acquire", "L", "s1", 9.0, 10.0)) is True
        assert self.sm.apply(("holder", "L", 15.0)) == "s1"

    def test_release_by_nonholder_refused(self):
        self.sm.apply(("acquire", "L", "s1", 0.0, 30.0))
        assert self.sm.apply(("release", "L", "s2", 1.0)) is False


class TestLockService:
    def test_master_election_pattern(self):
        svc = LockService(seed=1, lease=30.0)
        assert svc.acquire("master", "A")
        assert not svc.acquire("master", "B")
        assert svc.holder("master") == "A"

    def test_dead_session_loses_lock_after_lease(self):
        svc = LockService(seed=2, lease=25.0)
        svc.acquire("master", "A")
        svc.advance_time(40.0)  # A never keeps alive
        assert svc.holder("master") is None
        assert svc.acquire("master", "B")

    def test_keepalive_retains_lock(self):
        svc = LockService(seed=3, lease=25.0)
        svc.acquire("master", "A")
        for _ in range(3):
            svc.advance_time(15.0)
            svc.keepalive("A")
        assert svc.holder("master") == "A"

    def test_survives_replica_leader_crash(self):
        svc = LockService(seed=4)
        svc.acquire("master", "A")
        assert svc.crash_leader() is not None
        assert svc.holder("master") == "A"
        assert svc.check_consistency()


class TestLightClient:
    def _chain_with_tx(self):
        keys = KeyRegistry()
        chain = Blockchain(initial_target=HASH_SPACE >> 10, keys=keys)
        tx = make_transaction(keys, "satoshi", "alice", 5.0, 0)
        for i in range(5):
            txs = [tx] if i == 1 else []
            block = mine(chain.next_block("m", txs, timestamp=float(i + 1)))
            chain.add_block(block)
        return chain, tx

    def test_header_sync_and_inclusion(self):
        chain, tx = self._chain_with_tx()
        client = LightClient(chain.genesis.header)
        assert client.sync_from(chain) == 5
        proof = build_inclusion_proof(chain, tx.txid)
        assert client.verify_inclusion(proof) == 3  # 3 blocks on top

    def test_min_confirmations_enforced(self):
        chain, tx = self._chain_with_tx()
        client = LightClient(chain.genesis.header)
        client.sync_from(chain)
        proof = build_inclusion_proof(chain, tx.txid)
        assert client.verify_inclusion(proof, min_confirmations=3) == 3
        assert client.verify_inclusion(proof, min_confirmations=4) is None

    def test_forged_proof_rejected(self):
        chain, tx = self._chain_with_tx()
        client = LightClient(chain.genesis.header)
        client.sync_from(chain)
        proof = build_inclusion_proof(chain, tx.txid)
        assert client.verify_inclusion(
            dataclasses.replace(proof, txid="bogus")) is None
        assert client.verify_inclusion(
            dataclasses.replace(proof, height=proof.height + 1)) is None

    def test_bad_header_rejected(self):
        chain, _tx = self._chain_with_tx()
        client = LightClient(chain.genesis.header)
        blocks = chain.main_chain()
        # Skip a link: header 2 doesn't extend genesis.
        assert not client.add_header(blocks[2].header)
        assert client.rejected == 1
        # Unmined header fails PoW.
        from repro.blockchain import build_block, make_coinbase
        fake = build_block(client.tip.hash, [make_coinbase("m", 50.0, 1)],
                           timestamp=9.0, target=1, height=1)
        assert not client.add_header(fake.header)

    def test_light_storage_far_below_full_blocks(self):
        chain, _tx = self._chain_with_tx()
        client = LightClient(chain.genesis.header)
        client.sync_from(chain)
        full_bytes = sum(
            80 + 200 * len(block.transactions)
            for block in chain.main_chain()
        )
        assert client.storage_headers_bytes() < full_bytes

    def test_unconfirmed_tx_has_no_proof(self):
        chain, _tx = self._chain_with_tx()
        assert build_inclusion_proof(chain, "nonexistent") is None


class TestReductions:
    def test_atomic_broadcast_total_order(self):
        broadcast = AtomicBroadcast.build(senders=("s1", "s2"), seed=2)
        for i in range(4):
            broadcast.broadcast("s1", "a%d" % i)
            broadcast.broadcast("s2", "b%d" % i)
        broadcast.run_until_delivered(8)
        assert broadcast.total_order_holds()
        sequences = broadcast.delivered()
        assert len(sequences[0]) >= 8

    def test_broadcast_validity(self):
        broadcast = AtomicBroadcast.build(senders=("s1",), seed=5)
        broadcast.broadcast("s1", "only")
        broadcast.run_until_delivered(1)
        assert broadcast.delivered()[0][0] == ("s1", "only")

    def test_consensus_from_broadcast_agreement(self):
        for seed in range(4):
            decisions = consensus_from_broadcast(["X", "Y", "Z"], seed=seed)
            assert len(set(decisions)) == 1
            assert decisions[0] in ("X", "Y", "Z")
