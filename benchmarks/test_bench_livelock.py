"""E3 — the Paxos liveness figure: dueling proposers livelock; the
paper's fix is a randomized delay before restarting.

Regenerates the S1..S5 schedule's outcome statistically: with fixed
restart delays two symmetric proposers preempt each other forever; with
randomized backoff every run decides.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import SynchronousModel
from repro.protocols.paxos import FixedBackoff, RandomizedBackoff, run_basic_paxos

SEEDS = range(10)


def run_policy(policy_name):
    decided = 0
    rounds = []
    times = []
    for seed in SEEDS:
        retry = (FixedBackoff(2.0) if policy_name == "fixed"
                 else RandomizedBackoff(2.0, 8.0))
        cluster = Cluster(seed=seed, delivery=SynchronousModel(1.0))
        result = run_basic_paxos(
            cluster, n_acceptors=5, proposals=("X", "Y"),
            retry=retry, stagger=1.0, horizon=300.0,
        )
        if result.agreed:
            decided += 1
            times.append(result.decided_at)
        rounds.append(result.rounds)
    return {
        "restart policy": policy_name,
        "runs": len(list(SEEDS)),
        "decided": decided,
        "mean rounds": sum(rounds) / len(rounds),
        "mean decision time": (sum(times) / len(times)) if times else None,
    }


def test_livelock_vs_randomized_backoff(benchmark, report, bench_snapshot):
    rows = benchmark.pedantic(
        lambda: [run_policy("fixed"), run_policy("randomized")],
        rounds=1, iterations=1,
    )
    text = render_table(
        rows,
        title="E3 — competing proposers: livelock vs randomized backoff",
    )
    report("E3_livelock", text)
    bench_snapshot("E3_livelock", protocol="paxos",
                   fixed_decided=rows[0]["decided"],
                   randomized_decided=rows[1]["decided"],
                   randomized_mean_rounds=rows[1]["mean rounds"],
                   randomized_mean_latency=rows[1]["mean decision time"])

    fixed, randomized = rows
    # The figure's claim: symmetric restarts can livelock forever...
    assert fixed["decided"] == 0
    assert fixed["mean rounds"] > 50
    # ...and randomized delay restores liveness.
    assert randomized["decided"] == len(list(SEEDS))
    assert randomized["mean rounds"] < 20
