"""E28 — saturation knees: offered load vs tail latency per protocol.

The paper's complexity table (O(n) leader-based vs O(n²) all-to-all
BFT) made empirical: the open-loop load engine sweeps offered load
against each protocol over finite-ingress replicas
(:class:`~repro.net.delivery.QueuedDelayModel`) and finds the
saturation knee — the highest rate absorbed before goodput collapses
or p99 blows past 3x the light-load baseline.  Latency is measured
from *intended* arrival time (coordinated-omission-safe), so a
saturated protocol cannot hide its queueing delay behind a slow
client.

Headline claims, asserted every run:

* every swept protocol exhibits a knee (the sweep reaches saturation);
* PBFT's knee sits strictly below the leader-based knees — per-request
  message complexity *is* the capacity difference;
* conformance monitors stay green at a load below each knee.

Knee positions and p99 values are virtual-time-derived and thus
machine-independent; the wall-clock ``*_msgs_per_sec`` sweep rates are
recorded for the perf gate (E28 is in ``GATED_EXPERIMENTS``), which
compares them only between same-mode snapshots.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke mode.
"""

import os
import time

from repro.analysis import render_table
from repro.load import LoadSpec, run_loadtest, run_sweep

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SEED = 0
DURATION = 60.0 if QUICK else 150.0
SLO = 30.0

#: Swept offered loads per protocol.  Leader-based protocols saturate
#: around 1/(3·service) requests per unit (the leader ingests ~3
#: messages per request); PBFT's all-to-all phases ingest ~3n per
#: replica, pushing its knee an order of magnitude lower.
if QUICK:
    SWEEPS = [
        ("multi-paxos", (1.0, 6.0, 12.0)),
        ("raft", (1.0, 6.0, 12.0)),
        ("pbft", (0.25, 1.0, 2.0)),
    ]
else:
    SWEEPS = [
        ("multi-paxos", (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0)),
        ("raft", (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0)),
        ("pbft", (0.25, 0.5, 1.0, 1.5, 2.0)),
    ]

#: Protocols double-checked under full conformance monitors at a rate
#: below their knee (quick mode keeps one to bound CI time).
MONITORED = ("multi-paxos",) if QUICK else ("multi-paxos", "pbft")


def _sweep(protocol, rates):
    spec = LoadSpec(protocol=protocol, duration=DURATION, seed=SEED,
                    slo=SLO)
    start = time.perf_counter()
    result = run_sweep(spec, rates)
    wall = time.perf_counter() - start
    points = [p for p in result["points"] if p]
    messages = sum(p["messages"] for p in points)
    return result, points, messages / wall if wall > 0 else 0.0


def test_load_knees(benchmark, report, bench_snapshot):
    def run_all():
        rows = []
        snapshot = {}
        knees = {}
        for protocol, rates in SWEEPS:
            result, points, msgs_per_sec = _sweep(protocol, rates)
            knee = result["knee"]
            knees[protocol] = knee
            at_knee = next((p for p in points if p["rate"] == knee), None)
            last = points[-1]
            rows.append({
                "protocol": protocol,
                "knee rate": knee,
                "p99 @knee": at_knee["p99"] if at_knee else None,
                "p99 @max": last["p99"],
                "goodput @max": last["goodput_rate"],
                "abandoned @max": last["abandoned"],
            })
            key = protocol.replace("-", "")
            snapshot["%s_knee_rate" % key] = knee
            snapshot["%s_p99_at_knee" % key] = \
                at_knee["p99"] if at_knee else None
            snapshot["%s_p99_at_max" % key] = last["p99"]
            snapshot["%s_msgs_per_sec" % key] = round(msgs_per_sec)
        monitor_rows = []
        for protocol in MONITORED:
            knee = knees[protocol]
            rate = max(knee / 2.0, 0.25) if knee else 0.25
            point = run_loadtest(LoadSpec(
                protocol=protocol, rate=rate, duration=DURATION,
                seed=SEED, slo=None, monitors=True))
            monitor_rows.append({
                "protocol": protocol,
                "rate": round(rate, 2),
                "monitors": point["monitors"]["monitors"],
                "anomalies": point["monitors"]["anomalies"],
            })
            key = protocol.replace("-", "")
            snapshot["%s_subknee_anomalies" % key] = \
                point["monitors"]["anomalies"]
        return rows, monitor_rows, snapshot, knees

    rows, monitor_rows, snapshot, knees = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    text = render_table(
        rows, title="E28 — saturation knees (p99 vs offered load)")
    text += "\n" + render_table(
        monitor_rows, title="conformance monitors below the knee")
    text += ("\nopen-loop Poisson arrivals over %g virtual-time units, "
             "seed %d; latency\nmeasured from intended arrival "
             "(coordinated-omission-safe).  The knee is\nthe last "
             "offered load absorbed without goodput collapse (<90%% of "
             "offered)\nor p99 blow-up (>3x the lightest-load p99).  "
             "Replicas serve one ingress\nmessage per %g time units, so "
             "per-request message complexity sets\ncapacity: PBFT's "
             "all-to-all phases saturate far below the leader-based\n"
             "protocols — the paper's complexity table as a latency "
             "cliff." % (DURATION, SEED, LoadSpec().service))
    report("E28_load_knee", text)
    bench_snapshot("E28_load_knee", quick=QUICK, **snapshot)

    # Every swept protocol saturates inside its sweep (≥ 2 knees is the
    # acceptance floor; all three is the expectation).
    for protocol, knee in knees.items():
        assert knee is not None, "%s never saturated" % protocol
    # The complexity ordering the paper tabulates: O(n²) PBFT saturates
    # strictly below both O(n) leader-based protocols.
    assert knees["pbft"] < knees["multi-paxos"]
    assert knees["pbft"] < knees["raft"]
    # Below the knee, the protocols still conform to their spec.
    for row in monitor_rows:
        assert row["anomalies"] == 0, row
