"""E27 — span-derivation overhead: what the lazy span layer costs.

The span layer (``src/repro/obs/``) is pure post-processing: nothing
runs on the hot path, so a traced run that never asks for spans pays
exactly the tracer's ring-buffer appends and nothing more.  This
experiment measures the other half of that cost model — deriving the
full span report (grouping, critical paths, attribution, time-series)
from an already-recorded trace, relative to the traced run itself:

* **run ms** — wall-clock of the traced workload alone;
* **mater ms** — wall-clock of the trace's lazy materialization
  (tuples -> events + clocks), the price any trace query pays and
  which ``repro trace`` already charged before this layer existed;
* **derive ms** — wall-clock of ``SpanBuilder(trace).build()`` plus
  ``spans_report`` over the materialized trace — what the span layer
  *adds*;
* **overhead x** — ``(run + derive) / run``; the gated headline.  The
  perf gate caps ``*_overhead_x`` keys, so a derivation pass that stops
  being a cheap single sweep over the trace fails CI.

Wall-clock rates are machine-dependent and recorded, not asserted; the
gate compares the *ratio*, which largely cancels machine speed.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke mode.
"""

import os
import time

from repro.analysis import render_table
from repro.core import Cluster
from repro.obs import SpanBuilder, spans_report
from repro.shard import ShardedCluster

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Timing repetitions per configuration; best round wins.
ROUNDS = 1 if QUICK else 3

SEED = 7


def _drive_multipaxos(cluster):
    from repro.protocols.multipaxos import run_multipaxos
    return run_multipaxos(cluster, n_replicas=3, n_clients=2,
                          commands_per_client=10 if QUICK else 50)


def _drive_shards(cluster):
    sharded = ShardedCluster(n_shards=2, replicas=3, cluster=cluster)
    keys = [sharded.key(i) for i in range(8 if QUICK else 24)]
    for key in keys:
        sharded.put(key, 1)
    for a, b in zip(keys, keys[1:]):
        sharded.transfer(a, b, 1)
    sharded.settle()


CONFIGS = [
    ("multi-paxos", _drive_multipaxos),
    ("shards", _drive_shards),
]


def measure(driver):
    """Best-of-ROUNDS traced run + span derivation, timed separately."""
    best = None
    for _ in range(ROUNDS):
        cluster = Cluster(seed=SEED, trace=True)
        start = time.perf_counter()
        driver(cluster)
        run_wall = time.perf_counter() - start
        start = time.perf_counter()
        events = cluster.trace.events  # force lazy materialization
        mater_wall = time.perf_counter() - start
        start = time.perf_counter()
        spans = SpanBuilder(cluster.trace).build()
        report_doc = spans_report(spans, protocol="bench", seed=SEED)
        derive_wall = time.perf_counter() - start
        assert report_doc["summary"]["completed"] > 0
        sample = {
            "events": len(events),
            "spans": len(spans),
            "run": run_wall,
            "mater": mater_wall,
            "derive": derive_wall,
        }
        if best is None or sample["run"] + sample["derive"] \
                < best["run"] + best["derive"]:
            best = sample
    return best


def test_span_derivation_overhead(benchmark, report, bench_snapshot):
    def run_all():
        rows = []
        for protocol, driver in CONFIGS:
            sample = measure(driver)
            overhead = (sample["run"] + sample["derive"]) / sample["run"]
            rows.append({
                "protocol": protocol,
                "events": sample["events"],
                "spans": sample["spans"],
                "run ms": round(sample["run"] * 1e3, 1),
                "mater ms": round(sample["mater"] * 1e3, 1),
                "derive ms": round(sample["derive"] * 1e3, 1),
                "overhead x": round(overhead, 2),
            })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = render_table(
        rows, title="E27 — span-derivation overhead (lazy, post-run)")
    text += ("\nbest-of-%d wall-clock per configuration, seed %d.  "
             "mater = the trace's lazy\nmaterialization (any query "
             "pays it); derive = SpanBuilder.build() +\nspans_report "
             "on top; overhead x = (run + derive) / run.  Derivation "
             "runs\nonly when asked (CLI ``spans``), so the hot path "
             "pays the tracer's\nring-buffer appends and nothing else."
             % (ROUNDS, SEED))
    report("E27_span_overhead", text)

    snapshot = {}
    for row in rows:
        key = row["protocol"].replace("-", "")
        snapshot["%s_trace_events" % key] = row["events"]
        snapshot["%s_derive_ms" % key] = row["derive ms"]
        snapshot["%s_overhead_x" % key] = row["overhead x"]
    bench_snapshot("E27_span_overhead", quick=QUICK, **snapshot)

    for row in rows:
        assert row["events"] > 0 and row["spans"] > 0
        # Derivation is one sweep over the trace plus per-span chains —
        # it must stay cheaper than the simulation that produced it.
        assert row["overhead x"] < 2.5, row
