"""E7 — 2PC blocking vs 3PC termination.

Regenerates the abstract-2PC/3PC figures: the happy-path phase costs
and, for every coordinator-crash window, who ends up blocked and what
the termination protocol decides.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.protocols.commit import run_commit


def scenario(protocol, crash_after, partial_count=0):
    cluster = Cluster(seed=1)
    result = run_commit(cluster, protocol=protocol, n_cohorts=3,
                        crash_after=crash_after, partial_count=partial_count)
    states = sorted({state.value for state in result.outcomes()})
    return {
        "protocol": protocol,
        "coordinator crash": crash_after or "none",
        "cohort states": "/".join(states),
        "blocked cohorts": len(result.blocked_cohorts()),
        "atomic": result.atomic(),
        "messages": result.messages,
    }


def test_commit_protocols(benchmark, report, bench_snapshot):
    def run_all():
        return [
            scenario("2pc", None),
            scenario("3pc", None),
            scenario("2pc", "votes"),
            scenario("3pc", "votes"),
            scenario("3pc", "precommits"),
            scenario("2pc", "partial_decision", partial_count=1),
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = render_table(rows, title="E7 — 2PC blocking vs 3PC termination")
    report("E7_commit", text)

    happy_2pc, happy_3pc, blocked_2pc, term_3pc, term_3pc_pc, partial = rows
    bench_snapshot("E7_commit", protocol="2pc/3pc",
                   messages_2pc=happy_2pc["messages"],
                   messages_3pc=happy_3pc["messages"],
                   blocked_2pc=blocked_2pc["blocked cohorts"],
                   blocked_3pc=term_3pc["blocked cohorts"])
    # Happy path: both commit; 3PC pays one extra phase of messages.
    assert happy_2pc["cohort states"] == "committed"
    assert happy_3pc["cohort states"] == "committed"
    assert happy_3pc["messages"] > happy_2pc["messages"]
    # The blocking window: 2PC blocks every cohort...
    assert blocked_2pc["blocked cohorts"] == 3
    # ...while 3PC's termination protocol unblocks and stays atomic.
    assert term_3pc["blocked cohorts"] == 0
    assert term_3pc["cohort states"] == "aborted"  # all uncertain → abort
    assert term_3pc_pc["cohort states"] == "committed"  # pre-committed → commit
    assert term_3pc["atomic"] and term_3pc_pc["atomic"]
    # Cooperative termination rescues 2PC only when someone knows.
    assert partial["blocked cohorts"] == 0
    assert partial["cohort states"] == "committed"
