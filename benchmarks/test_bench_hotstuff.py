"""E11 — HotStuff: linear communication, 7 phases, leader rotation,
request pipelining.

Regenerates the agreement figure (message-delay count), the
linear-vs-quadratic comparison against PBFT across cluster sizes, and
the pipelining figure (one decided block per view at steady state).
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.metrics import classify_order, fit_order
from repro.net import SynchronousModel
from repro.protocols.hotstuff import run_basic_hotstuff, run_chained_hotstuff
from repro.protocols.pbft import run_pbft


def latency_row():
    cluster = Cluster(seed=1, delivery=SynchronousModel(1.0))
    result = run_basic_hotstuff(cluster, f=1, operations=2)
    client = result.clients[0]
    return {
        "metric": "one-way exchanges per command (incl. request)",
        "value": client.latencies[0],
    }


def linearity_rows():
    rows = []
    hot_samples, pbft_samples = [], []
    for f in (1, 2, 3):
        n = 3 * f + 1
        hc = Cluster(seed=1)
        run_basic_hotstuff(hc, f=f, operations=2)
        pc = Cluster(seed=1)
        run_pbft(pc, f=f, n_clients=1, operations_per_client=2)
        hot_samples.append((n, hc.metrics.messages_total))
        pbft_samples.append((n, pc.metrics.messages_total))
        rows.append({
            "n": n,
            "hotstuff msgs": hc.metrics.messages_total,
            "pbft msgs": pc.metrics.messages_total,
        })
    return rows, fit_order(hot_samples), fit_order(pbft_samples)


def pipeline_row():
    cluster = Cluster(seed=2)
    result = run_chained_hotstuff(cluster, f=1, commands=12)
    replica = result.replicas[0]
    decided = len([c for c in replica.decided if c.startswith("cmd")])
    return {
        "metric": "chained: views used / commands decided",
        "value": "%d / %d" % (replica.view, decided),
    }, replica.view, decided


def test_hotstuff(benchmark, report, bench_snapshot):
    def run_all():
        rows, hot_exp, pbft_exp = linearity_rows()
        pipe, views, decided = pipeline_row()
        return latency_row(), rows, hot_exp, pbft_exp, pipe, views, decided

    latency, rows, hot_exp, pbft_exp, pipe, views, decided = \
        benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = render_table(rows, title="E11 — HotStuff vs PBFT message growth")
    text += "\nhotstuff fitted: %s (%.2f); pbft fitted: %s (%.2f)" % (
        classify_order(hot_exp), hot_exp, classify_order(pbft_exp), pbft_exp)
    text += "\n%s: %s" % (latency["metric"], latency["value"])
    text += "\n%s: %s" % (pipe["metric"], pipe["value"])
    report("E11_hotstuff", text)
    bench_snapshot("E11_hotstuff", protocol="hotstuff", phases=7,
                   messages_f1=rows[0]["hotstuff msgs"],
                   pbft_messages_f1=rows[0]["pbft msgs"],
                   exchanges_per_command=latency["value"],
                   fitted_exponent=round(hot_exp, 4),
                   pbft_fitted_exponent=round(pbft_exp, 4),
                   chained_views=views, chained_decided=decided)

    # 7 one-way exchanges after the request (the paper's 7 phases).
    assert latency["value"] == 8.0
    # Linear vs quadratic.
    assert classify_order(hot_exp) == "O(N)"
    assert classify_order(pbft_exp) == "O(N^2)"
    # Pipelining: roughly one command per view once the pipe is full.
    assert decided == 12
    assert views <= 12 + 6
