"""E19 (extension) — ablations of the design choices DESIGN.md calls out.

Three knobs, each isolating one mechanism:

* Paxos restart jitter: how much randomness does liveness actually
  need?  (Sweep the backoff jitter from 0 — the livelock — upward.)
* PBFT checkpoint interval: garbage-collection frequency vs retained
  log size and checkpoint traffic.
* PoW block interval vs propagation delay: the fork-rate curve that
  dictates why Bitcoin's interval is minutes, not seconds.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import SynchronousModel, UniformDelayModel
from repro.protocols.paxos import RandomizedBackoff, run_basic_paxos
from repro.protocols.pbft import run_pbft
from repro.blockchain import run_mining_network


def jitter_row(jitter, seeds=8):
    decided = 0
    total_time = 0.0
    for seed in range(seeds):
        cluster = Cluster(seed=seed, delivery=SynchronousModel(1.0))
        result = run_basic_paxos(
            cluster, proposals=("X", "Y"),
            retry=RandomizedBackoff(2.0, jitter), stagger=1.0, horizon=300.0,
        )
        if result.agreed:
            decided += 1
            total_time += result.decided_at
    return {
        "backoff jitter": jitter,
        "decided": "%d/%d" % (decided, seeds),
        "mean time": (total_time / decided) if decided else None,
    }


def checkpoint_row(interval):
    cluster = Cluster(seed=6)
    result = run_pbft(cluster, f=1, n_clients=1, operations_per_client=24,
                      checkpoint_interval=interval)
    slots = max(len(replica.slots) for replica in result.replicas)
    checkpoints = cluster.metrics.by_type["checkpoint"]
    return {
        "checkpoint interval": interval,
        "checkpoint msgs": checkpoints,
        "max retained slots": slots,
        "done": all(c.done for c in result.clients),
    }


def fork_row(tbt):
    cluster = Cluster(seed=7, delivery=UniformDelayModel(0.5, 2.0))
    result = run_mining_network(cluster, hashrates=(100.0,) * 4,
                                target_block_time=tbt, duration=2000.0)
    _main, _abandoned, rate = result.fork_stats()
    return {
        "block interval": tbt,
        "interval / propagation": round(tbt / 1.25, 1),
        "fork rate": rate,
    }


def test_ablations(benchmark, report, bench_snapshot):
    def run_all():
        return ([jitter_row(j) for j in (0.0, 1.0, 4.0, 10.0)],
                [checkpoint_row(i) for i in (4, 8, 64)],
                [fork_row(t) for t in (2.5, 10.0, 40.0)])

    jitter, checkpoints, forks = benchmark.pedantic(run_all, rounds=1,
                                                    iterations=1)
    text = render_table(jitter, title="E19a — Paxos backoff jitter sweep")
    text += "\n\n" + render_table(checkpoints,
                                  title="E19b — PBFT checkpoint interval")
    text += "\n\n" + render_table(forks,
                                  title="E19c — PoW interval vs fork rate")
    report("E19_ablations", text)
    bench_snapshot("E19_ablations", protocol="ablations",
                   zero_jitter_decided=jitter[0]["decided"],
                   max_jitter_decided=jitter[-1]["decided"],
                   checkpoint4_retained=checkpoints[0]["max retained slots"],
                   checkpoint64_retained=checkpoints[-1]["max retained slots"],
                   fork_rate_min_interval=forks[0]["fork rate"],
                   fork_rate_max_interval=forks[-1]["fork rate"])

    # Zero jitter = the livelock; any meaningful jitter restores liveness.
    assert jitter[0]["decided"] == "0/8"
    assert jitter[-1]["decided"] == "8/8"
    # Frequent checkpoints keep the retained log small but cost traffic.
    assert checkpoints[0]["max retained slots"] <= \
        checkpoints[-1]["max retained slots"]
    assert checkpoints[0]["checkpoint msgs"] > checkpoints[-1]["checkpoint msgs"]
    assert all(row["done"] for row in checkpoints)
    # Fork rate decreases monotonically with the interval.
    assert forks[0]["fork rate"] > forks[1]["fork rate"] > \
        forks[2]["fork rate"]
