"""E14 — circumventing FLP by sacrificing determinism.

Regenerates the claim behind "Randomized Byzantine consensus algorithm":
Ben-Or terminates with probability 1 under adversarial asynchrony where
FLP forbids any deterministic solution — measured as the rounds-to-decide
distribution across seeds, with agreement never violated.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import AsynchronousModel
from repro.protocols.benor import run_benor

SEEDS = range(30)


def distribution(initial_values, crash, label):
    rounds = []
    for seed in SEEDS:
        cluster = Cluster(
            seed=seed,
            delivery=AsynchronousModel(mean=1.0, tail_prob=0.1,
                                       tail_factor=25.0),
        )
        result = run_benor(cluster, n=5, f=1, initial_values=initial_values,
                           crash_indices=crash)
        assert result.agreement(), seed
        assert result.all_decided(), seed
        rounds.append(result.max_round())
    rounds.sort()
    return {
        "workload": label,
        "runs": len(rounds),
        "decided": len(rounds),
        "min rounds": rounds[0],
        "median rounds": rounds[len(rounds) // 2],
        "max rounds": rounds[-1],
    }


def test_benor(benchmark, report, bench_snapshot):
    def run_all():
        return [
            distribution([1] * 5, (), "unanimous inputs"),
            distribution([0, 1, 0, 1, 0], (), "split inputs"),
            distribution([0, 1, 0, 1, 1], (4,), "split inputs + 1 crash"),
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = render_table(
        rows,
        title="E14 — Ben-Or rounds-to-decide under adversarial asynchrony",
    )
    report("E14_benor", text)

    unanimous, split, crashed = rows
    bench_snapshot("E14_benor", protocol="benor",
                   runs=unanimous["runs"],
                   unanimous_max_rounds=unanimous["max rounds"],
                   split_median_rounds=split["median rounds"],
                   crashed_max_rounds=crashed["max rounds"],
                   all_decided=all(
                       row["decided"] == row["runs"] for row in rows))
    # Every run decided (termination w.p. 1 — empirically, all 30 seeds).
    assert all(row["decided"] == row["runs"] for row in rows)
    # Unanimous inputs decide in round 1; splits need the coin.
    assert unanimous["max rounds"] == 1
    assert split["max rounds"] >= 2
    assert crashed["max rounds"] < 50
