"""E20 (extension) — the oracle circumvention of FLP.

The tutorial lists three escapes from FLP: randomization (E14),
synchrony assumptions (every partially-synchronous protocol here), and
"adding oracle (failure detector)".  This bench measures the third:
Chandra–Toueg consensus deciding under asynchrony and coordinator
crashes, liveness degrading — but safety holding — as the oracle gets
worse.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import AsynchronousModel
from repro.protocols.chandra_toueg import AlwaysSuspecting, run_chandra_toueg

SEEDS = range(12)


def scenario(label, crash=(), detector_factory=None, horizon=3000.0,
             max_rounds=500, asynchronous=False):
    decided = agree = 0
    rounds = []
    for seed in SEEDS:
        delivery = (AsynchronousModel(mean=1.5, tail_prob=0.1)
                    if asynchronous else None)
        cluster = Cluster(seed=seed, delivery=delivery)
        result = run_chandra_toueg(cluster, n=5, f=2, crash_indices=crash,
                                   detector_factory=detector_factory,
                                   horizon=horizon, max_rounds=max_rounds)
        decided += result.all_decided()
        agree += result.agreement()
        live_rounds = [p.decided_round for p in result.processes
                       if p.decided_round is not None]
        if live_rounds:
            rounds.append(max(live_rounds))
    return {
        "oracle / faults": label,
        "runs": len(list(SEEDS)),
        "all decided": decided,
        "agreement held": agree,
        "max rounds": max(rounds) if rounds else None,
    }


def test_failure_detector_consensus(benchmark, report, bench_snapshot):
    def run_all():
        return [
            scenario("healthy heartbeat detector"),
            scenario("2 coordinators crashed", crash=(1, 2)),
            scenario("heavy asynchrony", asynchronous=True),
            scenario("always-wrong oracle",
                     detector_factory=lambda owner: AlwaysSuspecting(),
                     horizon=200.0, max_rounds=30),
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = render_table(
        rows, title="E20 — Chandra-Toueg: consensus from a failure detector"
    )
    report("E20_failure_detector", text)

    healthy, crashed, asynchronous, wrong = rows
    bench_snapshot("E20_failure_detector", protocol="chandra-toueg",
                   runs=healthy["runs"],
                   healthy_decided=healthy["all decided"],
                   crashed_decided=crashed["all decided"],
                   wrong_oracle_decided=wrong["all decided"],
                   agreement_always=all(
                       row["agreement held"] == healthy["runs"]
                       for row in rows))
    runs = healthy["runs"]
    # Liveness with a decent oracle, even under crashes and asynchrony.
    assert healthy["all decided"] == runs
    assert crashed["all decided"] == runs
    assert asynchronous["all decided"] == runs
    # Safety is oracle-independent.
    assert all(row["agreement held"] == runs for row in rows)
    # A hopeless oracle costs liveness (that's the FLP price re-surfacing).
    assert wrong["all decided"] < runs
