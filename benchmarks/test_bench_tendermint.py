"""E17 (extension) — Tendermint: "extends PBFT with leader rotation".

The tutorial's permissioned-blockchain slide names Tendermint as PBFT
plus rotation.  Measured: one round per height with healthy validators,
an extra round exactly when the rotation hits a silent proposer, PBFT-
grade message complexity, and identical hash-linked chains everywhere.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.metrics import classify_order, fit_order
from repro.protocols.tendermint import run_tendermint


def healthy_row(f):
    cluster = Cluster(seed=1)
    result = run_tendermint(cluster, f=f, heights=4)
    rounds = result.rounds_per_height()
    return {
        "validators (3f+1)": 3 * f + 1,
        "heights": result.min_height(),
        "max rounds/height": max(rounds.values()),
        "messages": result.messages,
        "chains agree": result.chains_consistent(),
    }


def faulty_row():
    cluster = Cluster(seed=2)
    result = run_tendermint(cluster, f=1, heights=4, silent_indices=(1,))
    rounds = result.rounds_per_height()
    return {
        "validators (3f+1)": 4,
        "heights": result.min_height(),
        "max rounds/height": max(rounds.values()),
        "messages": result.messages,
        "chains agree": result.chains_consistent(),
    }


def test_tendermint(benchmark, report, bench_snapshot):
    def run_all():
        return [healthy_row(f) for f in (1, 2, 3)], faulty_row()

    healthy, faulty = benchmark.pedantic(run_all, rounds=1, iterations=1)
    samples = [(row["validators (3f+1)"], row["messages"]) for row in healthy]
    exponent = fit_order(samples)
    text = render_table(healthy, title="E17 — Tendermint, healthy validators")
    text += "\nmessage complexity: %s (exponent %.2f — PBFT-grade all-to-all"\
        " votes)" % (classify_order(exponent), exponent)
    text += "\n\n" + render_table([faulty],
                                  title="one silent proposer in rotation")
    report("E17_tendermint", text)
    bench_snapshot("E17_tendermint", protocol="tendermint",
                   messages_f1=healthy[0]["messages"],
                   fitted_exponent=round(exponent, 4),
                   faulty_max_rounds=faulty["max rounds/height"])

    for row in healthy:
        assert row["heights"] == 4
        assert row["max rounds/height"] == 1
        assert row["chains agree"]
    # Rotation absorbs the fault at the cost of one extra round.
    assert faulty["max rounds/height"] >= 2
    assert faulty["heights"] == 4 and faulty["chains agree"]
    assert classify_order(exponent) == "O(N^2)"
