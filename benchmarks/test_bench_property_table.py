"""E1 — the tutorial's protocol comparison table, measured.

For every protocol: instantiate at f=1, run a workload, and measure the
three complexity metrics of the paper's fifth aspect — number of nodes,
number of communication phases, message complexity (fitted over a
cluster-size sweep) — next to the paper's claimed property box.
"""

from repro.analysis import claim_for, render_table
from repro.core import Cluster
from repro.metrics import classify_order, fit_order


def _measure_paxos():
    from repro.protocols.paxos import run_basic_paxos
    samples = []
    for f in (1, 2, 4):
        n = 2 * f + 1
        cluster = Cluster(seed=1)
        run_basic_paxos(cluster, n_acceptors=n, proposals=("X",))
        samples.append((n, cluster.metrics.messages_total))
    cluster = Cluster(seed=1)
    run_basic_paxos(cluster, n_acceptors=3, proposals=("X",))
    phases = cluster.metrics.phases_for("paxos")
    return {"nodes": 2 * 1 + 1, "phases": len(phases) - 1,  # decide is async
            "order": fit_order(samples)}


def _measure_pbft():
    from repro.protocols.pbft import run_pbft
    samples = []
    for f in (1, 2, 3):
        cluster = Cluster(seed=1)
        run_pbft(cluster, f=f, n_clients=1, operations_per_client=2)
        agreement = cluster.metrics.messages_of_types(
            "preprepare", "pbftprepare", "pbftcommit"
        )
        samples.append((3 * f + 1, agreement))
    cluster = Cluster(seed=1)
    run_pbft(cluster, f=1, n_clients=1, operations_per_client=1)
    phases = cluster.metrics.phases_for("pbft")
    return {"nodes": 4, "phases": len(phases), "order": fit_order(samples)}


def _measure_hotstuff():
    from repro.protocols.hotstuff import run_basic_hotstuff
    samples = []
    for f in (1, 2, 3):
        cluster = Cluster(seed=1)
        run_basic_hotstuff(cluster, f=f, operations=2)
        samples.append((3 * f + 1, cluster.metrics.messages_total))
    cluster = Cluster(seed=1)
    run_basic_hotstuff(cluster, f=1, operations=1)
    phases = cluster.metrics.phases_for("hotstuff")
    # 4 QC phases = 7 one-way exchanges (each phase is a broadcast + a
    # vote collection, sharing boundaries).
    return {"nodes": 4, "phases": 2 * len(phases) - 1,
            "order": fit_order(samples)}


def _measure_zyzzyva():
    from repro.protocols.zyzzyva import run_zyzzyva
    samples = []
    for f in (1, 2, 3):
        cluster = Cluster(seed=1)
        run_zyzzyva(cluster, f=f, operations=2)
        samples.append((3 * f + 1, cluster.metrics.messages_total))
    return {"nodes": 4, "phases": 1, "order": fit_order(samples)}


def _measure_minbft():
    from repro.protocols.minbft import run_minbft
    samples = []
    for f in (1, 2, 4):
        cluster = Cluster(seed=1)
        run_minbft(cluster, f=f, operations=2)
        samples.append((2 * f + 1, cluster.metrics.messages_total))
    cluster = Cluster(seed=1)
    run_minbft(cluster, f=1, operations=1)
    phases = cluster.metrics.phases_for("minbft")
    return {"nodes": 3, "phases": len(phases), "order": fit_order(samples)}


MEASURERS = {
    "paxos": _measure_paxos,
    "pbft": _measure_pbft,
    "hotstuff": _measure_hotstuff,
    "zyzzyva": _measure_zyzzyva,
    "minbft": _measure_minbft,
}


def build_property_table():
    rows = []
    for protocol, measurer in MEASURERS.items():
        claim = claim_for(protocol)
        measured = measurer()
        rows.append({
            "protocol": protocol,
            "paper nodes": claim.nodes,
            "measured nodes (f=1)": measured["nodes"],
            "paper phases": claim.phases,
            "measured phases": measured["phases"],
            "paper complexity": claim.complexity,
            "measured complexity": classify_order(measured["order"]),
            "fitted exponent": round(measured["order"], 2),
        })
    return rows


def test_property_table(benchmark, report, bench_snapshot):
    rows = benchmark.pedantic(build_property_table, rounds=1, iterations=1)
    text = render_table(rows, title="E1 — protocol property boxes: paper vs measured")
    report("E1_property_table", text)
    bench_snapshot("E1_property_table", protocols={
        row["protocol"]: {
            "nodes": row["measured nodes (f=1)"],
            "phases": row["measured phases"],
            "fitted_exponent": round(row["fitted exponent"], 4),
            "complexity": row["measured complexity"],
        }
        for row in rows
    })

    by_protocol = {row["protocol"]: row for row in rows}
    # Node formulas at f=1.
    assert by_protocol["paxos"]["measured nodes (f=1)"] == 3
    assert by_protocol["pbft"]["measured nodes (f=1)"] == 4
    assert by_protocol["minbft"]["measured nodes (f=1)"] == 3
    # Phase counts.
    assert by_protocol["paxos"]["measured phases"] == 2
    assert by_protocol["pbft"]["measured phases"] == 3
    assert by_protocol["hotstuff"]["measured phases"] == 7
    assert by_protocol["minbft"]["measured phases"] == 2
    # Complexity classes: PBFT quadratic, the linear ones linear.
    assert by_protocol["pbft"]["measured complexity"] == "O(N^2)"
    assert by_protocol["paxos"]["measured complexity"] == "O(N)"
    assert by_protocol["hotstuff"]["measured complexity"] == "O(N)"
    assert by_protocol["zyzzyva"]["measured complexity"] == "O(N)"
    # MinBFT's all-to-all commit measures quadratic even though the
    # paper's box says O(N) ("same complexity as Paxos", counted
    # per-sender) — recorded, not hidden (see EXPERIMENTS.md).
    assert by_protocol["minbft"]["fitted exponent"] > 1.4
