"""E9 — PBFT: 3 phases, 3f+1 nodes, O(N²) agreement, O(N³) view change.

Regenerates the PBFT figure and its complexity box: per-phase message
counts across cluster sizes (quadratic fit), and view-change traffic
whose *bytes* grow another factor of N (each message carries O(N)
prepared certificates).
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.metrics import classify_order, fit_order
from repro.protocols.pbft import run_pbft


def agreement_row(f):
    cluster = Cluster(seed=1)
    run_pbft(cluster, f=f, n_clients=1, operations_per_client=2)
    by_type = cluster.metrics.by_type
    return {
        "f": f,
        "n (3f+1)": 3 * f + 1,
        "quorum (2f+1)": 2 * f + 1,
        "pre-prepare": by_type["preprepare"],
        "prepare": by_type["pbftprepare"],
        "commit": by_type["pbftcommit"],
        "agreement msgs": by_type["preprepare"] + by_type["pbftprepare"]
        + by_type["pbftcommit"],
    }


def view_change_row(f):
    cluster = Cluster(seed=2)
    run_pbft(cluster, f=f, n_clients=1, operations_per_client=2,
             crash_primary_at=3.0)
    vc_msgs = cluster.metrics.by_type["viewchange"] + \
        cluster.metrics.by_type["newview"]
    return {"f": f, "n": 3 * f + 1, "view-change msgs": vc_msgs}


def test_pbft(benchmark, report, bench_snapshot):
    def run_all():
        return ([agreement_row(f) for f in (1, 2, 3)],
                [view_change_row(f) for f in (1, 2, 3)])

    agreement, view_change = benchmark.pedantic(run_all, rounds=1,
                                                iterations=1)
    samples = [(row["n (3f+1)"], row["agreement msgs"]) for row in agreement]
    exponent = fit_order(samples)
    vc_samples = [(row["n"], row["view-change msgs"]) for row in view_change]
    vc_exponent = fit_order(vc_samples)

    text = render_table(agreement, title="E9 — PBFT agreement traffic")
    text += "\nfitted agreement complexity: %s (exponent %.2f; paper: O(N^2))" \
        % (classify_order(exponent), exponent)
    text += "\n\n" + render_table(view_change, title="view-change traffic")
    text += "\nfitted view-change message complexity: %.2f " \
            "(paper: O(N^3) in bits — each of O(N^2) messages carries " \
            "O(N) certificates)" % vc_exponent
    report("E9_pbft", text)
    bench_snapshot("E9_pbft", protocol="pbft", phases=3,
                   agreement_messages_f1=agreement[0]["agreement msgs"],
                   fitted_exponent=round(exponent, 4),
                   view_change_exponent=round(vc_exponent, 4))

    # Quadratic agreement.
    assert classify_order(exponent) == "O(N^2)"
    # Three phases visible in message types.
    for row in agreement:
        assert row["pre-prepare"] > 0 and row["prepare"] > 0 and row["commit"] > 0
        assert row["n (3f+1)"] == 3 * row["f"] + 1
    # View change at least quadratic in message count.
    assert vc_exponent > 1.5
