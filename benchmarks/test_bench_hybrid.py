"""E13 — hybrid fault models: UpRight's 3m+2c+1, SeeMoRe's three modes,
XFT's anarchy boundary.

Regenerates (a) the UpRight quorum-arithmetic table with a tolerance
sweep, (b) the per-mode SeeMoRe comparison (phases / quorum / message
order), and (c) XFT's safety claim on both sides of the anarchy
predicate.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.protocols.seemore import run_seemore
from repro.protocols.upright import run_upright
from repro.protocols.xft import (
    in_anarchy,
    run_xft,
    run_xft_anarchy,
    run_xft_no_anarchy_control,
)


def upright_rows():
    rows = []
    for m, c, crash, silent, expect_live in (
        (1, 1, (), (), True),
        (1, 1, (5,), (4,), True),      # exactly the budget
        (1, 1, (4, 5), (3,), False),   # one crash over budget
        (0, 1, (), (), True),          # degenerates to Paxos
        (1, 0, (), (), True),          # degenerates to PBFT
    ):
        cluster = Cluster(seed=3)
        result = run_upright(cluster, m=m, c=c, operations=2,
                             crash_indices=crash, silent_indices=silent,
                             horizon=400.0)
        rows.append({
            "m": m, "c": c,
            "n (3m+2c+1)": 3 * m + 2 * c + 1,
            "quorum (2m+c+1)": 2 * m + c + 1,
            "crashed": len(crash), "silent-byz": len(silent),
            "live": result.clients[0].done,
            "safe": result.logs_consistent(),
            "expected live": expect_live,
        })
    return rows


def seemore_rows():
    claims = {1: ("2", "2m+c+1", "O(n)"), 2: ("2", "2m+1", "O(n^2)"),
              3: ("3", "2m+1", "O(n^2)")}
    rows = []
    for mode in (1, 2, 3):
        cluster = Cluster(seed=mode)
        result = run_seemore(cluster, mode=mode, m=1, c=1, operations=3)
        phases = cluster.metrics.phases_for("seemore-%d" % mode)
        rows.append({
            "mode": mode,
            "paper phases": claims[mode][0],
            "measured phases": len(phases),
            "paper quorum": claims[mode][1],
            "quorum size": result.replicas[0]._quorum(),
            "paper msgs": claims[mode][2],
            "messages": result.messages,
            "done": result.clients[0].done,
        })
    return rows


def xft_rows():
    rows = []
    cluster = Cluster(seed=1)
    common = run_xft(cluster, f=1, operations=3)
    rows.append({
        "scenario": "common case (n=2f+1=3)",
        "anarchy": in_anarchy(3, 0, 0, 0),
        "done": common.clients[0].done,
        "safe": common.logs_consistent(),
        "messages": common.messages,
    })
    anarchy = run_xft_anarchy(Cluster(seed=3))
    rows.append({
        "scenario": "byzantine leader + partition (c=0,m=1,p=1)",
        "anarchy": in_anarchy(3, 0, 1, 1),
        "done": None,
        "safe": anarchy.logs_consistent(),
        "messages": anarchy.messages,
    })
    control = run_xft_no_anarchy_control(Cluster(seed=3))
    rows.append({
        "scenario": "byzantine leader, no partition (c=0,m=1,p=0)",
        "anarchy": in_anarchy(3, 0, 1, 0),
        "done": None,
        "safe": control.logs_consistent(),
        "messages": control.messages,
    })
    return rows


def test_hybrid_models(benchmark, report, bench_snapshot):
    def run_all():
        return upright_rows(), seemore_rows(), xft_rows()

    upright, seemore, xft = benchmark.pedantic(run_all, rounds=1,
                                               iterations=1)
    text = render_table(upright, title="E13a — UpRight (m, c) tolerance sweep")
    text += "\n\n" + render_table(seemore, title="E13b — SeeMoRe's three modes")
    text += "\n\n" + render_table(xft, title="E13c — XFT anarchy boundary")
    report("E13_hybrid", text)
    bench_snapshot("E13_hybrid", protocol="upright/seemore/xft",
                   upright_n=upright[0]["n (3m+2c+1)"],
                   upright_quorum=upright[0]["quorum (2m+c+1)"],
                   seemore_mode1_messages=seemore[0]["messages"],
                   seemore_mode3_messages=seemore[2]["messages"],
                   xft_safe_outside_anarchy=all(
                       row["safe"] == (not row["anarchy"]) for row in xft))

    for row in upright:
        assert row["live"] == row["expected live"]
        assert row["safe"]
    # SeeMoRe: mode 1 two phases/large quorum/linear; mode 3 three phases.
    assert seemore[0]["measured phases"] == 2
    assert seemore[2]["measured phases"] == 3
    assert seemore[0]["quorum size"] == 4 and seemore[1]["quorum size"] == 3
    assert seemore[0]["messages"] < seemore[1]["messages"] \
        < seemore[2]["messages"]
    # XFT: safe exactly when not in anarchy.
    for row in xft:
        assert row["safe"] == (not row["anarchy"])
