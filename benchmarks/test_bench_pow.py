"""E15 — Bitcoin proof of work: mining, forks, difficulty, halving,
centralization, and the attacks.

Regenerates, one sub-table each:

* the nonce-search figure (real SHA-256 attempts vs target),
* fork rate vs block-interval/propagation ratio ("mining is
  probabilistic → forks"),
* difficulty retargeting holding the block interval,
* the reward-halving schedule ("currently it's 12.5"),
* mining centralization: hash share → block share (the 81% pie),
* double-spend success vs confirmations (weak finality),
* selfish mining revenue vs hash share.
"""

import random

from repro.analysis import render_table
from repro.blockchain import (
    Blockchain,
    build_block,
    doublespend_success_probability,
    make_coinbase,
    mine,
    run_mining_network,
    simulate_doublespend,
    simulate_selfish_mining,
)
from repro.core import Cluster
from repro.crypto import HASH_SPACE
from repro.net import UniformDelayModel


def nonce_search_rows():
    rows = []
    for shift in (8, 10, 12):
        target = HASH_SPACE >> shift
        attempts = []
        for i in range(3):
            block = build_block("0" * 64, [make_coinbase("m", 50.0, 1)],
                                timestamp=float(i), target=target, height=1)
            solved = mine(block)
            attempts.append(solved.header.nonce + 1)
        rows.append({
            "target": "2^256 >> %d" % shift,
            "expected attempts": 1 << shift,
            "measured attempts (mean of 3)": sum(attempts) / 3,
        })
    return rows


def fork_rows():
    rows = []
    for tbt in (5.0, 20.0, 60.0):
        cluster = Cluster(seed=7, delivery=UniformDelayModel(0.5, 2.0))
        result = run_mining_network(cluster, hashrates=(100.0,) * 4,
                                    target_block_time=tbt, duration=2500.0)
        main, abandoned, rate = result.fork_stats()
        rows.append({
            "block interval": tbt,
            "interval/propagation": tbt / 1.25,
            "main-chain blocks": main,
            "abandoned blocks": abandoned,
            "fork rate": rate,
        })
    return rows


def retarget_rows():
    # Hashrate doubles mid-run: the next retarget halves the target.
    chain = Blockchain(initial_target=HASH_SPACE >> 10,
                       target_block_time=10.0, retarget_interval=8,
                       pow_check=False)
    timestamps = []
    t = 0.0
    for height in range(1, 25):
        # First era at nominal speed, then 2x hashrate → 5s blocks.
        t += 10.0 if height <= 8 else 5.0
        block = build_block(chain.tip, [make_coinbase("m", 50.0, height)],
                            timestamp=t, target=chain.expected_target(chain.tip),
                            height=height)
        chain.add_block(block)
        timestamps.append(t)
    targets = [b.header.target for b in chain.main_chain()]
    return [{
        "era": era,
        "target (relative)": round(targets[era * 8 + 1] / targets[1], 3),
    } for era in range(3)]


def halving_rows():
    chain = Blockchain(halving_interval=210_000)
    return [{
        "height": height,
        "reward": chain.reward_at(height),
    } for height in (0, 209_999, 210_000, 420_000, 630_000)]


def centralization_rows():
    cluster = Cluster(seed=3)
    result = run_mining_network(
        cluster, hashrates=(810.0, 100.0, 50.0, 40.0),
        target_block_time=30.0, duration=9000.0,
    )
    counts = result.blocks_by_miner()
    total = sum(counts.values())
    shares = {"m0": 0.81, "m1": 0.10, "m2": 0.05, "m3": 0.04}
    return [{
        "miner": miner,
        "hash share": share,
        "block share": round(counts.get(miner, 0) / total, 3),
    } for miner, share in sorted(shares.items())]


def doublespend_rows():
    rng = random.Random(1)
    rows = []
    for q in (0.1, 0.3, 0.45):
        for k in (1, 6):
            rows.append({
                "attacker share q": q,
                "confirmations": k,
                "empirical success": simulate_doublespend(rng, q, k,
                                                          trials=4000),
                "nakamoto (q/p)^k": round(
                    doublespend_success_probability(q, k), 5),
            })
    return rows


def selfish_rows():
    rows = []
    for q in (0.2, 0.3, 0.4, 0.45):
        result = simulate_selfish_mining(random.Random(2), q, blocks=40000)
        rows.append({
            "pool hash share": q,
            "revenue share": round(result.revenue_share, 3),
            "profitable": result.profitable,
        })
    return rows


def test_pow(benchmark, report, bench_snapshot):
    def run_all():
        return (nonce_search_rows(), fork_rows(), retarget_rows(),
                halving_rows(), centralization_rows(), doublespend_rows(),
                selfish_rows())

    nonce, forks, retarget, halving, central, dspend, selfish = \
        benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = render_table(nonce, title="E15a — nonce search (real SHA-256)")
    text += "\n\n" + render_table(forks, title="E15b — fork rate vs block interval")
    text += "\n\n" + render_table(retarget, title="E15c — difficulty retarget (hashrate 2x after era 0)")
    text += "\n\n" + render_table(halving, title="E15d — reward halving schedule")
    text += "\n\n" + render_table(central, title="E15e — mining centralization")
    text += "\n\n" + render_table(dspend, title="E15f — double-spend success (weak finality)")
    text += "\n\n" + render_table(selfish, title="E15g — selfish mining")
    report("E15_pow", text)
    bench_snapshot("E15_pow", protocol="pow",
                   fork_rate_fast=forks[0]["fork rate"],
                   fork_rate_slow=forks[-1]["fork rate"],
                   whale_block_share=central[0]["block share"],
                   doublespend_q45_k6=dspend[-1]["empirical success"],
                   selfish_profitable_at_04=selfish[2]["profitable"])

    # Nonce search effort tracks the target (within Poisson noise).
    for row in nonce:
        ratio = row["measured attempts (mean of 3)"] / row["expected attempts"]
        assert 0.1 < ratio < 10.0
    # Forks vanish as the interval outgrows propagation.
    assert forks[0]["fork rate"] > forks[-1]["fork rate"] * 3
    # The retarget cuts the target after the fast era (clamped at 4x).
    assert retarget[2]["target (relative)"] < retarget[1]["target (relative)"]
    # Halving: 50 → 25 → 12.5 ("currently").
    rewards = [row["reward"] for row in halving]
    assert rewards == [50.0, 50.0, 25.0, 12.5, 6.25]
    # Centralization: block share ≈ hash share for the dominant pool.
    assert abs(central[0]["block share"] - 0.81) < 0.08
    # Double-spend: more confirmations → exponentially safer; q→0.5 → unsafe.
    assert dspend[1]["empirical success"] < dspend[0]["empirical success"]
    assert dspend[-1]["empirical success"] > 0.2
    # Selfish mining crosses profitability between 1/4 and ~0.35.
    assert not selfish[0]["profitable"]
    assert selfish[2]["profitable"]
