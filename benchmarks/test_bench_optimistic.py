"""E22 (extension) — pessimistic vs optimistic replication.

The taxonomy's third aspect, quantified on the same workload: a
consensus-backed store (Multi-Paxos ReplicatedKV — "guarantee from the
beginning that all the replicas are identical") against a Dynamo-style
EventualKV ("replicas speculatively execute… can diverge… eventual
consistency").  Three panels:

* normal-case cost (messages and latency per operation),
* quorum-tunable staleness (R+W > N vs R+W <= N under a flaky link),
* a partition: the CP store's minority side stalls, the AP store keeps
  writing and converges after the heal — the CAP trade the DynamoDB
  slide is selling.
"""

from repro.analysis import render_table
from repro.dynamo import EventualKV
from repro.smr import ReplicatedKV


def cost_rows():
    rows = []
    kv = ReplicatedKV(n_replicas=3, protocol="multi-paxos", seed=2)
    before = kv.cluster.metrics.messages_total
    for i in range(10):
        kv.put("k%d" % i, i)
    rows.append({
        "store": "ReplicatedKV (multi-paxos)",
        "guarantee": "linearizable",
        "messages / 10 writes": kv.cluster.metrics.messages_total - before,
    })
    ekv = EventualKV(n_replicas=3, n=3, r=2, w=2, seed=2, gossip_interval=0)
    before = ekv.cluster.metrics.messages_total
    for i in range(10):
        ekv.put("k%d" % i, i)
    rows.append({
        "store": "EventualKV (N=3, R=2, W=2)",
        "guarantee": "eventual (quorum-intersecting)",
        "messages / 10 writes": ekv.cluster.metrics.messages_total - before,
    })
    return rows


def staleness_rows():
    rows = []
    for r, w, label in ((2, 2, "R+W > N"), (1, 1, "R+W <= N")):
        store = EventualKV(n_replicas=3, n=3, r=r, w=w, seed=11,
                           gossip_interval=5.0)
        laggard = store.coordinator.preference_list("y")[0]
        store.cluster.network.add_interceptor(
            lambda src, dst, msg, _lag=laggard:
            False if dst == _lag and msg.mtype == "dynput" else None
        )
        stale = 0
        for i in range(20):
            store.put("y", i)
            value, _ = store.get("y")
            stale += (value != i)
        rows.append({
            "config": "N=3, R=%d, W=%d (%s)" % (r, w, label),
            "stale reads / 20": stale,
        })
    return rows


def partition_rows():
    # CP side: Multi-Paxos client cut off with a minority cannot commit.
    from repro.core.exceptions import LivenessFailure
    kv = ReplicatedKV(n_replicas=3, protocol="multi-paxos", seed=4,
                      op_timeout=150.0)
    kv.put("k", "before")
    names = [r.name for r in kv.replicas]
    kv.cluster.network.partitions.split(
        [names[0], "kvclient"], names[1:]
    )
    try:
        kv.put("k", "during")
        cp_outcome = "committed (leader side)"
    except LivenessFailure:
        cp_outcome = "BLOCKED (no quorum)"
    kv.cluster.network.partitions.heal()

    # AP side: EventualKV keeps accepting on whatever replicas it reaches.
    store = EventualKV(n_replicas=4, n=3, r=1, w=1, seed=9,
                       gossip_interval=5.0)
    store.put("k", "before")
    store.settle(60.0)
    pref = store.coordinator.preference_list("k")
    isolated = pref[-1]
    rest = [r.name for r in store.replicas if r.name != isolated]
    store.partition(rest, [isolated])
    store.put("k", "during")
    ap_write = "accepted"
    store.heal()
    store.settle(200.0)
    value, _ = store.get("k")
    return [
        {"system": "CP (multi-paxos, minority side)",
         "write during partition": cp_outcome,
         "after heal": "log repaired, single history"},
        {"system": "AP (dynamo, R=W=1)",
         "write during partition": ap_write,
         "after heal": "converged on %r (anti-entropy)" % value},
    ], value, store.converged("k")


def test_pessimistic_vs_optimistic(benchmark, report, bench_snapshot):
    def run_all():
        return cost_rows(), staleness_rows(), partition_rows()

    costs, staleness, (partition, final_value, converged) = \
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = render_table(costs, title="E22 — normal-case write cost")
    text += "\n\n" + render_table(staleness,
                                  title="staleness vs quorum tunables "
                                        "(one lossy preferred replica)")
    text += "\n\n" + render_table(partition, title="behaviour under partition")
    report("E22_optimistic", text)
    bench_snapshot("E22_optimistic", protocol="smr/dynamo",
                   cp_messages_10_writes=costs[0]["messages / 10 writes"],
                   ap_messages_10_writes=costs[1]["messages / 10 writes"],
                   strong_quorum_stale_reads=staleness[0]["stale reads / 20"],
                   weak_quorum_stale_reads=staleness[1]["stale reads / 20"],
                   ap_converged=converged)

    # Consensus costs more than quorum writes in the normal case.
    assert costs[0]["messages / 10 writes"] > costs[1]["messages / 10 writes"]
    # Quorum intersection eliminates staleness; weak quorums don't.
    assert staleness[0]["stale reads / 20"] == 0
    assert staleness[1]["stale reads / 20"] > 0
    # CP blocks on the minority side; AP accepts and converges.
    assert partition[0]["write during partition"].startswith("BLOCKED")
    assert partition[1]["write during partition"] == "accepted"
    assert final_value == "during" and converged
