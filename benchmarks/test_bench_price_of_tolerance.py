"""E21 (extension) — the price of tolerance.

The tutorial's arc is a ladder of fault models: crash (Paxos/Raft) →
Byzantine (PBFT) → Byzantine-with-hardware (MinBFT/CheapBFT) → hybrid
(XFT).  This bench runs the *same* closed-loop workload (one client,
five operations) through every rung and tabulates what each step of
paranoia costs: replicas, messages, latency — the comparison the deck
implies but never prints on one slide.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import SynchronousModel


def _row(name, replicas, messages, latency, failure_model):
    return {
        "protocol": name,
        "fault model": failure_model,
        "replicas (f=1)": replicas,
        "messages (5 ops)": messages,
        "mean latency (delays)": latency,
    }


def measure_all():
    rows = []
    delivery = lambda: SynchronousModel(1.0)

    cluster = Cluster(seed=1, delivery=delivery())
    from repro.protocols.multipaxos import run_multipaxos
    result = run_multipaxos(cluster, n_replicas=3, commands_per_client=5)
    latencies = result.clients[0].latencies
    rows.append(_row("multi-paxos", 3, result.messages,
                     sum(latencies) / len(latencies), "crash"))

    cluster = Cluster(seed=1, delivery=delivery())
    from repro.protocols.raft import run_raft
    result = run_raft(cluster, n_nodes=3, commands_per_client=5)
    rows.append(_row("raft", 3, result.messages, None, "crash"))

    cluster = Cluster(seed=1, delivery=delivery())
    from repro.protocols.xft import run_xft
    result = run_xft(cluster, f=1, operations=5)
    rows.append(_row("xft", 3, result.messages, None,
                     "crash + non-crash (no anarchy)"))

    cluster = Cluster(seed=1, delivery=delivery())
    from repro.protocols.cheapbft import run_cheapbft
    result = run_cheapbft(cluster, f=1, operations=5)
    rows.append(_row("cheapbft (tiny)", 3, result.messages, None,
                     "hybrid, trusted HW, f+1 active"))

    cluster = Cluster(seed=1, delivery=delivery())
    from repro.protocols.minbft import run_minbft
    result = run_minbft(cluster, f=1, operations=5)
    latencies = result.clients[0].latencies
    rows.append(_row("minbft", 3, result.messages,
                     sum(latencies) / len(latencies), "hybrid, trusted HW"))

    cluster = Cluster(seed=1, delivery=delivery())
    from repro.protocols.zyzzyva import run_zyzzyva
    result = run_zyzzyva(cluster, f=1, operations=5)
    latencies = result.clients[0].latencies
    rows.append(_row("zyzzyva", 4, result.messages,
                     sum(latencies) / len(latencies),
                     "byzantine (optimistic)"))

    cluster = Cluster(seed=1, delivery=delivery())
    from repro.protocols.pbft import run_pbft
    result = run_pbft(cluster, f=1, operations_per_client=5)
    latencies = result.clients[0].latencies
    rows.append(_row("pbft", 4, result.messages,
                     sum(latencies) / len(latencies), "byzantine"))

    cluster = Cluster(seed=1, delivery=delivery())
    from repro.protocols.hotstuff import run_basic_hotstuff
    result = run_basic_hotstuff(cluster, f=1, operations=5)
    latencies = result.clients[0].latencies
    rows.append(_row("hotstuff (basic)", 4, result.messages,
                     sum(latencies) / len(latencies),
                     "byzantine (linear)"))
    return rows


def test_price_of_tolerance(benchmark, report, bench_snapshot):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    text = render_table(
        rows,
        title="E21 — the same 5-op workload up the fault-model ladder (f=1)",
    )
    report("E21_price_of_tolerance", text)

    by_name = {row["protocol"]: row for row in rows}
    bench_snapshot("E21_price_of_tolerance", protocol="ladder",
                   ladder={row["protocol"]: {
                       "replicas": row["replicas (f=1)"],
                       "messages": row["messages (5 ops)"],
                   } for row in rows})
    # Replica bills: 2f+1 for crash/hybrid/XFT, 3f+1 for full Byzantine.
    assert by_name["multi-paxos"]["replicas (f=1)"] == 3
    assert by_name["minbft"]["replicas (f=1)"] == 3
    assert by_name["pbft"]["replicas (f=1)"] == 4
    # Message bills climb with paranoia (CheapTiny cheapest, PBFT dearest
    # among the BFTs at this scale).
    assert by_name["cheapbft (tiny)"]["messages (5 ops)"] < \
        by_name["minbft"]["messages (5 ops)"]
    assert by_name["minbft"]["messages (5 ops)"] < \
        by_name["pbft"]["messages (5 ops)"]
    assert by_name["multi-paxos"]["messages (5 ops)"] < \
        by_name["pbft"]["messages (5 ops)"]
    # Latency: speculative Zyzzyva beats PBFT; HotStuff pays its 7 phases.
    assert by_name["zyzzyva"]["mean latency (delays)"] < \
        by_name["pbft"]["mean latency (delays)"]
    assert by_name["hotstuff (basic)"]["mean latency (delays)"] > \
        by_name["pbft"]["mean latency (delays)"]
