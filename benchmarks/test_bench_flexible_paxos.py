"""E6 — Flexible Paxos: quorum intersection revisited.

Regenerates the claim table: only Q1×Q2 intersection is needed, so
replication quorums shrink (counting and grid constructions), the
algorithm is unchanged, and without the intersection condition safety
actually breaks (the negative construction).
"""

from repro.analysis import render_table
from repro.core import Cluster, FlexibleQuorum, GridQuorum, MajorityQuorum
from repro.protocols.flexible_paxos import (
    demonstrate_unsafe_quorums,
    run_flexible_paxos,
    run_grid_paxos,
)


def quorum_rows():
    n = 12
    members = ["a%d" % i for i in range(n)]
    majority = MajorityQuorum(members)
    flexible = FlexibleQuorum(members, 10, 3)
    grid = GridQuorum(4, 3)
    rows = []
    for label, system, q1, q2 in (
        ("majority (classic Paxos)", majority,
         majority.phase1_size(), majority.phase2_size()),
        ("flexible |Q1|=10,|Q2|=3", flexible, 10, 3),
        ("grid 4x3 (col/row)", grid, grid.phase1_size(), grid.phase2_size()),
    ):
        rows.append({
            "quorum system": label,
            "n": system.n,
            "phase-1 quorum": q1,
            "phase-2 quorum": q2,
            "replication crash budget": system.n - q2,
            "Q1 x Q2 intersect": system.intersection_guaranteed(),
        })
    return rows


def end_to_end_rows():
    rows = []
    cluster = Cluster(seed=1)
    result = run_flexible_paxos(cluster, n_acceptors=6, q1=5, q2=2,
                                proposals=("X",))
    rows.append({"run": "flexible q1=5 q2=2 on n=6",
                 "decided": result.value, "messages": result.messages})
    cluster = Cluster(seed=2)
    outcome = run_grid_paxos(cluster, rows=3, cols=4, proposals=("Y",))
    rows.append({"run": "grid 3x4", "decided": outcome.result.value,
                 "messages": outcome.result.messages})
    chosen = demonstrate_unsafe_quorums(Cluster(seed=3))
    rows.append({"run": "NON-intersecting quorums (negative control)",
                 "decided": "/".join(sorted(chosen)),
                 "messages": None})
    return rows


def test_flexible_paxos(benchmark, report, bench_snapshot):
    rows, runs = benchmark.pedantic(
        lambda: (quorum_rows(), end_to_end_rows()), rounds=1, iterations=1
    )
    text = render_table(rows, title="E6 — generalized quorum condition")
    text += "\n\n" + render_table(runs, title="end-to-end runs")
    report("E6_flexible_paxos", text)

    majority, flexible, grid = rows
    bench_snapshot("E6_flexible_paxos", protocol="flexible-paxos",
                   majority_phase2=majority["phase-2 quorum"],
                   flexible_phase2=flexible["phase-2 quorum"],
                   grid_phase2=grid["phase-2 quorum"],
                   flexible_crash_budget=flexible["replication crash budget"],
                   unsafe_decides_two=runs[-1]["decided"] == "A/B")
    # Replication quorums shrink below the majority while intersection holds.
    assert flexible["phase-2 quorum"] < majority["phase-2 quorum"]
    assert grid["phase-2 quorum"] < majority["phase-2 quorum"]
    assert all(r["Q1 x Q2 intersect"] for r in rows)
    # The crash budget for replication grows accordingly.
    assert flexible["replication crash budget"] > \
        majority["replication crash budget"]
    # Negative control: two values decided once intersection is dropped.
    assert runs[-1]["decided"] == "A/B"
