"""E12 — trusted components: MinBFT (2f+1, 2 phases) and CheapBFT
(f+1 active replicas, PANIC switch).

Regenerates the MinBFT agreement figure ("same number of replicas,
communication phases and message complexity as Paxos") and CheapBFT's
CheapTiny/CheapSwitch story: normal-case savings and the switch under
an active-replica crash.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.protocols.cheapbft import run_cheapbft
from repro.protocols.minbft import run_minbft
from repro.protocols.pbft import run_pbft


def protocol_row(name, runner, **kwargs):
    cluster = Cluster(seed=1)
    result = runner(cluster, **kwargs)
    client = result.clients[0]
    phases = len(cluster.metrics.phases_for(name)) or None
    return {
        "protocol": name,
        "replicas": len(result.replicas),
        "active in normal case": kwargs.get("active_count",
                                            len(result.replicas)),
        "messages (3 ops)": cluster.metrics.messages_total,
        "done": client.done,
    }


def switch_row():
    cluster = Cluster(seed=2)
    result = run_cheapbft(cluster, f=1, operations=4, crash_active_at=3.0)
    live_modes = sorted({r.mode for r in result.replicas if not r.crashed})
    switched_at = min((r.switched_at for r in result.replicas
                       if r.switched_at is not None), default=None)
    return {
        "scenario": "CheapBFT, one active crashes at t=3",
        "panics": result.clients[0].panics_sent,
        "post-switch modes": "/".join(live_modes),
        "switch time": switched_at,
        "all ops done": result.clients[0].done,
        "consistent": result.logs_consistent(),
    }


def test_trusted_components(benchmark, report, bench_snapshot):
    def run_all():
        rows = [
            protocol_row("pbft", lambda c, **kw: run_pbft(
                c, f=1, n_clients=1, operations_per_client=3)),
            protocol_row("minbft", lambda c, **kw: run_minbft(
                c, f=1, operations=3)),
            protocol_row("cheapbft", lambda c, **kw: run_cheapbft(
                c, f=1, operations=3), active_count=2),
        ]
        return rows, switch_row()

    rows, switch = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = render_table(rows, title="E12 — trusted hardware shrinks BFT")
    text += "\n\n" + render_table([switch], title="CheapSwitch under failure")
    report("E12_trusted", text)

    pbft, minbft, cheapbft = rows
    bench_snapshot("E12_trusted", protocol="minbft/cheapbft",
                   pbft_replicas=pbft["replicas"],
                   minbft_replicas=minbft["replicas"],
                   cheapbft_active=cheapbft["active in normal case"],
                   pbft_messages=pbft["messages (3 ops)"],
                   minbft_messages=minbft["messages (3 ops)"],
                   cheapbft_messages=cheapbft["messages (3 ops)"])
    # USIG removes equivocation: 2f+1 instead of 3f+1.
    assert pbft["replicas"] == 4
    assert minbft["replicas"] == 3
    assert cheapbft["replicas"] == 3
    assert cheapbft["active in normal case"] == 2  # f+1
    # Message costs: CheapTiny < MinBFT < PBFT.
    assert cheapbft["messages (3 ops)"] < minbft["messages (3 ops)"] \
        < pbft["messages (3 ops)"]
    # The switch happened, completed the workload, and stayed consistent.
    assert switch["panics"] >= 1
    assert switch["post-switch modes"] == "minbft"
    assert switch["all ops done"] and switch["consistent"]
