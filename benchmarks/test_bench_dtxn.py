"""E18 (extension) — the Google Spanner figure: transactions (2PL+2PC)
over Paxos-replicated partitions.

Measured: per-transaction message cost as the number of partitions a
transaction touches grows (2PC's fan-out times each group's replication
cost), abort/retry behaviour under contention, and that minority
replica failures inside groups are invisible to the transaction layer.
"""

from repro.analysis import render_table
from repro.dtxn import DistributedKV, Transaction


def _keys_per_group(db, count):
    seen = {}
    index = 0
    while len(seen) < count:
        key = "k%d" % index
        seen.setdefault(db.group_of(key), key)
        index += 1
    return [seen[gid] for gid in sorted(seen)][:count]


def fanout_row(partitions_touched):
    db = DistributedKV(n_partitions=3, replicas_per_partition=3, seed=4)
    keys = _keys_per_group(db, partitions_touched)
    for key in keys:
        db.put(key, 100)
    before = db.cluster.metrics.messages_total
    txn = db.run_transaction(
        tuple(keys),
        lambda reads: {key: reads[key] + 1 for key in keys},
    )
    cost = db.cluster.metrics.messages_total - before
    return {
        "partitions touched": partitions_touched,
        "outcome": txn.outcome,
        "messages / txn": cost,
        "2pc rounds": 3,  # lock+read, prepare, commit
    }


def contention_row():
    db = DistributedKV(n_partitions=2, replicas_per_partition=3, seed=5)
    db.put("hot", 0)
    txns = [
        Transaction("t%d" % i, ("hot",),
                    lambda reads: {"hot": reads["hot"] + 1})
        for i in range(5)
    ]
    for txn in txns:
        db.coordinator.submit(txn)
    db.cluster.run_until(lambda: all(t.outcome for t in txns), until=6000.0)
    return {
        "concurrent txns on one key": len(txns),
        "committed": sum(t.outcome == "committed" for t in txns),
        "lock conflicts": db.coordinator.conflicts_seen,
        "final value": db.get("hot"),
    }


def fault_row():
    db = DistributedKV(n_partitions=2, replicas_per_partition=3, seed=6)
    a, b = _keys_per_group(db, 2)
    db.put(a, 100)
    db.put(b, 100)
    db.crash_one_replica_per_partition()
    outcome = db.transfer(a, b, 50)
    db.settle()
    return {
        "scenario": "1 replica crashed per group",
        "transfer": outcome,
        "total conserved": db.total_of([a, b]) == 200,
        "groups consistent": db.check_consistency(),
    }


def test_distributed_transactions(benchmark, report, bench_snapshot):
    def run_all():
        return ([fanout_row(k) for k in (1, 2, 3)], contention_row(),
                fault_row())

    fanout, contention, fault = benchmark.pedantic(run_all, rounds=1,
                                                   iterations=1)
    text = render_table(fanout, title="E18 — 2PC fan-out over Paxos groups")
    text += "\n\n" + render_table([contention], title="contention (no-wait + retry)")
    text += "\n\n" + render_table([fault], title="replica failure inside groups")
    report("E18_dtxn", text)
    bench_snapshot("E18_dtxn", protocol="dtxn",
                   messages_1_partition=fanout[0]["messages / txn"],
                   messages_2_partitions=fanout[1]["messages / txn"],
                   messages_3_partitions=fanout[2]["messages / txn"],
                   contention_committed=contention["committed"],
                   fault_transfer=fault["transfer"])

    # Cost grows with the number of groups in the transaction.
    assert fanout[0]["messages / txn"] < fanout[1]["messages / txn"] \
        < fanout[2]["messages / txn"]
    assert all(row["outcome"] == "committed" for row in fanout)
    # Contention serializes: every increment lands exactly once.
    assert contention["committed"] == 5
    assert contention["final value"] == 5
    assert contention["lock conflicts"] >= 1
    # Replication hides minority crashes from the transaction layer.
    assert fault["transfer"] == "committed"
    assert fault["total conserved"] and fault["groups consistent"]
