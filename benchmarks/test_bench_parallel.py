"""E26 (extension) — parallel-scaling: fleet events/sec vs workers.

The conservative parallel engine (``src/repro/parallel/``) partitions
one sharded fleet across worker processes and advances it with epoch
barriers; its contract is that the worker count changes *nothing* but
speed.  This experiment measures the speed half of that contract: the
same fleet at 1, 2, 4 and 8 workers, recording

* **events/sec (critical path)** — total simulator events divided by
  the run's critical-path CPU seconds (per epoch, the *slowest*
  worker's CPU plus the engine's merge CPU).  This is the scaling
  headline: it measures how much concurrent CPU the partitioning
  exposes, and equals wall-clock throughput on a machine with at least
  ``workers`` free cores.  On CI runners with fewer cores, wall time
  cannot show the speedup (the workers time-share one core and pay the
  barrier IPC on top), which is exactly why the honest denominator is
  the critical path, not the wall.
* **events/sec/worker (normalized)** — the same rate divided by the
  worker count; its decay is the barrier + imbalance overhead.
* **wall ms** — recorded for transparency, machine-dependent, never
  asserted.

Structural assertions: every configuration commits its whole workload,
replicas stay consistent, and the 8-worker critical-path rate reaches
at least 3x the 1-worker rate (full mode; quick mode stops at 2
workers and asserts >1x).

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke mode.
"""

import os

from repro.analysis import render_table
from repro.parallel import (
    FleetSpec,
    merged_consistency,
    merged_workload,
    run_parallel_shards,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SEED = 7

WORKER_COUNTS = (1, 2) if QUICK else (1, 2, 4, 8)

#: One fleet, big enough that per-epoch work dwarfs the barrier: the
#: full fleet is 32 shards x 3 replicas = 96 consensus nodes.
FLEET = dict(
    seed=SEED,
    n_shards=4 if QUICK else 32,
    replicas=3,
    key_space=256 if QUICK else 4096,
    txns=48 if QUICK else 256,
    batch=16 if QUICK else 64,
    cross_ratio=0.3,
)

#: Timing trials per worker count; the smallest critical path wins.
#: Runs are deterministic (identical event streams), so repetition
#: re-measures the same work — the min strips scheduler noise on a
#: shared machine.
TRIALS = 1 if QUICK else 2


def measure(workers):
    spec = FleetSpec(workers=workers, **FLEET)
    run = run_parallel_shards(spec)
    cp = run.critical_path_seconds
    for _ in range(TRIALS - 1):
        cp = min(cp, run_parallel_shards(spec).critical_path_seconds)
    workload = merged_workload(run)
    committed = sum(seg["committed"] for seg in workload)
    txns = sum(seg["txns"] for seg in workload)
    assert committed == txns, "parallel workload must not abort"
    assert all(merged_consistency(run).values())
    rate = run.total_events / cp if cp > 0 else 0.0
    return {
        "workers": workers,
        "epochs": run.epochs,
        "events": run.total_events,
        "committed": committed,
        "events/s (crit path)": int(rate),
        "events/s/worker": int(rate / workers),
        "crit path ms": round(cp * 1e3, 1),
        "wall ms": round(run.wall_seconds * 1e3, 1),
    }


def test_parallel_scaling(benchmark, report, bench_snapshot):
    def run_all():
        return [measure(workers) for workers in WORKER_COUNTS]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    base = rows[0]["events/s (crit path)"]
    peak = rows[-1]["events/s (crit path)"]
    floor = 1.0 if QUICK else 3.0
    assert peak > base * floor, \
        "parallel engine scaled only %.2fx at %d workers" \
        % (peak / base, rows[-1]["workers"])

    text = render_table(
        rows, title="E26 — parallel-scaling (one fleet, K workers)")
    text += ("\nseed %d: %d shards x %d replicas, %d txns (%.0f%% "
             "cross-shard), conservative\nepoch barriers (lookahead = "
             "min cross-domain latency), best of %d timing\ntrial(s).  "
             "events/s divides total simulator events by the critical "
             "path: per\nepoch, the slowest worker's CPU plus the merge "
             "CPU — wall-clock throughput on\na machine with >= K free "
             "cores, and the honest scaling denominator on a\nsmaller "
             "one.  Merged outputs are byte-identical at every worker "
             "count\n(golden-enforced), so every row runs the exact "
             "same fleet.  Wall ms is\nmachine-dependent and recorded, "
             "not asserted."
             % (SEED, FLEET["n_shards"], FLEET["replicas"], FLEET["txns"],
                FLEET["cross_ratio"] * 100, TRIALS))
    report("E26_parallel_scaling", text)

    snapshot = {"quick": QUICK}
    for row in rows:
        key = "fleet_w%d" % row["workers"]
        snapshot["%s_events_per_sec" % key] = row["events/s (crit path)"]
        snapshot["%s_norm_events_per_sec" % key] = row["events/s/worker"]
        snapshot["%s_wall_ms" % key] = row["wall ms"]
    snapshot["speedup_max_workers"] = round(peak / base, 2)
    bench_snapshot("E26_parallel_scaling", **snapshot)
