"""E8 — Reaching Agreement in the Presence of Faults: the 3f+1 bound.

Regenerates the worked examples: Case I (N=4, f=1) produces identical,
valid result vectors with the faulty entry UNKNOWN; Case II (N=3, f=1)
yields all-UNKNOWN.  The recursive OM(m) sweep confirms the bound at
several (n, m) points.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import SynchronousModel
from repro.protocols.interactive_consistency import (
    UNKNOWN,
    om_satisfies_ic,
    run_interactive_consistency,
)


def vector_case(n, faulty):
    cluster = Cluster(seed=1, delivery=SynchronousModel(0.5))
    result = run_interactive_consistency(cluster, n=n, faulty=faulty)
    return {
        "case": "N=%d, f=%d" % (n, len(faulty)),
        "result vector": str(result.honest_results()[0]),
        "agreement": result.agreement(),
        "validity": result.validity(),
    }


def om_sweep():
    rows = []
    for m, n in ((1, 3), (1, 4), (1, 5), (2, 6), (2, 7)):
        traitors = set(range(1, m + 1))
        rows.append({
            "case": "OM(%d), n=%d" % (m, n),
            "3m+1": 3 * m + 1,
            "n >= 3m+1": n >= 3 * m + 1,
            "IC satisfied": om_satisfies_ic(m, n, traitors),
        })
    return rows


def test_psl_bound(benchmark, report, bench_snapshot):
    def run_all():
        return ([vector_case(4, (2,)), vector_case(3, (2,))], om_sweep())

    cases, sweep = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = render_table(cases, title="E8 — PSL vector exchange (worked examples)")
    text += "\n\n" + render_table(sweep, title="recursive OM(m) bound sweep")
    report("E8_psl_bound", text)

    case4, case3 = cases
    bench_snapshot("E8_psl_bound", protocol="psl",
                   n4_agreement=case4["agreement"],
                   n4_validity=case4["validity"],
                   n3_validity=case3["validity"],
                   bound_holds=all(
                       row["IC satisfied"] == row["n >= 3m+1"] for row in sweep))
    assert case4["result vector"] == str((1, 2, UNKNOWN, 4))
    assert case4["agreement"] and case4["validity"]
    assert case3["result vector"] == str((UNKNOWN, UNKNOWN, UNKNOWN))
    assert not case3["validity"]
    for row in sweep:
        assert row["IC satisfied"] == row["n >= 3m+1"]
