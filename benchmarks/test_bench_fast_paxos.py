"""E5 — Fast Paxos: 2 message delays in fast rounds, 3f+1 nodes, and
collision → classic-round recovery.

Regenerates both sequence diagrams: the fast round (AnyMsg → Accept! →
Accepted → Commit) and the collision figure with the classic round.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import SynchronousModel, UniformDelayModel
from repro.protocols.fast_paxos import run_fast_paxos
from repro.protocols.paxos import FixedBackoff, run_basic_paxos


def fast_round_row():
    cluster = Cluster(seed=1, delivery=SynchronousModel(1.0))
    result = run_fast_paxos(cluster, f=1, values=("X",))
    return {
        "scenario": "fast round (1 client)",
        "nodes": 3 * 1 + 1,
        "delays to learn": result.learn_delay(),
        "collisions": int(result.collision),
        "decided": result.decided,
    }


def basic_paxos_row():
    # Baseline: client -> leader -> acceptors -> leader = 3 delays once a
    # leader holds phase 1 (we measure phase 2 + request hop).
    cluster = Cluster(seed=1, delivery=SynchronousModel(1.0))
    result = run_basic_paxos(cluster, n_acceptors=3, proposals=("X",),
                             retry=FixedBackoff(100.0))
    # Our driver's proposer IS the client, so add the request hop the
    # paper counts: 1 (client->leader) + accept(1) + accepted(1) = 3.
    return {
        "scenario": "basic paxos (leader established)",
        "nodes": 3,
        "delays to learn": 1 + (result.decided_at - 2.0),
        "collisions": 0,
        "decided": result.value,
    }


def collision_rows(runs=30):
    collisions = 0
    fast_delays, recovery_delays = [], []
    for seed in range(runs):
        cluster = Cluster(seed=seed, delivery=UniformDelayModel(0.5, 1.5))
        result = run_fast_paxos(cluster, f=1, values=("X", "Y"))
        assert result.decided in ("X", "Y")
        if result.collision:
            collisions += 1
            recovery_delays.append(result.learn_delay())
        else:
            fast_delays.append(result.learn_delay())
    return {
        "scenario": "2 racing clients x %d runs" % runs,
        "nodes": 4,
        "delays to learn": sum(fast_delays) / len(fast_delays),
        "collisions": collisions,
        "decided": "always exactly one",
    }, (sum(recovery_delays) / len(recovery_delays)) if recovery_delays else None


def test_fast_paxos(benchmark, report, bench_snapshot):
    def run_all():
        race, recovery_mean = collision_rows()
        return [fast_round_row(), basic_paxos_row(), race], recovery_mean

    rows, recovery_mean = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = render_table(rows, title="E5 — Fast Paxos vs Basic Paxos")
    text += "\nmean learn delay after collision: %.2f" % recovery_mean
    report("E5_fast_paxos", text)

    fast, basic, race = rows
    bench_snapshot("E5_fast_paxos", protocol="fast-paxos",
                   fast_delays=fast["delays to learn"],
                   basic_delays=basic["delays to learn"],
                   fast_nodes=fast["nodes"], basic_nodes=basic["nodes"],
                   collisions=race["collisions"],
                   recovery_mean_delay=round(recovery_mean, 4))
    # The headline: 2 delays instead of 3, paid for with 3f+1 nodes.
    assert fast["delays to learn"] == 2.0
    assert basic["delays to learn"] == 3.0
    assert fast["nodes"] == 4 > basic["nodes"] == 3
    # Collisions happen and recovery costs extra phases.
    assert race["collisions"] > 0
    assert recovery_mean > 2.5
