"""E4 — Multi-Paxos's optimisation: phase 1 only on leader change.

Regenerates the 'normal mode vs recovery mode' claim: the steady-state
per-command message cost of Multi-Paxos against the cost of running a
full Basic-Paxos instance per command.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.protocols.multipaxos import run_multipaxos
from repro.protocols.paxos import run_basic_paxos


def multi_paxos_costs(commands):
    cluster = Cluster(seed=2)
    run_multipaxos(cluster, n_replicas=3, n_clients=1,
                   commands_per_client=commands)
    by_type = cluster.metrics.by_type
    prepares = by_type["mpprepare"] + by_type["mpprepareack"]
    per_command = by_type["mpaccept"] + by_type["mpaccepted"] + \
        by_type["mpcommit"]
    return {
        "protocol": "multi-paxos",
        "commands": commands,
        "phase-1 msgs (total)": prepares,
        "phase-2 msgs (total)": per_command,
        "phase-2 msgs / command": per_command / commands,
        "phase-1 msgs / command": prepares / commands,
    }


def basic_paxos_costs(commands):
    total_phase1 = total_phase2 = 0
    for i in range(commands):
        cluster = Cluster(seed=100 + i)
        run_basic_paxos(cluster, n_acceptors=3, proposals=("cmd-%d" % i,))
        by_type = cluster.metrics.by_type
        total_phase1 += by_type["prepare"] + by_type["prepareack"]
        total_phase2 += by_type["accept"] + by_type["acceptedmsg"]
    return {
        "protocol": "basic-paxos (1 instance/command)",
        "commands": commands,
        "phase-1 msgs (total)": total_phase1,
        "phase-2 msgs (total)": total_phase2,
        "phase-2 msgs / command": total_phase2 / commands,
        "phase-1 msgs / command": total_phase1 / commands,
    }


def test_phase1_amortisation(benchmark, report, bench_snapshot):
    commands = 20
    rows = benchmark.pedantic(
        lambda: [basic_paxos_costs(commands), multi_paxos_costs(commands)],
        rounds=1, iterations=1,
    )
    text = render_table(
        rows, title="E4 — phase 1 runs only on leader change (20 commands, n=3)"
    )
    report("E4_multipaxos", text)
    bench_snapshot("E4_multipaxos", protocol="multi-paxos",
                   phase1_per_command=rows[1]["phase-1 msgs / command"],
                   phase2_per_command=rows[1]["phase-2 msgs / command"],
                   basic_phase1_per_command=rows[0]["phase-1 msgs / command"])

    basic, multi = rows
    # Basic Paxos pays phase 1 for every command; Multi-Paxos pays it once.
    assert basic["phase-1 msgs / command"] >= 2.0
    assert multi["phase-1 msgs / command"] < 0.5
    # Steady-state phase-2 cost per command is comparable.
    assert multi["phase-2 msgs / command"] <= basic["phase-2 msgs / command"] + 3
