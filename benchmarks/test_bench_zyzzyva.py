"""E10 — Zyzzyva: speculative BFT, commitment at the client.

Regenerates both agreement-figure cases — case 1 (3f+1 matching replies,
single phase) and case 2 (2f+1 replies + commit certificate) — and the
latency/message advantage over PBFT.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import SynchronousModel
from repro.protocols.pbft import run_pbft
from repro.protocols.zyzzyva import run_zyzzyva


def case_row(label, slow):
    cluster = Cluster(seed=1, delivery=SynchronousModel(1.0))
    result = run_zyzzyva(cluster, f=1, operations=3, slow_replicas=slow)
    ones, twos = result.case_counts()
    client = result.clients[0]
    return {
        "scenario": label,
        "case-1 completions": ones,
        "case-2 completions": twos,
        "mean latency (delays)": sum(client.latencies) / len(client.latencies),
        "messages": result.messages,
        "consistent": result.logs_consistent(),
    }


def pbft_row():
    cluster = Cluster(seed=1, delivery=SynchronousModel(1.0))
    result = run_pbft(cluster, f=1, n_clients=1, operations_per_client=3)
    client = result.clients[0]
    return {
        "scenario": "pbft baseline",
        "case-1 completions": None,
        "case-2 completions": None,
        "mean latency (delays)": sum(client.latencies) / len(client.latencies),
        "messages": result.messages,
        "consistent": result.logs_consistent(),
    }


def test_zyzzyva(benchmark, report, bench_snapshot):
    def run_all():
        return [case_row("all replicas healthy (case 1)", ()),
                case_row("one silent replica (case 2)", (3,)),
                pbft_row()]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = render_table(rows, title="E10 — Zyzzyva speculative execution")
    report("E10_zyzzyva", text)

    case1, case2, pbft = rows
    bench_snapshot("E10_zyzzyva", protocol="zyzzyva",
                   case1_latency=case1["mean latency (delays)"],
                   case2_latency=case2["mean latency (delays)"],
                   pbft_latency=pbft["mean latency (delays)"],
                   messages_f1=case1["messages"],
                   pbft_messages_f1=pbft["messages"])
    assert case1["case-1 completions"] == 3
    assert case2["case-2 completions"] == 3
    # Case 1 is a single phase: request + order + reply = 3 delays,
    # strictly faster than PBFT's 3-phase pipeline.
    assert case1["mean latency (delays)"] == 3.0
    assert case1["mean latency (delays)"] < pbft["mean latency (delays)"]
    # Case 2 pays the commit-certificate round but still beats nothing —
    # it's slower than case 1.
    assert case2["mean latency (delays)"] > case1["mean latency (delays)"]
    # Fewer messages than PBFT (linear vs quadratic).
    assert case1["messages"] < pbft["messages"]
    assert case1["consistent"] and case2["consistent"]
