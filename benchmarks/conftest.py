"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's figures/tables: it runs
the workload, renders the measured rows next to the paper's claim via
:func:`repro.analysis.render_table`, writes them to
``benchmarks/results/<experiment>.txt`` (the artifact EXPERIMENTS.md is
assembled from), asserts the claim's *shape*, and emits its headline
numbers (message totals, phase counts, fitted complexity exponents,
latencies) into ``BENCH_consensus.json`` at the repository root — the
machine-readable perf trajectory future PRs regress against.
"""

import pathlib

import pytest

from repro.telemetry import BENCH_FILENAME, update_bench_snapshot

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_SNAPSHOT_PATH = pathlib.Path(__file__).parent.parent / BENCH_FILENAME


@pytest.fixture
def report():
    """``report(experiment_id, text)`` — persist one experiment's rows."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(experiment_id, text):
        path = RESULTS_DIR / ("%s.txt" % experiment_id)
        path.write_text(text + "\n")
        return path

    return write


@pytest.fixture
def bench_snapshot():
    """``bench_snapshot(experiment_id, **numbers)`` — merge one bench's
    headline numbers into the consolidated ``BENCH_consensus.json``."""

    def write(experiment_id, **numbers):
        return update_bench_snapshot(BENCH_SNAPSHOT_PATH, experiment_id,
                                     numbers)

    return write
