"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's figures/tables: it runs
the workload, renders the measured rows next to the paper's claim via
:func:`repro.analysis.render_table`, writes them to
``benchmarks/results/<experiment>.txt`` (the artifact EXPERIMENTS.md is
assembled from), and asserts the claim's *shape*.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """``report(experiment_id, text)`` — persist one experiment's rows."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(experiment_id, text):
        path = RESULTS_DIR / ("%s.txt" % experiment_id)
        path.write_text(text + "\n")
        return path

    return write
