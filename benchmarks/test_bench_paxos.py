"""E2 — the Paxos message-flow figure.

Regenerates the slides' prepare/accept/decide diagram as numbers: the
two phases, the 2f+1 cluster, quorum sizes, per-phase message counts,
and the end-to-end decision latency in message delays.
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import SynchronousModel
from repro.protocols.paxos import FixedBackoff, run_basic_paxos


def run_flow(f):
    n = 2 * f + 1
    cluster = Cluster(seed=1, delivery=SynchronousModel(1.0))
    result = run_basic_paxos(cluster, n_acceptors=n, proposals=("X",),
                             retry=FixedBackoff(100.0))
    by_type = cluster.metrics.by_type
    return {
        "f": f,
        "nodes (2f+1)": n,
        "quorum": n // 2 + 1,
        "prepare msgs": by_type["prepare"],
        "ack msgs": by_type["prepareack"],
        "accept msgs": by_type["accept"],
        "accepted msgs": by_type["acceptedmsg"],
        "decide msgs": by_type["decide"],
        "decision delay": result.decided_at,
        "decided": result.value,
    }


def test_paxos_flow(benchmark, report, bench_snapshot):
    rows = benchmark.pedantic(
        lambda: [run_flow(f) for f in (1, 2, 3)], rounds=1, iterations=1
    )
    text = render_table(rows, title="E2 — Paxos: prepare/accept/decide flow")
    report("E2_paxos_flow", text)
    bench_snapshot("E2_paxos_flow", protocol="paxos", phases=2,
                   messages_f1=sum(rows[0][key] for key in
                                   ("prepare msgs", "ack msgs", "accept msgs",
                                    "accepted msgs", "decide msgs")),
                   decision_delay=rows[0]["decision delay"])

    for row in rows:
        n = row["nodes (2f+1)"]
        # Each phase is one leader->acceptors + acceptors->leader round.
        assert row["prepare msgs"] == n
        assert row["accept msgs"] == n
        # 2 phases = 4 one-way message delays before the decision exists.
        assert row["decision delay"] == 4.0
        assert row["decided"] == "X"
        # Quorum is a strict majority: f+1 of 2f+1... i.e. (n//2)+1.
        assert row["quorum"] == (n // 2) + 1
