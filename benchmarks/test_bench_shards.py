"""E25 (extension) — sharded fleet scaling: shards x replicas.

The paper's modern deployments are fleets of consensus groups, not one
group.  This experiment scales a :class:`~repro.shard.ShardedCluster`
from a toy pair of shards toward hundreds of simulated nodes and
records what the architecture buys and costs:

* commit density (committed transactions per unit of *simulated* time,
  ``committed_per_vtime`` — dimensionless, tied to this delay model,
  not a wall-clock TPS) as shards multiply — the fleet parallelises
  across groups, so density should not *degrade* as the node count
  explodes;
* the single-shard fast path's share of commits (two consensus rounds)
  versus full 2PC-over-consensus (lock, prepare, replicated decision,
  commit);
* the wall-clock events/sec the simulator sustains hosting the fleet —
  the harness-health number for this subsystem.

Wall-clock rates are machine-dependent and recorded, not asserted;
the structural assertions are that every workload transaction completes
(no hangs) and per-shard replicas stay consistent.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke mode (three small
configurations, one timing round).
"""

import os
import time

from repro.analysis import render_table
from repro.shard import ShardedCluster

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SEED = 7

#: (shards, replicas, txns) — quick stops at 8x3 (the ISSUE floor),
#: full climbs to 48x5 = 240 replicated nodes.
CONFIGS = (
    [(2, 3, 24), (4, 3, 32), (8, 3, 48)] if QUICK else
    [(2, 3, 48), (4, 3, 64), (8, 3, 96), (16, 3, 96), (16, 5, 96),
     (32, 5, 128), (48, 5, 128)]
)

CROSS_RATIO = 0.3


def measure(shards, replicas, txns):
    sharded = ShardedCluster(n_shards=shards, replicas=replicas,
                             seed=SEED, key_space=1024)
    start = time.perf_counter()
    workload = sharded.run_workload(txns=txns, cross_ratio=CROSS_RATIO,
                                    batch=16)
    wall = time.perf_counter() - start
    assert workload["committed"] + workload["aborted"] == txns
    assert workload["committed"] > 0
    sharded.settle()
    assert sharded.check_consistency()
    events = sharded.cluster.sim.events_processed
    return {
        "fleet": "%dx%d" % (shards, replicas),
        "nodes": shards * replicas,
        "txns": txns,
        "committed": workload["committed"],
        "cross-shard": workload["cross_shard"],
        "fast-path": workload["fast_commits"],
        "commits/vtime": round(workload["committed_per_vtime"], 2),
        "wall ms": round(wall * 1e3, 1),
        "events/s": int(events / wall) if wall > 0 else 0,
    }


def test_shard_scaling(benchmark, report, bench_snapshot):
    def run_all():
        return [measure(*config) for config in CONFIGS]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The fleet must not collapse as it grows: commit density at the
    # largest configuration stays within 4x of the smallest (it is
    # workload-bound, not node-count-bound).
    assert rows[-1]["commits/vtime"] > rows[0]["commits/vtime"] / 4

    text = render_table(
        rows, title="E25 — sharded fleet scaling (shards x replicas)")
    text += ("\nseed %d, cross-shard ratio %.1f; fast-path = single-shard "
             "commits (2 consensus rounds),\nothers pay full "
             "2PC-over-consensus with a replicated commit decision. "
             "commits/vtime is\ncommitted transactions per unit of "
             "simulated time (in-shard hops are 0.5-1.5\nunits) — a "
             "dimensionless density for comparing configurations, not a "
             "wall-clock\nTPS.  Wall rates are machine-dependent and "
             "recorded, not asserted." % (SEED, CROSS_RATIO))
    report("E25_sharding", text)

    snapshot = {"quick": QUICK}
    for row in rows:
        key = "fleet_%s" % row["fleet"].replace("x", "_")
        snapshot["%s_committed_per_vtime" % key] = row["commits/vtime"]
        snapshot["%s_events_per_sec" % key] = row["events/s"]
        snapshot["%s_fast_path" % key] = row["fast-path"]
    bench_snapshot("E25_sharding", **snapshot)
