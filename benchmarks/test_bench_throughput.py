"""E23/E24 — simulator throughput, and what the monitors cost.

Unlike E1–E22, this experiment measures the *harness*, not the paper:
how many simulated events and messages per wall-clock second the
substrate sustains with telemetry enabled, across protocols and cluster
sizes.  It exists so perf regressions in the hot paths (event loop,
send path, telemetry handles) show up in ``BENCH_consensus.json``'s
trajectory instead of silently doubling CI time.

E24 measures the conformance monitors the same way: one protocol run
with monitors off (the default — no tracer, no per-event work) versus
on (tracer + the full monitor battery).  The off rate is the number the
suite's perf work defends; the on/off ratio is the price of a verdict.

Wall-clock numbers are machine-dependent, so the assertions are
structural (work completed, counts positive) — the measured rates are
recorded, not gated.

Set ``REPRO_BENCH_QUICK=1`` to run a single small configuration per
protocol with one timing round — the CI smoke mode.
"""

import os
import time

from repro.analysis import render_table
from repro.core import Cluster

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Timing repetitions per configuration; the best (least-interrupted)
#: round is reported, the standard defence against scheduler noise.
ROUNDS = 1 if QUICK else 3

SEED = 7


def _drive_multipaxos(cluster, size):
    from repro.protocols.multipaxos import run_multipaxos
    return run_multipaxos(cluster, n_replicas=size, n_clients=2,
                          commands_per_client=5 if QUICK else 30)


def _drive_pbft(cluster, size):
    from repro.protocols.pbft import run_pbft
    return run_pbft(cluster, f=size, n_clients=2,
                    operations_per_client=2 if QUICK else 10)


def _drive_hotstuff(cluster, size):
    from repro.protocols.hotstuff import run_chained_hotstuff
    return run_chained_hotstuff(cluster, f=size,
                                commands=5 if QUICK else 30)


#: (protocol, size label, sizes, driver).  Sizes are the protocol's
#: natural scale knob: replica count for multi-paxos, f for the BFTs.
CONFIGS = [
    ("multi-paxos", "replicas", (3,) if QUICK else (3, 5, 7),
     _drive_multipaxos),
    ("pbft", "f", (1,) if QUICK else (1, 2, 3), _drive_pbft),
    ("hotstuff", "f", (1,) if QUICK else (1, 2), _drive_hotstuff),
]


def measure(driver, size):
    """Best-of-ROUNDS wall-clock run of ``driver`` at ``size``.

    Telemetry is enabled — the rate the suite actually pays — and each
    round builds a fresh cluster so caches and queues start cold.
    """
    best = None
    for _ in range(ROUNDS):
        cluster = Cluster(seed=SEED, telemetry=True)
        start = time.perf_counter()
        driver(cluster, size)
        wall = time.perf_counter() - start
        events = cluster.sim.events_processed
        messages = cluster.metrics.messages_total
        if best is None or wall < best["wall"]:
            best = {"events": events, "messages": messages, "wall": wall}
    best["events_per_sec"] = best["events"] / best["wall"]
    best["messages_per_sec"] = best["messages"] / best["wall"]
    return best


def test_throughput(benchmark, report, bench_snapshot):
    def run_all():
        rows = []
        for protocol, size_label, sizes, driver in CONFIGS:
            for size in sizes:
                sample = measure(driver, size)
                rows.append({
                    "protocol": protocol,
                    "scale": "%s=%d" % (size_label, size),
                    "events": sample["events"],
                    "messages": sample["messages"],
                    "wall ms": round(sample["wall"] * 1e3, 1),
                    "events/s": int(sample["events_per_sec"]),
                    "msgs/s": int(sample["messages_per_sec"]),
                })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = render_table(
        rows, title="E23 — simulator throughput (telemetry enabled)")
    text += ("\nbest-of-%d wall-clock per configuration, seed %d; "
             "rates are machine-dependent and recorded, not asserted.\n"
             "hotstuff structurally trails the crash-fault protocols: "
             "HotStuff's linearity\nmeans *few* messages, each carrying "
             "HMAC threshold-signature work\n(sign/verify/combine), so "
             "its per-event cost is crypto-bound where multi-paxos\n"
             "moves plain messages." % (ROUNDS, SEED))
    report("E23_throughput", text)

    snapshot = {}
    for row in rows:
        key = "%s_%s" % (row["protocol"].replace("-", ""),
                         row["scale"].replace("=", ""))
        snapshot["%s_events_per_sec" % key] = row["events/s"]
        snapshot["%s_msgs_per_sec" % key] = row["msgs/s"]
    bench_snapshot("E23_throughput", quick=QUICK, **snapshot)

    # Structural assertions only: every configuration did real work and
    # produced finite, positive rates.
    for row in rows:
        assert row["events"] > 0 and row["messages"] > 0
        assert row["events/s"] > 0 and row["msgs/s"] > 0
    # Deterministic workload shape: same seed, same work, so pbft (all-
    # to-all phases) must move more messages than multi-paxos per
    # committed command at comparable scale.
    assert any(row["protocol"] == "pbft" for row in rows)


def _measure_monitored(protocol, driver, size, monitors):
    """Best-of-ROUNDS wall-clock run with monitors on or off.

    The off configuration is the true default path — no tracer is
    constructed, so the network's no-observer fast path runs; the on
    configuration carries the tracer plus the full spec battery.
    """
    best = None
    for _ in range(ROUNDS):
        cluster = Cluster(seed=SEED, monitors=monitors)
        if monitors:
            n = 3 * size + 1 if protocol == "pbft" else size
            cluster.attach_monitors(protocol, n=n, f=size)
        start = time.perf_counter()
        driver(cluster, size)
        wall = time.perf_counter() - start
        if monitors:
            cluster.monitors.finish()
            assert cluster.monitors.ok, cluster.monitors.anomalies
        events = cluster.sim.events_processed
        if best is None or wall < best["wall"]:
            best = {"events": events, "wall": wall}
    best["events_per_sec"] = best["events"] / best["wall"]
    return best


def _drive_multipaxos_long(cluster, size):
    from repro.protocols.multipaxos import run_multipaxos
    return run_multipaxos(cluster, n_replicas=size, n_clients=2,
                          commands_per_client=10 if QUICK else 100)


def _drive_pbft_long(cluster, size):
    from repro.protocols.pbft import run_pbft
    return run_pbft(cluster, f=size, n_clients=2,
                    operations_per_client=4 if QUICK else 40)


#: (protocol, scale) pairs for the overhead comparison — the two most
#: heavily instrumented protocols, at their smallest honest scale.
#: The workloads run several times longer than E23's so the on/off
#: ratio measures the steady state, not cluster startup noise.
MONITOR_CONFIGS = [
    ("multi-paxos", 5, _drive_multipaxos_long),
    ("pbft", 1, _drive_pbft_long),
]


def test_monitor_overhead(benchmark, report, bench_snapshot):
    def run_all():
        rows = []
        for protocol, size, driver in MONITOR_CONFIGS:
            off = _measure_monitored(protocol, driver, size, monitors=False)
            on = _measure_monitored(protocol, driver, size, monitors=True)
            rows.append({
                "protocol": protocol,
                "off events/s": int(off["events_per_sec"]),
                "on events/s": int(on["events_per_sec"]),
                "overhead x": round(off["events_per_sec"]
                                    / on["events_per_sec"], 2),
            })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = render_table(
        rows, title="E24 — conformance-monitor overhead (off vs on)")
    text += ("\nbest-of-%d wall-clock per configuration, seed %d; the off\n"
             "column is the default no-tracer fast path, the on column adds\n"
             "the tracer and the full per-protocol monitor battery."
             % (ROUNDS, SEED))
    report("E24_monitor_overhead", text)

    snapshot = {}
    for row in rows:
        key = row["protocol"].replace("-", "")
        snapshot["%s_off_events_per_sec" % key] = row["off events/s"]
        snapshot["%s_on_events_per_sec" % key] = row["on events/s"]
        snapshot["%s_overhead_x" % key] = row["overhead x"]
    bench_snapshot("E24_monitor_overhead", quick=QUICK, **snapshot)

    for row in rows:
        assert row["off events/s"] > 0 and row["on events/s"] > 0
        # Monitoring costs something but must stay the same order of
        # magnitude — it is a streaming pass, not a re-simulation.
        assert row["overhead x"] < 10.0
