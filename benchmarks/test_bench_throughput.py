"""E23 — simulator throughput: wall-clock events/sec and messages/sec.

Unlike E1–E22, this experiment measures the *harness*, not the paper:
how many simulated events and messages per wall-clock second the
substrate sustains with telemetry enabled, across protocols and cluster
sizes.  It exists so perf regressions in the hot paths (event loop,
send path, telemetry handles) show up in ``BENCH_consensus.json``'s
trajectory instead of silently doubling CI time.

Wall-clock numbers are machine-dependent, so the assertions are
structural (work completed, counts positive) — the measured rates are
recorded, not gated.

Set ``REPRO_BENCH_QUICK=1`` to run a single small configuration per
protocol with one timing round — the CI smoke mode.
"""

import os
import time

from repro.analysis import render_table
from repro.core import Cluster

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Timing repetitions per configuration; the best (least-interrupted)
#: round is reported, the standard defence against scheduler noise.
ROUNDS = 1 if QUICK else 3

SEED = 7


def _drive_multipaxos(cluster, size):
    from repro.protocols.multipaxos import run_multipaxos
    return run_multipaxos(cluster, n_replicas=size, n_clients=2,
                          commands_per_client=5 if QUICK else 30)


def _drive_pbft(cluster, size):
    from repro.protocols.pbft import run_pbft
    return run_pbft(cluster, f=size, n_clients=2,
                    operations_per_client=2 if QUICK else 10)


def _drive_hotstuff(cluster, size):
    from repro.protocols.hotstuff import run_chained_hotstuff
    return run_chained_hotstuff(cluster, f=size,
                                commands=5 if QUICK else 30)


#: (protocol, size label, sizes, driver).  Sizes are the protocol's
#: natural scale knob: replica count for multi-paxos, f for the BFTs.
CONFIGS = [
    ("multi-paxos", "replicas", (3,) if QUICK else (3, 5, 7),
     _drive_multipaxos),
    ("pbft", "f", (1,) if QUICK else (1, 2, 3), _drive_pbft),
    ("hotstuff", "f", (1,) if QUICK else (1, 2), _drive_hotstuff),
]


def measure(driver, size):
    """Best-of-ROUNDS wall-clock run of ``driver`` at ``size``.

    Telemetry is enabled — the rate the suite actually pays — and each
    round builds a fresh cluster so caches and queues start cold.
    """
    best = None
    for _ in range(ROUNDS):
        cluster = Cluster(seed=SEED, telemetry=True)
        start = time.perf_counter()
        driver(cluster, size)
        wall = time.perf_counter() - start
        events = cluster.sim.events_processed
        messages = cluster.metrics.messages_total
        if best is None or wall < best["wall"]:
            best = {"events": events, "messages": messages, "wall": wall}
    best["events_per_sec"] = best["events"] / best["wall"]
    best["messages_per_sec"] = best["messages"] / best["wall"]
    return best


def test_throughput(benchmark, report, bench_snapshot):
    def run_all():
        rows = []
        for protocol, size_label, sizes, driver in CONFIGS:
            for size in sizes:
                sample = measure(driver, size)
                rows.append({
                    "protocol": protocol,
                    "scale": "%s=%d" % (size_label, size),
                    "events": sample["events"],
                    "messages": sample["messages"],
                    "wall ms": round(sample["wall"] * 1e3, 1),
                    "events/s": int(sample["events_per_sec"]),
                    "msgs/s": int(sample["messages_per_sec"]),
                })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = render_table(
        rows, title="E23 — simulator throughput (telemetry enabled)")
    text += ("\nbest-of-%d wall-clock per configuration, seed %d; "
             "rates are machine-dependent and recorded, not asserted."
             % (ROUNDS, SEED))
    report("E23_throughput", text)

    snapshot = {}
    for row in rows:
        key = "%s_%s" % (row["protocol"].replace("-", ""),
                         row["scale"].replace("=", ""))
        snapshot["%s_events_per_sec" % key] = row["events/s"]
        snapshot["%s_msgs_per_sec" % key] = row["msgs/s"]
    bench_snapshot("E23_throughput", quick=QUICK, **snapshot)

    # Structural assertions only: every configuration did real work and
    # produced finite, positive rates.
    for row in rows:
        assert row["events"] > 0 and row["messages"] > 0
        assert row["events/s"] > 0 and row["msgs/s"] > 0
    # Deterministic workload shape: same seed, same work, so pbft (all-
    # to-all phases) must move more messages than multi-paxos per
    # committed command at comparable scale.
    assert any(row["protocol"] == "pbft" for row in rows)
