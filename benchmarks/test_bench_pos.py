"""E16 — Proof of Stake: stake-proportional selection and coin age.

Regenerates the PoS slide's claims: a holder with p fraction of the
coins wins ≈ p of the blocks (randomized selection); coin-age selection
gates at 30 days, caps at 90, resets winners' age ('don't the rich get
richer?' mitigations).
"""

import random

from repro.analysis import render_table
from repro.blockchain import Stakeholder, run_pos_simulation


def share_rows(selection):
    stakes = {"whale": 60.0, "mid": 25.0, "small": 15.0}
    result = run_pos_simulation(random.Random(3), stakes, blocks=9000,
                                selection=selection)
    return [{
        "selection": selection,
        "validator": name,
        "stake share": stakes[name] / sum(stakes.values()),
        "block share": round(result.share_of(name), 3),
    } for name in sorted(stakes)]


def coin_age_curve():
    holder = Stakeholder("x", 100.0, stake_since_day=0.0)
    return [{
        "days held": days,
        "coin-age weight": holder.coin_age_weight(float(days)),
    } for days in (10, 29, 30, 60, 90, 180)]


def test_pos(benchmark, report, bench_snapshot):
    def run_all():
        return (share_rows("randomized") + share_rows("coin-age"),
                coin_age_curve())

    shares, curve = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = render_table(shares, title="E16 — PoS block share vs stake share")
    text += "\n\n" + render_table(curve, title="coin-age weight curve (30-day gate, 90-day cap)")
    report("E16_pos", text)
    bench_snapshot("E16_pos", protocol="pos",
                   max_share_error=max(
                       abs(row["block share"] - row["stake share"])
                       for row in shares),
                   gate_days=30, cap_days=90)

    for row in shares:
        assert abs(row["block share"] - row["stake share"]) < 0.06
    by_days = {row["days held"]: row["coin-age weight"] for row in curve}
    assert by_days[10] == 0.0 and by_days[29] == 0.0      # 30-day gate
    assert by_days[30] > 0.0
    assert by_days[90] == by_days[180]                    # 90-day cap
    assert by_days[60] < by_days[90]
