"""Bitcoin in miniature: real PoW, forks, difficulty, and an attack.

Walks through the tutorial's permissionless-blockchain material:

1. genuine SHA-256 nonce search at a laptop target,
2. a four-miner network where fast blocks cause forks that the
   longest-chain rule resolves,
3. a payment confirming across the network,
4. the double-spend finality curve (why merchants wait 6 blocks).

Run:  python examples/blockchain_demo.py
"""

import random

from repro.blockchain import (
    Blockchain,
    doublespend_success_probability,
    make_transaction,
    mine,
    run_mining_network,
    simulate_doublespend,
)
from repro.blockchain.miner import Miner
from repro.core import Cluster
from repro.crypto import HASH_SPACE, KeyRegistry
from repro.net import UniformDelayModel


def demo_nonce_search():
    print("== 1. the nonce search (real SHA-256) ==")
    keys = KeyRegistry()
    chain = Blockchain(initial_target=HASH_SPACE >> 14, keys=keys)
    block = mine(chain.next_block("demo-miner", timestamp=1.0))
    print("  target: 2^256 >> 14 (1 in %d hashes)" % (1 << 14))
    print("  found nonce %d -> hash %s..." % (block.header.nonce,
                                              block.hash[:16]))
    chain.add_block(block)
    print("  chain height:", chain.height)
    print()


def demo_forks():
    print("== 2. mining races and forks ==")
    for interval, label in ((5.0, "fast blocks (interval ~ propagation)"),
                            (60.0, "slow blocks (Bitcoin-like ratio)")):
        cluster = Cluster(seed=7, delivery=UniformDelayModel(0.5, 2.0))
        result = run_mining_network(cluster, hashrates=(100.0,) * 4,
                                    target_block_time=interval,
                                    duration=2500.0)
        main, abandoned, rate = result.fork_stats()
        print("  %-38s main=%3d abandoned=%3d fork-rate=%.1f%%"
              % (label, main, abandoned, 100 * rate))
    print("  (miners join the longest chain; abandoned transactions are"
          " resubmitted)")
    print()


def demo_payment():
    print("== 3. a payment confirms ==")
    cluster = Cluster(seed=4)
    keys = KeyRegistry()
    names = ["m0", "m1", "m2"]
    params = {"initial_target": int(HASH_SPACE / (300.0 * 20.0)),
              "target_block_time": 20.0, "pow_check": False, "keys": keys}
    miners = [cluster.add_node(Miner, n, names, 100.0, chain_params=params)
              for n in names]
    cluster.start_all()
    cluster.run(until=100.0)
    tx = make_transaction(keys, "satoshi", "alice", 10.0, 0)
    miners[0].submit_transaction(tx)
    print("  satoshi -> alice: 10.0 submitted to m0's mempool")
    cluster.run(until=1200.0)
    for miner in miners:
        print("  %s sees alice = %.1f at height %d"
              % (miner.name, miner.chain.ledger().balance("alice"),
                 miner.chain.height))
    print()


def demo_finality():
    print("== 4. weak finality: the double-spend race ==")
    rng = random.Random(1)
    print("  %-18s %-16s %s" % ("attacker share", "confirmations",
                                "success (sim / theory)"))
    for q in (0.1, 0.3):
        for k in (1, 6):
            emp = simulate_doublespend(rng, q, k, trials=3000)
            theory = doublespend_success_probability(q, k)
            print("  %-18.2f %-16d %.4f / %.4f" % (q, k, emp, theory))
    print("  (six confirmations make a 10%-attacker's odds ~1e-6)")


def main():
    demo_nonce_search()
    demo_forks()
    demo_payment()
    demo_finality()


if __name__ == "__main__":
    main()
