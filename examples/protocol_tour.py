"""The grand tour: every protocol in the tutorial, one run each.

Prints the comparison table the tutorial builds up protocol by protocol
— each row measured live from a run on the simulator, side by side with
the paper's property box.

Run:  python examples/protocol_tour.py
"""

from repro.analysis import claim_for, render_table
from repro.core import Cluster
from repro.net import SynchronousModel


def measure(label, runner, claim_name):
    cluster = Cluster(seed=1)
    outcome = runner(cluster)
    claim = claim_for(claim_name)
    return {
        "protocol": label,
        "paper nodes": claim.nodes,
        "paper phases": claim.phases,
        "paper msgs": claim.complexity,
        "measured msgs": cluster.metrics.messages_total,
        "outcome": outcome,
    }


def main():
    rows = []

    def paxos(cluster):
        from repro.protocols.paxos import run_basic_paxos
        return "decided %r" % run_basic_paxos(cluster, proposals=("X",)).value
    rows.append(measure("paxos", paxos, "paxos"))

    def multipaxos(cluster):
        from repro.protocols.multipaxos import run_multipaxos
        result = run_multipaxos(cluster, commands_per_client=5)
        return "5 commands, consistent=%s" % result.logs_consistent()
    rows.append(measure("multi-paxos", multipaxos, "multi-paxos"))

    def fast_paxos(cluster):
        from repro.protocols.fast_paxos import run_fast_paxos
        result = run_fast_paxos(cluster, values=("X",))
        return "decided in %.1f delays" % result.learn_delay()
    rows.append(measure("fast-paxos", fast_paxos, "fast-paxos"))

    def raft(cluster):
        from repro.protocols.raft import run_raft
        result = run_raft(cluster, commands_per_client=5)
        return "5 commands, consistent=%s" % result.logs_consistent()
    rows.append(measure("raft", raft, "raft"))

    def twopc(cluster):
        from repro.protocols.commit import run_commit
        result = run_commit(cluster, protocol="2pc")
        return result.outcomes()[0].value
    rows.append(measure("2pc", twopc, "2pc"))

    def threepc(cluster):
        from repro.protocols.commit import run_commit
        result = run_commit(cluster, protocol="3pc", crash_after="votes")
        return "coordinator died; %s, blocked=%d" % (
            result.outcomes()[0].value, len(result.blocked_cohorts()))
    rows.append(measure("3pc", threepc, "3pc"))

    def psl(cluster):
        from repro.protocols.interactive_consistency import (
            run_interactive_consistency)
        cluster.network.delivery = SynchronousModel(0.5)
        result = run_interactive_consistency(cluster, n=4, faulty=(2,))
        return "vector %s" % (result.honest_results()[0],)
    rows.append(measure("interactive-consistency", psl,
                        "interactive-consistency"))

    def pbft(cluster):
        from repro.protocols.pbft import run_pbft
        result = run_pbft(cluster, operations_per_client=3)
        return "3 ops, consistent=%s" % result.logs_consistent()
    rows.append(measure("pbft", pbft, "pbft"))

    def zyzzyva(cluster):
        from repro.protocols.zyzzyva import run_zyzzyva
        result = run_zyzzyva(cluster, operations=3)
        ones, twos = result.case_counts()
        return "case1=%d case2=%d" % (ones, twos)
    rows.append(measure("zyzzyva", zyzzyva, "zyzzyva"))

    def hotstuff(cluster):
        from repro.protocols.hotstuff import run_chained_hotstuff
        result = run_chained_hotstuff(cluster, commands=5)
        return "pipelined 5 blocks"
    rows.append(measure("hotstuff", hotstuff, "hotstuff"))

    def minbft(cluster):
        from repro.protocols.minbft import run_minbft
        result = run_minbft(cluster, operations=3)
        return "3 ops on 2f+1=3 replicas"
    rows.append(measure("minbft", minbft, "minbft"))

    def cheapbft(cluster):
        from repro.protocols.cheapbft import run_cheapbft
        result = run_cheapbft(cluster, operations=3)
        return "f+1=2 actives, mode=%s" % result.modes()[0]
    rows.append(measure("cheapbft", cheapbft, "cheapbft"))

    def upright(cluster):
        from repro.protocols.upright import run_upright
        result = run_upright(cluster, m=1, c=1, operations=2)
        return "n=6, quorum=4"
    rows.append(measure("upright", upright, "upright"))

    def seemore(cluster):
        from repro.protocols.seemore import run_seemore
        result = run_seemore(cluster, mode=1, operations=2)
        return "mode 1 (trusted primary)"
    rows.append(measure("seemore", seemore, "seemore"))

    def xft(cluster):
        from repro.protocols.xft import run_xft
        result = run_xft(cluster, operations=3)
        return "sync group of f+1"
    rows.append(measure("xft", xft, "xft"))

    def benor(cluster):
        from repro.protocols.benor import run_benor
        result = run_benor(cluster, n=5, f=1)
        return "decided %r in <=%d rounds" % (
            result.decided_values()[0], result.max_round())
    rows.append(measure("ben-or", benor, "ben-or"))

    def tendermint(cluster):
        from repro.protocols.tendermint import run_tendermint
        result = run_tendermint(cluster, f=1, heights=3)
        return "3 blocks, chains agree=%s" % result.chains_consistent()
    rows.append(measure("tendermint", tendermint, "tendermint"))

    def chandra_toueg(cluster):
        from repro.protocols.chandra_toueg import run_chandra_toueg
        result = run_chandra_toueg(cluster, n=5, f=2)
        return "decided %r via the oracle" % result.decided_values()[0]
    rows.append(measure("chandra-toueg", chandra_toueg, "chandra-toueg"))

    print(render_table(
        rows, title="40 years of consensus — every protocol, one live run"
    ))


if __name__ == "__main__":
    main()
