"""A bank ledger replicated with PBFT, attacked by its own primary.

The tutorial's motivating question — "what if nodes behave
maliciously?" — played out: a four-replica PBFT cluster runs a bank
whose primary tries to equivocate (assign the same sequence number to
different transfers).  The prepare phase refuses, a view change removes
the attacker, and the money is conserved on every honest replica.

Run:  python examples/byzantine_bank.py
"""

from repro.core import Cluster
from repro.protocols.pbft import EquivocatingPrimary, PbftClient, PbftReplica
from repro.smr import BankStateMachine


def run_bank(primary_class, label):
    print("== %s ==" % label)
    cluster = Cluster(seed=11)
    names = ["bank%d" % i for i in range(4)]
    replicas = []
    for index, name in enumerate(names):
        cls = primary_class if index == 0 else PbftReplica
        replicas.append(
            cluster.add_node(cls, name, names, 1,
                             state_machine_factory=BankStateMachine)
        )
    operations = [
        ("open", "alice", 1000),
        ("open", "bob", 200),
        ("transfer", "alice", "bob", 250),
        ("transfer", "bob", "alice", 75),
        ("transfer", "bob", "alice", 10_000),  # overdraft: rejected
    ]
    client = cluster.add_node(PbftClient, "teller", names, operations, 1)
    cluster.start_all()
    cluster.run_until(lambda: client.done, until=4000.0)
    cluster.sim.run_for(60.0)

    honest = [r for r in replicas if type(r) is PbftReplica]
    for replica in honest:
        bank = replica.state_machine
        print("  %s: balances=%s total=%d view=%d"
              % (replica.name, dict(sorted(bank.accounts.items())),
                 bank.total_money(), replica.view))
    totals = {r.state_machine.total_money() for r in honest}
    states = {tuple(sorted(r.state_machine.accounts.items())) for r in honest}
    print("  money conserved:", totals == {1200})
    print("  honest replicas identical:", len(states) == 1)
    print("  client completed all transfers:", client.done)
    print()


def main():
    run_bank(PbftReplica, "honest primary")
    run_bank(EquivocatingPrimary,
             "equivocating primary (assigns one seq to two transfers)")


if __name__ == "__main__":
    main()
