"""A Spanner-shaped bank: transactions over replicated partitions.

The tutorial's Google Spanner figure, end to end: accounts hash-
partitioned across three Multi-Paxos groups (the storage tier), with
cross-partition transfers driven by 2PL + 2PC (the execution tier).
Crashes a replica in every group mid-workload and shows the transaction
layer never notices.

Run:  python examples/spanner_bank.py
"""

from repro.dtxn import DistributedKV, Transaction


def main():
    db = DistributedKV(n_partitions=3, replicas_per_partition=3, seed=42)

    # Open accounts spread over all three partitions.
    accounts = []
    index = 0
    while len({db.group_of(a) for a in accounts}) < 3 or len(accounts) < 6:
        name = "acct-%d" % index
        accounts.append(name)
        index += 1
    for account in accounts:
        db.put(account, 100)
    print("accounts by partition:")
    for account in accounts:
        print("  %-8s -> partition %d" % (account, db.group_of(account)))

    total_before = db.total_of(accounts)
    print("\ntotal money:", total_before)

    print("\n== cross-partition transfers ==")
    print("  %s -> %s (40):" % (accounts[0], accounts[1]),
          db.transfer(accounts[0], accounts[1], 40))
    print("  %s -> %s (25):" % (accounts[2], accounts[3]),
          db.transfer(accounts[2], accounts[3], 25))
    print("  overdraft attempt (500):",
          db.transfer(accounts[4], accounts[5], 500))

    print("\n== concurrent conflicting transfers (no-wait 2PL) ==")
    t1 = Transaction("race-1", (accounts[0], accounts[1]),
                     lambda r: {accounts[0]: r[accounts[0]] - 10,
                                accounts[1]: r[accounts[1]] + 10})
    t2 = Transaction("race-2", (accounts[1], accounts[2]),
                     lambda r: {accounts[1]: r[accounts[1]] - 5,
                                accounts[2]: r[accounts[2]] + 5})
    db.coordinator.submit(t1)
    db.coordinator.submit(t2)
    db.cluster.run_until(lambda: t1.outcome and t2.outcome, until=4000.0)
    print("  outcomes:", t1.outcome, "/", t2.outcome,
          "(lock conflicts:", db.coordinator.conflicts_seen, ")")

    print("\n== crash one replica in every partition ==")
    print("  crashed:", db.crash_one_replica_per_partition())
    print("  transfer after crashes:",
          db.transfer(accounts[3], accounts[0], 15))

    db.settle()
    print("\ntotal money now:", db.total_of(accounts),
          "(conserved:", db.total_of(accounts) == total_before, ")")
    print("per-group replica consistency:", db.check_consistency())


if __name__ == "__main__":
    main()
