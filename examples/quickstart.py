"""Quickstart: a replicated key-value store in a dozen lines.

Spins up a 3-replica Multi-Paxos cluster on the discrete-event
simulator, runs commands through real protocol traffic, crashes the
leader mid-workload, and verifies that nothing was lost and no two
replicas disagree.

Run:  python examples/quickstart.py
"""

from repro.smr import ReplicatedKV


def main():
    store = ReplicatedKV(n_replicas=3, protocol="multi-paxos", seed=7)

    print("== writes through consensus ==")
    store.put("language", "python")
    store.put("protocol", "multi-paxos")
    print("language =", store.get("language"))
    print("counter ->", store.incr("counter"), store.incr("counter"))

    print("\n== crash the leader ==")
    crashed = store.crash_leader()
    print("crashed:", crashed)

    print("\n== the cluster keeps serving ==")
    store.put("survived", True)
    print("survived =", store.get("survived"))
    print("language =", store.get("language"), "(old data intact)")

    store.settle()
    print("\nconsistent across replicas:", store.check_consistency())
    print("committed log lengths:", [len(log) for log in store.logs()])
    print("virtual time elapsed: %.1f units; real protocol messages: %d"
          % (store.cluster.now, store.cluster.metrics.messages_total))


if __name__ == "__main__":
    main()
