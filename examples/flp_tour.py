"""Three ways around FLP, demonstrated.

FLP: no deterministic consensus tolerates even one crash in an
asynchronous system.  The tutorial lists the escapes; this example runs
all three on the same adversarial network (unbounded exponential delays
with heavy tails, one crashed process):

1. **sacrifice determinism** — Ben-Or's randomized consensus,
2. **add synchrony** — partially-synchronous Paxos (bounded delays
   after GST),
3. **add an oracle** — Chandra–Toueg with a heartbeat failure detector.

Run:  python examples/flp_tour.py
"""

from repro.core import Cluster
from repro.net import AsynchronousModel, PartialSynchronyModel
from repro.protocols.benor import run_benor
from repro.protocols.chandra_toueg import run_chandra_toueg
from repro.protocols.paxos import RandomizedBackoff, run_basic_paxos

ADVERSARIAL = dict(mean=1.5, tail_prob=0.12, tail_factor=25.0)


def escape_one_randomization():
    print("== escape 1: sacrifice determinism (Ben-Or) ==")
    rounds = []
    for seed in range(8):
        cluster = Cluster(seed=seed, delivery=AsynchronousModel(**ADVERSARIAL))
        result = run_benor(cluster, n=5, f=1, crash_indices=(4,))
        assert result.agreement() and result.all_decided()
        rounds.append(result.max_round())
    print("  8/8 adversarial runs decided; rounds-to-decide:", sorted(rounds))
    print("  (termination with probability 1 — the coin breaks symmetry)\n")


def escape_two_synchrony():
    print("== escape 2: add a synchrony assumption (Paxos after GST) ==")
    cluster = Cluster(
        seed=3,
        delivery=PartialSynchronyModel(
            gst=40.0, pre=AsynchronousModel(**ADVERSARIAL),
            post_low=0.5, post_high=1.0,
        ),
    )
    result = run_basic_paxos(cluster, n_acceptors=5, proposals=("X", "Y"),
                             retry=RandomizedBackoff(), stagger=1.0,
                             crash_acceptors=(0,), horizon=400.0)
    print("  GST at t=40; decided %r at t=%.1f after %d rounds"
          % (result.value, result.decided_at, result.rounds))
    print("  (chaos before GST costs rounds; bounded delays after GST"
          " guarantee progress)\n")


def escape_three_oracle():
    print("== escape 3: add an oracle (Chandra-Toueg + failure detector) ==")
    cluster = Cluster(seed=5, delivery=AsynchronousModel(**ADVERSARIAL))
    result = run_chandra_toueg(cluster, n=5, f=2, crash_indices=(1,))
    detectors = [p.detector.false_suspicions for p in result.processes
                 if not p.crashed]
    print("  decided:", sorted(set(result.decided_values())),
          "| false suspicions healed:", sum(detectors))
    print("  (the detector may be wrong — that only costs rounds, never"
          " agreement)")


def main():
    escape_one_randomization()
    escape_two_synchrony()
    escape_three_oracle()


if __name__ == "__main__":
    main()
