"""SeeMoRe: picking a consensus mode for a hybrid cloud.

The tutorial's deployment question: a few trusted (crash-only) private
machines, many untrusted (possibly Byzantine) public ones — which of
SeeMoRe's three modes fits?  This example runs the same workload under
all three, including a slow cross-cloud link, and prints the trade-off
table (phases, quorum, messages, latency).

Run:  python examples/hybrid_cloud.py
"""

from repro.analysis import render_table
from repro.core import Cluster
from repro.net import PerLinkModel, UniformDelayModel
from repro.protocols.seemore import run_seemore


def cross_cloud_delivery():
    """Intra-cloud links are fast; anything crossing clouds is ~4x slower
    — the latency asymmetry that motivates mode 3."""
    fast = UniformDelayModel(0.3, 0.6)
    slow = UniformDelayModel(1.5, 2.5)

    class CrossCloud(PerLinkModel):
        def delay(self, rng, src, dst, now):
            src_private = src.startswith("priv")
            dst_private = dst.startswith("priv")
            model = fast if src_private == dst_private else slow
            return model.delay(rng, src, dst, now)

    return CrossCloud(fast)


MODE_NOTES = {
    1: "trusted primary, centralized  (private cloud does everything)",
    2: "trusted primary, decentralized (public proxies decide)",
    3: "untrusted primary, decentralized (private cloud fully offloaded)",
}


def main():
    rows = []
    for mode in (1, 2, 3):
        cluster = Cluster(seed=mode, delivery=cross_cloud_delivery())
        result = run_seemore(cluster, mode=mode, m=1, c=1, operations=4)
        client = result.clients[0]
        private_load = sum(
            count for (src, _dst), count in cluster.metrics.by_link.items()
            if src.startswith("priv")
        )
        rows.append({
            "mode": mode,
            "description": MODE_NOTES[mode],
            "quorum": result.replicas[0]._quorum(),
            "messages": result.messages,
            "private-cloud sends": private_load,
            "mean latency": sum(client.latencies) / len(client.latencies),
            "done": client.done,
        })
    print(render_table(rows, title="SeeMoRe on a hybrid cloud (m=1, c=1, "
                                   "4 operations, slow cross-cloud links)"))
    print("\nReading the table: mode 1 is cheapest in messages but keeps the"
          "\nprivate cloud on the critical path; modes 2-3 shift work to the"
          "\npublic proxies (bigger message bills, lighter private load),"
          "\nwith mode 3 adding a validation phase since even the primary"
          "\nis untrusted.")


if __name__ == "__main__":
    main()
