"""The Dynamo shopping cart: optimistic replication in action.

The classic story behind the DynamoDB slide: a cart must *always*
accept writes ("add to cart never fails"), even across concurrent
sessions and partitions — divergence is detected with vector clocks and
reconciled by the application (merge the carts), not prevented by
consensus.

Run:  python examples/dynamo_cart.py
"""

from repro.dynamo import EventualKV


def merge_carts(siblings):
    """Application-level reconciliation: union of all sibling carts."""
    merged = []
    for version in siblings:
        for item in version.value:
            if item not in merged:
                merged.append(item)
    return sorted(merged)


def main():
    store = EventualKV(n_replicas=5, n=3, r=2, w=2, seed=8,
                       n_coordinators=2)

    print("== two sessions, one cart ==")
    ctx = store.put("cart", ["milk"], via=0)
    print("  session A adds milk")
    # Session B reads, then both sessions write concurrently (B's write
    # uses its read context; A writes blind from a stale tab).
    value_b, ctx_b = store.get("cart", via=1)
    store.put("cart", value_b + ["eggs"], context=ctx_b, via=1)
    print("  session B adds eggs (causally after reading)")
    store.put("cart", ["milk", "beer"], via=0)  # stale tab, blind write
    print("  session A's stale tab writes [milk, beer] blindly")

    siblings = store.get_siblings("cart")
    print("\n  the store now holds %d sibling version(s):" % len(siblings))
    for version in siblings:
        print("    %r  clock=%s" % (version.value,
                                    dict(version.clock.counters)))

    print("\n== application-level reconciliation ==")
    merged = merge_carts(siblings)
    _value, ctx = store.get("cart")
    store.put("cart", merged, context=ctx)
    final, _ = store.get("cart")
    print("  merged cart:", final)
    print("  sibling count now:", len(store.get_siblings("cart")))

    print("\n== always writable: partition the preference list ==")
    pref = store.coordinator.preference_list("cart")
    isolated = pref[-1]
    rest = [r.name for r in store.replicas if r.name != isolated]
    store.partition(rest, [isolated])
    print("  %s partitioned away; writes keep flowing:" % isolated)
    _value, ctx = store.get("cart")
    store.put("cart", final + ["chocolate"], context=ctx)
    value, _ = store.get("cart")
    print("  cart during partition:", value)
    store.heal()
    store.settle(200.0)
    print("  after heal + anti-entropy, replicas converged:",
          store.converged("cart"))


if __name__ == "__main__":
    main()
