"""Logical clocks for causal ordering of trace events.

Two classics, both straight from the literature the paper builds on:

* :class:`LamportClock` — Lamport's scalar clock.  Consistent with
  causality (``a -> b`` implies ``L(a) < L(b)``) but not complete:
  ``L(a) < L(b)`` does *not* imply ``a -> b``.  The tracer stamps every
  event with one; it is cheap and enough for ordering heuristics.
* :class:`VectorClock` — one counter per node.  Complete: comparing two
  vectors decides *happened-before* vs *concurrent* exactly, which is
  what :meth:`repro.trace.Trace.happens_before` uses.
"""


class LamportClock:
    """Lamport's scalar logical clock for one node.

    Rules (from "Time, Clocks, and the Ordering of Events"):
    tick before every local event and every send; on receive, jump past
    the sender's timestamp.
    """

    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value

    def tick(self):
        """Advance for a local or send event; returns the new timestamp."""
        self.value += 1
        return self.value

    def observe(self, remote_value):
        """Receive rule: ``max(local, remote) + 1``; returns the new
        timestamp."""
        self.value = max(self.value, remote_value) + 1
        return self.value

    def __repr__(self):
        return "LamportClock(%d)" % self.value


class VectorClock:
    """An immutable vector clock: a mapping ``node -> count``.

    All mutating operations return a new clock, so clocks captured at
    event time stay valid as the computation advances (the trace layer
    stores one per event).
    """

    __slots__ = ("_counts",)

    def __init__(self, counts=None):
        self._counts = dict(counts) if counts else {}

    def tick(self, node):
        """The clock after ``node`` performs one local/send event."""
        counts = dict(self._counts)
        counts[node] = counts.get(node, 0) + 1
        return VectorClock(counts)

    def merge(self, other):
        """Component-wise maximum — the receive rule (before the tick)."""
        counts = dict(self._counts)
        for node, count in other._counts.items():
            if count > counts.get(node, 0):
                counts[node] = count
        return VectorClock(counts)

    def __getitem__(self, node):
        return self._counts.get(node, 0)

    def __eq__(self, other):
        if not isinstance(other, VectorClock):
            return NotImplemented
        # Missing entries are zero, so strip explicit zeros for comparison.
        return self._nonzero() == other._nonzero()

    def __hash__(self):
        return hash(frozenset(self._nonzero().items()))

    def _nonzero(self):
        return {n: c for n, c in self._counts.items() if c}

    def __le__(self, other):
        """Dominance: every component ``<=`` the other's."""
        if not isinstance(other, VectorClock):
            return NotImplemented
        return all(c <= other[n] for n, c in self._counts.items())

    def happens_before(self, other):
        """True iff this clock's event causally precedes ``other``'s."""
        return self <= other and self != other

    def concurrent_with(self, other):
        """True iff neither event causally precedes the other."""
        return not self.happens_before(other) \
            and not other.happens_before(self) \
            and self != other

    def __repr__(self):
        inner = ", ".join(
            "%s:%d" % (n, c) for n, c in sorted(self._nonzero().items())
        )
        return "VectorClock({%s})" % inner
