"""Trace-based causal invariant assertions.

These turn the paper's safety arguments into executable checks over a
recorded trace: *a node may only declare a milestone (decide, commit,
execute) after a quorum of the matching acknowledgements causally
precedes it*.  Message counting can't express that — a run with the
right totals but the wrong causal shape (a decide racing ahead of its
accept quorum) passes a counter and fails here.
"""

from .events import DELIVER, LOCAL, SEND


class CausalInvariantError(AssertionError):
    """A trace violated a causal invariant (or never exercised it)."""


def quorum_causally_precedes(trace, event, ack_mtype, quorum,
                             link_keys=()):
    """True iff >= ``quorum`` distinct peers' ``ack_mtype`` deliveries at
    ``event.node`` happened-before ``event``.

    ``link_keys`` names ``detail`` keys that must agree between ``event``
    and each counted delivery (e.g. ``("ballot",)`` so only acks for the
    deciding ballot count).
    """
    wanted = {key: event.get(key) for key in link_keys}
    senders = set()
    for candidate in trace:
        if candidate.kind != DELIVER or candidate.mtype != ack_mtype:
            continue
        if candidate.node != event.node:
            continue
        if any(candidate.get(k) != v for k, v in wanted.items()):
            continue
        if trace.happens_before(candidate, event):
            senders.add(candidate.peer)
    return len(senders) >= quorum


def assert_quorum_before_decide(trace, decide_label, ack_mtype, quorum,
                                link_keys=(), node=None, group=None,
                                nodes=None):
    """Assert every ``decide_label`` milestone has a causally preceding
    quorum of ``ack_mtype`` deliveries; returns how many were checked.

    ``group`` scopes the check to one consensus group in a fleet: only
    milestones on that group's nodes are examined (``nodes`` names them
    explicitly; omitted, the fleet convention ``<group>/<local>`` is
    assumed) and any violation names the group, not just the node.

    Raises :class:`CausalInvariantError` if the trace contains no such
    milestone (the invariant was never exercised) or any milestone lacks
    its quorum.
    """
    prefix = "%s/" % group if (group is not None and nodes is None) else None
    scope = frozenset(nodes) if nodes is not None else None
    decides = [
        e for e in trace
        if e.kind == LOCAL and e.mtype == decide_label
        and (node is None or e.node == node)
        and (scope is None or e.node in scope)
        and (prefix is None or e.node.startswith(prefix))
    ]
    where = "" if group is None else " in group %s" % group
    if not decides:
        raise CausalInvariantError(
            "no %r milestone%s in trace — invariant never exercised"
            % (decide_label, where)
        )
    for event in decides:
        if not quorum_causally_precedes(trace, event, ack_mtype, quorum,
                                        link_keys):
            raise CausalInvariantError(
                "%s on %s%s at t=%.3f lacks a causally preceding quorum "
                "of %d %r deliveries" % (decide_label, event.node, where,
                                         event.time, quorum, ack_mtype)
            )
    return len(decides)


def assert_unique_leader_per_view(trace, epoch_key, lead_label="lead"):
    """Assert no two nodes declared leadership for the same epoch.

    Post-hoc twin of the streaming
    :class:`~repro.monitor.LeaderUniquenessMonitor`: scans ``lead``
    milestones (emitted by raft/multi-paxos/pbft on becoming
    leader/primary) keyed by ``epoch_key`` (``term``, ``ballot``,
    ``view``) and raises :class:`CausalInvariantError` on a split brain
    — or when the trace contains no leadership claim at all, so a test
    can't pass vacuously.  Returns the map ``epoch -> node``.
    """
    leaders = {}
    for event in trace:
        if event.kind != LOCAL or event.mtype != lead_label:
            continue
        epoch = event.get(epoch_key)
        if epoch is None:
            continue
        holder = leaders.get(epoch)
        if holder is not None and holder != event.node:
            raise CausalInvariantError(
                "split brain: %s and %s both led %s=%s"
                % (holder, event.node, epoch_key, epoch)
            )
        leaders[epoch] = event.node
    if not leaders:
        raise CausalInvariantError(
            "no %r milestone in trace — invariant never exercised"
            % (lead_label,)
        )
    return leaders


def assert_sends_precede_delivers(trace):
    """Sanity invariant: every deliver's send happened-before it, and
    Lamport timestamps respect the edge.  Returns the delivery count."""
    sends = {e.msg_id: e for e in trace if e.kind == SEND}
    checked = 0
    for event in trace:
        if event.kind != DELIVER:
            continue
        send = sends.get(event.msg_id)
        if send is None:
            raise CausalInvariantError(
                "deliver without a recorded send: %r" % (event,)
            )
        if not trace.happens_before(send, event):
            raise CausalInvariantError(
                "send does not happen-before its deliver: %r / %r"
                % (send, event)
            )
        if send.lamport >= event.lamport:
            raise CausalInvariantError(
                "Lamport clock not advanced across edge: %r / %r"
                % (send, event)
            )
        checked += 1
    return checked
