"""Causal tracing: record, query and render protocol message flows.

The observability backbone of the library.  A :class:`Tracer` (opt-in,
zero-cost when absent) hooks the simulator, network and metrics
collector to record every send / deliver / drop / timer / phase-mark /
milestone as a structured :class:`TraceEvent` with per-node Lamport
clocks; the resulting :class:`Trace` supports filtering, exact
happened-before queries, JSONL export and an ASCII space-time renderer
that reproduces the paper's message-flow figures from live runs.
"""

from .clock import LamportClock, VectorClock
from .events import (
    DELIVER,
    DROP,
    KINDS,
    LOCAL,
    PHASE,
    REQUEST,
    SEND,
    TIMER,
    TraceEvent,
    canonical_detail,
)
from .export import (
    event_from_dict,
    event_to_dict,
    read_jsonl,
    to_jsonl,
    write_jsonl,
)
from .invariants import (
    CausalInvariantError,
    assert_quorum_before_decide,
    assert_sends_precede_delivers,
    assert_unique_leader_per_view,
    quorum_causally_precedes,
)
from .render import render_flow
from .trace import Trace
from .tracer import Tracer

__all__ = [
    "DELIVER",
    "DROP",
    "KINDS",
    "LOCAL",
    "PHASE",
    "REQUEST",
    "SEND",
    "TIMER",
    "CausalInvariantError",
    "LamportClock",
    "Trace",
    "TraceEvent",
    "Tracer",
    "VectorClock",
    "assert_quorum_before_decide",
    "assert_sends_precede_delivers",
    "assert_unique_leader_per_view",
    "canonical_detail",
    "event_from_dict",
    "event_to_dict",
    "quorum_causally_precedes",
    "read_jsonl",
    "render_flow",
    "to_jsonl",
    "write_jsonl",
]
