"""The structured trace record.

One :class:`TraceEvent` per observable thing that happened in a run:
a message put in flight, delivered or dropped, a timer firing, a
protocol phase boundary, or a protocol-declared local milestone (a
decide, a commit, an execute).  Events are immutable and fully
determined by the simulation, so a same-seed run reproduces the exact
event list byte for byte.
"""

from dataclasses import dataclass

#: Event kinds, in the order the layers emit them.
SEND = "send"          #: message handed to the transport (may still drop)
DELIVER = "deliver"    #: message arrived at a live node
DROP = "drop"          #: message lost (interceptor, partition, model, crash)
TIMER = "timer"        #: a process timer fired
PHASE = "phase"        #: protocol-wide phase boundary (from mark_phase)
LOCAL = "local"        #: protocol-declared milestone on one node
REQUEST = "request"    #: request-span boundary (start/end of one request)

KINDS = (SEND, DELIVER, DROP, TIMER, PHASE, LOCAL, REQUEST)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    seq:
        Dense global sequence number — total order of recording, which
        is the simulator's execution order.
    time:
        Virtual time of the event.
    kind:
        One of :data:`KINDS`.
    node:
        The acting node (sender for send/drop, receiver for deliver,
        owner for timer/local).  Empty for protocol-wide events
        (phase, request).
    lamport:
        The acting node's Lamport timestamp *after* this event;
        ``0`` for node-less events.
    peer:
        The other endpoint for send/deliver/drop; empty otherwise.
    mtype:
        Message type for send/deliver/drop; phase name, timer label,
        milestone label or request label otherwise.
    msg_id:
        Per-unicast id linking a send to its deliver or drop;
        ``-1`` when not applicable.
    detail:
        Canonicalised extras: a tuple of ``(key, value)`` string pairs,
        sorted by key — deterministic and JSON-friendly.
    """

    seq: int
    time: float
    kind: str
    node: str
    lamport: int = 0
    peer: str = ""
    mtype: str = ""
    msg_id: int = -1
    detail: tuple = ()

    def get(self, key, default=None):
        """Look up one ``detail`` key."""
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def __repr__(self):
        core = "#%d t=%.3f %s %s" % (self.seq, self.time, self.kind,
                                     self.node or "*")
        if self.peer:
            core += "->" + self.peer if self.kind == SEND else "<-" + self.peer
        if self.mtype:
            core += " " + self.mtype
        return "TraceEvent(%s)" % core


def canonical_detail(mapping):
    """Normalise a dict of extras to the sorted string-pair tuple form."""
    return tuple(sorted((str(k), str(v)) for k, v in mapping.items()))
