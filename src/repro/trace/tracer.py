"""The :class:`Tracer`: the recording half of the trace subsystem.

A tracer is attached (opt-in) by :class:`~repro.core.cluster.Cluster`;
the network, the timer wheel and the metrics collector each hold a
reference and call the ``on_*`` hooks below.  Every hook site guards
with ``if tracer is not None`` so a tracer-less run pays exactly one
attribute load and comparison per site — the zero-overhead-when-disabled
contract.

The record path is deliberately skeletal — the near-free-when-enabled
half of the contract.  Each hook appends one compact tuple to a ring
buffer (a plain list by default, a bounded ``deque`` when ``capacity``
is set) and returns; :class:`~repro.trace.events.TraceEvent` objects,
``detail`` string pairs and Lamport clocks are *materialized lazily*,
only when the trace is queried, exported or rendered into an anomaly's
causal context.  Message events store the message object itself and
extract its detail fields on materialization through a per-class plan
compiled on first sight (mirroring ``Message._size_plan``), so the hot
path never probes attributes.

Streaming sinks (the monitor hub) register *typed* interest via
:meth:`Tracer.subscribe`: a per-event-kind (and optionally per-mtype)
subscription table means an event with no interested sink costs only
the tuple append, and a TraceEvent is constructed at most once per
event no matter how many sinks match.  Streamed events carry
``lamport=0`` — clock materialization stays lazy even with sinks on
(no streaming consumer in the library reads clocks online; causal
context is rendered from the materialized trace).  Nothing here touches
the simulator's RNG or schedules events, so enabling tracing cannot
perturb a run.
"""

from collections import deque

from .events import (
    DELIVER,
    DROP,
    KINDS,
    LOCAL,
    PHASE,
    REQUEST,
    SEND,
    TIMER,
    TraceEvent,
    canonical_detail,
)
from .trace import Trace

#: Message attributes lifted into event ``detail`` when present — the
#: protocol-identifying fields (ballot, view, seq, ...) that causal
#: invariants match on.  Values are stringified, so anything with a
#: deterministic ``str`` works (e.g. :class:`~repro.core.ballot.Ballot`).
DETAIL_ATTRS = ("ballot", "view", "seq", "round", "height", "term", "index",
                "digest", "request_id", "txid")

#: attrs-to-extract per message class, compiled on first instance seen.
#: Message classes are dataclasses with a fixed field set, so one
#: instance's attribute inventory speaks for the class.
_DETAIL_PLANS = {}


def _message_detail(message):
    """``detail`` pairs for a message, via the class's compiled plan."""
    plan = _DETAIL_PLANS.get(message.__class__)
    if plan is None:
        plan = _DETAIL_PLANS[message.__class__] = tuple(
            attr for attr in DETAIL_ATTRS if hasattr(message, attr))
    pairs = []
    for attr in plan:
        value = getattr(message, attr)
        if value is not None:
            pairs.append((attr, str(value)))
    return tuple(pairs)


def _compile_row(entries):
    """Compile ``[(mfilter, sink), ...]`` into ``(catchall, by_mtype)``.

    ``catchall`` is the tuple of unfiltered sinks; ``by_mtype`` maps
    each subscribed mtype to the tuple of sinks filtered onto it.  The
    dispatch hooks then route an event with one dict probe instead of
    testing it against every sink's filter — the difference between
    O(sinks) and O(1) on pbft's ack-heavy deliver stream.  Catchall
    sinks fire before filtered ones; monitors are independent observers
    (each sees only its own subscribed stream), so relative sink order
    within one event is not observable.
    """
    catchall = tuple(sink for mfilter, sink in entries if mfilter is None)
    by_mtype = {}
    for mfilter, sink in entries:
        if mfilter is None:
            continue
        for mtype in mfilter:
            by_mtype.setdefault(mtype, []).append(sink)
    return catchall, {mtype: tuple(sinks)
                      for mtype, sinks in by_mtype.items()}


class _LiveTrace(Trace):
    """A :class:`Trace` view over a tracer's ring buffer.

    ``events`` materializes lazily (and, for an unbounded tracer,
    incrementally) from the recorded tuples; until then the trace holds
    no TraceEvent objects at all.  ``len()`` and every query inherit
    from :class:`Trace` and operate on the materialized window.
    """

    def __init__(self, tracer):
        super().__init__()
        self._tracer = tracer

    @property
    def events(self):
        tracer = self._tracer
        if tracer._mat_count != tracer._total:
            tracer._materialize_into(self)
        return self._events


class Tracer:
    """Records a :class:`~repro.trace.Trace` from a live simulation.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.Simulator` supplying virtual time.
    capacity:
        Ring-buffer size.  ``None`` (the default) keeps every event —
        required for golden exports and whole-run causal queries.  A
        bounded tracer keeps only the newest ``capacity`` events
        (older ones are evicted; ``len(trace)`` reports the window) —
        the flight-recorder mode for long runs where only recent
        context matters.  Clocks of a bounded window are replayed from
        the window start, so cross-window happens-before queries are
        approximate.
    """

    def __init__(self, sim, capacity=None):
        self.sim = sim
        self.capacity = capacity
        self._records = deque(maxlen=capacity) if capacity else []
        self._append = self._records.append
        self._total = 0
        self._next_msg_id = 0
        self.trace = _LiveTrace(self)
        # -- streaming state (only touched while sinks are registered) --
        self._live = False
        #: kind -> [(mfilter, sink), ...] in registration order; the
        #: source of truth the compiled dispatch rows are rebuilt from.
        self._sub_entries = {}
        self._raw_entries = {}
        #: kind -> (catchall sinks, mtype -> sinks) compiled rows: one
        #: dict probe routes an event instead of scanning every sink's
        #: mtype filter — pbft's ack-heavy deliver stream carries
        #: several filtered monitors, none of which should cost the
        #: thousands of non-matching deliveries a membership test each.
        self._subs = {}
        self._raw = {}
        self._send_subs = None
        self._deliver_subs = None
        self._send_raw = None
        self._deliver_raw = None
        self._counters = ()
        # -- lazy-materialization replay state --
        self._mat_count = 0
        self._mat_clocks = {}
        self._mat_send = {}

    # -- subscriptions -------------------------------------------------------

    def subscribe(self, sink, kinds=None, mtypes=None):
        """Register a streaming sink called with matching recorded events.

        ``kinds`` limits the sink to those event kinds (default: all);
        ``mtypes`` further limits it to those ``mtype`` values.  Sinks
        observe events online, in recording order, the moment they
        happen.  Streamed events carry ``lamport=0`` — Lamport clocks
        are materialized only on query/export (ask ``tracer.trace`` for
        clocked events).  A sink must not schedule events or touch the
        RNG; like the tracer itself it is a pure observer.
        """
        self._live = True
        mfilter = frozenset(mtypes) if mtypes is not None else None
        for kind in (KINDS if kinds is None else kinds):
            entries = self._sub_entries.setdefault(kind, [])
            entries.append((mfilter, sink))
            self._subs[kind] = _compile_row(entries)
        # The two hottest hooks read their row straight off the tracer.
        self._send_subs = self._subs.get(SEND)
        self._deliver_subs = self._subs.get(DELIVER)
        return sink

    def subscribe_raw(self, sink, kinds=None, mtypes=None):
        """Register a raw streaming sink: no TraceEvent materialization.

        The sink is called as ``sink(kind, time, node, peer, mtype,
        msg_id, payload)`` with the recorded fields themselves — for
        SEND/DELIVER the payload is the live message object, for other
        kinds the eager detail pairs.  This is the fastest observation
        lane: a matching sink costs one call, no event object, no
        detail stringification.  Raw sinks must treat the payload as
        read-only and must not retain mutable references across events.
        """
        self._live = True
        mfilter = frozenset(mtypes) if mtypes is not None else None
        for kind in (KINDS if kinds is None else kinds):
            entries = self._raw_entries.setdefault(kind, [])
            entries.append((mfilter, sink))
            self._raw[kind] = _compile_row(entries)
        self._send_raw = self._raw.get(SEND)
        self._deliver_raw = self._raw.get(DELIVER)
        return sink

    def subscribe_counters(self, fn):
        """Register a per-event counting channel ``fn(kind, node, mtype)``.

        The cheap lane for sinks that only *count* events (liveness
        watchdogs): no TraceEvent is materialized.  Use
        :meth:`last_event` inside ``fn`` to recover the full event when
        one finally matters (a trip).
        """
        self._live = True
        self._counters = self._counters + (fn,)
        return fn

    def last_event(self):
        """The most recently recorded event, materialized (or ``None``)."""
        events = self.trace.events
        return events[-1] if events else None

    # -- lazy materialization ------------------------------------------------

    def _materialize_into(self, trace):
        """Turn recorded tuples into TraceEvents on ``trace``.

        Unbounded tracers materialize incrementally (already-built
        events are reused); bounded ones rebuild the current window,
        replaying clocks from the window start.  The Lamport rules here
        are exactly the rules the old eager recorder applied per event
        (send/timer/local/drop tick the acting node; deliver runs the
        receive rule against the matching send), so a lazily
        materialized trace is byte-identical to an eagerly recorded one.
        """
        records = self._records
        events = trace._events
        if self.capacity:
            events.clear()
            clocks, send_clock = {}, {}
            seq = self._total - len(records)
        else:
            clocks, send_clock = self._mat_clocks, self._mat_send
            seq = self._mat_count
            if seq:
                records = records[seq:]
        append = events.append
        for rec in records:
            kind, time, node, peer, mtype, msg_id, payload = rec
            if kind is SEND:
                lamport = clocks.get(node, 0) + 1
                clocks[node] = lamport
                send_clock[msg_id] = lamport
                detail = _message_detail(payload)
            elif kind is DELIVER:
                lamport = max(clocks.get(node, 0),
                              send_clock.pop(msg_id, 0)) + 1
                clocks[node] = lamport
                detail = _message_detail(payload)
            elif kind is PHASE or kind is REQUEST:
                lamport = 0
                detail = payload
            else:  # TIMER, LOCAL, DROP: a local tick on the acting node
                lamport = clocks.get(node, 0) + 1
                clocks[node] = lamport
                detail = payload
            append(TraceEvent(seq, time, kind, node, lamport, peer, mtype,
                              msg_id, detail))
            seq += 1
        self._mat_count = self._total

    # -- streaming dispatch (the rare-event kinds share this helper; the
    #    per-message hooks inline it, they run millions of times) -----------

    def _dispatch(self, kind, time, node, peer, mtype, msg_id, detail):
        raws = self._raw.get(kind)
        if raws is not None:
            for sink in raws[0]:
                sink(kind, time, node, peer, mtype, msg_id, detail)
            matched = raws[1].get(mtype)
            if matched is not None:
                for sink in matched:
                    sink(kind, time, node, peer, mtype, msg_id, detail)
        subs = self._subs.get(kind)
        if subs is not None:
            catchall = subs[0]
            matched = subs[1].get(mtype)
            if catchall or matched:
                event = TraceEvent(self._total - 1, time, kind, node,
                                   0, peer, mtype, msg_id, detail)
                for sink in catchall:
                    sink(event)
                if matched is not None:
                    for sink in matched:
                        sink(event)
        for fn in self._counters:
            fn(kind, node, mtype)

    # -- hooks called by the transport --------------------------------------

    def on_send(self, src, dst, message):
        """Record a unicast attempt; returns the ``msg_id`` token the
        transport threads through to delivery."""
        msg_id = self._next_msg_id
        self._next_msg_id = msg_id + 1
        time = self.sim._now
        mtype = message.mtype
        self._append((SEND, time, src, dst, mtype, msg_id, message))
        self._total += 1
        if self._live:
            raws = self._send_raw
            if raws is not None:
                for sink in raws[0]:
                    sink(SEND, time, src, dst, mtype, msg_id, message)
                matched = raws[1].get(mtype)
                if matched is not None:
                    for sink in matched:
                        sink(SEND, time, src, dst, mtype, msg_id, message)
            subs = self._send_subs
            if subs is not None:
                catchall = subs[0]
                matched = subs[1].get(mtype)
                if catchall or matched:
                    event = TraceEvent(
                        self._total - 1, time, SEND, src, 0, dst,
                        mtype, msg_id, _message_detail(message))
                    for sink in catchall:
                        sink(event)
                    if matched is not None:
                        for sink in matched:
                            sink(event)
            for fn in self._counters:
                fn(SEND, src, mtype)
        return msg_id

    def on_deliver(self, src, dst, message, token):
        """Record arrival at a live node."""
        time = self.sim._now
        mtype = message.mtype
        self._append((DELIVER, time, dst, src, mtype, token, message))
        self._total += 1
        if self._live:
            raws = self._deliver_raw
            if raws is not None:
                for sink in raws[0]:
                    sink(DELIVER, time, dst, src, mtype, token, message)
                matched = raws[1].get(mtype)
                if matched is not None:
                    for sink in matched:
                        sink(DELIVER, time, dst, src, mtype, token, message)
            subs = self._deliver_subs
            if subs is not None:
                catchall = subs[0]
                matched = subs[1].get(mtype)
                if catchall or matched:
                    event = TraceEvent(
                        self._total - 1, time, DELIVER, dst, 0, src,
                        mtype, token, _message_detail(message))
                    for sink in catchall:
                        sink(event)
                    if matched is not None:
                        for sink in matched:
                            sink(event)
            for fn in self._counters:
                fn(DELIVER, dst, mtype)

    def on_drop(self, src, dst, message, reason, token=None):
        """Record a lost message: intercepted, partitioned, dropped by the
        delivery model, or delivered to a crashed/unknown node."""
        msg_id = token if token is not None else -1
        time = self.sim._now
        mtype = message.mtype
        detail = (("reason", reason),)
        self._append((DROP, time, src, dst, mtype, msg_id, detail))
        self._total += 1
        if self._live:
            self._dispatch(DROP, time, src, dst, mtype, msg_id, detail)

    # -- hooks called by processes and the metrics collector -----------------

    def on_timer(self, node):
        """Record a timer firing on ``node``."""
        time = self.sim._now
        self._append((TIMER, time, node, "", "timer", -1, ()))
        self._total += 1
        if self._live:
            self._dispatch(TIMER, time, node, "", "timer", -1, ())

    def on_phase(self, protocol, phase):
        """Record a protocol-wide phase boundary (mirrors ``mark_phase``)."""
        time = self.sim._now
        detail = (("protocol", str(protocol)),)
        self._append((PHASE, time, "", "", phase, -1, detail))
        self._total += 1
        if self._live:
            self._dispatch(PHASE, time, "", "", phase, -1, detail)

    def on_local(self, node, label, detail=None):
        """Record a protocol-declared milestone (decide, commit, execute)."""
        time = self.sim._now
        pairs = canonical_detail(detail) if detail else ()
        self._append((LOCAL, time, node, "", label, -1, pairs))
        self._total += 1
        if self._live:
            self._dispatch(LOCAL, time, node, "", label, -1, pairs)

    def on_request(self, label, edge):
        """Record a request-span boundary; ``edge`` is start or end."""
        time = self.sim._now
        detail = (("edge", str(edge)),)
        self._append((REQUEST, time, "", "", label, -1, detail))
        self._total += 1
        if self._live:
            self._dispatch(REQUEST, time, "", "", label, -1, detail)

    def __repr__(self):
        window = len(self._records)
        if self.capacity and window < self._total:
            return "Tracer(%d events, newest %d ringed)" % (self._total,
                                                            window)
        return "Tracer(%d events)" % self._total
