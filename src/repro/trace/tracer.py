"""The :class:`Tracer`: the recording half of the trace subsystem.

A tracer is attached (opt-in) by :class:`~repro.core.cluster.Cluster`;
the network, the timer wheel and the metrics collector each hold a
reference and call the ``on_*`` hooks below.  Every hook site guards
with ``if tracer is not None`` so a tracer-less run pays exactly one
attribute load and comparison per site — the zero-overhead-when-disabled
contract.

The tracer maintains one Lamport clock per node (tick on send / timer /
local event, receive-rule merge on deliver) and assigns each unicast a
dense ``msg_id`` so the matching deliver (or drop) can be linked back to
its send.  Nothing here touches the simulator's RNG or schedules events,
so enabling tracing cannot perturb a run.
"""

from .events import (
    DELIVER,
    DROP,
    LOCAL,
    PHASE,
    REQUEST,
    SEND,
    TIMER,
    TraceEvent,
    canonical_detail,
)
from .trace import Trace

#: Message attributes lifted into event ``detail`` when present — the
#: protocol-identifying fields (ballot, view, seq, ...) that causal
#: invariants match on.  Values are stringified, so anything with a
#: deterministic ``str`` works (e.g. :class:`~repro.core.ballot.Ballot`).
DETAIL_ATTRS = ("ballot", "view", "seq", "round", "height", "term", "index",
                "digest")


class Tracer:
    """Records a :class:`~repro.trace.Trace` from a live simulation.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.Simulator` supplying virtual time.
    """

    def __init__(self, sim):
        self.sim = sim
        self.trace = Trace()
        self._clocks = {}
        self._next_msg_id = 0
        self._sinks = []

    def subscribe(self, sink):
        """Register a streaming sink called with every recorded event.

        Sinks (e.g. the monitor hub) observe events online, in recording
        order, the moment they happen — without waiting for run end.  A
        sink must not schedule events or touch the RNG; like the tracer
        itself it is a pure observer.
        """
        self._sinks.append(sink)
        return sink

    # -- internals ---------------------------------------------------------

    def _tick(self, node):
        value = self._clocks.get(node, 0) + 1
        self._clocks[node] = value
        return value

    def _emit(self, kind, node, lamport, peer="", mtype="", msg_id=-1,
              detail=()):
        event = TraceEvent(
            seq=len(self.trace.events),
            time=self.sim.now,
            kind=kind,
            node=node,
            lamport=lamport,
            peer=peer,
            mtype=mtype,
            msg_id=msg_id,
            detail=detail,
        )
        self.trace.append(event)
        if self._sinks:
            for sink in self._sinks:
                sink(event)
        return event

    @staticmethod
    def _message_detail(message):
        pairs = []
        for attr in DETAIL_ATTRS:
            value = getattr(message, attr, None)
            if value is not None:
                pairs.append((attr, str(value)))
        return tuple(pairs)

    # -- hooks called by the transport --------------------------------------

    def on_send(self, src, dst, message):
        """Record a unicast attempt; returns the token the transport
        threads through to delivery."""
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        lamport = self._tick(src)
        self._emit(SEND, src, lamport, peer=dst, mtype=message.mtype,
                   msg_id=msg_id, detail=self._message_detail(message))
        return (msg_id, lamport)

    def on_deliver(self, src, dst, message, token):
        """Record arrival at a live node (receive rule on dst's clock)."""
        msg_id, sent_lamport = token
        value = max(self._clocks.get(dst, 0), sent_lamport) + 1
        self._clocks[dst] = value
        self._emit(DELIVER, dst, value, peer=src, mtype=message.mtype,
                   msg_id=msg_id, detail=self._message_detail(message))

    def on_drop(self, src, dst, message, reason, token=None):
        """Record a lost message: intercepted, partitioned, dropped by the
        delivery model, or delivered to a crashed/unknown node."""
        msg_id = token[0] if token is not None else -1
        lamport = self._tick(src)
        self._emit(DROP, src, lamport, peer=dst, mtype=message.mtype,
                   msg_id=msg_id, detail=(("reason", reason),))

    # -- hooks called by processes and the metrics collector -----------------

    def on_timer(self, node):
        """Record a timer firing on ``node``."""
        self._emit(TIMER, node, self._tick(node), mtype="timer")

    def on_phase(self, protocol, phase):
        """Record a protocol-wide phase boundary (mirrors ``mark_phase``)."""
        self._emit(PHASE, "", 0, mtype=phase,
                   detail=(("protocol", str(protocol)),))

    def on_local(self, node, label, detail=None):
        """Record a protocol-declared milestone (decide, commit, execute)."""
        self._emit(LOCAL, node, self._tick(node), mtype=label,
                   detail=canonical_detail(detail or {}))

    def on_request(self, label, edge):
        """Record a request-span boundary; ``edge`` is start or end."""
        self._emit(REQUEST, "", 0, mtype=label,
                   detail=(("edge", str(edge)),))

    def __repr__(self):
        return "Tracer(%d events, %d nodes)" % (len(self.trace),
                                                len(self._clocks))
