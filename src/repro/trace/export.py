"""JSONL export/import for traces.

The export format is deliberately boring: one JSON object per line, keys
sorted, compact separators, ``\\n`` line endings.  Because every field of
a :class:`~repro.trace.events.TraceEvent` is a string, int or float
produced deterministically from the simulation, two same-seed runs
serialise to *byte-identical* output — which is what the determinism
tests assert, and what makes traces diffable artifacts.
"""

import json

from ..ioutil import ensure_parent
from .events import TraceEvent
from .trace import Trace


def event_to_dict(event):
    """Plain-dict form of one event (detail becomes a list of pairs)."""
    return {
        "seq": event.seq,
        "time": event.time,
        "kind": event.kind,
        "node": event.node,
        "lamport": event.lamport,
        "peer": event.peer,
        "mtype": event.mtype,
        "msg_id": event.msg_id,
        "detail": [list(pair) for pair in event.detail],
    }


def event_from_dict(data):
    """Inverse of :func:`event_to_dict`."""
    return TraceEvent(
        seq=data["seq"],
        time=data["time"],
        kind=data["kind"],
        node=data["node"],
        lamport=data["lamport"],
        peer=data["peer"],
        mtype=data["mtype"],
        msg_id=data["msg_id"],
        detail=tuple(tuple(pair) for pair in data["detail"]),
    )


def to_jsonl(trace):
    """Serialise a trace to a JSONL string (trailing newline included)."""
    lines = [
        json.dumps(event_to_dict(event), sort_keys=True,
                   separators=(",", ":"))
        for event in trace
    ]
    return "".join(line + "\n" for line in lines)


def write_jsonl(trace, path):
    """Write the trace to ``path``; returns the event count."""
    payload = to_jsonl(trace)
    with open(ensure_parent(path), "w", encoding="utf-8",
              newline="\n") as handle:
        handle.write(payload)
    return len(trace)


def read_jsonl(path_or_lines):
    """Load a trace from a JSONL file path or an iterable of lines."""
    if isinstance(path_or_lines, str):
        with open(path_or_lines, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(path_or_lines)
    events = [event_from_dict(json.loads(line)) for line in lines if line.strip()]
    return Trace(events)
