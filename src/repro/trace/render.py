"""ASCII space-time renderer: the paper's message-flow figures, from data.

Each node gets a column; virtual time runs downward, one row per event.
A send draws an arrow from the sender's column toward the receiver's
(``o--->``), protocol milestones draw ``*`` in their node's column, and
phase marks draw full-width separators — so a Paxos run renders as the
familiar prepare -> accept -> decide figure, but reconstructed from a
live run's trace rather than drawn by hand.
"""

from .events import DELIVER, DROP, LOCAL, PHASE, REQUEST, SEND, TIMER


def _compact_detail(event, limit=40):
    text = " ".join("%s=%s" % (k, v) for k, v in event.detail)
    if len(text) > limit:
        text = text[:limit - 3] + "..."
    return text


def render_flow(trace, nodes=None, col_width=10, max_rows=None,
                include_delivers=False, include_timers=False):
    """Render ``trace`` as an ASCII message-flow diagram.

    Parameters
    ----------
    trace:
        A :class:`~repro.trace.Trace` (or any iterable of events).
    nodes:
        Column order; defaults to first-appearance order.  Events whose
        endpoints are not all in ``nodes`` are skipped.
    col_width:
        Characters per node column.
    max_rows:
        Cap on rendered event rows; a summary line reports the rest.
    include_delivers / include_timers:
        Also draw message arrivals / timer firings (off by default —
        sends plus milestones already show the flow shape).
    """
    events = list(trace)
    if nodes is None:
        seen = []
        for event in events:
            if event.node and event.node not in seen:
                seen.append(event.node)
        nodes = seen
    columns = {name: index for index, name in enumerate(nodes)}
    canvas_width = max(col_width * len(nodes), 1)

    def center(name):
        return columns[name] * col_width + col_width // 2

    lines = []
    header = " " * 11
    for name in nodes:
        header += name[:col_width - 1].center(col_width)
    lines.append(header.rstrip())

    rows = 0
    skipped = 0
    for event in events:
        if max_rows is not None and rows >= max_rows:
            skipped += 1
            continue
        canvas = [" "] * canvas_width
        label = ""
        if event.kind == PHASE:
            bar = ("-- phase: %s " % event.mtype).ljust(canvas_width, "-")
            lines.append("%9s  %s  [%s]" % ("", bar,
                                            event.get("protocol", "")))
            rows += 1
            continue
        if event.kind == REQUEST:
            bar = ("== request %s %s " % (event.mtype,
                                          event.get("edge", ""))).ljust(
                canvas_width, "=")
            lines.append("%9s  %s" % ("", bar))
            rows += 1
            continue
        if event.kind == SEND:
            if event.node not in columns or event.peer not in columns:
                skipped += 1
                continue
            src, dst = center(event.node), center(event.peer)
            if src < dst:
                canvas[src] = "o"
                for pos in range(src + 1, dst):
                    canvas[pos] = "-"
                canvas[dst] = ">"
            else:
                canvas[dst] = "<"
                for pos in range(dst + 1, src):
                    canvas[pos] = "-"
                canvas[src] = "o"
            label = ("%s %s" % (event.mtype, _compact_detail(event))).strip()
        elif event.kind == DELIVER:
            if not include_delivers or event.node not in columns:
                continue
            canvas[center(event.node)] = "v"
            label = "recv %s from %s" % (event.mtype, event.peer)
        elif event.kind == DROP:
            if event.node not in columns:
                skipped += 1
                continue
            canvas[center(event.node)] = "x"
            label = "drop %s -> %s (%s)" % (event.mtype, event.peer,
                                            event.get("reason", "?"))
        elif event.kind == TIMER:
            if not include_timers or event.node not in columns:
                continue
            canvas[center(event.node)] = "."
            label = "timer"
        elif event.kind == LOCAL:
            if event.node not in columns:
                skipped += 1
                continue
            canvas[center(event.node)] = "*"
            label = ("%s %s" % (event.mtype, _compact_detail(event))).strip()
        else:
            continue
        row = "%9.3f  %s  %s" % (event.time, "".join(canvas), label)
        lines.append(row.rstrip())
        rows += 1
    if skipped:
        lines.append("%9s  ... (%d more events not shown)" % ("", skipped))
    return "\n".join(lines)
