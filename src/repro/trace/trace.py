"""The :class:`Trace` container: an ordered event list with causal queries.

A trace is append-only during a run; afterwards it supports filtering
(by node, kind, message type, time window), exact *happened-before*
checks via lazily computed vector clocks, and per-request span
extraction.  Filtering returns a new :class:`Trace` over the selected
events; causal queries should be asked of the full trace, since a
filtered view may be missing the send half of a deliver edge.
"""

from .clock import VectorClock
from .events import DELIVER, LOCAL, REQUEST, SEND


class Trace:
    """An ordered collection of :class:`~repro.trace.events.TraceEvent`.

    Plain traces hold an eager event list; the tracer's live view
    (:class:`~repro.trace.tracer._LiveTrace`) overrides :attr:`events`
    to materialize lazily from the recording ring.  Everything here
    works through that property, so both kinds answer the same queries.
    """

    def __init__(self, events=None):
        self._events = list(events) if events else []
        self._vc = None
        self._vc_len = -1

    # -- collection protocol ----------------------------------------------

    @property
    def events(self):
        return self._events

    def append(self, event):
        self._events.append(event)

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __getitem__(self, index):
        return self.events[index]

    # -- filtering ---------------------------------------------------------

    def filter(self, kind=None, node=None, peer=None, mtype=None,
               t0=None, t1=None):
        """Events matching every given criterion, as a new :class:`Trace`.

        ``kind``/``node``/``peer``/``mtype`` accept a single value or a
        set/tuple of values; ``t0``/``t1`` bound the (inclusive) virtual
        time window.
        """
        def wants(criterion, value):
            if criterion is None:
                return True
            if isinstance(criterion, (set, frozenset, tuple, list)):
                return value in criterion
            return value == criterion

        selected = [
            e for e in self.events
            if wants(kind, e.kind) and wants(node, e.node)
            and wants(peer, e.peer) and wants(mtype, e.mtype)
            and (t0 is None or e.time >= t0)
            and (t1 is None or e.time <= t1)
        ]
        return Trace(selected)

    def sends(self, mtype=None):
        return self.filter(kind=SEND, mtype=mtype)

    def delivers(self, mtype=None):
        return self.filter(kind=DELIVER, mtype=mtype)

    def locals(self, label=None):
        return self.filter(kind=LOCAL, mtype=label)

    def nodes(self):
        """Node names in first-appearance order."""
        seen = []
        for event in self.events:
            if event.node and event.node not in seen:
                seen.append(event.node)
        return seen

    def mtypes(self):
        """Message types seen on sends, in first-appearance order."""
        seen = []
        for event in self.events:
            if event.kind == SEND and event.mtype not in seen:
                seen.append(event.mtype)
        return seen

    # -- spans -------------------------------------------------------------

    def span(self, label):
        """Events recorded between the start and end of request ``label``.

        Request boundaries come from
        :meth:`~repro.metrics.MetricsCollector.start_request` /
        ``finish_request``; the span is everything recorded in between
        (the trace is totally ordered by ``seq``).  An open request spans
        to the end of the trace.
        """
        start = end = None
        for event in self.events:
            if event.kind != REQUEST or event.mtype != label:
                continue
            if event.get("edge") == "start" and start is None:
                start = event.seq
            elif event.get("edge") == "end":
                end = event.seq
        if start is None:
            return Trace()
        return Trace([
            e for e in self.events
            if start <= e.seq and (end is None or e.seq <= end)
        ])

    # -- causality ---------------------------------------------------------

    def _vector_clocks(self):
        """seq -> :class:`VectorClock` (``None`` for node-less events).

        Computed lazily and cached against the trace length, so a live
        trace that has grown since the last causal query recomputes.
        """
        events = self.events
        if self._vc is not None and self._vc_len == len(events):
            return self._vc
        clocks = {}
        node_state = {}
        send_state = {}
        for event in events:
            if not event.node:
                clocks[event.seq] = None
                continue
            current = node_state.get(event.node, VectorClock())
            if event.kind == DELIVER and event.msg_id in send_state:
                current = current.merge(send_state[event.msg_id])
            current = current.tick(event.node)
            node_state[event.node] = current
            clocks[event.seq] = current
            if event.kind == SEND:
                send_state[event.msg_id] = current
        self._vc = clocks
        self._vc_len = len(events)
        return clocks

    def happens_before(self, a, b):
        """Exact happened-before: ``a -> b`` in Lamport's relation.

        Edges are per-node program order plus send->deliver pairs.
        Node-less events (phase marks, request boundaries) take no part
        in the relation and always return ``False``.
        """
        clocks = self._vector_clocks()
        va = clocks.get(a.seq)
        vb = clocks.get(b.seq)
        if va is None or vb is None or a.seq == b.seq:
            return False
        return va.happens_before(vb)

    def concurrent(self, a, b):
        """True iff neither event causally precedes the other."""
        clocks = self._vector_clocks()
        va = clocks.get(a.seq)
        vb = clocks.get(b.seq)
        if va is None or vb is None or a.seq == b.seq:
            return False
        return va.concurrent_with(vb)

    def causal_past(self, event):
        """All events that happened-before ``event``, as a new trace."""
        return Trace([e for e in self.events if self.happens_before(e, event)])

    def __repr__(self):
        return "Trace(%d events, %d nodes)" % (len(self.events),
                                               len(self.nodes()))
