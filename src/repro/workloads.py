"""Deprecated location — workload generation moved to :mod:`repro.load.workloads`.

This shim keeps ``from repro.workloads import ZipfKeys`` working for
existing callers; new code should import from ``repro.load`` (or
``repro.load.workloads``) where the samplers live next to the arrival
processes and the open-loop engine that consume them.
"""

import warnings

from repro.load.workloads import (  # noqa: F401
    OpMix,
    ZipfKeys,
    generate_commands,
)

warnings.warn(
    "repro.workloads moved to repro.load.workloads; update imports",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["ZipfKeys", "OpMix", "generate_commands"]
