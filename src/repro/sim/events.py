"""Events and the pending-event queue.

An :class:`Event` is a callback scheduled at a virtual timestamp.  Events
at the same timestamp fire in the order they were scheduled (a strictly
increasing sequence number breaks ties), which keeps every simulation run
fully deterministic for a given seed.

The queue tracks its *live* (non-cancelled) event count so callers can
ask how much real work is pending without scanning, and it compacts the
heap whenever cancelled entries outnumber live ones — retransmit-timer
churn in Raft/PBFT otherwise bloats the heap with corpses that every
push and pop then has to sift past.
"""

import heapq
import itertools


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.Simulator.schedule`; user
    code holds them only to :meth:`cancel` them (e.g. to stop a retransmit
    timer once an ack arrives).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(self, time, seq, callback, args, queue=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self):
        """Prevent the callback from firing.  Safe to call repeatedly."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancel()

    def fire(self):
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback(*self.args)

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return "Event(t=%.6f, seq=%d, %s, %s)" % (self.time, self.seq, name, state)


class EventQueue:
    """Priority queue of :class:`Event` ordered by (time, sequence).

    Heap entries are ``(time, seq, event)`` tuples so ordering is decided
    by C-level tuple comparison — the heap never calls back into Python
    to compare two events.  ``len(queue)`` is the number of *live*
    events; cancelled entries stay in the heap until popped past or
    compacted away, but never count.
    """

    #: Heap size below which cancellation never triggers compaction —
    #: rebuilding a tiny heap costs more than sifting past its corpses.
    COMPACT_MIN = 64

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self):
        return self._live

    def push(self, time, callback, args=()):
        """Enqueue a callback at virtual time ``time`` and return the event."""
        seq = next(self._counter)
        # Build the event without the __init__ call frame — push runs
        # once per scheduled callback, i.e. millions of times per
        # benchmark sweep.
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._queue = self
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def push_transient(self, time, callback, args=()):
        """Enqueue a *non-cancellable* callback without an Event object.

        The hot lane for message deliveries: the heap entry is a bare
        ``(time, seq, callback, args)`` tuple — no per-message Event
        allocation, nothing to cancel, nothing for compaction to
        inspect.  Entries mix freely with :meth:`push` events (the
        unique ``seq`` guarantees tuple comparison never reaches the
        third element).  Returns nothing — callers that may need to
        cancel must use :meth:`push`.
        """
        heapq.heappush(self._heap, (time, next(self._counter), callback,
                                    args))
        self._live += 1

    def pop_entry(self, horizon=None):
        """Remove and return ``(time, callback, args)`` of the earliest
        live entry at or before ``horizon``, or ``None``.

        The event loop's hot-path scan: cancelled events are discarded
        as they surface, transient entries are returned without any
        unwrap cost, and a live entry beyond ``horizon`` stays queued
        (check ``len(queue)`` to distinguish empty from beyond-horizon).
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if len(entry) == 4:
                if horizon is not None and entry[0] > horizon:
                    return None
                heapq.heappop(heap)
                self._live -= 1
                return (entry[0], entry[2], entry[3])
            event = entry[2]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if horizon is not None and entry[0] > horizon:
                return None
            heapq.heappop(heap)
            self._live -= 1
            event._queue = None
            return (entry[0], event.callback, event.args)
        return None

    def pop_next(self, horizon=None):
        """Remove and return the earliest live event at or before ``horizon``.

        Like :meth:`pop_entry` but returns an :class:`Event` (transient
        entries are wrapped in a fresh one), for callers that want the
        object API.  ``None`` when the queue holds no live event or the
        next live event lies beyond ``horizon``.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if len(entry) == 4:
                if horizon is not None and entry[0] > horizon:
                    return None
                heapq.heappop(heap)
                self._live -= 1
                return Event(entry[0], entry[1], entry[2], entry[3])
            event = entry[2]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if horizon is not None and entry[0] > horizon:
                return None
            heapq.heappop(heap)
            self._live -= 1
            event._queue = None
            return event
        return None

    def pop(self):
        """Remove and return the earliest pending event.

        Cancelled events are discarded lazily here; returns ``None`` when
        the queue holds nothing but cancelled events (or is empty).
        """
        return self.pop_next()

    def peek_time(self):
        """Return the timestamp of the next live event, or ``None``."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if len(entry) == 4 or not entry[2].cancelled:
                return entry[0]
            heapq.heappop(heap)
        return None

    def clear(self):
        """Drop every pending event."""
        for entry in self._heap:
            if len(entry) == 3:
                entry[2]._queue = None
        self._heap.clear()
        self._live = 0

    # -- internal ----------------------------------------------------------

    def _note_cancel(self):
        """Bookkeeping hook called by :meth:`Event.cancel` while the event
        is still heaped: keep the live count honest and compact once the
        cancelled majority makes heap operations pay for dead weight."""
        self._live -= 1
        heap = self._heap
        if len(heap) >= self.COMPACT_MIN and 2 * self._live < len(heap):
            live = [entry for entry in heap
                    if len(entry) == 4 or not entry[2].cancelled]
            heapq.heapify(live)
            self._heap = live
