"""Events and the pending-event queue.

An :class:`Event` is a callback scheduled at a virtual timestamp.  Events
at the same timestamp fire in the order they were scheduled (a strictly
increasing sequence number breaks ties), which keeps every simulation run
fully deterministic for a given seed.
"""

import heapq
import itertools


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.Simulator.schedule`; user
    code holds them only to :meth:`cancel` them (e.g. to stop a retransmit
    timer once an ack arrives).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True

    def fire(self):
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback(*self.args)

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return "Event(t=%.6f, seq=%d, %s, %s)" % (self.time, self.seq, name, state)


class EventQueue:
    """Priority queue of :class:`Event` ordered by (time, sequence)."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()

    def __len__(self):
        return len(self._heap)

    def push(self, time, callback, args=()):
        """Enqueue a callback at virtual time ``time`` and return the event."""
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self):
        """Remove and return the earliest pending event.

        Cancelled events are discarded lazily here; returns ``None`` when
        the queue holds nothing but cancelled events (or is empty).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self):
        """Return the timestamp of the next live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self):
        """Drop every pending event."""
        self._heap.clear()
