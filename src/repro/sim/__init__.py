"""Deterministic discrete-event simulation kernel.

The kernel is deliberately tiny: a virtual clock, a priority queue of
events (:mod:`repro.sim.events`), and actor-style processes with timers
(:mod:`repro.sim.process`).  Everything above it — networks, crypto,
protocols, blockchains — is ordinary Python driven by scheduled callbacks.
"""

from .errors import (
    ClockError,
    EventLimitExceeded,
    SimulationError,
    SimulationFinished,
)
from .events import Event, EventQueue
from .process import Process, Timer
from .simulator import DEFAULT_MAX_EVENTS, Simulator

__all__ = [
    "ClockError",
    "DEFAULT_MAX_EVENTS",
    "Event",
    "EventLimitExceeded",
    "EventQueue",
    "Process",
    "SimulationError",
    "SimulationFinished",
    "Simulator",
    "Timer",
]
