"""Actor-style processes living on a :class:`~repro.sim.Simulator`.

A :class:`Process` is the unit every node, client and miner in the
library builds on: it owns timers, can be crashed and restarted, and is
started once at simulation setup.  Subclasses override :meth:`on_start`
and whatever message handlers their transport dispatches to.
"""


class Timer:
    """Handle to a (possibly repeating) scheduled callback on a process.

    Timers silently stop firing while their owner is crashed; a restarted
    process must re-arm its own timers, matching how a real process loses
    its in-memory timer wheel on failure.
    """

    def __init__(self, process, delay, callback, args, repeat=False):
        self._process = process
        self._delay = delay
        self._callback = callback
        self._args = args
        self._repeat = repeat
        self._event = None
        self._cancelled = False
        self._arm()

    def _arm(self):
        self._event = self._process.sim.schedule(self._delay, self._fire)

    def _fire(self):
        if self._cancelled or self._process.crashed:
            return
        sim = self._process.sim
        tracer = sim.tracer
        if tracer is not None:
            tracer.on_timer(self._process.name)
        if sim.telemetry is not None:
            sim._tm_timers_fired.inc()
        if self._repeat:
            self._arm()
        self._callback(*self._args)

    def cancel(self):
        """Stop the timer; safe to call repeatedly."""
        if not self._cancelled:
            sim = self._process.sim
            if sim.telemetry is not None:
                sim._tm_timers_cancelled.inc()
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()

    @property
    def active(self):
        return not self._cancelled


class Process:
    """Base class for simulated actors.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.Simulator` this process runs on.
    name:
        Stable identifier, used in logs and metrics.
    """

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        #: Random source for this process's own draws (election jitter,
        #: backoff).  Defaults to the simulator-wide stream; partitioned
        #: runs rebind it to a per-domain stream so a process's draw
        #: sequence does not depend on which worker hosts it.
        self.rng = sim.rng
        self.crashed = False
        self._timers = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Schedule :meth:`on_start` at the current virtual time."""
        if self._started:
            return
        self._started = True
        self.sim.call_soon(self._run_start)

    def _run_start(self):
        if not self.crashed:
            self.on_start()

    def on_start(self):
        """Hook invoked once when the process starts.  Default: no-op."""

    def crash(self):
        """Fail-stop this process: timers die, future messages are dropped."""
        self.crashed = True
        for timer in self._timers:
            timer.cancel()
        self._timers = []
        self.on_crash()

    def on_crash(self):
        """Hook invoked when the process crashes.  Default: no-op."""

    def restart(self):
        """Recover from a crash.

        Volatile state handling is the subclass's job (override
        :meth:`on_restart`); the kernel only flips the liveness flag.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.on_restart()

    def on_restart(self):
        """Hook invoked on recovery.  Default: no-op."""

    # -- timers ------------------------------------------------------------

    def set_timer(self, delay, callback, *args):
        """Arm a one-shot timer firing ``delay`` virtual time units from now."""
        timer = Timer(self, delay, callback, args, repeat=False)
        self._timers.append(timer)
        return timer

    def set_periodic_timer(self, interval, callback, *args):
        """Arm a repeating timer firing every ``interval`` time units."""
        timer = Timer(self, interval, callback, args, repeat=True)
        self._timers.append(timer)
        return timer

    def cancel_timers(self):
        """Cancel every timer owned by this process."""
        for timer in self._timers:
            timer.cancel()
        self._timers = []

    def __repr__(self):
        state = "crashed" if self.crashed else "up"
        return "%s(%r, %s)" % (type(self).__name__, self.name, state)
