"""The deterministic discrete-event simulator.

Every protocol in this library runs on a :class:`Simulator`: a virtual
clock plus a priority queue of events.  Nothing ever sleeps or spawns a
thread — "time" advances only by jumping to the next event's timestamp,
so a run that models minutes of network traffic completes in
milliseconds, and two runs with the same seed replay identically,
including every "random" message delay, crash and fork.
"""

import random

from .errors import ClockError, EventLimitExceeded, SimulationFinished
from .events import EventQueue

#: Default ceiling on processed events; generous enough for every
#: experiment in the benchmark suite while still catching livelocks.
DEFAULT_MAX_EVENTS = 5_000_000


class Simulator:
    """Discrete-event simulation core with a seeded random source.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  All model
        randomness (delays, drops, elections, nonces) must flow through
        :attr:`rng` so runs are reproducible.
    """

    def __init__(self, seed=0):
        self.rng = random.Random(seed)
        self.seed = seed
        #: Optional :class:`~repro.trace.Tracer`; processes consult it for
        #: timer-fire events.  ``None`` keeps timers on the untraced path.
        self.tracer = None
        #: Optional :class:`~repro.telemetry.MetricsRegistry`, attached
        #: via :meth:`attach_telemetry`.  ``None`` keeps the event loop
        #: and timer wheel on the un-instrumented path.
        self.telemetry = None
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._stop_requested = False

    def attach_telemetry(self, registry):
        """Record event-loop and timer counters into ``registry``.

        Instrument handles are resolved once here so the event loop's
        per-event cost stays one ``is not None`` check plus an integer
        increment.
        """
        self.telemetry = registry
        if registry is not None:
            self._tm_events = registry.counter("sim_events_dispatched_total")
            self._tm_timers_fired = registry.counter("sim_timers_fired_total")
            self._tm_timers_cancelled = registry.counter(
                "sim_timers_cancelled_total")

    @property
    def now(self):
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self):
        """Total events fired since construction."""
        return self._events_processed

    @property
    def pending_events(self):
        """Number of live events currently queued.

        Cancelled events are excluded: the queue tracks its live count
        directly, so stale retransmit timers no longer inflate the
        number.
        """
        return len(self._queue)

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to fire ``delay`` time units from now.

        Returns the :class:`~repro.sim.events.Event`, which the caller may
        ``cancel()``.
        """
        if delay < 0:
            raise ClockError("cannot schedule in the past (delay=%r)" % (delay,))
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ClockError(
                "cannot schedule at %r before now=%r" % (time, self._now)
            )
        return self._queue.push(time, callback, args)

    def call_soon(self, callback, *args):
        """Schedule ``callback(*args)`` at the current time (after pending
        same-time events)."""
        return self._queue.push(self._now, callback, args)

    def stop(self):
        """Request the event loop to stop after the current callback."""
        self._stop_requested = True

    def run(self, until=None, max_events=DEFAULT_MAX_EVENTS, stop_when=None):
        """Drain the event queue.

        Parameters
        ----------
        until:
            Optional virtual-time horizon; events after it stay queued.
        max_events:
            Abort with :class:`EventLimitExceeded` past this many events —
            the guard that turns a protocol livelock into a test failure
            instead of a hang.
        stop_when:
            Optional zero-argument predicate checked after every event;
            the loop exits once it returns true (used by drivers that run
            "until a value is decided").

        Returns the virtual time at which the loop stopped.
        """
        self._stop_requested = False
        self._running = True
        # Hoist the per-event lookups: the loop below runs millions of
        # times per experiment, so every attribute chase it avoids is a
        # measurable slice of total runtime.
        queue = self._queue
        pop_entry = queue.pop_entry
        tm_events = self._tm_events if self.telemetry is not None else None
        # The processed count and its telemetry mirror are batched in a
        # local and flushed once on exit: they are only *read* after the
        # loop returns (or from callbacks that see a stale-by-a-few value
        # nobody depends on), so per-event bookkeeping buys nothing.
        base = self._events_processed
        processed = 0
        try:
            while True:
                if self._stop_requested:
                    break
                # One scan instead of the old peek_time()/pop() pair:
                # cancelled events are discarded once, and a live event
                # beyond the horizon stays queued.
                entry = pop_entry(until)
                if entry is None:
                    if until is not None and len(queue):
                        self._now = until
                    break
                self._now = entry[0]
                processed += 1
                if base + processed > max_events:
                    raise EventLimitExceeded(max_events)
                try:
                    # pop_entry never returns a cancelled event, so the
                    # Event.fire() guard (and call frame) would be pure
                    # overhead here.
                    entry[1](*entry[2])
                except SimulationFinished:
                    break
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
            self._events_processed = base + processed
            if tm_events is not None:
                tm_events.value += processed
        return self._now

    def run_for(self, duration, **kwargs):
        """Run until ``now + duration`` virtual time units have elapsed."""
        return self.run(until=self._now + duration, **kwargs)

    def __repr__(self):
        return "Simulator(now=%.6f, pending=%d, seed=%r)" % (
            self._now,
            len(self._queue),
            self.seed,
        )
