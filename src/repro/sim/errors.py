"""Exceptions raised by the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class ClockError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class EventLimitExceeded(SimulationError):
    """The simulator processed more events than the configured maximum.

    This is the kernel's guard against runaway protocols (e.g. a livelock
    that never terminates): rather than spinning forever, the run aborts
    with the number of events processed so the caller can report it.
    """

    def __init__(self, limit):
        super().__init__("event limit of %d exceeded" % limit)
        self.limit = limit


class SimulationFinished(SimulationError):
    """Raised internally to stop the event loop from inside a callback."""
