"""The Consensus & Commitment (C&C) framework.

The tutorial's unifying lens: every leader-based agreement protocol
decomposes into four phases —

1. **Leader election** — a quorum acknowledges a leader,
2. **Value discovery** — the leader learns about possibly-decided values
   (Paxos phase 1's ack payload; 2PC's vote collection),
3. **Fault-tolerant agreement** — the value is made durable on a quorum
   (Paxos accept; 3PC's pre-commit),
4. **Decision** — the outcome is disseminated, typically asynchronously.

2PC skips phases 1 and 3 (fixed coordinator, no replication of the
decision — hence blocking); 3PC adds phase 3 back; Paxos folds value
discovery into leader election's acks.  Protocol classes declare their
decomposition with :class:`CCDecomposition` and emit
:class:`CCTrace` events at runtime so tests can check the declared and
observed structures agree.
"""

import enum
from dataclasses import dataclass, field


class CCPhase(enum.Enum):
    """The four phases of the C&C framework."""

    LEADER_ELECTION = "leader-election"
    VALUE_DISCOVERY = "value-discovery"
    FT_AGREEMENT = "fault-tolerant-agreement"
    DECISION = "decision"


#: Canonical phase order, for validating traces.
PHASE_ORDER = [
    CCPhase.LEADER_ELECTION,
    CCPhase.VALUE_DISCOVERY,
    CCPhase.FT_AGREEMENT,
    CCPhase.DECISION,
]


@dataclass(frozen=True)
class CCDecomposition:
    """Which C&C phases a protocol implements, and how.

    ``phases`` maps each implemented :class:`CCPhase` to a short
    description of the mechanism (e.g. Paxos's value discovery is
    "piggybacked on prepare acks").
    """

    protocol: str
    phases: dict

    def implements(self, phase):
        return phase in self.phases

    def implemented_phases(self):
        """Implemented phases in canonical order."""
        return [p for p in PHASE_ORDER if p in self.phases]

    def describe(self, phase):
        return self.phases.get(phase)


@dataclass
class CCTrace:
    """Runtime record of C&C phase entries for one consensus instance."""

    protocol: str
    entries: list = field(default_factory=list)

    def enter(self, phase, now, detail=""):
        self.entries.append((phase, now, detail))

    def phases_seen(self):
        """Distinct phases in first-entry order."""
        seen = []
        for phase, _now, _detail in self.entries:
            if phase not in seen:
                seen.append(phase)
        return seen

    def is_well_ordered(self):
        """Phases must first appear in canonical order (later re-entries,
        e.g. re-election after a leader crash, are fine)."""
        order = [PHASE_ORDER.index(p) for p in self.phases_seen()]
        return order == sorted(order)

    def matches(self, decomposition):
        """Does the observed trace use exactly the declared phases?"""
        return self.phases_seen() == decomposition.implemented_phases()


# -- canonical decompositions from the slides ------------------------------

PAXOS_DECOMPOSITION = CCDecomposition(
    "paxos",
    {
        CCPhase.LEADER_ELECTION: "prepare: quorum joins the ballot",
        CCPhase.VALUE_DISCOVERY: "piggybacked on prepare acks (AcceptNum/AcceptVal)",
        CCPhase.FT_AGREEMENT: "accept: value durable on a quorum",
        CCPhase.DECISION: "decide propagated asynchronously",
    },
)

TWO_PC_DECOMPOSITION = CCDecomposition(
    "2pc",
    {
        CCPhase.VALUE_DISCOVERY: "vote collection from cohorts",
        CCPhase.DECISION: "commit/abort broadcast",
    },
)

THREE_PC_DECOMPOSITION = CCDecomposition(
    "3pc",
    {
        CCPhase.LEADER_ELECTION: "coordinator (re-)election on failure",
        CCPhase.VALUE_DISCOVERY: "vote collection from cohorts",
        CCPhase.FT_AGREEMENT: "pre-commit replicated to cohorts",
        CCPhase.DECISION: "commit/abort broadcast",
    },
)
