"""Node base class: a process attached to a network with typed dispatch.

Incoming messages are dispatched to ``handle_<mtype>(msg, src)`` methods
by the message's type name, so protocol classes read like the paper's
pseudo-code ("upon receive (prepare, bal) from i ...").
"""

from ..sim.process import Process


class Node(Process):
    """A network-attached simulated process.

    Parameters
    ----------
    sim:
        The simulator.
    network:
        The :class:`~repro.net.Network`; the node registers itself.
    name:
        Unique node name.
    """

    #: Per-class ``mtype -> handler function`` memo, filled lazily by
    #: :meth:`deliver`.  Each subclass gets its own dict (stamped in
    #: ``__init_subclass__``) so overridden handlers never leak between
    #: sibling behaviours (honest vs Byzantine replicas).
    _dispatch = {}

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        cls._dispatch = {}

    def __init__(self, sim, network, name):
        super().__init__(sim, name)
        self.network = network
        network.register(self)

    # -- sending -------------------------------------------------------

    def send(self, dst, message):
        """Unicast; a crashed node sends nothing."""
        if self.crashed:
            return False
        return self.network.send(self.name, dst, message)

    def broadcast(self, message, include_self=False):
        """Send to every node on the network (as independent unicasts)."""
        if self.crashed:
            return 0
        return self.network.broadcast(self.name, message, include_self)

    def multicast(self, dsts, message):
        """Unicast to each destination in ``dsts``."""
        if self.crashed:
            return 0
        return self.network.multicast(self.name, dsts, message)

    # -- tracing -------------------------------------------------------

    def trace_local(self, label, **detail):
        """Record a protocol milestone (decide/commit/execute) on the
        cluster's tracer; free when tracing is off."""
        tracer = self.network.tracer
        if tracer is not None:
            tracer.on_local(self.name, label, detail)

    # -- receiving -----------------------------------------------------

    def deliver(self, message, src):
        """Entry point called by the network.  Dispatches to
        ``handle_<mtype>``; unknown types fall through to
        :meth:`on_unhandled`.

        Handler resolution is cached per node *class*: the first message
        of each ``mtype`` pays one ``getattr``, every later one is a dict
        hit.  Handlers are therefore part of the class contract —
        attaching one to an individual instance after its class has seen
        that ``mtype`` would not be picked up.
        """
        if self.crashed:
            return
        # ``self._dispatch`` resolves to this class's own cache dict —
        # every subclass gets one stamped in ``__init_subclass__``.
        cache = self._dispatch
        mtype = message.mtype
        try:
            handler = cache[mtype]
        except KeyError:
            handler = getattr(type(self), "handle_" + mtype, None)
            cache[mtype] = handler
        if handler is None:
            self.on_unhandled(message, src)
        else:
            handler(self, message, src)

    def on_unhandled(self, message, src):
        """Hook for messages with no matching handler.  Default: ignore —
        protocols routinely receive stale messages from old phases."""
