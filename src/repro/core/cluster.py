"""Cluster — one-stop wiring of simulator, network, metrics and crypto.

Every driver ("run Paxos with 5 acceptors and one crash") starts the
same way: build a simulator, a network with a delivery model, a metrics
collector, a key registry.  :class:`Cluster` bundles that boilerplate so
protocol drivers, examples and benchmarks stay readable.
"""

from ..crypto.signatures import KeyRegistry
from ..crypto.usig import UsigAuthority
from ..metrics.collector import MetricsCollector
from ..net.delivery import UniformDelayModel
from ..net.network import Network
from ..sim.simulator import Simulator
from ..telemetry.registry import MetricsRegistry
from ..trace.tracer import Tracer


class ClusterGroup:
    """One named consensus group inside a :class:`Cluster` fleet.

    A group is a *namespace*: member nodes live on the cluster's shared
    simulator and network but carry scoped names (``s0/r1``), so traces,
    telemetry labels and monitor reports attribute every event to its
    group.  Groups are how one simulation hosts a fleet of independent
    protocol instances — the architecture sharded deployments
    (:mod:`repro.shard`) stand on.
    """

    def __init__(self, cluster, gid):
        self.cluster = cluster
        self.gid = str(gid)
        self.nodes = []

    def member(self, local_name):
        """The fleet-wide name of this group's ``local_name`` member."""
        return "%s/%s" % (self.gid, local_name)

    @property
    def member_names(self):
        """Fleet-wide names of every node added through this group."""
        return tuple(node.name for node in self.nodes)

    def add_node(self, factory, local_name, *args, **kwargs):
        """Add ``factory(sim, network, member(local_name), ...)`` to the
        group (and to the cluster).  Peer lists passed through ``args``
        must already use fleet-wide (:meth:`member`) names."""
        node = self.cluster.add_node(factory, self.member(local_name),
                                     *args, **kwargs)
        self.nodes.append(node)
        return node

    def add_nodes(self, factory, local_names, *args, **kwargs):
        """Add one member per local name; see :meth:`add_node`."""
        return [self.add_node(factory, name, *args, **kwargs)
                for name in local_names]

    def attach_monitors(self, protocol, f=0, n=None):
        """Attach ``protocol``'s monitor battery *scoped to this group*:
        monitors only observe events on member nodes and stamp anomalies
        with the group id, so a fleet of same-protocol groups can be
        watched without slots from different groups colliding."""
        if n is None:
            n = len(self.nodes)
        return self.cluster.attach_monitors(protocol, n, f, group=self.gid,
                                            nodes=self.member_names)

    def start_all(self):
        for node in self.nodes:
            node.start()

    def crashed_fraction(self):
        crashed = sum(1 for node in self.nodes if node.crashed)
        return crashed / len(self.nodes) if self.nodes else 0.0

    def __repr__(self):
        return "ClusterGroup(%r, %d nodes)" % (self.gid, len(self.nodes))


class Cluster:
    """A ready-to-populate simulated deployment.

    Parameters
    ----------
    seed:
        Simulation seed; identical seeds replay identical runs.
    delivery:
        Network delivery model; defaults to mildly jittered bounded delay.
    trace:
        When true, attach a :class:`~repro.trace.Tracer` recording every
        send/deliver/drop/timer/phase-mark with per-node Lamport clocks.
        Off by default; an untraced cluster pays nothing.
    telemetry:
        When true, attach a :class:`~repro.telemetry.MetricsRegistry` and
        record labeled counters and latency histograms from the network,
        the simulator's event loop and timer wheel, fault injection and
        the metrics collector's phase/request marks.  Off by default; an
        un-instrumented cluster pays nothing, and telemetry only
        *observes* — enabling it never changes a run's behaviour.
    monitors:
        When true, attach a :class:`~repro.monitor.MonitorHub` streaming
        every trace event to online invariant monitors (implies
        ``trace=True`` — monitors watch the trace).  Populate it per
        protocol with :meth:`attach_monitors`.  Off by default, the hub
        is the :data:`~repro.monitor.NULL_HUB` twin and the run pays
        nothing.  Like the tracer, monitors are pure observers: enabling
        them never changes a run's behaviour.
    trace_capacity:
        Optional ring-buffer bound for the tracer: keep only the newest
        N events (flight-recorder mode for long runs).  ``None`` keeps
        everything — required for golden exports and whole-run causal
        queries.
    """

    def __init__(self, seed=0, delivery=None, trace=False, telemetry=False,
                 monitors=False, trace_capacity=None):
        self.sim = Simulator(seed=seed)
        self.tracer = (Tracer(self.sim, capacity=trace_capacity)
                       if (trace or monitors) else None)
        self.sim.tracer = self.tracer
        self.telemetry = MetricsRegistry() if telemetry else None
        if self.telemetry is not None:
            self.sim.attach_telemetry(self.telemetry)
        self.metrics = MetricsCollector(tracer=self.tracer,
                                        registry=self.telemetry)
        self.network = Network(
            self.sim,
            delivery=delivery if delivery is not None else UniformDelayModel(),
            metrics=self.metrics,
            tracer=self.tracer,
            telemetry=self.telemetry,
        )
        self.keys = KeyRegistry(seed=b"cluster-%d" % seed)
        self.usig_authority = UsigAuthority(seed=b"cluster-usig-%d" % seed)
        self.nodes = []
        self.groups = {}
        if monitors:
            from ..monitor import MonitorHub
            self.monitors = MonitorHub(self.tracer, collector=self.metrics)
        else:
            from ..monitor import NULL_HUB
            self.monitors = NULL_HUB

    def group(self, gid):
        """The :class:`ClusterGroup` named ``gid``, created on first use.

        Groups are the fleet API: each is an independent namespace of
        nodes (``<gid>/<local>``) sharing this cluster's simulator,
        network and observers.  One cluster may host any number of
        groups — per-shard consensus groups, a coordinator tier, a
        client tier — all advancing on one virtual clock.
        """
        gid = str(gid)
        grp = self.groups.get(gid)
        if grp is None:
            grp = self.groups[gid] = ClusterGroup(self, gid)
        return grp

    def attach_monitors(self, protocol, n, f=0, group=None, nodes=None):
        """Populate the monitor hub with ``protocol``'s spec battery.

        Requires ``Cluster(monitors=True)``; raises ``ValueError``
        otherwise so a silently-null hub can't masquerade as coverage.
        ``group`` labels every anomaly with the group id and ``nodes``
        scopes the battery to events observed on those nodes — both are
        required when several groups of the same protocol share one
        trace, or their slots/epochs would collide.
        Returns the list of attached monitors.
        """
        from ..monitor import NULL_HUB, build_monitors, spec_for
        if self.monitors is NULL_HUB:
            raise ValueError(
                "attach_monitors needs Cluster(monitors=True)")
        battery = build_monitors(spec_for(protocol), n, f, group=group,
                                 nodes=nodes)
        self.monitors.extend(battery)
        return battery

    def add_node(self, factory, *args, **kwargs):
        """Construct a node via ``factory(sim, network, *args, **kwargs)``,
        track it, and return it."""
        node = factory(self.sim, self.network, *args, **kwargs)
        self.nodes.append(node)
        return node

    def add_nodes(self, factory, names, *args, **kwargs):
        """Construct one node per name: ``factory(sim, network, name, ...)``."""
        return [self.add_node(factory, name, *args, **kwargs) for name in names]

    def start_all(self):
        """Start every tracked node."""
        for node in self.nodes:
            node.start()

    def run(self, **kwargs):
        """Run the simulation (see :meth:`repro.sim.Simulator.run`)."""
        return self.sim.run(**kwargs)

    def run_until(self, predicate, **kwargs):
        """Run until ``predicate()`` is true or the event queue drains."""
        return self.sim.run(stop_when=predicate, **kwargs)

    def node_named(self, name):
        return self.network.node(name)

    @property
    def now(self):
        return self.sim.now

    @property
    def trace(self):
        """The recorded :class:`~repro.trace.Trace`, or ``None`` when the
        cluster was built without ``trace=True``."""
        return self.tracer.trace if self.tracer is not None else None
