"""Exceptions for protocol-level failures."""


class ProtocolError(Exception):
    """Base class for protocol-level errors."""


class SafetyViolation(ProtocolError):
    """A safety property was violated (two different values decided,
    conflicting logs, divergent commits).  Tests *expect* this from the
    deliberately misconfigured runs (e.g. Paxos on non-intersecting
    quorums) and its absence everywhere else."""


class LivenessFailure(ProtocolError):
    """A run failed to decide within its budget (e.g. Paxos livelock
    without randomized backoff, 2PC blocked on a crashed coordinator)."""


class ConfigurationError(ProtocolError):
    """A protocol was instantiated with parameters that violate its
    lower bound (e.g. PBFT with n < 3f+1)."""
