"""The tutorial's five-aspect taxonomy of consensus protocols.

Every protocol slide carries a property box choosing one value per
aspect: synchrony mode, failure model, processing strategy, participant
awareness, and the complexity metrics (nodes / phases / messages).
:class:`ProtocolProfile` is that box as data; each protocol module
exports its profile and the E1 experiment checks measured behaviour
against it.
"""

import enum
from dataclasses import dataclass


class Synchrony(enum.Enum):
    """First aspect: synchrony mode."""

    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"
    PARTIALLY_SYNCHRONOUS = "partially-synchronous"


class FailureModel(enum.Enum):
    """Second aspect: failure model."""

    CRASH = "crash"
    BYZANTINE = "byzantine"
    HYBRID = "hybrid"


class Strategy(enum.Enum):
    """Third aspect: processing strategy."""

    PESSIMISTIC = "pessimistic"
    OPTIMISTIC = "optimistic"


class Awareness(enum.Enum):
    """Fourth aspect: participant awareness."""

    KNOWN = "known"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ProtocolProfile:
    """One protocol's property box from the slides.

    ``nodes_formula`` is a callable mapping fault counts to the minimum
    cluster size (e.g. ``lambda f: 2*f + 1``); ``nodes_label`` is the
    human-readable formula shown in tables.  ``phases`` counts the
    normal-case communication phases; ``complexity`` is the paper's
    asymptotic message complexity as a string.
    """

    name: str
    synchrony: Synchrony
    failure_model: FailureModel
    strategy: Strategy
    awareness: Awareness
    nodes_label: str
    phases: int
    complexity: str
    notes: str = ""

    def as_row(self):
        """Render as the comparison-table row used in E1 and the docs."""
        return {
            "protocol": self.name,
            "synchrony": self.synchrony.value,
            "failure": self.failure_model.value,
            "strategy": self.strategy.value,
            "awareness": self.awareness.value,
            "nodes": self.nodes_label,
            "phases": self.phases,
            "complexity": self.complexity,
        }
