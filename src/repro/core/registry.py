"""Protocol registry.

Protocol modules register their :class:`~repro.core.taxonomy.ProtocolProfile`
here; the analysis layer renders the comparison table (experiment E1)
from the registry, so adding a protocol automatically adds its row.
"""

_PROFILES = {}


def register_profile(profile):
    """Register a protocol's property box.  Re-registration with an equal
    profile is idempotent; conflicting re-registration is an error."""
    existing = _PROFILES.get(profile.name)
    if existing is not None and existing != profile:
        raise ValueError("conflicting profile for %r" % (profile.name,))
    _PROFILES[profile.name] = profile
    return profile


def get_profile(name):
    return _PROFILES[name]


def all_profiles():
    """All registered profiles, sorted by protocol name."""
    return [_PROFILES[name] for name in sorted(_PROFILES)]


def profile_names():
    return sorted(_PROFILES)
