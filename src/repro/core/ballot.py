"""Ballots — the totally ordered (number, process id) pairs Paxos runs on.

The paper: ballots are "pairs <num, process id> that form a total order";
``<n1,p1> > <n2,p2>`` iff ``n1 > n2`` or (``n1 == n2`` and ``p1 > p2``);
and "if latest known ballot is <n, q> then p chooses <n+1, p>".
"""

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class Ballot:
    """A Paxos ballot: unique, locally monotonically increasing."""

    number: int
    pid: str

    #: The initial ballot every acceptor starts below: <0, "">.
    ZERO = None  # set below class body

    def successor(self, pid):
        """The ballot process ``pid`` chooses after seeing this one:
        <number + 1, pid>."""
        return Ballot(self.number + 1, pid)

    def _key(self):
        return (self.number, self.pid)

    def __lt__(self, other):
        if not isinstance(other, Ballot):
            return NotImplemented
        return self._key() < other._key()

    def __repr__(self):
        return "<%d,%s>" % (self.number, self.pid)


Ballot.ZERO = Ballot(0, "")
