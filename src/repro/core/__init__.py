"""Core abstractions: ballots, quorums, taxonomy, C&C framework, nodes."""

from .ballot import Ballot
from .cluster import Cluster, ClusterGroup
from .exceptions import (
    ConfigurationError,
    LivenessFailure,
    ProtocolError,
    SafetyViolation,
)
from .framework import (
    CCDecomposition,
    CCPhase,
    CCTrace,
    PAXOS_DECOMPOSITION,
    PHASE_ORDER,
    THREE_PC_DECOMPOSITION,
    TWO_PC_DECOMPOSITION,
)
from .node import Node
from .quorums import (
    ByzantineQuorum,
    FlexibleQuorum,
    GridQuorum,
    HybridQuorum,
    MajorityQuorum,
    QuorumSystem,
    bft_minimum_nodes,
    crash_minimum_nodes,
    hybrid_minimum_nodes,
)
from .registry import all_profiles, get_profile, profile_names, register_profile
from .taxonomy import Awareness, FailureModel, ProtocolProfile, Strategy, Synchrony

__all__ = [
    "Awareness",
    "Ballot",
    "ByzantineQuorum",
    "CCDecomposition",
    "CCPhase",
    "CCTrace",
    "Cluster",
    "ClusterGroup",
    "ConfigurationError",
    "FailureModel",
    "FlexibleQuorum",
    "GridQuorum",
    "HybridQuorum",
    "LivenessFailure",
    "MajorityQuorum",
    "Node",
    "PAXOS_DECOMPOSITION",
    "PHASE_ORDER",
    "ProtocolError",
    "ProtocolProfile",
    "QuorumSystem",
    "SafetyViolation",
    "Strategy",
    "Synchrony",
    "THREE_PC_DECOMPOSITION",
    "TWO_PC_DECOMPOSITION",
    "all_profiles",
    "bft_minimum_nodes",
    "crash_minimum_nodes",
    "get_profile",
    "hybrid_minimum_nodes",
    "profile_names",
    "register_profile",
]
