"""Quorum systems.

The paper's safety condition: "any two sets (quorums) of acceptors must
have at least one overlapping acceptor".  Flexible Paxos relaxes this —
only *phase-1* (leader election) quorums and *phase-2* (replication)
quorums must intersect, letting replication quorums shrink below a
majority.  BFT protocols need a stronger overlap: any two quorums must
intersect in at least f+1 nodes so the intersection contains a correct
replica.

Each quorum system answers two questions: "is this set of acks a valid
phase-i quorum?" and "what's the minimum quorum size?".  They also carry
self-check methods the property tests exercise exhaustively.
"""

from itertools import combinations


class QuorumSystem:
    """Base interface: phase-1 (election/prepare) and phase-2
    (replication/accept) quorum predicates over node-name sets."""

    def __init__(self, members):
        self.members = frozenset(members)
        if not self.members:
            raise ValueError("a quorum system needs at least one member")

    @property
    def n(self):
        return len(self.members)

    def is_phase1_quorum(self, nodes):
        raise NotImplementedError

    def is_phase2_quorum(self, nodes):
        raise NotImplementedError

    def phase1_size(self):
        """Minimum phase-1 quorum cardinality."""
        raise NotImplementedError

    def phase2_size(self):
        """Minimum phase-2 quorum cardinality."""
        raise NotImplementedError

    def _validate(self, nodes):
        nodes = frozenset(nodes)
        if not nodes <= self.members:
            raise ValueError("quorum check with non-member nodes %r"
                             % (nodes - self.members,))
        return nodes

    def intersection_guaranteed(self, sample_limit=None):
        """Exhaustively check that every phase-1 quorum intersects every
        phase-2 quorum.  Exponential — intended for tests at small n."""
        members = sorted(self.members)
        subsets = []
        for size in range(1, len(members) + 1):
            subsets.extend(frozenset(c) for c in combinations(members, size))
            if sample_limit is not None and len(subsets) > sample_limit:
                break
        phase1 = [s for s in subsets if self.is_phase1_quorum(s)]
        phase2 = [s for s in subsets if self.is_phase2_quorum(s)]
        return all(q1 & q2 for q1 in phase1 for q2 in phase2)


class MajorityQuorum(QuorumSystem):
    """Classic Paxos: any strict majority, for both phases.

    With n = 2f+1 this tolerates f crash failures; any two majorities
    overlap in at least one node.
    """

    def _majority(self):
        return self.n // 2 + 1

    def is_phase1_quorum(self, nodes):
        return len(self._validate(nodes)) >= self._majority()

    is_phase2_quorum = is_phase1_quorum

    def phase1_size(self):
        return self._majority()

    phase2_size = phase1_size

    def max_crash_faults(self):
        """f such that n = 2f+1 keeps a live majority."""
        return (self.n - 1) // 2


class FlexibleQuorum(QuorumSystem):
    """Flexible Paxos: counts-based Q1/Q2 with |Q1| + |Q2| > n.

    The generalised quorum condition from Howard, Malkhi & Spiegelman:
    only leader-election quorums and replication quorums must intersect,
    so |Q1| + |Q2| > n suffices and the two sizes may differ arbitrarily.
    "Arbitrarily small replication quorums as long as Leader Election
    Quorums intersect with every Replication Quorum."
    """

    def __init__(self, members, q1_size, q2_size):
        super().__init__(members)
        if q1_size + q2_size <= self.n:
            raise ValueError(
                "flexible quorums need |Q1| + |Q2| > n "
                "(got %d + %d <= %d)" % (q1_size, q2_size, self.n)
            )
        if not (1 <= q1_size <= self.n and 1 <= q2_size <= self.n):
            raise ValueError("quorum sizes must be within [1, n]")
        self.q1_size = q1_size
        self.q2_size = q2_size

    def is_phase1_quorum(self, nodes):
        return len(self._validate(nodes)) >= self.q1_size

    def is_phase2_quorum(self, nodes):
        return len(self._validate(nodes)) >= self.q2_size

    def phase1_size(self):
        return self.q1_size

    def phase2_size(self):
        return self.q2_size


class GridQuorum(QuorumSystem):
    """Grid quorums: nodes arranged rows × cols; phase-2 quorum = one
    full row, phase-1 quorum = one full column plus one full row... no —
    a full *column* of row-representatives.

    Concretely (the standard FPaxos example): Q2 = all nodes of some
    row; Q1 = one node from every row (a "column" in the logical grid).
    Every Q1 then intersects every Q2 while |Q2| = cols can be far below
    a majority of n = rows × cols.
    """

    def __init__(self, rows, cols, name_of=None):
        if rows < 1 or cols < 1:
            raise ValueError("grid needs positive dimensions")
        if name_of is None:
            name_of = lambda r, c: "n%d_%d" % (r, c)
        self.rows = rows
        self.cols = cols
        self.grid = [
            [name_of(r, c) for c in range(cols)] for r in range(rows)
        ]
        super().__init__(name for row in self.grid for name in row)
        self._row_sets = [frozenset(row) for row in self.grid]

    def is_phase2_quorum(self, nodes):
        nodes = self._validate(nodes)
        return any(row <= nodes for row in self._row_sets)

    def is_phase1_quorum(self, nodes):
        nodes = self._validate(nodes)
        return all(row & nodes for row in self._row_sets)

    def phase1_size(self):
        return self.rows

    def phase2_size(self):
        return self.cols

    def row(self, r):
        """The node names of row ``r`` — a minimal replication quorum."""
        return list(self.grid[r])

    def column(self, c):
        """The node names of column ``c`` — a minimal election quorum."""
        return [self.grid[r][c] for r in range(self.rows)]


class ByzantineQuorum(QuorumSystem):
    """BFT quorums: n = 3f+1, quorum = 2f+1, intersection >= f+1.

    The paper's argument: Q1 + Q2 > N + f forces any two quorums to
    overlap in more than f nodes, so at least one member of the overlap
    is correct.
    """

    def __init__(self, members, f=None):
        super().__init__(members)
        if f is None:
            f = (self.n - 1) // 3
        if self.n < 3 * f + 1:
            raise ValueError(
                "Byzantine quorums need n >= 3f+1 (n=%d, f=%d)" % (self.n, f)
            )
        self.f = f

    def quorum_size(self):
        return 2 * self.f + 1

    def is_phase1_quorum(self, nodes):
        return len(self._validate(nodes)) >= self.quorum_size()

    is_phase2_quorum = is_phase1_quorum

    def phase1_size(self):
        return self.quorum_size()

    phase2_size = phase1_size

    def min_intersection(self):
        """Worst-case overlap of two quorums: 2·(2f+1) − n = f+1 at
        n = 3f+1."""
        return 2 * self.quorum_size() - self.n

    def weak_certificate_size(self):
        """f+1 matching messages: guaranteed to include one correct node."""
        return self.f + 1


class HybridQuorum(QuorumSystem):
    """UpRight/SeeMoRe quorums: tolerate m Byzantine and c crash faults.

    n = 3m + 2c + 1, quorum u = 2m + c + 1, any two quorums intersect in
    2u − n = m + 1 nodes — at least one of which is correct.
    """

    def __init__(self, members, m, c):
        super().__init__(members)
        if m < 0 or c < 0:
            raise ValueError("fault counts must be non-negative")
        required = 3 * m + 2 * c + 1
        if self.n < required:
            raise ValueError(
                "hybrid quorums need n >= 3m+2c+1 (n=%d, m=%d, c=%d)"
                % (self.n, m, c)
            )
        self.m = m
        self.c = c

    def quorum_size(self):
        return 2 * self.m + self.c + 1

    def is_phase1_quorum(self, nodes):
        return len(self._validate(nodes)) >= self.quorum_size()

    is_phase2_quorum = is_phase1_quorum

    def phase1_size(self):
        return self.quorum_size()

    phase2_size = phase1_size

    def min_intersection(self):
        return 2 * self.quorum_size() - self.n


def bft_minimum_nodes(f):
    """The Pease–Shostak–Lamport bound: n >= 3f+1."""
    return 3 * f + 1


def crash_minimum_nodes(f):
    """Majority-quorum bound for crash faults: n >= 2f+1."""
    return 2 * f + 1


def hybrid_minimum_nodes(m, c):
    """UpRight's bound for m Byzantine plus c crash faults."""
    return 3 * m + 2 * c + 1
