"""The structured violation record every monitor emits.

An :class:`Anomaly` is to the monitor subsystem what a
:class:`~repro.trace.TraceEvent` is to the tracer: one immutable,
fully-deterministic record of something that happened — here, something
that should *not* have happened.  It names the monitor that tripped,
the safety/liveness/complexity category, the offending node and trace
event, and carries a rendered causal-context snippet (the last few
trace events involving that node) so a violation report reads like a
miniature post-mortem instead of a bare assertion message.
"""

from dataclasses import dataclass

#: Anomaly categories, mirroring the paper's property box: safety
#: arguments, liveness arguments, and the message-complexity column.
SAFETY = "safety"
LIVENESS = "liveness"
COMPLEXITY = "complexity"
CONFORMANCE = "conformance"

CATEGORIES = (SAFETY, LIVENESS, COMPLEXITY, CONFORMANCE)


@dataclass(frozen=True)
class Anomaly:
    """One monitor violation.

    Attributes
    ----------
    monitor:
        Name of the monitor that tripped (``"agreement"``, ...).
    category:
        One of :data:`CATEGORIES`.
    message:
        Human-readable statement of the violation.
    node:
        The offending node, when one can be named; empty otherwise.
    time:
        Virtual time of the offending event (or of detection).
    seq:
        Trace sequence number of the offending event; ``-1`` for
        end-of-run findings with no single event.
    detail:
        Canonicalised extras: sorted ``(key, value)`` string pairs.
    context:
        Rendered causal-context lines from the trace around the
        offending event — deterministic, same-seed byte-identical.
    """

    monitor: str
    category: str
    message: str
    node: str = ""
    time: float = 0.0
    seq: int = -1
    detail: tuple = ()
    context: tuple = ()

    def to_dict(self):
        """Plain-dict form for the deterministic JSON conformance report."""
        return {
            "monitor": self.monitor,
            "category": self.category,
            "message": self.message,
            "node": self.node,
            "time": round(float(self.time), 9),
            "seq": self.seq,
            "detail": {key: value for key, value in self.detail},
            "context": list(self.context),
        }

    def __repr__(self):
        where = " on %s" % self.node if self.node else ""
        return "Anomaly(%s/%s%s: %s)" % (self.category, self.monitor,
                                         where, self.message)
