"""Per-protocol monitor specs for every row of ``PAPER_TABLE``.

A :class:`MonitorSpec` says which monitors apply to a protocol and with
which keys: where its decisions show up in the trace (milestone labels,
slot/value detail keys), what certifies them, which message types are
proposals that could equivocate, the claimed phase alphabet, and the
complexity exponent from the paper's O(N)/O(N²) column.

Depth varies with instrumentation: the protocols the test suite drives
hardest (paxos, multi-paxos, raft, pbft, hotstuff, tendermint, ben-or,
chandra-toueg) emit decide/lead milestones and get the full battery;
protocols that only mark phases get the phase-conformance monitor; a
few (pow, upright, interactive-consistency) currently expose nothing a
generic monitor can watch and carry an empty spec so ``repro check``
can still enumerate the whole table.
"""

from dataclasses import dataclass

from ..analysis.claims import claim_for
from .library import (
    AgreementMonitor,
    ComplexityEnvelopeMonitor,
    EquivocationMonitor,
    LeaderUniquenessMonitor,
    LivenessWatchdog,
    PhaseConformanceMonitor,
    QuorumCertificateMonitor,
)


@dataclass(frozen=True)
class CertSpec:
    """Quorum-certificate requirement: ``need(n, f)`` distinct
    ``ack_mtype`` deliveries matching ``link_keys`` before each
    ``decide_label`` milestone."""

    decide_label: str
    ack_mtype: str
    need: object
    link_keys: tuple


@dataclass(frozen=True)
class MonitorSpec:
    """Everything needed to build a protocol's monitor battery."""

    protocol: str
    #: Milestone labels that constitute a decision (agreement + liveness).
    decide_labels: tuple = ()
    #: Detail key identifying the decision slot; None = single-decree.
    slot_key: str = None
    #: Detail key carrying the decided value.
    value_key: str = "value"
    #: Epoch detail key on ``lead`` milestones (ballot/term/view);
    #: None = no leader-uniqueness monitor.
    lead_epoch_key: str = None
    cert: CertSpec = None
    #: Proposal message types watched for equivocation.
    proposal_mtypes: tuple = ()
    proposal_epoch_keys: tuple = ()
    proposal_slot_key: str = None
    #: ``mark_phase`` protocol labels this spec owns.
    phase_protocols: tuple = ()
    expected_phases: tuple = ()
    #: Fault-handling phases outside the steady-state claim.
    exceptional_phases: tuple = ()
    require_all_phases: bool = True
    #: Phases that taint a complexity window (default: the exceptional
    #: ones) — e.g. multi-paxos "prepare" is claimed but not steady-state.
    window_tainting_phases: tuple = None
    #: 1 for O(N) claims, 2 for O(N²); None = no envelope monitor.
    complexity_exponent: int = None
    complexity_factor: float = 16.0
    stall_horizon_events: int = 4000

    def claim(self):
        return claim_for(self.protocol)


#: True on battery-plan rows built only for fleet-wide (unscoped)
#: batteries: phase marks and the transport message total are global
#: streams that cannot be attributed to one group.
_FLEET_ONLY = True


def _compile_battery(spec):
    """Compile one spec row into a tuple of prebound monitor factories.

    Each entry is ``(fleet_only, factory)`` where ``factory(n, f)``
    instantiates a monitor with every spec-derived argument already
    bound (tuples made, defaults resolved), so :func:`build_monitors` at
    run time is a handful of calls with no per-field decisions left.
    Compiled once per spec at import for every ``MONITOR_SPECS`` row —
    the class-level dispatch plan the monitors' own ``interests()`` maps
    then hand to the tracer's subscription tables.
    """
    plan = []
    if spec.decide_labels:
        decide = tuple(spec.decide_labels)
        slot_key, value_key = spec.slot_key, spec.value_key
        plan.append((not _FLEET_ONLY, lambda n, f: AgreementMonitor(
            decide, slot_key=slot_key, value_key=value_key)))
        horizon = spec.stall_horizon_events
        plan.append((not _FLEET_ONLY, lambda n, f: LivenessWatchdog(
            decide, horizon_events=horizon)))
    if spec.lead_epoch_key:
        epoch_key = spec.lead_epoch_key
        plan.append((not _FLEET_ONLY,
                     lambda n, f: LeaderUniquenessMonitor(epoch_key)))
    if spec.cert is not None:
        cert = spec.cert
        link_keys = tuple(cert.link_keys)
        plan.append((not _FLEET_ONLY, lambda n, f: QuorumCertificateMonitor(
            cert.decide_label, cert.ack_mtype, cert.need(n, f), link_keys)))
    if spec.proposal_mtypes:
        proposals = tuple(spec.proposal_mtypes)
        epoch_keys = tuple(spec.proposal_epoch_keys)
        proposal_slot = spec.proposal_slot_key
        plan.append((not _FLEET_ONLY, lambda n, f: EquivocationMonitor(
            proposals, epoch_keys, slot_key=proposal_slot)))
    if spec.phase_protocols:
        protocols = tuple(spec.phase_protocols)
        expected = tuple(spec.expected_phases)
        exceptional = tuple(spec.exceptional_phases)
        require_all = spec.require_all_phases
        plan.append((_FLEET_ONLY, lambda n, f: PhaseConformanceMonitor(
            protocols, expected, exceptional=exceptional,
            require_all=require_all)))
    if spec.complexity_exponent is not None and spec.decide_labels:
        decide = tuple(spec.decide_labels)
        exponent, factor = spec.complexity_exponent, spec.complexity_factor
        slot_key = spec.slot_key
        tainting = spec.window_tainting_phases
        if tainting is None:
            tainting = spec.exceptional_phases
        tainting = tuple(tainting)
        protocols = tuple(spec.phase_protocols)
        plan.append((_FLEET_ONLY, lambda n, f: ComplexityEnvelopeMonitor(
            decide, n, exponent, factor=factor, slot_key=slot_key,
            exceptional_phases=tainting, phase_protocols=protocols)))
    return tuple(plan)


def build_monitors(spec, n, f=0, group=None, nodes=None):
    """Instantiate the monitor battery for ``spec`` on an ``n``-node,
    ``f``-fault cluster, from the spec's import-time compiled plan.

    ``group``/``nodes`` scope the battery to one consensus group inside
    a fleet: anomalies carry the group label and (with ``nodes``) only
    events observed on member nodes are dispatched, so several groups
    running the *same* protocol can be watched on one shared trace
    without their slots and epochs colliding.  Scoped batteries omit the
    fleet-only monitors (phase-conformance, complexity-envelope) — phase
    marks and the transport message total are fleet-global streams that
    cannot be attributed to a single group.
    """
    scoped = nodes is not None
    plan = _BATTERY_PLANS.get(spec.protocol)
    if plan is None or MONITOR_SPECS.get(spec.protocol) is not spec:
        plan = _compile_battery(spec)  # ad-hoc spec (tests, forks)
    monitors = [factory(n, f) for fleet_only, factory in plan
                if not (scoped and fleet_only)]
    if group is not None or scoped:
        for monitor in monitors:
            monitor.scope_to(group, nodes)
    return monitors


def _specs(*specs):
    return {spec.protocol: spec for spec in specs}


MONITOR_SPECS = _specs(
    MonitorSpec(
        "paxos",
        decide_labels=("decide", "learn"),
        value_key="value",
        cert=CertSpec("decide", "acceptedmsg",
                      lambda n, f: n // 2 + 1, ("ballot",)),
        phase_protocols=("paxos",),
        expected_phases=("prepare", "accept", "decide"),
        complexity_exponent=1,
    ),
    MonitorSpec(
        "multi-paxos",
        decide_labels=("apply",),
        slot_key="index",
        value_key="op",
        lead_epoch_key="ballot",
        phase_protocols=("multi-paxos",),
        expected_phases=("prepare", "accept"),
        window_tainting_phases=("prepare",),
        complexity_exponent=1,
    ),
    MonitorSpec(
        "raft",
        decide_labels=("apply",),
        slot_key="index",
        value_key="op",
        lead_epoch_key="term",
        phase_protocols=("raft",),
        expected_phases=("election", "append"),
        window_tainting_phases=("election",),
        complexity_exponent=1,
    ),
    MonitorSpec(
        "fast-paxos",
        phase_protocols=("fast-paxos",),
        expected_phases=("any", "commit"),
        exceptional_phases=("classic",),
        require_all_phases=False,
    ),
    MonitorSpec(
        # Reuses the paxos machinery (and its phase labels / milestones)
        # with a non-majority quorum system; the E-drivers run q1=4/q2=3
        # over 6 acceptors, so the certificate threshold is q2=3.
        "flexible-paxos",
        decide_labels=("decide", "learn"),
        value_key="value",
        cert=CertSpec("decide", "acceptedmsg", lambda n, f: 3, ("ballot",)),
        phase_protocols=("paxos",),
        expected_phases=("prepare", "accept", "decide"),
        complexity_exponent=1,
    ),
    MonitorSpec(
        "2pc",
        phase_protocols=("2pc",),
        expected_phases=("vote", "decision"),
    ),
    MonitorSpec(
        "3pc",
        phase_protocols=("3pc",),
        expected_phases=("vote", "pre-commit", "decision"),
    ),
    MonitorSpec(
        "pbft",
        decide_labels=("execute",),
        slot_key="seq",
        value_key="op",
        lead_epoch_key="view",
        cert=CertSpec("execute", "pbftcommit",
                      lambda n, f: 2 * f, ("seq",)),
        proposal_mtypes=("preprepare",),
        proposal_epoch_keys=("view",),
        proposal_slot_key="seq",
        phase_protocols=("pbft",),
        expected_phases=("pre-prepare", "prepare", "commit"),
        exceptional_phases=("view-change",),
        complexity_exponent=2,
    ),
    MonitorSpec(
        "zyzzyva",
        phase_protocols=("zyzzyva",),
        expected_phases=("order", "commit"),
        require_all_phases=False,  # commit phase only on the slow path
    ),
    MonitorSpec(
        "hotstuff",
        decide_labels=("decide",),
        slot_key="index",
        value_key="command",
        phase_protocols=("hotstuff", "hotstuff-chained"),
        expected_phases=("propose", "prepare", "pre-commit", "commit",
                         "decide"),
        require_all_phases=False,  # basic and chained mark disjoint sets
        complexity_exponent=1,
    ),
    MonitorSpec(
        "minbft",
        phase_protocols=("minbft",),
        expected_phases=("prepare", "commit"),
    ),
    MonitorSpec(
        "cheapbft",
        phase_protocols=("cheapbft",),
        expected_phases=("tiny-prepare", "tiny-commit"),
        exceptional_phases=("panic", "switch"),
    ),
    MonitorSpec("upright"),
    MonitorSpec(
        "seemore",
        phase_protocols=("seemore-1", "seemore-2", "seemore-3"),
        expected_phases=("propose", "validate", "decision"),
        require_all_phases=False,  # validate exists only in mode 3
    ),
    MonitorSpec(
        "xft",
        phase_protocols=("xft",),
        expected_phases=("prepare", "commit"),
        exceptional_phases=("view-change",),
    ),
    MonitorSpec(
        "ben-or",
        decide_labels=("decide", "learn"),
        value_key="value",
        complexity_exponent=2,
        complexity_factor=64.0,  # randomized: cost spans many rounds
        stall_horizon_events=20000,
    ),
    MonitorSpec("interactive-consistency"),
    MonitorSpec("pow"),
    MonitorSpec(
        "tendermint",
        decide_labels=("commit",),
        slot_key="height",
        value_key="block",
        proposal_mtypes=("tmproposal",),
        proposal_epoch_keys=("height", "round"),
        phase_protocols=("tendermint",),
        expected_phases=("propose", "prevote", "precommit"),
        complexity_exponent=2,
    ),
    MonitorSpec(
        "chandra-toueg",
        decide_labels=("decide", "learn"),
        value_key="value",
        complexity_exponent=1,
        complexity_factor=64.0,  # failure-detector heartbeats run freely
    ),
)


#: protocol -> compiled battery plan, built once at import.
_BATTERY_PLANS = {name: _compile_battery(spec)
                  for name, spec in MONITOR_SPECS.items()}


def spec_for(protocol):
    """The :class:`MonitorSpec` for ``protocol`` (KeyError if unknown)."""
    return MONITOR_SPECS[protocol]


# Guard against drift: every paper row must have a spec and vice versa.
def _check_alignment():
    from ..analysis.claims import PAPER_TABLE
    table = {claim.protocol for claim in PAPER_TABLE}
    specced = set(MONITOR_SPECS)
    if table != specced:
        raise AssertionError(
            "MONITOR_SPECS out of sync with PAPER_TABLE: missing=%s "
            "extra=%s" % (sorted(table - specced), sorted(specced - table)))


_check_alignment()
