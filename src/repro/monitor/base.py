"""Monitor base class, the streaming hub, and zero-cost null twins.

The hub registers each monitor's *declared interest set* with the
:class:`~repro.trace.Tracer`'s typed subscription tables: a monitor
states, via :meth:`Monitor.interests`, exactly which event kinds and
``mtype`` values it evaluates, and the tracer calls it for those events
only — an agreement monitor is invoked for decide milestones, never for
the million sends in between, and events nobody registered for are
never materialized at all.  Invariants are still evaluated *online*,
event by event, while the simulator runs.

Monitors that merely *count* events (the liveness watchdog) ride the
tracer's counter channel instead — a ``tick(kind, node, mtype)`` call
with no event object — so fleet-wide event counting stays a few integer
ops per event.

Mirroring ``telemetry.instruments``, the module ships null twins
(:class:`NullMonitor`, :class:`NullMonitorHub`, :data:`NULL_HUB`) so
code can hold an unconditional hub reference; a monitors-off run never
constructs a tracer sink at all, keeping the no-observer fast path of
the network untouched.

Monitors are pure observers: they must not schedule events, send
messages, or touch the simulator's RNG.  Enabling monitors therefore
cannot perturb a run — same seed, same trace, monitors or not.
"""

from ..trace.events import DELIVER
from .anomaly import SAFETY, Anomaly

#: How many surrounding trace events an anomaly's causal context shows.
CONTEXT_WINDOW = 5


def render_context(trace, node, seq, window=CONTEXT_WINDOW):
    """Render the last ``window`` events involving ``node`` up to ``seq``.

    This is the causal-context snippet attached to anomalies: the trail
    of sends/delivers/milestones that led the offending node to the
    violation.  Purely a function of the recorded trace, so same-seed
    runs render byte-identical context.
    """
    if trace is None:
        return ()
    events = trace.events
    if not events:
        return ()
    # Translate the global seq into a window index: a ring-buffered
    # trace may have evicted its prefix, so events[0].seq can be > 0.
    base = events[0].seq
    index = seq - base
    if index < 0 or index >= len(events):
        index = len(events) - 1
    picked = []
    while index >= 0 and len(picked) < window:
        event = events[index]
        if not node or event.node == node or event.peer == node:
            picked.append(event)
        index -= 1
    picked.reverse()
    lines = []
    for event in picked:
        peer = (" <-%s" % event.peer if event.kind == DELIVER and event.peer
                else (" ->%s" % event.peer if event.peer else ""))
        detail = " ".join("%s=%s" % pair for pair in event.detail)
        lines.append("#%d t=%g %s %s%s %s%s" % (
            event.seq, event.time, event.kind, event.node or "-", peer,
            event.mtype, (" [%s]" % detail) if detail else ""))
    return tuple(lines)


class Monitor:
    """Base class for streaming invariant monitors.

    Subclasses set ``name`` and ``category``, declare the trace-event
    ``kinds`` they observe (empty tuple = every kind), and override
    :meth:`observe` (per event) and/or :meth:`finish` (end of run).
    Violations are reported through :meth:`record`, which stamps the
    anomaly with the offending event and its rendered causal context.
    """

    name = "monitor"
    category = SAFETY
    kinds = ()
    #: True for monitors that only count events (liveness watchdogs);
    #: the hub routes them through the tracer's cheap counter channel
    #: (:meth:`tick`) instead of the event-object dispatch path.
    counts_events = False

    def __init__(self):
        self.hub = None
        self.anomalies = []
        self._finish_done = False
        #: Optional group label (shard/group id) stamped on anomalies.
        self.group = None
        #: Optional frozenset of node names this monitor observes; the
        #: hub skips events on other nodes.  ``None`` = fleet-wide.
        self.scope = None

    def attach(self, hub):
        self.hub = hub

    def scope_to(self, group, nodes=None):
        """Restrict this monitor to one group: anomalies are labeled
        ``group`` and (when ``nodes`` is given) only events observed on
        those nodes are dispatched to it.  Returns ``self``.  Call
        *before* registering with a hub — the hub binds the scope into
        its dispatch closure at :meth:`MonitorHub.add` time."""
        self.group = group
        self.scope = frozenset(nodes) if nodes is not None else None
        return self

    def interests(self):
        """The (kind -> mtypes) subscription map this monitor wants.

        ``mtypes=None`` means every mtype of that kind; returning
        ``None`` overall means every event of every kind.  The default
        derives from ``kinds``; monitors that also know their mtypes
        (decide labels, ack message types) override this so the tracer
        never even materializes unrelated events for them.
        """
        if not self.kinds:
            return None
        return {kind: None for kind in self.kinds}

    def raw_interests(self):
        """The (kind -> mtypes) map routed through the tracer's *raw*
        channel to :meth:`observe_raw` — no TraceEvent materialization.
        High-volume streams (per-message quorum acks, proposal scans)
        belong here; anything returned must be excluded from
        :meth:`interests`.  Empty by default.
        """
        return {}

    def observe(self, event):
        """Called for every matching trace event, in recording order."""

    def observe_raw(self, kind, time, node, peer, mtype, msg_id, payload):
        """Called for every :meth:`raw_interests` match with the raw
        recorded fields (payload = message object for SEND/DELIVER)."""

    def finish(self):
        """Called once at run end, for whole-run verdicts."""

    # -- reporting -----------------------------------------------------------

    def record(self, message, event=None, node="", **detail):
        """File an :class:`Anomaly`, rendering causal context if possible."""
        if event is not None:
            node = node or event.node
            time, seq = event.time, event.seq
            if "span" not in detail:
                # Link the offending request span, when the event names
                # one — `repro spans --req <id>` then shows the waterfall
                # the anomaly happened inside.
                for key in ("req", "request_id", "txid"):
                    ref = event.get(key)
                    if ref is not None:
                        detail = dict(detail, span=ref)
                        break
        else:
            time, seq = self._now(), -1
        if self.group is not None:
            # Name the shard/group, not just the node — a fleet report
            # is unreadable when every group's "r0" looks the same.
            message = "[%s] %s" % (self.group, message)
            detail = dict(detail, group=self.group)
        trace = self.hub.trace if self.hub is not None else None
        anomaly = Anomaly(
            monitor=self.name,
            category=self.category,
            message=message,
            node=node,
            time=time,
            seq=seq,
            detail=tuple(sorted((key, str(value))
                                for key, value in detail.items())),
            context=render_context(trace, node, seq),
        )
        self.anomalies.append(anomaly)
        return anomaly

    def _now(self):
        hub = self.hub
        if hub is not None and hub.tracer is not None:
            return hub.tracer.sim.now
        return 0.0

    def _last_event(self):
        """The event being recorded right now (for raw/counter-channel
        handlers that need a full event only when they trip)."""
        hub = self.hub
        if hub is not None and hub.tracer is not None:
            return hub.tracer.last_event()
        return None

    def __repr__(self):
        flag = "TRIPPED(%d)" % len(self.anomalies) if self.anomalies else "ok"
        return "%s(%s, %s)" % (type(self).__name__, self.name, flag)


class MonitorHub:
    """Routes trace events to registered monitors, online.

    Each monitor's declared interest set (:meth:`Monitor.interests`) is
    registered with the tracer's typed subscription tables at
    :meth:`add` time, so the tracer calls a monitor only for the kinds
    and mtypes it evaluates; counting monitors (``counts_events``) ride
    the tracer's per-event counter channel instead.  :meth:`observe`
    remains as a direct full-dispatch path for synthetic events in
    tests and replays.

    Parameters
    ----------
    tracer:
        The :class:`~repro.trace.Tracer` to subscribe to.
    collector:
        Optional :class:`~repro.metrics.MetricsCollector`; monitors that
        read transport counters (message-complexity envelope) find it
        here.
    """

    def __init__(self, tracer, collector=None):
        self.tracer = tracer
        self.collector = collector
        self.monitors = []
        self._dispatch = {}
        self._catchall = ()
        self._watchdogs = ()
        self._wd_routes = {}
        self._counter_live = False

    @property
    def trace(self):
        return self.tracer.trace if self.tracer is not None else None

    def add(self, monitor):
        """Register ``monitor``'s interest set with the tracer."""
        monitor.attach(self)
        self.monitors.append(monitor)
        # Kind-bucket index for the direct observe() path.
        if monitor.kinds:
            for kind in monitor.kinds:
                bucket = self._dispatch.get(kind, self._catchall)
                self._dispatch[kind] = bucket + (monitor,)
        else:
            self._catchall = self._catchall + (monitor,)
            for kind, bucket in self._dispatch.items():
                self._dispatch[kind] = bucket + (monitor,)
        tracer = self.tracer
        if monitor.counts_events:
            if tracer is None:
                pass
            elif monitor.scope is None:
                # Unscoped: its tick IS the sink — no routing layer.
                tracer.subscribe_counters(monitor.tick)
            else:
                # Scoped watchdogs share one routed sink with a
                # per-node route cache.
                self._watchdogs = self._watchdogs + (monitor,)
                self._wd_routes.clear()
                if not self._counter_live:
                    self._counter_live = True
                    tracer.subscribe_counters(self._tick)
        elif tracer is not None:
            raw = monitor.raw_interests()
            if raw:
                raw_sink = self._scoped_raw_sink(monitor)
                for kind, mtypes in raw.items():
                    tracer.subscribe_raw(raw_sink, kinds=(kind,),
                                         mtypes=mtypes)
            sink = self._scoped_sink(monitor)
            interests = monitor.interests()
            if interests is None:
                tracer.subscribe(sink)
            else:
                for kind, mtypes in interests.items():
                    tracer.subscribe(sink, kinds=(kind,), mtypes=mtypes)
        return monitor

    @staticmethod
    def _scoped_sink(monitor):
        observe = monitor.observe
        scope = monitor.scope
        if scope is None:
            return observe

        def sink(event):
            if event.node in scope:
                observe(event)
        return sink

    @staticmethod
    def _scoped_raw_sink(monitor):
        handler = monitor.observe_raw
        scope = monitor.scope
        if scope is None:
            return handler

        def sink(kind, time, node, peer, mtype, msg_id, payload):
            if node in scope:
                handler(kind, time, node, peer, mtype, msg_id, payload)
        return sink

    def _tick(self, kind, node, mtype):
        """Counter-channel fan-out to counting monitors, with a per-node
        route cache so scope checks cost one dict hit per event."""
        route = self._wd_routes.get(node)
        if route is None:
            route = self._wd_routes[node] = tuple(
                wd for wd in self._watchdogs
                if wd.scope is None or node in wd.scope)
        for wd in route:
            wd.tick(kind, node, mtype)

    def extend(self, monitors):
        for monitor in monitors:
            self.add(monitor)
        return self

    def observe(self, event):
        """Dispatch one event to every matching monitor directly.

        The live path goes through the tracer's subscription tables;
        this entry point serves tests and offline replays that push
        synthetic events through the battery by hand.
        """
        node = event.node
        for monitor in self._dispatch.get(event.kind, self._catchall):
            scope = monitor.scope
            if scope is None or node in scope:
                monitor.observe(event)

    def finish(self):
        """Run end-of-run verdicts; returns all anomalies.

        Idempotent *per monitor*: each monitor's ``finish`` runs exactly
        once no matter how many times the hub is finished, and monitors
        added after an earlier ``finish`` still get their verdict on the
        next call — so a second ``finish`` can never double-record, and
        a run that ends mid-view still surfaces its watchdog verdict.
        """
        for monitor in self.monitors:
            if not getattr(monitor, "_finish_done", False):
                monitor._finish_done = True
                monitor.finish()
        return self.anomalies

    @property
    def anomalies(self):
        found = []
        for monitor in self.monitors:
            found.extend(monitor.anomalies)
        found.sort(key=lambda a: (a.seq if a.seq >= 0 else 1 << 60,
                                  a.monitor, a.message))
        return found

    @property
    def ok(self):
        return not self.anomalies

    def __repr__(self):
        return "MonitorHub(%d monitors, %d anomalies)" % (
            len(self.monitors), len(self.anomalies))


class NullMonitor:
    """No-op monitor twin: observe/finish cost nothing, never trips."""

    name = "null"
    category = SAFETY
    kinds = ()
    counts_events = False
    anomalies = ()
    group = None
    scope = None

    def interests(self):
        # Interested in nothing: the hub registers no tracer sink at all.
        return {}

    def attach(self, hub):
        pass

    def observe(self, event):
        pass

    def finish(self):
        pass


class NullMonitorHub:
    """No-op hub twin for unconditional references in monitor-less runs."""

    tracer = None
    collector = None
    trace = None
    monitors = ()
    anomalies = ()
    ok = True

    def add(self, monitor):
        return monitor

    def extend(self, monitors):
        return self

    def observe(self, event):
        pass

    def finish(self):
        return ()


#: Shared null hub instance — safe because it is stateless.
NULL_HUB = NullMonitorHub()
