"""Monitor base class, the streaming hub, and zero-cost null twins.

The hub subscribes to the :class:`~repro.trace.Tracer` as a streaming
sink: every trace event is pushed to the monitors the moment it is
recorded, so invariants are evaluated *online*, event by event, while
the simulator runs.  Monitors declare the event kinds they care about
(``kinds``) and the hub dispatches per kind, so an agreement monitor
never sees a SEND and the hot path stays a dict lookup plus a short
tuple walk.

Mirroring ``telemetry.instruments``, the module ships null twins
(:class:`NullMonitor`, :class:`NullMonitorHub`, :data:`NULL_HUB`) so
code can hold an unconditional hub reference; a monitors-off run never
constructs a tracer sink at all, keeping the no-observer fast path of
the network untouched.

Monitors are pure observers: they must not schedule events, send
messages, or touch the simulator's RNG.  Enabling monitors therefore
cannot perturb a run — same seed, same trace, monitors or not.
"""

from ..trace.events import DELIVER
from .anomaly import SAFETY, Anomaly

#: How many surrounding trace events an anomaly's causal context shows.
CONTEXT_WINDOW = 5


def render_context(trace, node, seq, window=CONTEXT_WINDOW):
    """Render the last ``window`` events involving ``node`` up to ``seq``.

    This is the causal-context snippet attached to anomalies: the trail
    of sends/delivers/milestones that led the offending node to the
    violation.  Purely a function of the recorded trace, so same-seed
    runs render byte-identical context.
    """
    if trace is None:
        return ()
    events = trace.events
    if seq < 0 or seq >= len(events):
        seq = len(events) - 1
    picked = []
    index = seq
    while index >= 0 and len(picked) < window:
        event = events[index]
        if not node or event.node == node or event.peer == node:
            picked.append(event)
        index -= 1
    picked.reverse()
    lines = []
    for event in picked:
        peer = (" <-%s" % event.peer if event.kind == DELIVER and event.peer
                else (" ->%s" % event.peer if event.peer else ""))
        detail = " ".join("%s=%s" % pair for pair in event.detail)
        lines.append("#%d t=%g %s %s%s %s%s" % (
            event.seq, event.time, event.kind, event.node or "-", peer,
            event.mtype, (" [%s]" % detail) if detail else ""))
    return tuple(lines)


class Monitor:
    """Base class for streaming invariant monitors.

    Subclasses set ``name`` and ``category``, declare the trace-event
    ``kinds`` they observe (empty tuple = every kind), and override
    :meth:`observe` (per event) and/or :meth:`finish` (end of run).
    Violations are reported through :meth:`record`, which stamps the
    anomaly with the offending event and its rendered causal context.
    """

    name = "monitor"
    category = SAFETY
    kinds = ()

    def __init__(self):
        self.hub = None
        self.anomalies = []
        #: Optional group label (shard/group id) stamped on anomalies.
        self.group = None
        #: Optional frozenset of node names this monitor observes; the
        #: hub skips events on other nodes.  ``None`` = fleet-wide.
        self.scope = None

    def attach(self, hub):
        self.hub = hub

    def scope_to(self, group, nodes=None):
        """Restrict this monitor to one group: anomalies are labeled
        ``group`` and (when ``nodes`` is given) only events observed on
        those nodes are dispatched to it.  Returns ``self``."""
        self.group = group
        self.scope = frozenset(nodes) if nodes is not None else None
        return self

    def observe(self, event):
        """Called for every matching trace event, in recording order."""

    def finish(self):
        """Called once at run end, for whole-run verdicts."""

    # -- reporting -----------------------------------------------------------

    def record(self, message, event=None, node="", **detail):
        """File an :class:`Anomaly`, rendering causal context if possible."""
        if event is not None:
            node = node or event.node
            time, seq = event.time, event.seq
        else:
            time, seq = self._now(), -1
        if self.group is not None:
            # Name the shard/group, not just the node — a fleet report
            # is unreadable when every group's "r0" looks the same.
            message = "[%s] %s" % (self.group, message)
            detail = dict(detail, group=self.group)
        trace = self.hub.trace if self.hub is not None else None
        anomaly = Anomaly(
            monitor=self.name,
            category=self.category,
            message=message,
            node=node,
            time=time,
            seq=seq,
            detail=tuple(sorted((key, str(value))
                                for key, value in detail.items())),
            context=render_context(trace, node, seq),
        )
        self.anomalies.append(anomaly)
        return anomaly

    def _now(self):
        hub = self.hub
        if hub is not None and hub.tracer is not None:
            return hub.tracer.sim.now
        return 0.0

    def __repr__(self):
        flag = "TRIPPED(%d)" % len(self.anomalies) if self.anomalies else "ok"
        return "%s(%s, %s)" % (type(self).__name__, self.name, flag)


class MonitorHub:
    """Fans trace events out to registered monitors, online.

    Parameters
    ----------
    tracer:
        The :class:`~repro.trace.Tracer` to subscribe to.
    collector:
        Optional :class:`~repro.metrics.MetricsCollector`; monitors that
        read transport counters (message-complexity envelope) find it
        here.
    """

    def __init__(self, tracer, collector=None):
        self.tracer = tracer
        self.collector = collector
        self.monitors = []
        self._dispatch = {}
        self._catchall = ()
        self._finished = False
        tracer.subscribe(self.observe)

    @property
    def trace(self):
        return self.tracer.trace

    def add(self, monitor):
        """Register ``monitor`` and index it by observed event kind."""
        monitor.attach(self)
        self.monitors.append(monitor)
        if monitor.kinds:
            for kind in monitor.kinds:
                bucket = self._dispatch.get(kind, self._catchall)
                self._dispatch[kind] = bucket + (monitor,)
        else:
            self._catchall = self._catchall + (monitor,)
            for kind, bucket in self._dispatch.items():
                self._dispatch[kind] = bucket + (monitor,)
        return monitor

    def extend(self, monitors):
        for monitor in monitors:
            self.add(monitor)
        return self

    def observe(self, event):
        node = event.node
        for monitor in self._dispatch.get(event.kind, self._catchall):
            scope = monitor.scope
            if scope is None or node in scope:
                monitor.observe(event)

    def finish(self):
        """Run end-of-run verdicts once; returns all anomalies."""
        if not self._finished:
            self._finished = True
            for monitor in self.monitors:
                monitor.finish()
        return self.anomalies

    @property
    def anomalies(self):
        found = []
        for monitor in self.monitors:
            found.extend(monitor.anomalies)
        found.sort(key=lambda a: (a.seq if a.seq >= 0 else 1 << 60,
                                  a.monitor, a.message))
        return found

    @property
    def ok(self):
        return not self.anomalies

    def __repr__(self):
        return "MonitorHub(%d monitors, %d anomalies)" % (
            len(self.monitors), len(self.anomalies))


class NullMonitor:
    """No-op monitor twin: observe/finish cost nothing, never trips."""

    name = "null"
    category = SAFETY
    kinds = ()
    anomalies = ()
    group = None
    scope = None

    def attach(self, hub):
        pass

    def observe(self, event):
        pass

    def finish(self):
        pass


class NullMonitorHub:
    """No-op hub twin for unconditional references in monitor-less runs."""

    tracer = None
    collector = None
    trace = None
    monitors = ()
    anomalies = ()
    ok = True

    def add(self, monitor):
        return monitor

    def extend(self, monitors):
        return self

    def observe(self, event):
        pass

    def finish(self):
        return ()


#: Shared null hub instance — safe because it is stateless.
NULL_HUB = NullMonitorHub()
