"""End-to-end conformance checking: run, monitor, cross-check, report.

``run_check(protocol, seed, faults)`` drives one monitored run of the
protocol (a small fixed scenario per table row), lets the monitor
battery watch it online, then assembles a *conformance report* that
cross-checks the measured run against the paper's claimed property box
(failure model, cluster size, phases, message complexity) and lists any
anomalies with their causal context.

Reports serialize exactly like telemetry run reports — sorted keys,
compact separators, trailing newline — so a same-seed check is
byte-identical and golden-testable.  The ``repro check`` CLI prints the
ASCII rendering and exits 0 (clean), 1 (anomalies), or 2 (usage).
"""

import json

from ..analysis.claims import claim_for
from ..core.cluster import Cluster
from ..ioutil import ensure_parent

#: Schema tag for the JSON conformance report.
SCHEMA = "repro.monitor.conformance/1"

_DRIVERS = {}
_FAULTS = {}


def _driver(name, faults=()):
    def register(fn):
        _DRIVERS[name] = fn
        _FAULTS[name] = tuple(faults)
        return fn
    return register


def check_protocols():
    """Protocols ``run_check`` can drive, in paper-table order."""
    from ..analysis.claims import PAPER_TABLE
    return [claim.protocol for claim in PAPER_TABLE
            if claim.protocol in _DRIVERS]


#: Fleet-level checks: drivers that monitor a *composition* (a sharded
#: fleet of consensus groups) rather than one paper-table protocol.
#: They have no paper property box; their claims are synthesized from
#: the composition's construction (see ``_FLEET_CLAIMS``).
def fleet_checks():
    """Fleet compositions ``run_check`` can drive, sorted."""
    return sorted(name for name in _DRIVERS if name in _FLEET_CLAIMS)


def supported_faults(protocol):
    return _FAULTS.get(protocol, ())


# -- per-protocol drivers ----------------------------------------------------
#
# Each driver attaches the protocol's monitor battery, runs one fixed
# scenario (with an optional injected fault), and returns
# (n, f, summary).  Scenarios are small — a check is a smoke-scale run,
# not a benchmark.

@_driver("paxos", faults=("crash",))
def _check_paxos(cluster, faults):
    from ..protocols.paxos import RandomizedBackoff, run_basic_paxos
    n, f = 5, 2
    cluster.attach_monitors("paxos", n, f)
    result = run_basic_paxos(
        cluster, n_acceptors=n, proposals=("X", "Y"),
        retry=RandomizedBackoff(), stagger=1.0,
        crash_acceptors=(4,) if faults == "crash" else ())
    return n, f, "decided %r in %d proposer round(s)" % (result.value,
                                                         result.rounds)


@_driver("multi-paxos", faults=("crash",))
def _check_multipaxos(cluster, faults):
    from ..protocols.multipaxos import run_multipaxos
    n, f = 5, 2
    cluster.attach_monitors("multi-paxos", n, f)
    result = run_multipaxos(
        cluster, n_replicas=n, commands_per_client=5,
        crash_leader_at=25.0 if faults == "crash" else None)
    return n, f, "5 commands; logs consistent=%s" % result.logs_consistent()


@_driver("raft", faults=("crash",))
def _check_raft(cluster, faults):
    from ..protocols.raft import run_raft
    n, f = 5, 2
    cluster.attach_monitors("raft", n, f)
    result = run_raft(
        cluster, n_nodes=n, commands_per_client=5,
        crash_leader_at=20.0 if faults == "crash" else None)
    return n, f, "5 commands; logs consistent=%s" % result.logs_consistent()


@_driver("fast-paxos")
def _check_fast_paxos(cluster, faults):
    from ..protocols.fast_paxos import run_fast_paxos
    n, f = 4, 1
    cluster.attach_monitors("fast-paxos", n, f)
    result = run_fast_paxos(cluster, f=f, values=("X",))
    return n, f, "decided %r (collision=%s)" % (result.decided,
                                                result.collision)


@_driver("flexible-paxos")
def _check_flexible_paxos(cluster, faults):
    from ..protocols.flexible_paxos import run_flexible_paxos
    n, f = 6, 2
    cluster.attach_monitors("flexible-paxos", n, f)
    result = run_flexible_paxos(cluster, n_acceptors=n, q1=4, q2=3,
                                proposals=("X",))
    return n, f, "decided %r with |Q1|=4 |Q2|=3" % result.value


@_driver("2pc")
def _check_2pc(cluster, faults):
    from ..protocols.commit import run_commit
    cluster.attach_monitors("2pc", 4, 0)
    result = run_commit(cluster, protocol="2pc", n_cohorts=3)
    return 4, 0, "atomic=%s" % result.atomic()


@_driver("3pc")
def _check_3pc(cluster, faults):
    from ..protocols.commit import run_commit
    cluster.attach_monitors("3pc", 4, 0)
    result = run_commit(cluster, protocol="3pc", n_cohorts=3)
    return 4, 0, "atomic=%s" % result.atomic()


@_driver("pbft", faults=("equivocate", "silent", "crash"))
def _check_pbft(cluster, faults):
    from ..protocols.pbft import (
        EquivocatingPrimary,
        SilentPrimary,
        run_pbft,
    )
    n, f = 4, 1
    cluster.attach_monitors("pbft", n, f)
    kwargs = {}
    if faults == "equivocate":
        kwargs["primary_class"] = EquivocatingPrimary
    elif faults == "silent":
        kwargs["primary_class"] = SilentPrimary
    elif faults == "crash":
        kwargs["crash_primary_at"] = 5.0
    result = run_pbft(cluster, f=f, operations_per_client=3, **kwargs)
    return n, f, "3 ops; logs consistent=%s" % result.logs_consistent()


@_driver("zyzzyva")
def _check_zyzzyva(cluster, faults):
    from ..protocols.zyzzyva import run_zyzzyva
    n, f = 4, 1
    cluster.attach_monitors("zyzzyva", n, f)
    result = run_zyzzyva(cluster, f=f, operations=3)
    fast, slow = result.case_counts()
    return n, f, "3 ops (%d fast-path, %d slow-path)" % (fast, slow)


@_driver("hotstuff")
def _check_hotstuff(cluster, faults):
    from ..protocols.hotstuff import run_chained_hotstuff
    n, f = 4, 1
    cluster.attach_monitors("hotstuff", n, f)
    result = run_chained_hotstuff(cluster, f=f, commands=6)
    return n, f, "6 commands; prefix consistent=%s" % \
        result.logs_consistent()


@_driver("minbft")
def _check_minbft(cluster, faults):
    from ..protocols.minbft import run_minbft
    n, f = 3, 1
    cluster.attach_monitors("minbft", n, f)
    result = run_minbft(cluster, f=f, operations=3)
    return n, f, "3 ops; logs consistent=%s" % result.logs_consistent()


@_driver("cheapbft")
def _check_cheapbft(cluster, faults):
    from ..protocols.cheapbft import run_cheapbft
    n, f = 3, 1
    cluster.attach_monitors("cheapbft", n, f)
    result = run_cheapbft(cluster, f=f, operations=3)
    return n, f, "3 ops; logs consistent=%s" % result.logs_consistent()


@_driver("upright")
def _check_upright(cluster, faults):
    from ..protocols.upright import run_upright
    n, f = 6, 2  # 3m+2c+1 with m=1, c=1; tolerates m+c faults
    cluster.attach_monitors("upright", n, f)
    result = run_upright(cluster, m=1, c=1, operations=3)
    return n, f, "3 ops; logs consistent=%s" % result.logs_consistent()


@_driver("seemore")
def _check_seemore(cluster, faults):
    from ..protocols.seemore import run_seemore
    n, f = 6, 2  # 3m+2c+1 with m=1, c=1
    cluster.attach_monitors("seemore", n, f)
    result = run_seemore(cluster, mode=3, m=1, c=1, operations=3)
    return n, f, "3 ops (mode 3); logs consistent=%s" % \
        result.logs_consistent()


@_driver("xft")
def _check_xft(cluster, faults):
    from ..protocols.xft import run_xft
    n, f = 3, 1
    cluster.attach_monitors("xft", n, f)
    result = run_xft(cluster, f=f, operations=3)
    return n, f, "3 ops; logs consistent=%s" % result.logs_consistent()


@_driver("ben-or", faults=("crash",))
def _check_benor(cluster, faults):
    from ..protocols.benor import run_benor
    n, f = 5, 1
    cluster.attach_monitors("ben-or", n, f)
    result = run_benor(cluster, n=n, f=f,
                       crash_indices=(4,) if faults == "crash" else ())
    return n, f, "agreement=%s in <=%s round(s)" % (result.agreement(),
                                                    result.max_round())


@_driver("interactive-consistency", faults=("byzantine",))
def _check_ic(cluster, faults):
    from ..protocols.interactive_consistency import (
        run_interactive_consistency,
    )
    n, f = 4, 1
    cluster.attach_monitors("interactive-consistency", n, f)
    result = run_interactive_consistency(
        cluster, n=n, faulty=(2,) if faults == "byzantine" else ())
    return n, f, "vector agreement=%s" % result.agreement()


@_driver("pow")
def _check_pow(cluster, faults):
    from ..blockchain import run_mining_network
    n, f = 4, 0
    cluster.attach_monitors("pow", n, f)
    result = run_mining_network(
        cluster, hashrates=(600.0, 200.0, 100.0, 100.0),
        target_block_time=30.0, duration=2000.0)
    height, abandoned, rate = result.fork_stats()
    return n, f, "height=%d abandoned=%d fork-rate=%.1f%%" % (
        height, abandoned, 100 * rate)


@_driver("tendermint", faults=("silent",))
def _check_tendermint(cluster, faults):
    from ..protocols.tendermint import run_tendermint
    n, f = 4, 1
    cluster.attach_monitors("tendermint", n, f)
    result = run_tendermint(
        cluster, f=f, heights=4,
        silent_indices=(0,) if faults == "silent" else ())
    return n, f, "4 blocks; chains consistent=%s" % \
        result.chains_consistent()


@_driver("shards", faults=("crash",))
def _check_shards(cluster, faults):
    from ..shard import ShardedCluster
    sharded = ShardedCluster(n_shards=2, replicas=3, partitioning="range",
                             key_space=16, cluster=cluster)
    first = sharded.run_workload(txns=6, cross_ratio=0.5)
    if faults == "crash":
        sharded.crash_follower("s1")
    second = sharded.run_workload(txns=6, cross_ratio=0.5)
    sharded.settle()
    committed = first["committed"] + second["committed"]
    total = first["txns"] + second["txns"]
    cross = first["cross_shard"] + second["cross_shard"]
    n = 2 * 3  # two groups of three replicas
    f = 1      # per group: (replicas - 1) // 2
    return n, f, ("%d/%d committed (%d cross-shard); per-shard "
                  "consistent=%s" % (committed, total, cross,
                                     sharded.check_consistency()))


@_driver("chandra-toueg", faults=("crash",))
def _check_ct(cluster, faults):
    from ..protocols.chandra_toueg import run_chandra_toueg
    n, f = 5, 2
    cluster.attach_monitors("chandra-toueg", n, f)
    result = run_chandra_toueg(
        cluster, n=n, f=f,
        crash_indices=(1,) if faults == "crash" else ())
    return n, f, "agreement=%s" % result.agreement()


# -- the check itself --------------------------------------------------------


def run_check(protocol, seed=0, faults=None):
    """One monitored conformance run; returns the report dict.

    Raises ``KeyError`` for an unknown protocol and ``ValueError`` for a
    fault kind the protocol's driver does not support.
    """
    driver = _DRIVERS[protocol]
    if faults is not None and faults not in _FAULTS[protocol]:
        supported = ", ".join(_FAULTS[protocol]) or "none"
        raise ValueError("protocol %r supports fault kinds: %s"
                         % (protocol, supported))
    cluster = Cluster(seed=seed, monitors=True)
    n, f, summary = driver(cluster, faults)
    anomalies = cluster.monitors.finish()
    return _build_report(protocol, seed, faults, cluster, n, f, summary,
                         anomalies)


def _monitor_named(hub, name):
    for monitor in hub.monitors:
        if monitor.name == name:
            return monitor
    return None


#: Synthesized property boxes for fleet compositions: no paper table row
#: exists, so the claim records what the composition is built from.
_FLEET_CLAIMS = {
    "shards": {
        "failure_model": "crash (per group)",
        "nodes": "G x (2f+1)",
        "phases": "2PC over per-group consensus",
        "complexity": "O(G*n) per cross-shard txn",
    },
}


def _monitor_entry(monitor):
    entry = {
        "monitor": monitor.name,
        "category": monitor.category,
        "status": "tripped" if monitor.anomalies else "ok",
        "anomalies": len(monitor.anomalies),
    }
    if monitor.group is not None:
        # Only scoped (fleet) monitors grow the key — single-protocol
        # reports stay byte-identical to their goldens.
        entry["group"] = monitor.group
    return entry


def _group_sections(hub):
    """Per-group report sections for a fleet check: each scoped group's
    monitor battery, decision count and anomaly tally, sorted by group
    id.  Empty for single-protocol checks (no scoped monitors)."""
    by_group = {}
    for monitor in hub.monitors:
        if monitor.group is not None:
            by_group.setdefault(monitor.group, []).append(monitor)
    sections = []
    for gid in sorted(by_group):
        monitors = by_group[gid]
        section = {
            "group": gid,
            "monitors": [
                {
                    "monitor": monitor.name,
                    "category": monitor.category,
                    "status": "tripped" if monitor.anomalies else "ok",
                    "anomalies": len(monitor.anomalies),
                }
                for monitor in sorted(monitors, key=lambda m: m.name)
            ],
            "anomalies": sum(len(m.anomalies) for m in monitors),
            "ok": not any(m.anomalies for m in monitors),
        }
        for monitor in monitors:
            if monitor.name == "agreement":
                section["decisions"] = monitor.decisions
        sections.append(section)
    return sections


def _build_report(protocol, seed, faults, cluster, n, f, summary,
                  anomalies):
    try:
        claim = claim_for(protocol)
        claim_box = {
            "failure_model": claim.failure_model,
            "nodes": claim.nodes,
            "phases": claim.phases,
            "complexity": claim.complexity,
        }
    except KeyError:
        claim_box = dict(_FLEET_CLAIMS[protocol])
    hub = cluster.monitors
    measured = {
        "nodes": n,
        "f": f,
        "messages_total": cluster.metrics.messages_total,
        "events": len(cluster.trace),
        "virtual_time": round(float(cluster.now), 9),
    }
    agreement = _monitor_named(hub, "agreement")
    if agreement is not None:
        # Fleet checks carry one scoped agreement monitor per group;
        # the headline count is the fleet-wide total.
        measured["decisions"] = sum(m.decisions for m in hub.monitors
                                    if m.name == "agreement")
    phase = _monitor_named(hub, "phase-conformance")
    if phase is not None:
        measured["phases"] = phase.observed_phases()
    envelope = _monitor_named(hub, "complexity-envelope")
    if envelope is not None:
        mean = envelope.mean_cost()
        measured["messages_per_decision"] = \
            None if mean is None else round(mean, 3)
        measured["complexity_bound"] = round(envelope.bound, 3)
    report = {
        "schema": SCHEMA,
        "protocol": protocol,
        "seed": seed,
        "faults": faults or "none",
        "summary": summary,
        "claim": claim_box,
        "measured": measured,
        "monitors": [
            _monitor_entry(monitor)
            for monitor in sorted(hub.monitors,
                                  key=lambda m: (m.name, m.group or ""))
        ],
        "anomalies": [anomaly.to_dict() for anomaly in anomalies],
        "ok": not anomalies,
    }
    groups = _group_sections(hub)
    if groups:
        # Only fleet checks grow the key, so single-protocol reports
        # (and their goldens) stay byte-identical.
        report["groups"] = groups
    return report


def report_to_json(report):
    """Canonical byte-stable serialization (same recipe as telemetry
    run reports): sorted keys, compact separators, trailing newline."""
    return json.dumps(report, sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_report(report, path):
    with open(ensure_parent(path), "w") as handle:
        handle.write(report_to_json(report))
    return len(report["monitors"])


def render_report(report):
    """Human-oriented ASCII rendering of a conformance report."""
    lines = []
    lines.append("conformance: %s (seed %d, faults %s)"
                 % (report["protocol"], report["seed"], report["faults"]))
    claim = report["claim"]
    lines.append("  paper box:  model=%s nodes=%s phases=%s complexity=%s"
                 % (claim["failure_model"], claim["nodes"],
                    claim["phases"], claim["complexity"]))
    measured = report["measured"]
    core = "n=%d f=%d msgs=%d events=%d vtime=%.1f" % (
        measured["nodes"], measured["f"], measured["messages_total"],
        measured["events"], measured["virtual_time"])
    if "decisions" in measured:
        core += " decisions=%d" % measured["decisions"]
    lines.append("  measured:   %s" % core)
    if measured.get("phases"):
        lines.append("  phases:     %s" % ", ".join(measured["phases"]))
    if measured.get("messages_per_decision") is not None:
        lines.append("  complexity: %.1f msgs/decision (envelope %.1f)"
                     % (measured["messages_per_decision"],
                        measured["complexity_bound"]))
    lines.append("  summary:    %s" % report["summary"])
    if report.get("groups"):
        # Fleet check: one section per consensus group, so a tripped
        # monitor is attributed to its shard at a glance.
        for section in report["groups"]:
            verdict = "ok" if section["ok"] else \
                "%d anomaly(ies)" % section["anomalies"]
            head = "  group %-5s %s" % (section["group"], verdict)
            if "decisions" in section:
                head += ", %d decision(s)" % section["decisions"]
            lines.append(head)
            for entry in section["monitors"]:
                lines.append("    %-8s %s (%s)" % (entry["status"],
                                                   entry["monitor"],
                                                   entry["category"]))
    elif report["monitors"]:
        lines.append("  monitors:")
        for entry in report["monitors"]:
            lines.append("    %-8s %s (%s)" % (entry["status"],
                                               entry["monitor"],
                                               entry["category"]))
    else:
        lines.append("  monitors:   none applicable")
    if report["anomalies"]:
        lines.append("  anomalies:")
        for anomaly in report["anomalies"]:
            lines.append("    - [%s/%s] %s" % (anomaly["category"],
                                               anomaly["monitor"],
                                               anomaly["message"]))
            for context_line in anomaly["context"]:
                lines.append("        %s" % context_line)
    lines.append("  verdict:    %s"
                 % ("PASS" if report["ok"] else "FAIL"))
    return "\n".join(lines)
