"""The built-in monitor library.

Seven streaming monitors covering the three columns of the paper's
property boxes:

* safety — :class:`AgreementMonitor`, :class:`LeaderUniquenessMonitor`,
  :class:`QuorumCertificateMonitor`, :class:`EquivocationMonitor`;
* conformance — :class:`PhaseConformanceMonitor` (phase alphabet vs the
  claimed communication phases);
* complexity — :class:`ComplexityEnvelopeMonitor` (messages per decision
  vs the claimed O(N) / O(N²) envelope, fed from the metrics collector);
* liveness — :class:`LivenessWatchdog` (no decision within an event
  horizon ⇒ stall).

Each monitor observes the protocol through its *trace milestones*
(``trace_local`` decides/commits/executes, leader-assumption marks,
``mark_phase`` boundaries) and message deliveries, so one implementation
serves every protocol; :mod:`repro.monitor.specs` instantiates the
right mix with per-protocol keys.
"""

from ..trace.events import DELIVER, LOCAL, PHASE
from .anomaly import COMPLEXITY, CONFORMANCE, LIVENESS, SAFETY
from .base import Monitor


class AgreementMonitor(Monitor):
    """No two nodes decide different values for the same slot.

    ``slot_key`` names the detail key that identifies the decision slot
    (``seq``, ``index``, ``height``); ``None`` means single-decree — all
    decisions share one implicit slot.  ``value_key`` names the decided
    value's detail key.  The first decision per slot is the reference;
    any later decision carrying a different value is a safety violation.
    """

    name = "agreement"
    category = SAFETY
    kinds = (LOCAL,)

    def __init__(self, decide_labels, slot_key=None, value_key="value"):
        super().__init__()
        self.decide_labels = tuple(decide_labels)
        self._decide_set = frozenset(decide_labels)
        self.slot_key = slot_key
        self.value_key = value_key
        self._chosen = {}

    def interests(self):
        return {LOCAL: self.decide_labels}

    def observe(self, event):
        if event.mtype not in self._decide_set:
            return
        value = event.get(self.value_key)
        if value is None:
            return
        slot = event.get(self.slot_key, None) if self.slot_key else ""
        if self.slot_key and slot is None:
            return
        first = self._chosen.get(slot)
        if first is None:
            self._chosen[slot] = (value, event.node, event.seq)
        elif first[0] != value:
            where = "slot %s=%s" % (self.slot_key, slot) if self.slot_key \
                else "the decree"
            self.record(
                "%s decided %r for %s but %s already decided %r" % (
                    event.node, value, where, first[1], first[0]),
                event=event, slot=slot, value=value,
                conflicts_with=first[1], first_value=first[0],
                first_seq=first[2])

    @property
    def decisions(self):
        """Distinct slots decided so far."""
        return len(self._chosen)


class LeaderUniquenessMonitor(Monitor):
    """At most one node assumes leadership per ballot/term/view.

    Observes ``lead`` milestones (emitted by protocols on becoming
    leader/primary) keyed by ``epoch_key``; two distinct nodes claiming
    the same epoch is a safety violation (split brain).
    """

    name = "leader-uniqueness"
    category = SAFETY
    kinds = (LOCAL,)

    def __init__(self, epoch_key, lead_label="lead"):
        super().__init__()
        self.epoch_key = epoch_key
        self.lead_label = lead_label
        self._leaders = {}

    def interests(self):
        return {LOCAL: (self.lead_label,)}

    def observe(self, event):
        if event.mtype != self.lead_label:
            return
        epoch = event.get(self.epoch_key)
        if epoch is None:
            return
        holder = self._leaders.get(epoch)
        if holder is None:
            self._leaders[epoch] = event.node
        elif holder != event.node:
            self.record(
                "%s assumed leadership for %s=%s already held by %s" % (
                    event.node, self.epoch_key, epoch, holder),
                event=event, epoch=epoch, holder=holder)


class QuorumCertificateMonitor(Monitor):
    """A decision must be causally preceded by a quorum certificate.

    Streams deliveries of the certificate message type (``ack_mtype``)
    and, at each decide milestone, checks the deciding node had already
    received acknowledgements from at least ``need`` distinct peers for
    the matching ``link_keys`` values (ballot, seq, ...).  Because both
    the acks and the decide happen on the *same* node, recording order
    is that node's happens-before order — a decide racing ahead of its
    quorum cannot hide.
    """

    name = "quorum-certificate"
    category = SAFETY
    kinds = (DELIVER, LOCAL)

    def __init__(self, decide_label, ack_mtype, need, link_keys):
        super().__init__()
        self.decide_label = decide_label
        self.ack_mtype = ack_mtype
        self.need = need
        self.link_keys = tuple(link_keys)
        self._acks = {}
        # Prebound extractor: link values straight off the message
        # object, stringified exactly like trace detail so the ack side
        # (raw channel) and the decide side (event detail) share keys.
        if len(self.link_keys) == 1:
            key = self.link_keys[0]

            def extract(message):
                value = getattr(message, key, None)
                return None if value is None else (str(value),)
        else:
            keys = self.link_keys

            def extract(message):
                values = tuple(getattr(message, k, None) for k in keys)
                if None in values:
                    return None
                return tuple(str(v) for v in values)
        self._extract = extract

    def interests(self):
        # Decides are rare: take them as full events.  The ack stream
        # (one per matching delivery) rides the raw channel instead.
        return {LOCAL: (self.decide_label,)}

    def raw_interests(self):
        return {DELIVER: (self.ack_mtype,)}

    def observe_raw(self, kind, time, node, peer, mtype, msg_id, payload):
        # Hot path: one call per certificate-mtype delivery.  get-then-
        # insert rather than setdefault — the latter builds a throwaway
        # set per ack, and acks outnumber certificates by the quorum
        # size.
        links = self._extract(payload)
        if links is None:
            return
        key = (node, links)
        got = self._acks.get(key)
        if got is None:
            self._acks[key] = {peer}
        else:
            got.add(peer)

    def _links(self, event):
        values = tuple(event.get(key) for key in self.link_keys)
        return None if None in values else values

    def observe(self, event):
        if event.kind == DELIVER:
            if event.mtype != self.ack_mtype:
                return
            links = self._links(event)
            if links is not None:
                self._acks.setdefault((event.node, links),
                                      set()).add(event.peer)
        elif event.mtype == self.decide_label:
            links = self._links(event)
            if links is None:
                return
            got = len(self._acks.get((event.node, links), ()))
            if got < self.need:
                link_str = ", ".join("%s=%s" % (key, value) for key, value
                                     in zip(self.link_keys, links))
                self.record(
                    "%s decided (%s) on %d/%d %s acks — no quorum "
                    "certificate" % (event.node, link_str, got, self.need,
                                     self.ack_mtype),
                    event=event, got=got, need=self.need, links=link_str)


class EquivocationMonitor(Monitor):
    """A proposer must not send conflicting proposals in one epoch.

    Watches deliveries of proposal messages (pre-prepare, tm-proposal)
    and checks, per sender and epoch (view / height+round), that
    (a) one slot never carries two different values and (b) one value is
    never proposed at two different slots — the two faces of Byzantine
    equivocation.  ``ignore_values`` skips protocol sentinels (PBFT's
    null request re-proposed while filling gaps after a view change).
    """

    name = "equivocation"
    category = SAFETY
    kinds = (DELIVER,)

    def __init__(self, proposal_mtypes, epoch_keys, slot_key=None,
                 value_key="digest", ignore_values=("null",)):
        super().__init__()
        self.proposal_mtypes = tuple(proposal_mtypes)
        self._proposal_set = frozenset(proposal_mtypes)
        self.epoch_keys = tuple(epoch_keys)
        self.slot_key = slot_key
        self.value_key = value_key
        self.ignore_values = tuple(ignore_values)
        self._value_at_slot = {}
        self._slot_of_value = {}

    def interests(self):
        # Everything rides the raw channel (below): no event-object subs.
        return {}

    def raw_interests(self):
        # Proposals arrive per delivery — high volume, so they ride the
        # raw channel; the full event is recovered only on a violation.
        return {DELIVER: self.proposal_mtypes}

    def observe_raw(self, kind, time, node, peer, mtype, msg_id, payload):
        value = getattr(payload, self.value_key, None)
        if value is None:
            return
        value = str(value)
        if value in self.ignore_values:
            return
        epoch = []
        for key in self.epoch_keys:
            held = getattr(payload, key, None)
            if held is None:
                return
            epoch.append(str(held))
        slot = None
        if self.slot_key is not None:
            slot = getattr(payload, self.slot_key, None)
            if slot is None:
                return
            slot = str(slot)
        self._check(peer, tuple(epoch), value, slot, None)

    def observe(self, event):
        if event.mtype not in self._proposal_set:
            return
        value = event.get(self.value_key)
        if value is None or value in self.ignore_values:
            return
        epoch = tuple(event.get(key) for key in self.epoch_keys)
        if None in epoch:
            return
        slot = None
        if self.slot_key is not None:
            slot = event.get(self.slot_key)
            if slot is None:
                return
        self._check(event.peer, epoch, value, slot, event)

    def _check(self, src, epoch, value, slot, event):
        """One step of the equivocation automaton; ``event`` is ``None``
        on the raw path and recovered lazily if a violation fires."""
        epoch_str = ", ".join("%s=%s" % (key, val) for key, val
                              in zip(self.epoch_keys, epoch))
        if self.slot_key is None:
            known = self._value_at_slot.get((src, epoch))
            if known is None:
                self._value_at_slot[(src, epoch)] = value
            elif known != value:
                self.record(
                    "%s equivocated in epoch (%s): proposed %r and %r" % (
                        src, epoch_str, known, value),
                    event=event if event is not None else self._last_event(),
                    node=src, epoch=epoch_str,
                    value=value, conflicting_value=known)
            return
        known = self._value_at_slot.get((src, epoch, slot))
        if known is None:
            self._value_at_slot[(src, epoch, slot)] = value
        elif known != value:
            self.record(
                "%s equivocated at %s=%s (%s): proposed %r and %r" % (
                    src, self.slot_key, slot, epoch_str, known, value),
                event=event if event is not None else self._last_event(),
                node=src, epoch=epoch_str, slot=slot,
                value=value, conflicting_value=known)
            return
        held = self._slot_of_value.get((src, epoch, value))
        if held is None:
            self._slot_of_value[(src, epoch, value)] = slot
        elif held != slot:
            self.record(
                "%s equivocated on %r (%s): proposed at %s=%s and %s=%s" % (
                    src, value, epoch_str, self.slot_key, held,
                    self.slot_key, slot),
                event=event if event is not None else self._last_event(),
                node=src, epoch=epoch_str, value=value,
                slot=slot, conflicting_slot=held)


class PhaseConformanceMonitor(Monitor):
    """The run's phase alphabet must match the paper's claimed phases.

    Checks every ``mark_phase`` boundary for the monitored protocol
    label(s) against the expected phase set from ``PAPER_TABLE``-derived
    specs; a phase outside both ``expected`` and ``exceptional``
    (view-change, election — fault handling the property box does not
    count) is a conformance anomaly.  At run end, expected phases that
    never occurred (while others did) are reported too.
    """

    name = "phase-conformance"
    category = CONFORMANCE
    kinds = (PHASE,)

    def __init__(self, phase_protocols, expected, exceptional=(),
                 require_all=True):
        super().__init__()
        self.phase_protocols = tuple(phase_protocols)
        self.expected = tuple(expected)
        self.exceptional = tuple(exceptional)
        self.require_all = require_all
        self.counts = {}

    def observe(self, event):
        if event.get("protocol") not in self.phase_protocols:
            return
        phase = event.mtype
        self.counts[phase] = self.counts.get(phase, 0) + 1
        if phase not in self.expected and phase not in self.exceptional:
            self.record(
                "phase %r outside the claimed alphabet %s" % (
                    phase, list(self.expected)),
                event=event, phase=phase,
                expected=",".join(self.expected))

    def finish(self):
        if not self.counts or not self.require_all:
            return
        missing = [phase for phase in self.expected
                   if phase not in self.counts]
        if missing:
            self.record(
                "claimed phases never entered: %s" % ", ".join(missing),
                missing=",".join(missing))

    def observed_phases(self):
        """Claimed (non-exceptional) phases seen, in claim order, then
        any extras in sorted order."""
        seen = [phase for phase in self.expected if phase in self.counts]
        extras = sorted(phase for phase in self.counts
                        if phase not in self.expected
                        and phase not in self.exceptional)
        return seen + extras


class ComplexityEnvelopeMonitor(Monitor):
    """Messages per decision must fit the claimed complexity envelope.

    Samples the collector's transport-level message total at each *new*
    decision slot; the per-slot delta is that decision's message cost.
    Windows containing exceptional phases (view change, election) are
    excluded — the property boxes claim steady-state complexity.  At run
    end the mean cost is checked against ``factor · n^exponent``
    (exponent 1 for O(N) claims, 2 for O(N²)).
    """

    name = "complexity-envelope"
    category = COMPLEXITY
    kinds = (LOCAL, PHASE)

    def __init__(self, decide_labels, n, exponent, factor=16.0,
                 slot_key=None, exceptional_phases=(), phase_protocols=()):
        super().__init__()
        self.decide_labels = tuple(decide_labels)
        self._decide_set = frozenset(decide_labels)
        self.n = n
        self.exponent = exponent
        self.factor = factor
        self.slot_key = slot_key
        self.exceptional_phases = tuple(exceptional_phases)
        self._exceptional_set = frozenset(exceptional_phases)
        self.phase_protocols = tuple(phase_protocols)
        self.samples = []
        self._seen_slots = set()
        self._last_total = 0
        self._window_tainted = False
        self._skipped_windows = 0

    def interests(self):
        wants = {LOCAL: self.decide_labels}
        if self.exceptional_phases:
            # Only tainting phases matter; a spec with no exceptional
            # phases never subscribes to the PHASE stream at all.
            wants[PHASE] = self.exceptional_phases
        return wants

    def _collector(self):
        return self.hub.collector if self.hub is not None else None

    def observe(self, event):
        if event.kind == PHASE:
            if (event.mtype in self._exceptional_set
                    and event.get("protocol") in self.phase_protocols):
                self._window_tainted = True
            return
        if event.mtype not in self._decide_set:
            return
        slot = event.get(self.slot_key, None) if self.slot_key else ""
        if slot is None or slot in self._seen_slots:
            return
        self._seen_slots.add(slot)
        collector = self._collector()
        if collector is None:
            return
        total = collector.messages_total
        if self._window_tainted:
            self._skipped_windows += 1
        else:
            self.samples.append(total - self._last_total)
        self._last_total = total
        self._window_tainted = False

    @property
    def bound(self):
        return self.factor * float(self.n) ** self.exponent

    def mean_cost(self):
        if not self.samples:
            return None
        return sum(self.samples) / len(self.samples)

    def finish(self):
        mean = self.mean_cost()
        if mean is not None and mean > self.bound:
            self.record(
                "mean %.1f messages/decision exceeds the O(N^%d) envelope "
                "%.1f (n=%d, factor %g)" % (mean, self.exponent, self.bound,
                                            self.n, self.factor),
                mean="%.3f" % mean, bound="%.1f" % self.bound,
                samples=len(self.samples), skipped=self._skipped_windows)


class LivenessWatchdog(Monitor):
    """No decision within the event horizon ⇒ stall anomaly.

    Counts trace events since the last decision milestone; crossing
    ``horizon_events`` trips a liveness anomaly (then re-arms, so a
    permanent stall trips once per horizon, not per event).  A run that
    ends with no decision at all is reported at :meth:`finish` — the
    hub's per-monitor finish guard ensures this verdict is delivered
    even for watchdogs registered after an earlier ``finish`` (a run
    that was cut short mid-view).

    On a live hub the watchdog rides the tracer's counter channel
    (:meth:`tick`): per event it pays a few integer ops and only
    materializes the offending trace event when it actually trips.
    :meth:`observe` implements the same automaton for the direct
    event-object path.
    """

    name = "liveness-watchdog"
    category = LIVENESS
    kinds = ()
    counts_events = True

    def __init__(self, decide_labels, horizon_events=4000):
        super().__init__()
        self.decide_labels = tuple(decide_labels)
        self._decide_set = frozenset(decide_labels)
        self.horizon_events = horizon_events
        self.decisions = 0
        self._since_decide = 0

    def tick(self, kind, node, mtype):
        """Counter-channel step: same automaton as :meth:`observe`,
        without an event object (the tripping event is recovered from
        the tracer only when a trip actually happens)."""
        if kind == LOCAL and mtype in self._decide_set:
            self.decisions += 1
            self._since_decide = 0
            return
        self._since_decide += 1
        if self._since_decide >= self.horizon_events:
            self._trip(self._last_event())

    def observe(self, event):
        if event.kind == LOCAL and event.mtype in self._decide_set:
            self.decisions += 1
            self._since_decide = 0
            return
        self._since_decide += 1
        if self._since_decide >= self.horizon_events:
            self._trip(event)

    def _trip(self, event):
        self.record(
            "no decision within the last %d events (%d decisions so "
            "far) — stalled" % (self.horizon_events, self.decisions),
            event=event, decisions=self.decisions,
            horizon=self.horizon_events)
        self._since_decide = 0

    def finish(self):
        if self.decisions == 0:
            self.record("run ended with no decision at all",
                        decisions=0, horizon=self.horizon_events)
