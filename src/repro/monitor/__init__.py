"""Streaming runtime monitors: online safety/liveness/complexity checks.

The subsystem the ISSUE calls "live conformance monitors": a
:class:`MonitorHub` subscribes to the tracer as a streaming sink and
fans every trace event out to invariant monitors that evaluate the
paper's per-protocol property box *while the run executes* — agreement
per slot, leader uniqueness per epoch, quorum-certificate-before-decide,
equivocation detection, phase-alphabet conformance, message-complexity
envelopes and a liveness watchdog.  Violations become structured
:class:`Anomaly` records with rendered causal context, and
:func:`run_check` wraps a whole monitored run into a deterministic
conformance report (``python -m repro check``).

Like tracing and telemetry, monitors are strictly opt-in
(``Cluster(monitors=True)``) and purely observational: a monitor-less
run pays nothing, and a monitored run is behaviourally identical to an
unmonitored one with the same seed.
"""

from .anomaly import (
    CATEGORIES,
    COMPLEXITY,
    CONFORMANCE,
    LIVENESS,
    SAFETY,
    Anomaly,
)
from .base import (
    NULL_HUB,
    Monitor,
    MonitorHub,
    NullMonitor,
    NullMonitorHub,
    render_context,
)
from .conformance import (
    check_protocols,
    fleet_checks,
    render_report,
    report_to_json,
    run_check,
    supported_faults,
    write_report,
)
from .library import (
    AgreementMonitor,
    ComplexityEnvelopeMonitor,
    EquivocationMonitor,
    LeaderUniquenessMonitor,
    LivenessWatchdog,
    PhaseConformanceMonitor,
    QuorumCertificateMonitor,
)
from .specs import (
    MONITOR_SPECS,
    CertSpec,
    MonitorSpec,
    build_monitors,
    spec_for,
)

__all__ = [
    "Anomaly",
    "CATEGORIES",
    "SAFETY",
    "LIVENESS",
    "COMPLEXITY",
    "CONFORMANCE",
    "Monitor",
    "MonitorHub",
    "NullMonitor",
    "NullMonitorHub",
    "NULL_HUB",
    "render_context",
    "AgreementMonitor",
    "LeaderUniquenessMonitor",
    "QuorumCertificateMonitor",
    "EquivocationMonitor",
    "PhaseConformanceMonitor",
    "ComplexityEnvelopeMonitor",
    "LivenessWatchdog",
    "MonitorSpec",
    "CertSpec",
    "MONITOR_SPECS",
    "spec_for",
    "build_monitors",
    "run_check",
    "check_protocols",
    "fleet_checks",
    "supported_faults",
    "render_report",
    "report_to_json",
    "write_report",
]
