"""repro — 40 Years of Consensus, reproduced.

A deterministic discrete-event reproduction of every system in the
ICDE 2020 tutorial "Modern Large-Scale Data Management Systems after 40
Years of Consensus" (Amiri, Agrawal, El Abbadi): Paxos and its family,
Raft, 2PC/3PC, PBFT, Zyzzyva, HotStuff, MinBFT, CheapBFT, UpRight,
SeeMoRe, XFT, Ben-Or, Pease-Shostak-Lamport interactive consistency,
and Bitcoin-style PoW / PoS blockchains — all on one simulated network
substrate with full fault injection.

Quickstart::

    from repro.smr import ReplicatedKV

    store = ReplicatedKV(n_replicas=3, protocol="multi-paxos", seed=7)
    store.put("hello", "world")
    store.crash_leader()
    assert store.get("hello") == "world"

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced figures/tables.
"""

__version__ = "1.0.0"

from .core.cluster import Cluster  # noqa: F401  (primary entry point)

__all__ = ["Cluster", "__version__"]
