"""Measurement: message/latency accounting and complexity fitting."""

from .collector import LatencyRecord, MetricsCollector
from .complexity import classify_order, fit_order

__all__ = ["LatencyRecord", "MetricsCollector", "classify_order", "fit_order"]
