"""Message, phase and latency accounting.

Every experiment in the paper's property boxes reduces to counting:
how many replicas, how many communication phases, how many messages
(and how that count scales with N).  The collector hangs off the
network transport and records everything passively; protocols mark
phase boundaries and request-level latencies explicitly.

The collector sits *on top of* the telemetry registry: its flat counters
remain the cheap always-on substrate every benchmark reads, and when a
:class:`~repro.telemetry.MetricsRegistry` is attached (via
``Cluster(telemetry=True)``) the same ``mark_phase``/``start_request``
call sites additionally feed labeled series — per-phase latency
histograms (the time from entering a phase to entering the next, i.e.
how long that phase's quorum took to assemble, in message delays) and
per-protocol request-latency histograms.  With no registry attached the
extra work is a single ``is not None`` check per call.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional


def _protocol_from_label(label):
    """Request labels follow ``"<protocol>:<id>"``; default to the whole
    label when no protocol prefix was used."""
    head, sep, _tail = str(label).partition(":")
    return head if sep else str(label)


@dataclass
class LatencyRecord:
    """One request's life: virtual start/end time and phase count.

    ``unmatched`` marks a ``finish_request`` that never saw a matching
    ``start_request``; such records carry no meaningful latency and are
    excluded from the latency aggregates.
    """

    label: str
    started_at: float
    finished_at: Optional[float] = None
    phases: int = 0
    unmatched: bool = False

    @property
    def latency(self):
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class MetricsCollector:
    """Passive counters fed by :class:`~repro.net.Network` and protocols.

    Message counting is *batched*: the transport increments a per-link
    slot (a two-cell list handed out by :meth:`slot_for`) on every send,
    and the aggregate views — :attr:`messages_total`, :attr:`by_type`,
    :attr:`by_sender`, :attr:`by_link` — fold the slots in on read.
    Reads are exact at any point mid-run (slots are updated
    synchronously), but the per-message cost drops to two list-index
    increments instead of five counter updates.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.trace.Tracer`; phase marks and request
        boundaries are mirrored into the trace when present.
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; phase marks
        and request boundaries additionally feed labeled histograms and
        counters when present.
    """

    def __init__(self, tracer=None, registry=None):
        self.tracer = tracer
        self.registry = registry
        self.phase_marks = []
        self.finished_requests = []
        self._open_requests = {}
        #: (src, dst, mtype) -> [count, bytes] accumulation slot.  The
        #: network holds direct references and bumps the cells inline;
        #: :meth:`_flush` folds them into the aggregates below.
        self._slots = {}
        self._messages_total = 0
        self._bytes_total = 0
        self._by_type = Counter()
        self._by_sender = Counter()
        self._by_link = Counter()
        #: Per-protocol (phase, time) of the most recent mark, for phase
        #: latency deltas.
        self._phase_cursor = {}
        #: Pre-resolved registry handles: label sets repeat run-long, so
        #: each is sorted/hashed once and the marks pay a dict hit plus a
        #: call.
        self._mark_handles = {}
        self._latency_handles = {}
        self._request_handles = {}

    # -- fed by the network --------------------------------------------

    def slot_for(self, src, dst, mtype):
        """The ``[count, bytes]`` accumulation slot for one link+mtype.

        The transport resolves this once per (message class, src, dst)
        and then increments the two cells directly on every send — the
        batched fast lane that replaces per-message
        :meth:`record_message` calls.
        """
        key = (src, dst, mtype)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slots[key] = [0, 0]
        return slot

    def record_message(self, src, dst, message, size=None):
        """Count one sent message.  ``size`` lets the transport share a
        single ``size_estimate()`` between the collector and the
        telemetry byte counters instead of costing the fields twice."""
        slot = self.slot_for(src, dst, message.mtype)
        slot[0] += 1
        slot[1] += size if size is not None else message.size_estimate()

    def _flush(self):
        """Fold pending slot deltas into the aggregate counters."""
        total = self._messages_total
        total_bytes = self._bytes_total
        by_type, by_sender, by_link = \
            self._by_type, self._by_sender, self._by_link
        for (src, dst, mtype), slot in self._slots.items():
            count = slot[0]
            if count:
                total += count
                total_bytes += slot[1]
                by_type[mtype] += count
                by_sender[src] += count
                by_link[(src, dst)] += count
                slot[0] = 0
                slot[1] = 0
        self._messages_total = total
        self._bytes_total = total_bytes

    @property
    def messages_total(self):
        """Total messages sent (exact — pending slots are folded in)."""
        self._flush()
        return self._messages_total

    @property
    def bytes_total(self):
        self._flush()
        return self._bytes_total

    @property
    def by_type(self):
        self._flush()
        return self._by_type

    @property
    def by_sender(self):
        self._flush()
        return self._by_sender

    @property
    def by_link(self):
        self._flush()
        return self._by_link

    # -- fed by protocols ------------------------------------------------

    def mark_phase(self, protocol, phase, now):
        """Record that ``protocol`` entered communication phase ``phase``."""
        self.phase_marks.append((protocol, phase, now))
        registry = self.registry
        if registry is not None:
            key = (protocol, phase)
            inc = self._mark_handles.get(key)
            if inc is None:
                inc = registry.handle(
                    "counter", "phase_marks_total", protocol=str(protocol),
                    phase=str(phase)).inc
                self._mark_handles[key] = inc
            inc()
            previous = self._phase_cursor.get(protocol)
            if previous is not None:
                prev_phase, prev_time = previous
                prev_key = (protocol, prev_phase)
                observe = self._latency_handles.get(prev_key)
                if observe is None:
                    observe = registry.handle(
                        "histogram", "phase_latency", protocol=str(protocol),
                        phase=str(prev_phase)).observe
                    self._latency_handles[prev_key] = observe
                observe(now - prev_time)
            self._phase_cursor[protocol] = (phase, now)
        if self.tracer is not None:
            self.tracer.on_phase(protocol, phase)

    def phases_for(self, protocol):
        """Distinct phases recorded for a protocol, in first-seen order."""
        seen = []
        for proto, phase, _now in self.phase_marks:
            if proto == protocol and phase not in seen:
                seen.append(phase)
        return seen

    def start_request(self, label, now):
        record = LatencyRecord(label, now)
        self._open_requests[label] = record
        if self.registry is not None:
            self._request_handle("requests_started_total",
                                 _protocol_from_label(label))()
        if self.tracer is not None:
            self.tracer.on_request(label, "start")
        return record

    def _request_handle(self, name, protocol):
        """Cached bound ``inc``/``observe`` for a per-protocol request
        series (created on first use)."""
        key = (name, protocol)
        handle = self._request_handles.get(key)
        if handle is None:
            kind = "histogram" if name == "request_latency" else "counter"
            instrument = self.registry.handle(kind, name, protocol=protocol)
            handle = instrument.observe if kind == "histogram" \
                else instrument.inc
            self._request_handles[key] = handle
        return handle

    def request_open(self, label):
        """True while ``label`` has been started but not finished."""
        return label in self._open_requests

    def finish_request(self, label, now, phases=0):
        record = self._open_requests.pop(label, None)
        if record is None:
            # Never started: keep the record for the audit trail but tag
            # it so it cannot fabricate a zero latency in the aggregates.
            record = LatencyRecord(label, now, unmatched=True)
        record.finished_at = now
        record.phases = phases
        self.finished_requests.append(record)
        if self.registry is not None:
            protocol = _protocol_from_label(label)
            if record.unmatched:
                self._request_handle("requests_unmatched_total", protocol)()
            else:
                self._request_handle("requests_finished_total", protocol)()
                self._request_handle("request_latency",
                                     protocol)(record.latency)
        if self.tracer is not None:
            self.tracer.on_request(label, "end")
        return record

    # -- derived -----------------------------------------------------------

    def latencies(self):
        """Completed request latencies, in completion order.

        Unmatched records (``finish_request`` without a start) are
        excluded — they have no real start time.
        """
        return [r.latency for r in self.finished_requests if not r.unmatched]

    def mean_latency(self):
        values = self.latencies()
        if not values:
            return None
        return sum(values) / len(values)

    def unmatched_requests(self):
        """Count of finish_request calls that never saw a start."""
        return sum(1 for r in self.finished_requests if r.unmatched)

    def messages_of_types(self, *mtypes):
        return sum(self.by_type[t] for t in mtypes)

    def snapshot(self):
        """Plain-dict summary for tables and EXPERIMENTS.md.

        Keys (top-level and within ``by_type``) are emitted in sorted
        order so JSON serialisations are deterministic regardless of
        message first-seen order.
        """
        return {
            "by_type": {mtype: self.by_type[mtype]
                        for mtype in sorted(self.by_type)},
            "bytes_total": self.bytes_total,
            "mean_latency": self.mean_latency(),
            "messages_total": self.messages_total,
            "requests": len(self.finished_requests),
            "unmatched_requests": self.unmatched_requests(),
        }

    def reset(self):
        self._messages_total = 0
        self._bytes_total = 0
        self._by_type.clear()
        self._by_sender.clear()
        self._by_link.clear()
        # Zero slots in place: the network holds direct references.
        for slot in self._slots.values():
            slot[0] = 0
            slot[1] = 0
        self.phase_marks.clear()
        self._open_requests.clear()
        self.finished_requests.clear()
        self._phase_cursor.clear()
