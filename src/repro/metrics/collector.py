"""Message, phase and latency accounting.

Every experiment in the paper's property boxes reduces to counting:
how many replicas, how many communication phases, how many messages
(and how that count scales with N).  The collector hangs off the
network transport and records everything passively; protocols mark
phase boundaries and request-level latencies explicitly.
"""

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class LatencyRecord:
    """One request's life: virtual start/end time and phase count."""

    label: str
    started_at: float
    finished_at: float = None
    phases: int = 0

    @property
    def latency(self):
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


@dataclass
class MetricsCollector:
    """Passive counters fed by :class:`~repro.net.Network` and protocols."""

    messages_total: int = 0
    bytes_total: int = 0
    by_type: Counter = field(default_factory=Counter)
    by_sender: Counter = field(default_factory=Counter)
    by_link: Counter = field(default_factory=Counter)
    phase_marks: list = field(default_factory=list)
    _open_requests: dict = field(default_factory=dict)
    finished_requests: list = field(default_factory=list)
    #: Optional :class:`~repro.trace.Tracer`; phase marks and request
    #: boundaries are mirrored into the trace when present.
    tracer: object = None

    # -- fed by the network --------------------------------------------

    def record_message(self, src, dst, message):
        self.messages_total += 1
        self.bytes_total += message.size_estimate()
        self.by_type[message.mtype] += 1
        self.by_sender[src] += 1
        self.by_link[(src, dst)] += 1

    # -- fed by protocols ------------------------------------------------

    def mark_phase(self, protocol, phase, now):
        """Record that ``protocol`` entered communication phase ``phase``."""
        self.phase_marks.append((protocol, phase, now))
        if self.tracer is not None:
            self.tracer.on_phase(protocol, phase)

    def phases_for(self, protocol):
        """Distinct phases recorded for a protocol, in first-seen order."""
        seen = []
        for proto, phase, _now in self.phase_marks:
            if proto == protocol and phase not in seen:
                seen.append(phase)
        return seen

    def start_request(self, label, now):
        record = LatencyRecord(label, now)
        self._open_requests[label] = record
        if self.tracer is not None:
            self.tracer.on_request(label, "start")
        return record

    def finish_request(self, label, now, phases=0):
        record = self._open_requests.pop(label, None)
        if record is None:
            record = LatencyRecord(label, now)
        record.finished_at = now
        record.phases = phases
        self.finished_requests.append(record)
        if self.tracer is not None:
            self.tracer.on_request(label, "end")
        return record

    # -- derived -----------------------------------------------------------

    def latencies(self):
        """Completed request latencies, in completion order."""
        return [r.latency for r in self.finished_requests]

    def mean_latency(self):
        values = self.latencies()
        if not values:
            return None
        return sum(values) / len(values)

    def messages_of_types(self, *mtypes):
        return sum(self.by_type[t] for t in mtypes)

    def snapshot(self):
        """Plain-dict summary for tables and EXPERIMENTS.md."""
        return {
            "messages_total": self.messages_total,
            "bytes_total": self.bytes_total,
            "by_type": dict(self.by_type),
            "mean_latency": self.mean_latency(),
            "requests": len(self.finished_requests),
        }

    def reset(self):
        self.messages_total = 0
        self.bytes_total = 0
        self.by_type.clear()
        self.by_sender.clear()
        self.by_link.clear()
        self.phase_marks.clear()
        self._open_requests.clear()
        self.finished_requests.clear()
