"""Empirical message-complexity fitting.

The paper labels each protocol O(N), O(N²) or — for PBFT's view change —
O(N³).  Given measured (n, messages) samples from runs at increasing
cluster sizes, :func:`fit_order` estimates the polynomial order by
log–log least squares, and :func:`classify_order` maps the exponent to
the paper's buckets so the E1 bench can assert "measured complexity
matches the claim".
"""

import math


def fit_order(samples):
    """Least-squares slope of log(messages) vs log(n).

    Parameters
    ----------
    samples:
        Iterable of ``(n, messages)`` with n >= 1 and messages >= 1.
        At least two distinct n values are required.

    Returns the fitted exponent as a float (1.0 ≈ linear, 2.0 ≈
    quadratic, ...).
    """
    points = [(float(n), float(m)) for n, m in samples]
    if len({n for n, _ in points}) < 2:
        raise ValueError("need samples at >= 2 distinct cluster sizes")
    if any(n <= 0 or m <= 0 for n, m in points):
        raise ValueError("n and messages must be positive")
    xs = [math.log(n) for n, _ in points]
    ys = [math.log(m) for _, m in points]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den


def classify_order(exponent, tolerance=0.5):
    """Bucket a fitted exponent into the paper's complexity classes.

    Returns one of ``"O(N)"``, ``"O(N^2)"``, ``"O(N^3)"`` when the
    exponent is within ``tolerance`` of 1, 2 or 3; otherwise a formatted
    ``"O(N^x.x)"`` so mismatches are visible rather than hidden.
    """
    for target, label in ((1, "O(N)"), (2, "O(N^2)"), (3, "O(N^3)")):
        if abs(exponent - target) <= tolerance:
            return label
    return "O(N^%.1f)" % exponent
