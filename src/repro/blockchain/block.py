"""Blocks: header, Merkle-committed transactions, real SHA-256 PoW.

The header carries exactly the fields from the slides' mining figure —
version, previous block hash, Merkle tree root hash, timestamp, current
target bits, nonce — and the proof of work is literally
``SHA256(header) < target`` over a 256-bit hash space, at a laptop-scale
target.
"""

from dataclasses import dataclass, field

from ..crypto.hashing import HASH_SPACE, sha256_hex, sha256_int
from ..crypto.merkle import MerkleTree

#: Default target: 1 in 2^16 hashes succeeds — milliseconds per block on
#: a laptop, same statistics as Bitcoin's 19-zero targets.
DEFAULT_TARGET = HASH_SPACE >> 16


@dataclass(frozen=True)
class BlockHeader:
    version: int
    prev_hash: str
    merkle_root: str
    timestamp: float
    target: int  # the 256-bit difficulty target ("current target bits")
    nonce: int

    @property
    def hash(self):
        return sha256_hex(self.version, self.prev_hash, self.merkle_root,
                          self.timestamp, self.target, self.nonce)

    @property
    def hash_int(self):
        return sha256_int(self.version, self.prev_hash, self.merkle_root,
                          self.timestamp, self.target, self.nonce)

    def meets_target(self):
        """The proof of work: header hash below the target."""
        return self.hash_int < self.target

    def work(self):
        """Expected hashes to find this block: HASH_SPACE / target.
        Cumulative work decides between competing chains."""
        return HASH_SPACE // max(self.target, 1)


@dataclass(frozen=True)
class PowBlock:
    header: BlockHeader
    transactions: tuple
    height: int = field(default=0, compare=False)

    @property
    def hash(self):
        return self.header.hash

    def merkle_ok(self):
        if not self.transactions:
            return False
        tree = MerkleTree([tx.txid for tx in self.transactions])
        return tree.root == self.header.merkle_root


GENESIS_PREV = "0" * 64


def build_block(prev_hash, transactions, timestamp, target, nonce=0,
                height=0, version=2):
    """Assemble a block with the correct Merkle root (nonce not yet
    searched — see :func:`mine`)."""
    tree = MerkleTree([tx.txid for tx in transactions])
    header = BlockHeader(version, prev_hash, tree.root, timestamp, target,
                         nonce)
    return PowBlock(header, tuple(transactions), height)


def mine(block, max_attempts=1_000_000):
    """The nonce search from the slides: increment the nonce until
    ``SHA256(header) < target``.  Returns the solved block (or ``None``
    if ``max_attempts`` hashes were not enough).

    This is the *actual* computation — every attempt is a real SHA-256 —
    run at small targets.  The network-scale mining *race* is modelled
    statistically by the miners (see :mod:`repro.blockchain.miner`);
    this function exists so tests and examples exercise the genuine
    nonce-search loop the paper's mining-details figures walk through.
    """
    header = block.header
    for nonce in range(max_attempts):
        candidate = BlockHeader(header.version, header.prev_hash,
                                header.merkle_root, header.timestamp,
                                header.target, nonce)
        if candidate.meets_target():
            return PowBlock(candidate, block.transactions, block.height)
    return None


def validate_pow(block):
    """Structural validity: proof of work + Merkle commitment."""
    return block.header.meets_target() and block.merkle_ok()
