"""SPV light clients — addressing PoW's "suboptimal light client
support".

A light client stores only block *headers* (80-ish bytes each instead
of full blocks) and verifies:

* **header-chain validity** — hash pointers link, every header meets
  its own proof-of-work target;
* **transaction inclusion** — a Merkle audit path from a full node ties
  a transaction id to a header's Merkle root, with confirmation depth
  taken from the header chain.

The client trusts proof-of-work, not the serving node: a full node can
*withhold* information but cannot fabricate an inclusion proof or a
heavier header chain without doing the work.
"""

from dataclasses import dataclass

from ..crypto.merkle import MerkleTree


@dataclass(frozen=True)
class InclusionProof:
    """What a full node hands a light client: the txid, the height and
    header hash of the containing block, and the Merkle path."""

    txid: str
    height: int
    header_hash: str
    merkle_path: tuple  # ((sibling_hash, is_right), ...)


def build_inclusion_proof(chain, txid):
    """Full-node side: produce an :class:`InclusionProof` for ``txid``
    from the main chain, or None if unconfirmed."""
    for block in chain.main_chain():
        ids = [tx.txid for tx in block.transactions]
        if txid in ids:
            index = ids.index(txid)
            tree = MerkleTree(ids)
            return InclusionProof(txid, block.height, block.hash,
                                  tuple(tree.proof(index)))
    return None


class LightClient:
    """Header-only chain follower.

    Feed it headers with :meth:`add_header`; it keeps the valid chain
    and answers inclusion queries against proofs from full nodes.
    """

    def __init__(self, genesis_header, check_pow=True):
        self.headers = [genesis_header]
        self._index = {genesis_header.hash: 0}
        self.check_pow = check_pow
        self.rejected = 0

    @property
    def height(self):
        return len(self.headers) - 1

    @property
    def tip(self):
        return self.headers[-1]

    def add_header(self, header):
        """Append a header extending the tip.  Returns True on accept."""
        if header.prev_hash != self.tip.hash:
            self.rejected += 1
            return False
        if self.check_pow and not header.meets_target():
            self.rejected += 1
            return False
        self.headers.append(header)
        self._index[header.hash] = len(self.headers) - 1
        return True

    def sync_from(self, chain):
        """Pull every main-chain header from a full node's chain."""
        added = 0
        for block in chain.main_chain()[1:]:
            if block.header.prev_hash == self.tip.hash:
                if self.add_header(block.header):
                    added += 1
        return added

    def storage_headers_bytes(self):
        """Approximate light-client storage: 80 bytes per header."""
        return 80 * len(self.headers)

    def verify_inclusion(self, proof, min_confirmations=0):
        """Check an :class:`InclusionProof` against the local header
        chain.  Returns the confirmation depth, or None if invalid or
        too shallow."""
        position = self._index.get(proof.header_hash)
        if position is None or position != proof.height:
            return None
        header = self.headers[position]
        if not MerkleTree.verify(proof.txid, list(proof.merkle_path),
                                 header.merkle_root):
            return None
        confirmations = self.height - proof.height
        if confirmations < min_confirmations:
            return None
        return confirmations
