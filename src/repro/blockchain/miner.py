"""Miners: the network-scale mining race over a gossip overlay.

A real miner performs ~10²⁰ hashes per block; simulating each hash is
impossible and unnecessary — finding a PoW solution is a Poisson
process, so the *time to next block* for a miner with hashrate h and
target T is exponential with rate ``h · T / 2²⁵⁶``.  Each miner samples
that race; the winner assembles a block on its current tip and gossips
it.  Everything downstream of the race — forks when propagation delay
is comparable to the block interval, longest-(most-work)-chain
convergence, abandoned transactions, centralization of rewards in
proportion to hash share — emerges from the model, which is exactly the
behaviour E15 measures.  (The genuine nonce-search loop lives in
:func:`repro.blockchain.block.mine` and is unit-tested separately.)
"""

from dataclasses import dataclass

from ..core.node import Node
from ..crypto.hashing import HASH_SPACE
from ..net.message import Message
from .block import build_block
from .chain import Blockchain
from .transactions import make_coinbase


@dataclass(frozen=True)
class BlockAnnounce(Message):
    block: object

    def size_estimate(self):
        return 80 + 32 * len(self.block.transactions)


@dataclass(frozen=True)
class TxAnnounce(Message):
    tx: object


@dataclass(frozen=True)
class BlockRequest(Message):
    """Sync: 'send me the block with this hash' — issued when an
    announced block's parent is unknown (the requester walks the chain
    backwards until it reconnects)."""

    block_hash: str


@dataclass(frozen=True)
class BlockResponse(Message):
    block: object

    def size_estimate(self):
        return 80 + 32 * len(self.block.transactions)


class Miner(Node):
    """A mining node: maintains its own chain replica, races for blocks,
    gossips announcements.

    Parameters
    ----------
    hashrate:
        Hashes per virtual-time unit.
    chain_params:
        Keyword arguments for this miner's :class:`Blockchain` replica
        (``pow_check`` defaults to False here — see the module docstring).
    """

    def __init__(self, sim, network, name, peers, hashrate, chain_params=None):
        super().__init__(sim, network, name)
        self.peers = [p for p in peers if p != name]
        self.hashrate = hashrate
        params = dict(chain_params or {})
        params.setdefault("pow_check", False)
        self.chain = Blockchain(**params)
        self.mempool = {}
        self.blocks_mined = 0
        self._mining_on = None
        self._mine_event = None
        self._orphans = {}  # parent_hash -> [blocks waiting for it]

    def on_start(self):
        self._restart_race()

    def on_restart(self):
        # A recovered miner resumes the race on its (stale) tip and
        # catches up through the sync path as announcements arrive.
        self._restart_race()

    # -- the race ---------------------------------------------------------------

    def _race_rate(self):
        target = self.chain.expected_target(self.chain.tip)
        return self.hashrate * target / HASH_SPACE

    def _restart_race(self):
        if self._mine_event is not None:
            self._mine_event.cancel()
        if self.hashrate <= 0 or self.crashed:
            return
        self._mining_on = self.chain.tip
        delay = self.sim.rng.expovariate(self._race_rate())
        self._mine_event = self.sim.schedule(delay, self._found_block)

    def _found_block(self):
        if self.crashed or self.chain.tip != self._mining_on:
            return  # stale; a restart is already scheduled
        height = self.chain.height + 1
        coinbase = make_coinbase(self.name, self.chain.reward_at(height),
                                 height)
        transactions = [coinbase]
        ledger = self.chain.ledger().copy()
        for _txid, tx in sorted(self.mempool.items()):
            if ledger.can_apply(tx):
                ledger.apply(tx)
                transactions.append(tx)
        block = build_block(
            self.chain.tip,
            transactions,
            timestamp=self.sim.now,
            target=self.chain.expected_target(self.chain.tip),
            height=height,
        )
        if self.chain.add_block(block):
            self.blocks_mined += 1
            self._drop_confirmed(block)
            announce = BlockAnnounce(block)
            for peer in self.peers:
                self.send(peer, announce)
        self._restart_race()

    # -- gossip -----------------------------------------------------------------

    def handle_blockannounce(self, msg, src):
        self._ingest_block(msg.block, src)

    def handle_blockresponse(self, msg, src):
        self._ingest_block(msg.block, src)

    def handle_blockrequest(self, msg, src):
        block = self.chain.blocks.get(msg.block_hash)
        if block is not None:
            self.send(src, BlockResponse(block))

    def _ingest_block(self, block, src):
        if self.chain.contains(block.hash):
            return
        parent = block.header.prev_hash
        if not self.chain.contains(parent):
            # Orphan: park it and walk backwards until we reconnect.
            waiting = self._orphans.setdefault(parent, [])
            if all(b.hash != block.hash for b in waiting):
                waiting.append(block)
                self.send(src, BlockRequest(parent))
            return
        old_tip = self.chain.tip
        if self.chain.add_block(block):
            self._drop_confirmed(block)
            # Relay to the rest of the overlay (flooding).
            announce = BlockAnnounce(block)
            for peer in self.peers:
                if peer != src:
                    self.send(peer, announce)
            self._connect_orphans(block.hash, src)
            if self.chain.tip != old_tip:
                # "Miners join the longest chain to resolve forks."
                self._restart_race()

    def _connect_orphans(self, parent_hash, src):
        """Attach any parked descendants of a freshly connected block."""
        queue = [parent_hash]
        while queue:
            current = queue.pop()
            for orphan in self._orphans.pop(current, []):
                old_tip = self.chain.tip
                if self.chain.add_block(orphan):
                    self._drop_confirmed(orphan)
                    announce = BlockAnnounce(orphan)
                    for peer in self.peers:
                        if peer != src:
                            self.send(peer, announce)
                    queue.append(orphan.hash)
                    if self.chain.tip != old_tip:
                        self._restart_race()

    def handle_txannounce(self, msg, src):
        if msg.tx.txid in self.mempool:
            return
        self.mempool[msg.tx.txid] = msg.tx
        for peer in self.peers:
            if peer != src:
                self.send(peer, msg)

    def submit_transaction(self, tx):
        """Local wallet entry point: accept and gossip a transaction."""
        self.handle_txannounce(TxAnnounce(tx), self.name)

    def _drop_confirmed(self, block):
        for tx in block.transactions:
            self.mempool.pop(tx.txid, None)


@dataclass
class MiningResult:
    miners: list
    duration: float
    messages: int

    def consensus_chain(self):
        """The main chain of the miner with the greatest height (after a
        settle period, all honest miners agree on a common prefix)."""
        best = max(self.miners, key=lambda m: m.chain.height)
        return best.chain.main_chain()

    def common_prefix_height(self):
        """Height up to which every miner's main chain agrees."""
        chains = [m.chain.main_chain() for m in self.miners]
        shortest = min(len(c) for c in chains)
        agree = 0
        for i in range(shortest):
            hashes = {chain[i].hash for chain in chains}
            if len(hashes) > 1:
                break
            agree = i + 1
        return agree - 1  # height of the last agreed block

    def fork_stats(self):
        """(total main-chain blocks, abandoned blocks, fork rate)."""
        best = max(self.miners, key=lambda m: m.chain.height)
        main = best.chain.height
        abandoned = len(best.chain.abandoned_blocks())
        total = main + abandoned
        return main, abandoned, (abandoned / total if total else 0.0)

    def blocks_by_miner(self):
        """Main-chain block counts per coinbase recipient — the
        centralization measurement (hash share → block share)."""
        counts = {}
        for block in self.consensus_chain()[1:]:
            miner = block.transactions[0].recipient
            counts[miner] = counts.get(miner, 0) + 1
        return counts


def run_mining_network(
    cluster,
    hashrates=(100.0, 100.0, 100.0, 100.0),
    target_block_time=60.0,
    duration=6000.0,
    retarget_interval=2016,
    halving_interval=210_000,
    transactions_per_interval=0.0,
):
    """Run a PoW mining network for ``duration`` virtual seconds.

    The initial target is derived from the aggregate hashrate so the
    expected block interval equals ``target_block_time`` from the start.
    """
    total_rate = float(sum(hashrates))
    initial_target = int(HASH_SPACE / (total_rate * target_block_time))
    names = ["m%d" % i for i in range(len(hashrates))]
    params = {
        "initial_target": initial_target,
        "target_block_time": target_block_time,
        "retarget_interval": retarget_interval,
        "halving_interval": halving_interval,
        "pow_check": False,
    }
    miners = [
        cluster.add_node(Miner, name, names, rate, chain_params=params)
        for name, rate in zip(names, hashrates)
    ]
    cluster.start_all()
    cluster.run(until=duration)
    # Settle: stop the races and let announcements drain so every miner
    # converges on the common prefix.
    for miner in miners:
        miner.hashrate = 0.0
        if miner._mine_event is not None:
            miner._mine_event.cancel()
    cluster.run(until=duration + 1000.0)
    return MiningResult(
        miners=miners,
        duration=cluster.now,
        messages=cluster.metrics.messages_total,
    )
