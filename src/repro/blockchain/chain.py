"""The blockchain: hash-pointer chain, forks, reorgs, retargeting.

The tutorial's claims implemented here:

* blocks are connected through **hash pointers**, making the ledger
  tamper-evident (mutating any block breaks every later link);
* mining is probabilistic → **forks**, resolved by "miners join the
  longest chain" (implemented as Bitcoin actually does: the chain with
  the most cumulative *work*);
* transactions in abandoned fork branches are **aborted/resubmitted**;
* **difficulty is adjusted every 2016 blocks** to hold the block
  interval (parameterised so laptop runs cross several retargets);
* the coinbase reward is **halved every 210 000 blocks** (same).

Validation modes: ``pow_check=True`` verifies the real SHA-256 proof of
work (used with :func:`repro.blockchain.block.mine` at small targets);
``pow_check=False`` trusts the statistically-timed mining race of
:mod:`repro.blockchain.miner` while still enforcing linkage, Merkle
commitment, target schedule, reward schedule and transaction validity —
the documented substitution for network-scale hash power.
"""

from ..crypto.hashing import HASH_SPACE
from .block import DEFAULT_TARGET, GENESIS_PREV, build_block, validate_pow
from .transactions import Ledger, block_reward, make_coinbase


class Blockchain:
    """A node's view of the block tree.

    Parameters
    ----------
    initial_target:
        PoW target for the first difficulty era.
    target_block_time:
        Desired seconds between blocks (virtual time).
    retarget_interval:
        Blocks per difficulty era (Bitcoin: 2016).
    halving_interval:
        Blocks per reward era (Bitcoin: 210 000).
    pow_check:
        Verify real SHA-256 PoW on every accepted block.
    """

    MAX_RETARGET_FACTOR = 4.0  # Bitcoin's clamp

    def __init__(self, initial_target=DEFAULT_TARGET, target_block_time=600.0,
                 retarget_interval=2016, halving_interval=210_000,
                 initial_reward=50.0, pow_check=True, keys=None):
        self.initial_target = initial_target
        self.target_block_time = target_block_time
        self.retarget_interval = retarget_interval
        self.halving_interval = halving_interval
        self.initial_reward = initial_reward
        self.pow_check = pow_check
        self.keys = keys

        genesis = build_block(
            GENESIS_PREV,
            [make_coinbase("satoshi", initial_reward, 0)],
            timestamp=0.0,
            target=initial_target,
            height=0,
        )
        self.genesis = genesis
        self.blocks = {genesis.hash: genesis}
        self._parent = {genesis.hash: None}
        self._work = {genesis.hash: genesis.header.work()}
        self._ledgers = {genesis.hash: self._ledger_for_genesis(genesis)}
        self.tip = genesis.hash
        self.reorgs = 0
        self.rejected = 0

    @staticmethod
    def _ledger_for_genesis(genesis):
        ledger = Ledger()
        for tx in genesis.transactions:
            ledger.apply(tx)
        return ledger

    # -- queries ---------------------------------------------------------------

    def height_of(self, block_hash):
        return self.blocks[block_hash].height

    @property
    def height(self):
        return self.blocks[self.tip].height

    def main_chain(self):
        """Blocks from genesis to the tip, in height order."""
        chain = []
        cursor = self.tip
        while cursor is not None:
            chain.append(self.blocks[cursor])
            cursor = self._parent[cursor]
        return list(reversed(chain))

    def ledger(self):
        """The ledger at the current tip."""
        return self._ledgers[self.tip]

    def contains(self, block_hash):
        return block_hash in self.blocks

    def abandoned_blocks(self):
        """Blocks not on the main chain — the forks' losers."""
        on_main = {block.hash for block in self.main_chain()}
        return [b for h, b in self.blocks.items() if h not in on_main]

    def confirmations(self, block_hash):
        """Main-chain depth of a block (0 = tip, None = abandoned)."""
        for depth, block in enumerate(reversed(self.main_chain())):
            if block.hash == block_hash:
                return depth
        return None

    # -- difficulty schedule ------------------------------------------------------

    def expected_target(self, parent_hash):
        """Target for the block extending ``parent_hash``.

        Retargets at era boundaries using the actual timespan of the era
        just ended, clamped to 4× either way — Bitcoin's rule with a
        parameterised interval.
        """
        parent = self.blocks[parent_hash]
        next_height = parent.height + 1
        if next_height % self.retarget_interval != 0:
            return parent.header.target
        # Walk back one full era.
        cursor = parent
        for _ in range(self.retarget_interval - 1):
            prev_hash = self._parent[cursor.hash]
            if prev_hash is None:
                break
            cursor = self.blocks[prev_hash]
        actual = max(parent.header.timestamp - cursor.header.timestamp, 1e-9)
        expected = self.target_block_time * (self.retarget_interval - 1)
        ratio = actual / expected
        ratio = min(max(ratio, 1.0 / self.MAX_RETARGET_FACTOR),
                    self.MAX_RETARGET_FACTOR)
        new_target = int(parent.header.target * ratio)
        return max(1, min(new_target, HASH_SPACE - 1))

    def reward_at(self, height):
        return block_reward(height, self.initial_reward, self.halving_interval)

    # -- extension ---------------------------------------------------------------

    def validate_block(self, block):
        """Full validation against this chain's view.  Returns an error
        string or ``None``."""
        parent_hash = block.header.prev_hash
        if parent_hash not in self.blocks:
            return "unknown parent"
        parent = self.blocks[parent_hash]
        if block.height != parent.height + 1:
            return "wrong height"
        if block.header.target != self.expected_target(parent_hash):
            return "wrong target"
        if self.pow_check and not validate_pow(block):
            return "invalid proof of work"
        if not block.merkle_ok():
            return "merkle root mismatch"
        if not block.transactions or not block.transactions[0].is_coinbase:
            return "missing coinbase"
        coinbase = block.transactions[0]
        if coinbase.amount > self.reward_at(block.height) + 1e-9:
            return "excessive reward"
        ledger = self._ledgers[parent_hash].copy()
        for tx in block.transactions:
            if not tx.is_coinbase and self.keys is not None:
                from .transactions import verify_transaction
                if not verify_transaction(self.keys, tx):
                    return "bad signature"
            if not ledger.can_apply(tx):
                return "invalid transaction"
            ledger.apply(tx)
        self._pending_ledger = ledger
        return None

    def add_block(self, block):
        """Validate and insert; returns True and updates the tip if the
        new branch carries the most work."""
        if block.hash in self.blocks:
            return False
        error = self.validate_block(block)
        if error is not None:
            self.rejected += 1
            return False
        parent_hash = block.header.prev_hash
        self.blocks[block.hash] = block
        self._parent[block.hash] = parent_hash
        self._work[block.hash] = self._work[parent_hash] + block.header.work()
        self._ledgers[block.hash] = self._pending_ledger
        del self._pending_ledger
        if self._work[block.hash] > self._work[self.tip]:
            if self._parent[block.hash] != self.tip:
                self.reorgs += 1
            self.tip = block.hash
            return True
        return True

    # -- convenience ----------------------------------------------------------------

    def next_block(self, miner, transactions=(), timestamp=None, nonce=0):
        """Assemble (not mine) the next block on the current tip, with
        the correct coinbase, height and target."""
        height = self.height + 1
        coinbase = make_coinbase(miner, self.reward_at(height), height)
        return build_block(
            self.tip,
            [coinbase] + list(transactions),
            timestamp=timestamp if timestamp is not None else float(height),
            target=self.expected_target(self.tip),
            nonce=nonce,
            height=height,
        )
