"""Transactions and the reward schedule.

An account-based model (balances, per-sender nonces) rather than full
UTXO — every behaviour the tutorial discusses (signed transactions,
double-spend conflicts across forks, the self-signed coinbase
"TX_reward", halving every 210 000 blocks) is preserved, with far less
bookkeeping.
"""

from dataclasses import dataclass

from ..crypto.hashing import sha256_hex

#: Bitcoin's schedule, scaled: the driver passes a small interval so a
#: laptop run crosses several halvings.
DEFAULT_INITIAL_REWARD = 50.0
DEFAULT_HALVING_INTERVAL = 210_000


@dataclass(frozen=True)
class Transaction:
    """A signed transfer.  ``signature`` is verified against the sender's
    key; the coinbase transaction is self-signed by the miner (sender
    ``COINBASE``)."""

    sender: str
    recipient: str
    amount: float
    nonce: int
    signature: object = None

    COINBASE = "COINBASE"

    @property
    def txid(self):
        return sha256_hex(self.sender, self.recipient, self.amount, self.nonce)

    @property
    def is_coinbase(self):
        return self.sender == self.COINBASE


def make_transaction(keys, sender, recipient, amount, nonce):
    """Build and sign a transfer with ``sender``'s key from ``keys``."""
    signature = keys.signer(sender).sign("tx", sender, recipient, amount, nonce)
    return Transaction(sender, recipient, amount, nonce, signature)


def make_coinbase(miner, reward, height):
    """The miner's self-signed reward transaction ("bitcoin's way to
    create new coins")."""
    return Transaction(Transaction.COINBASE, miner, reward, height)


def verify_transaction(keys, tx):
    """Signature check; coinbase needs none (consensus validates the
    amount against the reward schedule instead)."""
    if tx.is_coinbase:
        return True
    if tx.signature is None:
        return False
    return keys.verify(tx.signature, "tx", tx.sender, tx.recipient,
                       tx.amount, tx.nonce)


def block_reward(height, initial_reward=DEFAULT_INITIAL_REWARD,
                 halving_interval=DEFAULT_HALVING_INTERVAL):
    """The reward at ``height``: halved every ``halving_interval`` blocks
    ("currently, it's 12.5 Bitcoins per block" — era 2 of this curve)."""
    era = height // halving_interval
    if era >= 64:
        return 0.0
    return initial_reward / (2 ** era)


class Ledger:
    """Account balances + nonces; applies validated transactions.

    Used by the chain to validate blocks: a block is invalid if any
    transaction overdraws or replays (wrong nonce), which is what makes
    double-spends across forks mutually exclusive.
    """

    def __init__(self):
        self.balances = {}
        self.nonces = {}

    def copy(self):
        other = Ledger()
        other.balances = dict(self.balances)
        other.nonces = dict(self.nonces)
        return other

    def can_apply(self, tx):
        if tx.is_coinbase:
            return True
        if tx.amount <= 0:
            return False
        if self.balances.get(tx.sender, 0.0) < tx.amount:
            return False
        return tx.nonce == self.nonces.get(tx.sender, 0)

    def apply(self, tx):
        if not self.can_apply(tx):
            raise ValueError("invalid transaction %r" % (tx,))
        if not tx.is_coinbase:
            self.balances[tx.sender] = self.balances.get(tx.sender, 0.0) - tx.amount
            self.nonces[tx.sender] = self.nonces.get(tx.sender, 0) + 1
        self.balances[tx.recipient] = (
            self.balances.get(tx.recipient, 0.0) + tx.amount
        )

    def balance(self, account):
        return self.balances.get(account, 0.0)

    def total_supply(self):
        return sum(self.balances.values())
