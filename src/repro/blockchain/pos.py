"""Proof of Stake: randomized and coin-age-based validator selection.

From the slides: "a stakeholder who has p fraction of the coins in
circulation creates a new block with p probability".  The "don't the
rich get richer?" mitigations shown are:

* **randomized block selection** — a combination of a random number and
  the stake size (implemented as stake-weighted lottery);
* **coin-age-based selection** — weight = coins × days held, where coins
  "unspent for at least 30 days begin competing", the probability "reaches
  a maximum after 90 days", and a winner's coin age resets.

Both selectors are deterministic functions of the shared RNG, so a
seeded simulation reproduces identical validator schedules.
"""

from dataclasses import dataclass

MIN_STAKE_AGE_DAYS = 30.0
MAX_STAKE_AGE_DAYS = 90.0


@dataclass
class Stakeholder:
    name: str
    stake: float
    stake_since_day: float = 0.0  # when the coins were last moved/won

    def coin_age_weight(self, today):
        """stake × effective-days, gated at 30 and capped at 90 days."""
        days_held = today - self.stake_since_day
        if days_held < MIN_STAKE_AGE_DAYS:
            return 0.0
        return self.stake * min(days_held, MAX_STAKE_AGE_DAYS)


def select_randomized(rng, stakeholders):
    """Stake-weighted lottery: P(win) = stake / total stake."""
    total = sum(s.stake for s in stakeholders)
    if total <= 0:
        raise ValueError("no stake in the system")
    point = rng.uniform(0.0, total)
    cumulative = 0.0
    for holder in stakeholders:
        cumulative += holder.stake
        if point <= cumulative:
            return holder
    return stakeholders[-1]


def select_coin_age(rng, stakeholders, today):
    """Coin-age lottery; falls back to pure stake weighting when no
    holder has matured coins (bootstrap)."""
    weights = [s.coin_age_weight(today) for s in stakeholders]
    total = sum(weights)
    if total <= 0:
        return select_randomized(rng, stakeholders)
    point = rng.uniform(0.0, total)
    cumulative = 0.0
    for holder, weight in zip(stakeholders, weights):
        cumulative += weight
        if point <= cumulative:
            return holder
    return stakeholders[-1]


@dataclass
class PosResult:
    stakeholders: list
    blocks_by: dict
    days: float

    def share_of(self, name):
        total = sum(self.blocks_by.values())
        return self.blocks_by.get(name, 0) / total if total else 0.0

    def stake_share_of(self, name):
        total = sum(s.stake for s in self.stakeholders)
        holder = next(s for s in self.stakeholders if s.name == name)
        return holder.stake / total


def run_pos_simulation(rng, stakes, blocks=5000, selection="randomized",
                       block_reward=1.0, blocks_per_day=144):
    """Produce ``blocks`` blocks under the chosen selection rule.

    ``stakes`` maps name → initial stake.  Rewards accrue to winners'
    stakes; under coin-age selection a winner's age resets ("users send
    the coins back into their wallet"), matching the slide's description.

    Returns a :class:`PosResult` with per-validator block counts.
    """
    if selection not in ("randomized", "coin-age"):
        raise ValueError("selection must be 'randomized' or 'coin-age'")
    holders = [Stakeholder(name, stake) for name, stake in sorted(stakes.items())]
    blocks_by = {holder.name: 0 for holder in holders}
    for height in range(blocks):
        today = height / blocks_per_day
        if selection == "randomized":
            winner = select_randomized(rng, holders)
        else:
            winner = select_coin_age(rng, holders, today)
            winner.stake_since_day = today  # age resets on use
        winner.stake += block_reward
        blocks_by[winner.name] += 1
    return PosResult(holders, blocks_by, blocks / blocks_per_day)
