"""Blockchain substrate: PoW chain, mining network, attacks, PoS."""

from .attacks import (
    doublespend_success_probability,
    simulate_doublespend,
    simulate_selfish_mining,
)
from .block import (
    DEFAULT_TARGET,
    BlockHeader,
    PowBlock,
    build_block,
    mine,
    validate_pow,
)
from .chain import Blockchain
from .miner import Miner, MiningResult, run_mining_network
from .pos_variants import (
    DposResult,
    PoaResult,
    elect_witnesses,
    run_dpos,
    run_poa,
)
from .spv import InclusionProof, LightClient, build_inclusion_proof
from .pos import (
    PosResult,
    Stakeholder,
    run_pos_simulation,
    select_coin_age,
    select_randomized,
)
from .transactions import (
    Ledger,
    Transaction,
    block_reward,
    make_coinbase,
    make_transaction,
    verify_transaction,
)

__all__ = [
    "Blockchain",
    "InclusionProof",
    "LightClient",
    "build_inclusion_proof",
    "BlockHeader",
    "DEFAULT_TARGET",
    "DposResult",
    "PoaResult",
    "elect_witnesses",
    "run_dpos",
    "run_poa",
    "Ledger",
    "Miner",
    "MiningResult",
    "PosResult",
    "PowBlock",
    "Stakeholder",
    "Transaction",
    "block_reward",
    "build_block",
    "doublespend_success_probability",
    "make_coinbase",
    "make_transaction",
    "mine",
    "run_mining_network",
    "run_pos_simulation",
    "select_coin_age",
    "select_randomized",
    "simulate_doublespend",
    "simulate_selfish_mining",
    "validate_pow",
    "verify_transaction",
]
