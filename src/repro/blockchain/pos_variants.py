"""More consensus-variant selectors from the tutorial's "zoo" slide.

The deck's variants figure lists a family tree around PoS; this module
implements the two with crisp mechanisms:

* **Delegated Proof of Stake (DPoS)** — "users with more coins will get
  to vote and elect witnesses": stakeholders cast stake-weighted votes
  for delegate candidates; the top-k become the witness set and produce
  blocks round-robin.  Block share concentrates on elected witnesses
  regardless of their own stake.
* **Proof of Authority (PoA)** — a fixed, permissioned authority set
  produces blocks round-robin ("a single validator can bundle proposed
  transactions and create a new block"); the degenerate-but-ubiquitous
  sidechain/testnet mode.

Both reuse the PoS result shape so the E16-family benches compare the
three selection disciplines side by side.
"""

from dataclasses import dataclass, field


@dataclass
class DposResult:
    witnesses: list
    blocks_by: dict
    votes_by_candidate: dict

    def share_of(self, name):
        total = sum(self.blocks_by.values())
        return self.blocks_by.get(name, 0) / total if total else 0.0


def elect_witnesses(stakes, votes, k):
    """Stake-weighted approval election.

    ``votes`` maps voter -> iterable of approved candidates; each
    approval carries the voter's full stake.  Top-k candidates by
    approved stake (ties broken lexicographically) become witnesses.
    """
    weight = {}
    for voter, candidates in votes.items():
        stake = stakes.get(voter, 0.0)
        for candidate in candidates:
            weight[candidate] = weight.get(candidate, 0.0) + stake
    ranked = sorted(weight.items(), key=lambda item: (-item[1], item[0]))
    return [candidate for candidate, _w in ranked[:k]], weight


def run_dpos(stakes, votes, k, blocks=100):
    """Elect k witnesses, then produce ``blocks`` blocks round-robin."""
    if k < 1:
        raise ValueError("need at least one witness")
    witnesses, weight = elect_witnesses(stakes, votes, k)
    if not witnesses:
        raise ValueError("no candidate received any vote")
    blocks_by = {}
    for height in range(blocks):
        producer = witnesses[height % len(witnesses)]
        blocks_by[producer] = blocks_by.get(producer, 0) + 1
    return DposResult(witnesses=witnesses, blocks_by=blocks_by,
                      votes_by_candidate=weight)


@dataclass
class PoaResult:
    authorities: list
    blocks_by: dict = field(default_factory=dict)
    skipped: int = 0

    def share_of(self, name):
        total = sum(self.blocks_by.values())
        return self.blocks_by.get(name, 0) / total if total else 0.0


def run_poa(authorities, blocks=100, offline=()):
    """Round-robin authority block production; offline authorities'
    slots are skipped (their successors take them, Clique-style)."""
    authorities = list(authorities)
    if not authorities:
        raise ValueError("need at least one authority")
    offline = set(offline)
    result = PoaResult(authorities=authorities)
    for height in range(blocks):
        for step in range(len(authorities)):
            producer = authorities[(height + step) % len(authorities)]
            if producer not in offline:
                result.blocks_by[producer] = \
                    result.blocks_by.get(producer, 0) + 1
                if step:
                    result.skipped += 1
                break
        else:
            raise ValueError("every authority is offline")
    return result
