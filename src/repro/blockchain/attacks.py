"""Attacks on PoW consensus: the 51% double-spend race and selfish mining.

The tutorial lists "selfish mining and other attacks" and "weak finality
guarantees" among PoW's issues; both are quantified here.

*51% / majority race*: an attacker privately extends a fork from k
blocks back (undoing a payment).  Success = the private branch overtakes
the public one.  With attacker hash share q < 0.5 the classic
Nakamoto/ Rosenfeld analysis gives success probability ≈ (q/p)^k — the
harness measures the empirical curve.

*Selfish mining* (Eyal & Sirer): a miner withholds found blocks and
releases them strategically, wasting honest work on stale branches.
Above ~1/3 hash share (with γ=0) the selfish pool's revenue share
exceeds its hash share.
"""

from dataclasses import dataclass


def doublespend_success_probability(q, k):
    """Nakamoto's closed form for the attacker catching up from k blocks
    behind with hash share q (p = 1 − q)."""
    if q >= 0.5:
        return 1.0
    p = 1.0 - q
    return (q / p) ** k


def simulate_doublespend(rng, q, confirmations, trials=2000, max_lead=80):
    """Empirical catch-up race, matching Nakamoto's model exactly.

    The attacker starts ``confirmations`` blocks behind; each subsequent
    block is the attacker's with probability q.  Success = the deficit
    ever reaches zero (the attacker has caught up, after which it
    releases its longer-or-equal branch); abort once it falls
    ``max_lead`` behind (the walk drifts away almost surely).  By
    gambler's ruin the success probability is (q/p)^k — the curve
    :func:`doublespend_success_probability` gives in closed form.
    """
    successes = 0
    for _ in range(trials):
        deficit = confirmations
        while 0 < deficit <= max_lead:
            if rng.random() < q:
                deficit -= 1
            else:
                deficit += 1
        if deficit <= 0:
            successes += 1
    return successes / trials


@dataclass
class SelfishMiningResult:
    selfish_share: float
    selfish_blocks: int
    honest_blocks: int

    @property
    def revenue_share(self):
        total = self.selfish_blocks + self.honest_blocks
        return self.selfish_blocks / total if total else 0.0

    @property
    def profitable(self):
        return self.revenue_share > self.selfish_share


def simulate_selfish_mining(rng, q, gamma=0.0, blocks=20000):
    """Eyal–Sirer selfish-mining Markov simulation.

    ``q`` is the selfish pool's hash share; ``gamma`` the fraction of
    honest miners that mine on the selfish block during a 1-1 tie.
    Returns a :class:`SelfishMiningResult` with main-chain block counts.
    """
    private_lead = 0
    tie = False  # a 1-1 public race is in progress
    selfish_blocks = 0
    honest_blocks = 0
    for _ in range(blocks):
        selfish_found = rng.random() < q
        if tie:
            # Branch race: next block decides.
            if selfish_found:
                selfish_blocks += 2  # its tie block + the new one
            else:
                if rng.random() < gamma:
                    selfish_blocks += 1  # honest extended the selfish block
                    honest_blocks += 1
                else:
                    honest_blocks += 2
            tie = False
            private_lead = 0
            continue
        if selfish_found:
            private_lead += 1
            continue
        # Honest block found.
        if private_lead == 0:
            honest_blocks += 1
        elif private_lead == 1:
            tie = True  # selfish publishes its one block: public race
        elif private_lead == 2:
            # Selfish publishes both, overriding the honest block.
            selfish_blocks += 2
            private_lead = 0
        else:
            # Keeps a safety margin of one, publishing one block.
            selfish_blocks += 1
            private_lead -= 1
    return SelfishMiningResult(q, selfish_blocks, honest_blocks)


def majority_attack_on_network(cluster, honest_rates, attacker_rate,
                               fork_depth, duration=6000.0,
                               target_block_time=30.0):
    """End-to-end 51%-style attack on the simulated mining network:
    the attacker mines a private branch from ``fork_depth`` blocks
    behind the public tip and publishes when longer.

    Returns ``(overtook, public_height, attacker_height)``.
    """
    from .miner import run_mining_network

    total = float(sum(honest_rates) + attacker_rate)
    result = run_mining_network(
        cluster,
        hashrates=tuple(honest_rates),
        target_block_time=target_block_time * total / sum(honest_rates),
        duration=duration,
    )
    public = result.consensus_chain()
    if len(public) <= fork_depth + 1:
        return False, len(public) - 1, 0
    fork_point = public[-(fork_depth + 1)]
    # Attacker mines privately from the fork point: a pure race — blocks
    # arrive with rates proportional to hashrate shares.
    rng = cluster.sim.rng
    q = attacker_rate / total
    attacker_height = fork_point.height
    public_height = public[-1].height
    # Race for a bounded number of block events.
    for _ in range(10 * (fork_depth + 10)):
        if rng.random() < q:
            attacker_height += 1
        else:
            public_height += 1
        if attacker_height > public_height:
            return True, public_height, attacker_height
        if public_height - attacker_height > 50:
            break
    return False, public_height, attacker_height
