"""ReplicatedKV — the library's headline public API.

A replicated key-value store that a downstream user can spin up on any
of the library's log-replication protocols in a few lines::

    from repro.smr import ReplicatedKV

    store = ReplicatedKV(n_replicas=3, protocol="multi-paxos", seed=7)
    store.put("k", "v")
    assert store.get("k") == "v"
    store.crash_leader()          # fault injection
    store.put("k2", "v2")         # still works
    assert store.check_consistency()

Under the hood each operation is a synchronous client request driven
through the discrete-event simulator until the reply arrives — i.e.
"real" protocol traffic, not a shortcut to a dict.
"""

from ..core.cluster import Cluster
from ..core.exceptions import LivenessFailure
from .checker import check_log_consistency, check_state_machines
from .state_machine import KVStateMachine

_PROTOCOLS = ("multi-paxos", "raft", "pbft")


class ReplicatedKV:
    """A replicated KV store over Multi-Paxos, Raft or PBFT.

    Parameters
    ----------
    n_replicas:
        Cluster size.  For PBFT this must be 3f+1; the largest tolerable
        f is derived automatically.
    protocol:
        One of ``"multi-paxos"``, ``"raft"``, ``"pbft"``.
    seed:
        Simulation seed (identical seeds replay identical histories).
    op_timeout:
        Virtual-time budget per operation before
        :class:`~repro.core.exceptions.LivenessFailure` is raised.
    """

    def __init__(self, n_replicas=3, protocol="multi-paxos", seed=0,
                 delivery=None, op_timeout=2000.0):
        if protocol not in _PROTOCOLS:
            raise ValueError(
                "protocol must be one of %s" % (_PROTOCOLS,)
            )
        self.protocol = protocol
        self.cluster = Cluster(seed=seed, delivery=delivery)
        self.op_timeout = op_timeout
        self._op_counter = 0
        names = ["kv%d" % i for i in range(n_replicas)]
        if protocol == "multi-paxos":
            from ..protocols.multipaxos import MultiPaxosReplica
            self.replicas = self.cluster.add_nodes(
                MultiPaxosReplica, names, names,
                state_machine_factory=KVStateMachine,
            )
        elif protocol == "raft":
            from ..protocols.raft import RaftNode
            self.replicas = self.cluster.add_nodes(
                RaftNode, names, names, state_machine_factory=KVStateMachine
            )
        else:
            from ..protocols.pbft import PbftReplica
            f = (n_replicas - 1) // 3
            if f < 1:
                raise ValueError("PBFT needs at least 4 replicas")
            self.replicas = self.cluster.add_nodes(
                PbftReplica, names, names, f,
                state_machine_factory=KVStateMachine,
            )
            self._f = f
        self._client = self._make_client(names)
        self.cluster.start_all()

    def _make_client(self, names):
        if self.protocol == "multi-paxos":
            from ..protocols.multipaxos import MultiPaxosClient
            return self.cluster.add_node(MultiPaxosClient, "kvclient", names, [])
        if self.protocol == "raft":
            from ..protocols.raft import RaftClient
            return self.cluster.add_node(RaftClient, "kvclient", names, [])
        from ..protocols.pbft import PbftClient
        return self.cluster.add_node(PbftClient, "kvclient", names, [],
                                     self._f)

    # -- synchronous operations ------------------------------------------------

    def execute(self, command):
        """Run one command through the replication protocol and return
        the state machine's result."""
        client = self._client
        done_before = len(client.results)
        was_idle = client.done
        queue = getattr(client, "operations", None)
        if queue is None:
            queue = client.commands
        queue.append(tuple(command))
        if was_idle:
            client._send_next()
        deadline = self.cluster.now + self.op_timeout
        self.cluster.run_until(
            lambda: len(client.results) > done_before, until=deadline
        )
        if len(client.results) <= done_before:
            raise LivenessFailure(
                "operation %r did not complete within %.0f time units"
                % (command, self.op_timeout)
            )
        return client.results[-1]

    def put(self, key, value):
        """Replicated write; returns the previous value."""
        return self.execute(("put", key, value))

    def get(self, key):
        """Linearizable read (ordered through the log like any command)."""
        return self.execute(("get", key))

    def delete(self, key):
        return self.execute(("delete", key))

    def incr(self, key, amount=1):
        return self.execute(("incr", key, amount))

    # -- fault injection ----------------------------------------------------------

    def crash_leader(self):
        """Crash the current leader/primary; returns its name (or None)."""
        leader = self._current_leader()
        if leader is not None:
            leader.crash()
            return leader.name
        return None

    def crash_replica(self, index):
        self.replicas[index].crash()

    def restart_replica(self, index):
        self.replicas[index].restart()

    def _current_leader(self):
        for replica in self.replicas:
            if replica.crashed:
                continue
            if getattr(replica, "is_leader", False):
                return replica
            if getattr(replica, "is_primary", False):
                return replica
            role = getattr(replica, "role", None)
            if role is not None and getattr(role, "value", None) == "leader":
                return replica
        return None

    # -- verification ---------------------------------------------------------------

    def logs(self):
        """Per-replica committed logs as (index, command) lists."""
        out = []
        for replica in self.replicas:
            if hasattr(replica, "committed_log"):
                out.append(replica.committed_log())
            else:
                out.append(list(replica.executed_requests))
        return out

    def check_consistency(self):
        """True iff no two replicas conflict on any committed position and
        equally-advanced state machines hold identical state."""
        if not check_log_consistency(self.logs()):
            return False
        machines = [r.state_machine for r in self.replicas if not r.crashed]
        return check_state_machines(machines)

    def settle(self, duration=50.0):
        """Let in-flight traffic drain (e.g. before a consistency check)."""
        self.cluster.sim.run_for(duration)
