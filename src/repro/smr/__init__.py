"""State machine replication: KV store, lock service, state machines,
consistency checks, and the consensus<->broadcast reductions."""

from .checker import (
    check_log_consistency,
    check_state_machines,
    common_prefix_length,
)
from .kvstore import ReplicatedKV
from .linearizability import (
    Operation,
    check_linearizable,
    record_concurrent_history,
)
from .lockservice import LockService, LockStateMachine
from .reductions import AtomicBroadcast, consensus_from_broadcast
from .state_machine import BankStateMachine, KVStateMachine

__all__ = [
    "AtomicBroadcast",
    "BankStateMachine",
    "KVStateMachine",
    "LockService",
    "Operation",
    "LockStateMachine",
    "ReplicatedKV",
    "check_linearizable",
    "check_log_consistency",
    "check_state_machines",
    "common_prefix_length",
    "consensus_from_broadcast",
    "record_concurrent_history",
]
