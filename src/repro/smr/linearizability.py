"""Linearizability checking for client-observed histories.

The consistency checks elsewhere compare *replica* state; this module
checks the *client-visible* contract: every completed operation appears
to take effect atomically at some instant between its invocation and its
response (Herlihy & Wing).  It is the library's Jepsen/Knossos analogue,
scaled to the simulator's small histories.

The checker is the classic Wing–Gong search: repeatedly pick a pending
operation that is *minimal* (no other pending operation completed before
it was invoked), apply it to a fresh model, and recurse; memoisation on
(remaining-ops, model-state) keeps small histories fast.  Exponential in
the worst case — use histories of tens of operations, not thousands.
"""

from dataclasses import dataclass

from ..crypto.hashing import sha256_hex
from .state_machine import KVStateMachine


@dataclass(frozen=True)
class Operation:
    """One client-observed operation with its real-time window."""

    client: str
    command: tuple
    result: object
    invoked_at: float
    completed_at: float

    def __post_init__(self):
        if self.completed_at < self.invoked_at:
            raise ValueError("operation completed before invocation")


def check_linearizable(history, model_factory=KVStateMachine):
    """Is ``history`` linearizable with respect to the model?

    Parameters
    ----------
    history:
        Iterable of :class:`Operation`.
    model_factory:
        Builds the sequential specification; must expose
        ``apply(command) -> result`` and ``snapshot()``.

    Returns True iff some linearization exists that respects both the
    real-time partial order and the model's sequential semantics.
    """
    ops = tuple(sorted(history, key=lambda op: op.invoked_at))
    if not ops:
        return True
    seen = set()

    def replay(commands):
        model = model_factory()
        for command in commands:
            model.apply(command)
        return model

    def search(remaining, applied_commands):
        if not remaining:
            return True
        key = (remaining, sha256_hex(list(applied_commands)))
        if key in seen:
            return False
        seen.add(key)
        min_completion = min(ops[i].completed_at for i in remaining)
        for index in remaining:
            op = ops[index]
            # Minimality: nothing still pending finished before this
            # op was even invoked.
            if op.invoked_at > min_completion:
                continue
            model = replay(applied_commands)
            if model.apply(op.command) != op.result:
                continue
            next_remaining = tuple(i for i in remaining if i != index)
            if search(next_remaining, applied_commands + (op.command,)):
                return True
        seen.add(key)
        return False

    return search(tuple(range(len(ops))), ())


# -- history recording against live clusters -----------------------------------


def record_concurrent_history(cluster, replica_names, client_commands,
                              horizon=4000.0):
    """Run concurrent recording clients against a Multi-Paxos cluster and
    return the combined :class:`Operation` history.

    ``client_commands`` maps client name -> list of commands.  Each
    client is closed-loop (one outstanding op), but different clients
    overlap freely — which is where linearizability gets interesting.
    """
    from ..protocols.multipaxos import MultiPaxosClient

    class RecordingClient(MultiPaxosClient):
        """MultiPaxosClient that captures invocation/response windows."""

        def __init__(self, sim, network, name, replicas, commands):
            super().__init__(sim, network, name, replicas, commands)
            self.history = []
            self._invoked_at = {}

        def _send_next(self):
            if not self.done:
                # First transmission is the invocation; retries don't move it.
                self._invoked_at.setdefault(self._next, self.sim.now)
            super()._send_next()

        def handle_clientreply(self, msg, src):
            before = self._next
            super().handle_clientreply(msg, src)
            if self._next != before:
                index = before
                self.history.append(Operation(
                    client=self.name,
                    command=tuple(self.commands[index]),
                    result=self.results[index],
                    invoked_at=self._invoked_at[index],
                    completed_at=self.sim.now,
                ))

    clients = [
        cluster.add_node(RecordingClient, name, list(replica_names),
                         [tuple(c) for c in commands])
        for name, commands in sorted(client_commands.items())
    ]
    cluster.start_all()  # replicas (leader election) + any stragglers
    for client in clients:
        client.start()
    cluster.run_until(lambda: all(c.done for c in clients), until=horizon)
    history = []
    for client in clients:
        history.extend(client.history)
    return history
