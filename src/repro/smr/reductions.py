"""The equivalence slide: consensus ≡ atomic broadcast ≡ SMR.

The tutorial's diagram reduces atomic broadcast, state machine
replication and (non-blocking) commit problems to consensus and back.
This module realises the two textbook reductions concretely on the
library's own machinery, so the equivalences are executable:

* **Atomic broadcast from consensus** — :class:`AtomicBroadcast` feeds
  messages into a Multi-Paxos log (one consensus instance per slot) and
  delivers in log order: validity, agreement and *total order* follow
  from the log's properties.
* **Consensus from atomic broadcast** — :func:`consensus_from_broadcast`
  a-broadcasts every proposal and decides the first delivered one:
  agreement follows from total order (everyone's "first" is the same),
  validity from broadcast validity.
"""

from dataclasses import dataclass

from ..core.cluster import Cluster
from ..protocols.multipaxos import MultiPaxosClient, MultiPaxosReplica


@dataclass
class AtomicBroadcast:
    """Atomic (total-order) broadcast built from repeated consensus.

    ``broadcast(sender, message)`` submits to the underlying replicated
    log; ``delivered()`` returns, per replica, the totally ordered
    delivery sequence.
    """

    cluster: Cluster
    replicas: list
    clients: dict

    @classmethod
    def build(cls, n_replicas=3, senders=("s1", "s2"), seed=0):
        cluster = Cluster(seed=seed)
        names = ["ab%d" % i for i in range(n_replicas)]
        replicas = cluster.add_nodes(MultiPaxosReplica, names, names)
        clients = {
            sender: cluster.add_node(MultiPaxosClient, sender, names, [])
            for sender in senders
        }
        cluster.start_all()
        return cls(cluster=cluster, replicas=replicas, clients=clients)

    def broadcast(self, sender, message):
        """A-broadcast ``message`` from ``sender`` (asynchronous)."""
        client = self.clients[sender]
        was_idle = client.done
        client.commands.append((sender, message))
        if was_idle:
            client._send_next()

    def run_until_delivered(self, count, horizon=3000.0):
        self.cluster.run_until(
            lambda: all(
                len(self._delivery_sequence(r)) >= count
                for r in self.replicas
            ),
            until=horizon,
        )

    @staticmethod
    def _delivery_sequence(replica):
        return [
            entry for entry in replica.state_machine.history
        ]

    def delivered(self):
        """Per-replica delivery sequences (should be prefix-identical)."""
        return [self._delivery_sequence(r) for r in self.replicas]

    def total_order_holds(self):
        sequences = self.delivered()
        for seq_a in sequences:
            for seq_b in sequences:
                for x, y in zip(seq_a, seq_b):
                    if x != y:
                        return False
        return True


def consensus_from_broadcast(proposals, n_replicas=3, seed=0, horizon=3000.0):
    """Solve one-shot consensus using only the a-broadcast primitive.

    Every proposer a-broadcasts its value; each replica decides the
    first value delivered.  Returns the per-replica decisions (which the
    reduction guarantees are identical).
    """
    senders = ["p%d" % i for i in range(len(proposals))]
    broadcast = AtomicBroadcast.build(n_replicas=n_replicas, senders=senders,
                                      seed=seed)
    for sender, value in zip(senders, proposals):
        broadcast.broadcast(sender, value)
    broadcast.run_until_delivered(1, horizon=horizon)
    decisions = []
    for sequence in broadcast.delivered():
        # Decide the first delivered proposal.
        decisions.append(sequence[0][1] if sequence else None)
    return decisions
