"""Deterministic state machines for replication.

The tutorial's SMR slide: "all servers execute same commands in the same
order; commands are deterministic".  Any object with
``apply(command) -> result`` plugs into every protocol in this library
via the ``state_machine_factory`` parameter.
"""


class KVStateMachine:
    """A deterministic key-value store — the canonical SMR payload.

    Commands are tuples:

    * ``("put", key, value)`` → previous value (or None)
    * ``("get", key)`` → current value (or None)
    * ``("delete", key)`` → deleted value (or None)
    * ``("incr", key, amount)`` → new numeric value (missing keys start 0)
    * ``("cas", key, expected, value)`` → True if swapped

    Anything else raises ``ValueError`` — a non-deterministic or unknown
    command must fail loudly on every replica rather than silently
    diverge.
    """

    def __init__(self):
        self.data = {}
        self.ops_applied = 0

    def apply(self, command):
        if not isinstance(command, (tuple, list)) or not command:
            raise ValueError("malformed command: %r" % (command,))
        op = command[0]
        handler = getattr(self, "_op_%s" % op, None)
        if handler is None:
            raise ValueError("unknown operation %r" % (op,))
        self.ops_applied += 1
        return handler(*command[1:])

    def _op_put(self, key, value):
        previous = self.data.get(key)
        self.data[key] = value
        return previous

    def _op_get(self, key):
        return self.data.get(key)

    def _op_delete(self, key):
        return self.data.pop(key, None)

    def _op_incr(self, key, amount=1):
        value = self.data.get(key, 0) + amount
        self.data[key] = value
        return value

    def _op_cas(self, key, expected, value):
        if self.data.get(key) == expected:
            self.data[key] = value
            return True
        return False

    def snapshot(self):
        """Immutable copy of the store, for divergence checks and log
        compaction."""
        return dict(self.data)

    def restore(self, snapshot, ops_applied=0):
        """Replace state from a snapshot (Raft InstallSnapshot path)."""
        self.data = dict(snapshot)
        self.ops_applied = ops_applied


class BankStateMachine:
    """Account ledger used by the Byzantine-bank example.

    Commands: ``("open", account, balance)``, ``("transfer", src, dst,
    amount)`` (fails on insufficient funds — deterministically),
    ``("balance", account)``.
    """

    def __init__(self):
        self.accounts = {}
        self.transfers_applied = 0
        self.transfers_rejected = 0

    def apply(self, command):
        op = command[0]
        if op == "open":
            _op, account, balance = command
            if account in self.accounts:
                return False
            self.accounts[account] = balance
            return True
        if op == "transfer":
            _op, src, dst, amount = command
            if amount <= 0 or self.accounts.get(src, 0) < amount \
                    or dst not in self.accounts:
                self.transfers_rejected += 1
                return False
            self.accounts[src] -= amount
            self.accounts[dst] += amount
            self.transfers_applied += 1
            return True
        if op == "balance":
            return self.accounts.get(command[1])
        raise ValueError("unknown operation %r" % (op,))

    def total_money(self):
        """Invariant probe: transfers conserve the total."""
        return sum(self.accounts.values())
