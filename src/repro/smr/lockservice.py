"""A Chubby-style distributed lock service on Multi-Paxos.

The tutorial's Google Bigtable slide: "a persistent and distributed
lock service — consists of 5 replicas — uses Paxos to keep copies
consistent."  This module is that service: named locks with
session-scoped leases, replicated as state-machine commands so every
replica agrees on who holds what, and lease expiry so a crashed client
cannot hold a lock forever.

Determinism note: lease arithmetic uses timestamps carried *inside* the
replicated commands (stamped by the proposer at submission), so every
replica computes identical expiry decisions from the identical log —
never from its local clock.
"""


from ..core.cluster import Cluster
from ..core.exceptions import LivenessFailure
from ..protocols.multipaxos import MultiPaxosClient, MultiPaxosReplica

DEFAULT_LEASE = 30.0


class LockStateMachine:
    """Replicated lock table with leases.

    Commands:

    * ``("acquire", lock, session, now, lease)`` → True if granted
      (free, already held by this session, or the holder's lease
      expired), else False.
    * ``("release", lock, session, now)`` → True if this session held it.
    * ``("keepalive", session, now, lease)`` → extends every lock held
      by the session; returns the count refreshed.
    * ``("holder", lock, now)`` → current live holder or None.
    """

    def __init__(self):
        self.locks = {}  # lock -> (session, expires_at)
        self.ops_applied = 0

    def apply(self, command):
        op = command[0]
        handler = getattr(self, "_op_%s" % op, None)
        if handler is None:
            raise ValueError("unknown operation %r" % (op,))
        self.ops_applied += 1
        return handler(*command[1:])

    def _live_holder(self, lock, now):
        entry = self.locks.get(lock)
        if entry is None:
            return None
        session, expires_at = entry
        if expires_at <= now:
            return None  # lease ran out; lock is free
        return session

    def _op_acquire(self, lock, session, now, lease):
        holder = self._live_holder(lock, now)
        if holder is None or holder == session:
            self.locks[lock] = (session, now + lease)
            return True
        return False

    def _op_release(self, lock, session, now):
        if self._live_holder(lock, now) == session:
            del self.locks[lock]
            return True
        return False

    def _op_keepalive(self, session, now, lease):
        refreshed = 0
        for lock, (holder, _expires) in list(self.locks.items()):
            if holder == session:
                self.locks[lock] = (session, now + lease)
                refreshed += 1
        return refreshed

    def _op_holder(self, lock, now):
        return self._live_holder(lock, now)

    def snapshot(self):
        return dict(self.locks)


class LockService:
    """The public API: a five-replica (by default) Paxos lock service.

    Sessions are just string names; the *caller* decides when a session
    keeps its leases alive — a session that stops calling
    :meth:`keepalive` loses its locks after ``lease`` time units, which
    is exactly how a crashed Bigtable master loses its mastership lock.
    """

    def __init__(self, n_replicas=5, seed=0, lease=DEFAULT_LEASE,
                 delivery=None, op_timeout=2000.0):
        self.cluster = Cluster(seed=seed, delivery=delivery)
        self.lease = lease
        self.op_timeout = op_timeout
        names = ["lock%d" % i for i in range(n_replicas)]
        self.replicas = self.cluster.add_nodes(
            MultiPaxosReplica, names, names,
            state_machine_factory=LockStateMachine,
        )
        self._client = self.cluster.add_node(
            MultiPaxosClient, "lockclient", names, []
        )
        self.cluster.start_all()

    # -- command plumbing -----------------------------------------------------------

    def _execute(self, command):
        client = self._client
        done_before = len(client.results)
        was_idle = client.done
        client.commands.append(tuple(command))
        if was_idle:
            client._send_next()
        deadline = self.cluster.now + self.op_timeout
        self.cluster.run_until(lambda: len(client.results) > done_before,
                               until=deadline)
        if len(client.results) <= done_before:
            raise LivenessFailure("lock op %r timed out" % (command,))
        return client.results[-1]

    # -- public ------------------------------------------------------------------------

    def acquire(self, lock, session):
        """Try to take ``lock`` for ``session``; True iff granted."""
        return self._execute(("acquire", lock, session, self.cluster.now,
                              self.lease))

    def release(self, lock, session):
        return self._execute(("release", lock, session, self.cluster.now))

    def keepalive(self, session):
        """Refresh every lease held by ``session``."""
        return self._execute(("keepalive", session, self.cluster.now,
                              self.lease))

    def holder(self, lock):
        """The live holder of ``lock`` (lease-checked), or None."""
        return self._execute(("holder", lock, self.cluster.now))

    def advance_time(self, duration):
        """Let virtual time pass (e.g. to let a lease expire)."""
        self.cluster.sim.run_for(duration)

    def crash_leader(self):
        for replica in self.replicas:
            if replica.is_leader and not replica.crashed:
                replica.crash()
                return replica.name
        return None

    def check_consistency(self):
        from .checker import check_log_consistency
        return check_log_consistency(
            [r.committed_log() for r in self.replicas]
        )
