"""Cross-replica consistency checking.

The safety property all SMR experiments assert: replicas' committed logs
never conflict at any position (prefix consistency), and state machines
that applied the same prefix hold identical state.
"""

from ..core.exceptions import SafetyViolation


def check_log_consistency(logs, raise_on_violation=False):
    """Check that committed logs agree position-wise.

    Parameters
    ----------
    logs:
        Iterable of logs, each an iterable of ``(index, value)``.

    Returns ``True`` when consistent.  With ``raise_on_violation`` a
    :class:`~repro.core.exceptions.SafetyViolation` names the first
    conflicting index.
    """
    merged = {}
    for log in logs:
        for index, value in log:
            if index in merged and merged[index] != value:
                if raise_on_violation:
                    raise SafetyViolation(
                        "index %r decided as both %r and %r"
                        % (index, merged[index], value)
                    )
                return False
            merged[index] = value
    return True


def check_state_machines(machines, raise_on_violation=False):
    """Check that replicas which applied equally many commands hold the
    same state (requires machines exposing ``snapshot()`` and
    ``ops_applied``)."""
    by_progress = {}
    for machine in machines:
        by_progress.setdefault(machine.ops_applied, []).append(machine)
    for progress, group in by_progress.items():
        baseline = group[0].snapshot()
        for machine in group[1:]:
            if machine.snapshot() != baseline:
                if raise_on_violation:
                    raise SafetyViolation(
                        "state divergence at %d applied ops" % progress
                    )
                return False
    return True


def common_prefix_length(logs):
    """Length of the longest committed prefix shared by every log."""
    normalised = []
    for log in logs:
        entries = dict(log)
        prefix = []
        index = min(entries) if entries else 0
        # Logs may start at 0 or 1 depending on the protocol's counter.
        start = 0 if 0 in entries else (1 if 1 in entries else None)
        if start is None:
            normalised.append([])
            continue
        while start in entries:
            prefix.append(entries[start])
            start += 1
        normalised.append(prefix)
    if not normalised:
        return 0
    shortest = min(len(p) for p in normalised)
    for position in range(shortest):
        values = {p[position] for p in normalised}
        if len(values) > 1:
            return position
    return shortest
