"""Generic Byzantine *network* behaviours, as composable interceptors.

Protocol-specific Byzantine logic (an equivocating PBFT primary, a
two-faced XFT leader) lives with each protocol as a node subclass; this
module covers the behaviours any Byzantine node can mount at the
transport level without understanding the protocol:

* **silence** — send nothing (indistinguishable from a crash to peers),
* **selective silence** — talk to some peers, starve others (the
  behaviour that splits quorum views),
* **delaying** — hold all outbound traffic just under the timeout,
* **duplication** — replay every message k times (tests idempotency).

All are implemented against the network's interceptor hook, so they
compose with each other and with :class:`~repro.faults.FaultPlan`.
"""


class ByzantineBehavior:
    """Base: installs/uninstalls an interceptor on a cluster's network."""

    def __init__(self, cluster, node_name):
        self.cluster = cluster
        self.node_name = node_name
        self._interceptor = None
        self.messages_affected = 0

    def install(self):
        if self._interceptor is None:
            self._interceptor = self._make_interceptor()
            self.cluster.network.add_interceptor(self._interceptor)
        return self

    def uninstall(self):
        if self._interceptor is not None:
            self.cluster.network.remove_interceptor(self._interceptor)
            self._interceptor = None

    def _make_interceptor(self):
        raise NotImplementedError


class Silence(ByzantineBehavior):
    """Drop every message the node sends."""

    def _make_interceptor(self):
        def interceptor(src, dst, message):
            if src == self.node_name:
                self.messages_affected += 1
                return False
            return None
        return interceptor


class SelectiveSilence(ByzantineBehavior):
    """Starve a chosen subset of peers while talking to the rest."""

    def __init__(self, cluster, node_name, starved):
        super().__init__(cluster, node_name)
        self.starved = set(starved)

    def _make_interceptor(self):
        def interceptor(src, dst, message):
            if src == self.node_name and dst in self.starved:
                self.messages_affected += 1
                return False
            return None
        return interceptor


class Delayer(ByzantineBehavior):
    """Re-send every outbound message after ``delay`` instead of now.

    Implemented as drop-and-reschedule: the original send is suppressed
    and an identical send is scheduled ``delay`` later (outside the
    interceptor chain, so it isn't re-delayed)."""

    def __init__(self, cluster, node_name, delay):
        super().__init__(cluster, node_name)
        self.delay = delay
        self._replaying = False

    def _make_interceptor(self):
        def interceptor(src, dst, message):
            if src != self.node_name or self._replaying:
                return None
            self.messages_affected += 1

            def replay():
                self._replaying = True
                try:
                    self.cluster.network.send(src, dst, message)
                finally:
                    self._replaying = False

            self.cluster.sim.schedule(self.delay, replay)
            return False
        return interceptor


class Duplicator(ByzantineBehavior):
    """Deliver every outbound message ``copies`` extra times."""

    def __init__(self, cluster, node_name, copies=1, spacing=0.5):
        super().__init__(cluster, node_name)
        self.copies = copies
        self.spacing = spacing
        self._replaying = False

    def _make_interceptor(self):
        def interceptor(src, dst, message):
            if src != self.node_name or self._replaying:
                return None
            self.messages_affected += 1
            for copy in range(1, self.copies + 1):
                def replay(dst=dst, message=message):
                    self._replaying = True
                    try:
                        self.cluster.network.send(src, dst, message)
                    finally:
                        self._replaying = False
                self.cluster.sim.schedule(copy * self.spacing, replay)
            return None  # the original still goes through
        return interceptor
