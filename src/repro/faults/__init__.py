"""Fault injection: crash/partition plans and Byzantine network behaviours."""

from .byzantine import (
    ByzantineBehavior,
    Delayer,
    Duplicator,
    SelectiveSilence,
    Silence,
)
from .injectors import FaultPlan

__all__ = [
    "ByzantineBehavior",
    "Delayer",
    "Duplicator",
    "FaultPlan",
    "SelectiveSilence",
    "Silence",
]
