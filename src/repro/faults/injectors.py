"""Fault injection: scheduled crashes, restarts, partitions, link faults.

Thin, composable wrappers over the primitives the kernel already has
(``Process.crash``/``restart``, ``PartitionManager``, network
interceptors), so tests and experiments read declaratively::

    faults = FaultPlan(cluster)
    faults.crash_at(5.0, "r0")
    faults.restart_at(50.0, "r0")
    faults.partition_at(10.0, ["r0", "r1"], ["r2", "r3"])
    faults.heal_at(30.0)
    faults.drop_messages(lambda src, dst, msg: src == "r2", between=(12.0, 20.0))
"""


class FaultPlan:
    """Schedule of fault events bound to one cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.events = []

    def _log(self, kind, detail):
        self.events.append((self.cluster.sim.now, kind, detail))
        telemetry = getattr(self.cluster, "telemetry", None)
        if telemetry is not None:
            telemetry.counter("fault_injections_total", kind=kind).inc()

    # -- process faults ---------------------------------------------------------

    def crash_at(self, time, node_name):
        """Fail-stop ``node_name`` at virtual ``time``."""
        def do_crash():
            self.cluster.node_named(node_name).crash()
            self._log("crash", node_name)
        self.cluster.sim.schedule_at(time, do_crash)

    def restart_at(self, time, node_name):
        def do_restart():
            self.cluster.node_named(node_name).restart()
            self._log("restart", node_name)
        self.cluster.sim.schedule_at(time, do_restart)

    def crash_random_at(self, time, candidates):
        """Crash one uniformly chosen node from ``candidates``."""
        def do_crash():
            alive = [n for n in candidates
                     if not self.cluster.node_named(n).crashed]
            if alive:
                victim = self.cluster.sim.rng.choice(alive)
                self.cluster.node_named(victim).crash()
                self._log("crash", victim)
        self.cluster.sim.schedule_at(time, do_crash)

    # -- network faults -----------------------------------------------------------

    def partition_at(self, time, *groups):
        def do_split():
            self.cluster.network.partitions.split(*groups)
            self._log("partition", groups)
        self.cluster.sim.schedule_at(time, do_split)

    def heal_at(self, time):
        def do_heal():
            self.cluster.network.partitions.heal()
            self._log("heal", None)
        self.cluster.sim.schedule_at(time, do_heal)

    def drop_messages(self, predicate, between=None):
        """Install an interceptor dropping messages matching
        ``predicate(src, dst, message)``; optionally only within the
        ``between=(start, end)`` virtual-time window."""
        def interceptor(src, dst, message):
            if between is not None:
                now = self.cluster.sim.now
                if not between[0] <= now <= between[1]:
                    return None
            if predicate(src, dst, message):
                return False
            return None
        self.cluster.network.add_interceptor(interceptor)
        return interceptor

    def isolate_node(self, node_name, between=None):
        """Drop everything to and from ``node_name`` (a 'correct but
        partitioned' replica, XFT's p)."""
        return self.drop_messages(
            lambda src, dst, message: node_name in (src, dst),
            between=between,
        )
