"""Small filesystem helpers shared by the artifact writers.

Every ``--jsonl/--json/--prom/--chrome`` flag ultimately lands in one of
the ``write_*`` functions; they all route through :func:`ensure_parent`
so pointing an export at ``out/run7/trace.jsonl`` creates ``out/run7/``
instead of raising a bare ``FileNotFoundError``.
"""

import os


def ensure_parent(path):
    """Create the missing parent directories of ``path``; returns ``path``.

    A bare filename (no directory component) is returned untouched.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return path
