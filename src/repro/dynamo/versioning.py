"""Vector clocks and versioned values for optimistic replication.

The tutorial's third taxonomy aspect contrasts *pessimistic* protocols
(identical replicas, agreement first) with *optimistic* ones: "replicas
speculatively execute requests without running an agreement protocol…
replicas can diverge… eventual consistency" — the DynamoDB model.
Vector clocks are the machinery that makes divergence detectable:
comparable clocks order versions; incomparable clocks are *siblings*
the application (or last-writer-wins) must reconcile.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector clock: node name -> counter."""

    counters: tuple = ()  # sorted ((node, count), ...)

    @classmethod
    def of(cls, mapping):
        return cls(tuple(sorted(mapping.items())))

    def as_dict(self):
        return dict(self.counters)

    def increment(self, node):
        counts = self.as_dict()
        counts[node] = counts.get(node, 0) + 1
        return VectorClock.of(counts)

    def merge(self, other):
        counts = self.as_dict()
        for node, count in other.counters:
            counts[node] = max(counts.get(node, 0), count)
        return VectorClock.of(counts)

    def descends_from(self, other):
        """True iff self >= other component-wise (self saw other)."""
        mine = self.as_dict()
        return all(mine.get(node, 0) >= count
                   for node, count in other.counters)

    def concurrent_with(self, other):
        return not self.descends_from(other) and \
            not other.descends_from(self)


@dataclass(frozen=True)
class Versioned:
    """A value with its vector clock and a wall-clock tiebreak stamp."""

    value: object
    clock: VectorClock
    stamp: tuple = (0.0, "")  # (virtual time, writer) for LWW tiebreaks


def reconcile(versions):
    """Collapse a set of versioned values to the current frontier.

    Dominated versions are dropped; genuinely concurrent versions remain
    as siblings, ordered deterministically by stamp (newest first).
    """
    frontier = []
    for candidate in versions:
        dominated = False
        for other in versions:
            if other is candidate:
                continue
            if other.clock.descends_from(candidate.clock) and \
                    other.clock != candidate.clock:
                dominated = True
                break
            if other.clock == candidate.clock and \
                    other.stamp > candidate.stamp:
                dominated = True
                break
        if not dominated and candidate not in frontier:
            frontier.append(candidate)
    return sorted(frontier, key=lambda v: v.stamp, reverse=True)


def last_writer_wins(versions):
    """LWW resolution: the single newest version by stamp (the simple
    reconciliation DynamoDB defaults to)."""
    frontier = reconcile(versions)
    return frontier[0] if frontier else None
