"""Dynamo-style replicas and the quorum coordinator.

The optimistic column of the tutorial's taxonomy, end to end:

* every replica accepts writes locally (no agreement protocol, no
  leader),
* a **coordinator** offers tunable (N, R, W) quorums: a write completes
  after W of N replica acks, a read after R replies (merging versions
  and issuing **read repair** for stale replicas),
* an **anti-entropy** gossip pass runs in the background, exchanging
  version frontiers so replicas converge even when client traffic
  doesn't touch them — eventual consistency.

With R + W > N, read and write quorums intersect and reads see the
latest completed write; with R + W <= N staleness windows open up —
exactly the dial the DynamoDB slide advertises.
"""

from dataclasses import dataclass

from ..core.node import Node
from ..net.message import Message
from .versioning import Versioned, VectorClock, reconcile


@dataclass(frozen=True)
class DynGet(Message):
    key: str
    request_id: str


@dataclass(frozen=True)
class DynGetReply(Message):
    key: str
    request_id: str
    versions: tuple


@dataclass(frozen=True)
class DynPut(Message):
    key: str
    version: Versioned
    request_id: str


@dataclass(frozen=True)
class DynPutAck(Message):
    request_id: str


@dataclass(frozen=True)
class Gossip(Message):
    """Anti-entropy exchange: a replica's version frontier for all keys."""

    frontier: tuple  # ((key, (Versioned, ...)), ...)


class DynamoReplica(Node):
    """A leaderless replica: stores version frontiers, gossips them."""

    def __init__(self, sim, network, name, peers, gossip_interval=10.0):
        super().__init__(sim, network, name)
        self.peers = [p for p in peers if p != name]
        self.store = {}  # key -> [Versioned, ...] (the frontier)
        self.gossip_interval = gossip_interval
        self.read_repairs = 0

    def on_start(self):
        if self.gossip_interval:
            self.set_periodic_timer(self.gossip_interval, self._gossip)

    # -- client-facing --------------------------------------------------------

    def handle_dynget(self, msg, src):
        versions = tuple(self.store.get(msg.key, ()))
        self.send(src, DynGetReply(msg.key, msg.request_id, versions))

    def handle_dynput(self, msg, src):
        self._merge(msg.key, msg.version)
        self.send(src, DynPutAck(msg.request_id))

    def _merge(self, key, version):
        frontier = list(self.store.get(key, ()))
        if version in frontier:
            return False
        merged = reconcile(frontier + [version])
        changed = merged != frontier
        self.store[key] = merged
        return changed

    # -- anti-entropy -----------------------------------------------------------

    def _gossip(self):
        if not self.peers or not self.store:
            return
        peer = self.sim.rng.choice(self.peers)
        frontier = tuple(
            (key, tuple(versions)) for key, versions in self.store.items()
        )
        self.send(peer, Gossip(frontier))

    def handle_gossip(self, msg, src):
        for key, versions in msg.frontier:
            for version in versions:
                self._merge(key, version)

    # -- read repair (from the coordinator) ----------------------------------------

    def repair(self, key, versions):
        for version in versions:
            if self._merge(key, version):
                self.read_repairs += 1


class DynamoCoordinator(Node):
    """Client-side quorum coordinator with tunable N/R/W.

    A node in the simulation (so its messages pay latency like everyone
    else's); the synchronous ``put``/``get`` surface lives on
    :class:`~repro.dynamo.store.EventualKV`.
    """

    def __init__(self, sim, network, name, replicas, n=None, r=2, w=2):
        super().__init__(sim, network, name)
        self.replicas = list(replicas)
        self.n = n if n is not None else len(self.replicas)
        if not 1 <= self.n <= len(self.replicas):
            raise ValueError("need 1 <= N <= replica count")
        if not (1 <= r <= self.n and 1 <= w <= self.n):
            raise ValueError("need 1 <= R, W <= N")
        self.r = r
        self.w = w
        self._seq = 0
        self._write_counter = 0  # per-writer monotone clock component
        self._pending = {}  # request_id -> dict

    def preference_list(self, key):
        """The N replicas for a key (consistent order by key hash)."""
        ranked = sorted(self.replicas,
                        key=lambda name: hash_pair(key, name))
        return ranked[: self.n]

    # -- writes -----------------------------------------------------------------

    def put(self, key, value, context=None, callback=None):
        """Quorum write.  ``context`` is the vector clock from a prior
        read (omitting it makes this a blind write — siblings may form)."""
        base = context if context is not None else VectorClock()
        # A writer's own component must be monotone across ALL its writes
        # (not just within one causal chain), or two blind writes from the
        # same coordinator would carry identical clocks.
        self._write_counter += 1
        counts = base.as_dict()
        counts[self.name] = max(counts.get(self.name, 0) + 1,
                                self._write_counter)
        clock = VectorClock.of(counts)
        version = Versioned(value, clock, (self.sim.now, self.name))
        request_id = self._next_id("put")
        self._pending[request_id] = {
            "kind": "put", "acks": 0, "needed": self.w,
            "callback": callback, "done": False, "version": version,
        }
        for replica in self.preference_list(key):
            self.send(replica, DynPut(key, version, request_id))
        return request_id

    def handle_dynputack(self, msg, src):
        entry = self._pending.get(msg.request_id)
        if entry is None or entry["done"]:
            return
        entry["acks"] += 1
        if entry["acks"] >= entry["needed"]:
            entry["done"] = True
            if entry["callback"] is not None:
                entry["callback"](entry["version"])

    # -- reads ------------------------------------------------------------------

    def get(self, key, callback=None):
        """Quorum read: merge R replies, read-repair stale replicas."""
        request_id = self._next_id("get")
        self._pending[request_id] = {
            "kind": "get", "key": key, "replies": {}, "needed": self.r,
            "callback": callback, "done": False,
        }
        for replica in self.preference_list(key):
            self.send(replica, DynGet(key, request_id))
        return request_id

    def handle_dyngetreply(self, msg, src):
        entry = self._pending.get(msg.request_id)
        if entry is None or entry["done"]:
            return
        entry["replies"][src] = list(msg.versions)
        if len(entry["replies"]) < entry["needed"]:
            return
        entry["done"] = True
        merged = reconcile(
            [v for versions in entry["replies"].values() for v in versions]
        )
        # Read repair: push the merged frontier back to repliers that
        # were missing any of it.  (Equality by list: reconcile() orders
        # frontiers deterministically, and values may be unhashable.)
        for replica, versions in entry["replies"].items():
            if reconcile(versions) != merged:
                node = self.network.node(replica)
                if not node.crashed:
                    node.repair(entry["key"], merged)
        if entry["callback"] is not None:
            entry["callback"](merged)

    def _next_id(self, kind):
        self._seq += 1
        return "%s-%s-%d" % (self.name, kind, self._seq)


def hash_pair(key, name):
    """Stable pseudo-hash for preference-list ranking."""
    digest = 0
    for char in "%s|%s" % (key, name):
        digest = (digest * 1099511 + ord(char)) % (1 << 61)
    return digest
