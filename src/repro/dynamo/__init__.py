"""Optimistic replication: a Dynamo-style eventually consistent store
(the tutorial's DynamoDB slide and 'optimistic processing strategy')."""

from .node import DynamoCoordinator, DynamoReplica
from .store import EventualKV
from .versioning import (
    VectorClock,
    Versioned,
    last_writer_wins,
    reconcile,
)

__all__ = [
    "DynamoCoordinator",
    "DynamoReplica",
    "EventualKV",
    "VectorClock",
    "Versioned",
    "last_writer_wins",
    "reconcile",
]
