"""EventualKV — the optimistic counterpart of ReplicatedKV.

The DynamoDB slide as a public API: leaderless replicas, tunable
(N, R, W) quorums, vector-clock versioning with sibling surfacing,
read repair and anti-entropy gossip.

::

    store = EventualKV(n_replicas=5, r=2, w=2, seed=1)
    ctx = store.put("cart", ["milk"])           # quorum write
    value, ctx = store.get("cart")              # quorum read + context
    store.put("cart", value + ["eggs"], context=ctx)

Contrast with :class:`~repro.smr.ReplicatedKV`: no consensus, no
leader — writes never block on agreement, at the price of windows where
reads can be stale (R + W <= N) and concurrent blind writes produce
siblings the caller must reconcile.
"""

from ..core.cluster import Cluster
from ..core.exceptions import LivenessFailure
from .node import DynamoCoordinator, DynamoReplica
from .versioning import VectorClock, last_writer_wins


class EventualKV:
    """An eventually consistent replicated KV store.

    Parameters
    ----------
    n_replicas:
        Total replicas (each key's preference list uses ``n`` of them).
    n, r, w:
        Dynamo's tunables: replication factor, read quorum, write quorum.
    gossip_interval:
        Anti-entropy period (0 disables background convergence).
    """

    def __init__(self, n_replicas=5, n=3, r=2, w=2, seed=0, delivery=None,
                 gossip_interval=10.0, op_timeout=500.0, n_coordinators=1):
        self.cluster = Cluster(seed=seed, delivery=delivery)
        self.op_timeout = op_timeout
        names = ["d%d" % i for i in range(n_replicas)]
        self.replicas = self.cluster.add_nodes(
            DynamoReplica, names, names, gossip_interval=gossip_interval
        )
        self.coordinators = [
            self.cluster.add_node(
                DynamoCoordinator, "dyn-coord%d" % i, names, n=n, r=r, w=w
            )
            for i in range(n_coordinators)
        ]
        self.coordinator = self.coordinators[0]
        self.cluster.start_all()

    # -- synchronous surface ---------------------------------------------------

    def put(self, key, value, context=None, via=0):
        """Quorum write (through coordinator ``via``); returns the
        write's vector clock (the context for a causal successor)."""
        outcome = []
        self.coordinators[via].put(key, value, context=context,
                                   callback=outcome.append)
        self._wait(outcome, ("put", key))
        return outcome[0].clock

    def get(self, key, via=0):
        """Quorum read.  Returns ``(value, context)`` where ``value`` is
        the LWW-resolved value (None if unwritten) and ``context`` the
        merged clock.  Use :meth:`get_siblings` to see divergence."""
        versions = self.get_siblings(key, via=via)
        if not versions:
            return None, VectorClock()
        resolved = last_writer_wins(versions)
        merged = resolved.clock
        for version in versions:
            merged = merged.merge(version.clock)
        return resolved.value, merged

    def get_siblings(self, key, via=0):
        """Quorum read returning the full version frontier (concurrent
        writes appear as multiple siblings)."""
        outcome = []
        self.coordinators[via].get(key, callback=outcome.append)
        self._wait(outcome, ("get", key))
        return outcome[0]

    def _wait(self, outcome, label):
        deadline = self.cluster.now + self.op_timeout
        self.cluster.run_until(lambda: bool(outcome), until=deadline)
        if not outcome:
            raise LivenessFailure("dynamo op %r timed out" % (label,))

    # -- operational -------------------------------------------------------------

    def settle(self, duration=100.0):
        """Let anti-entropy gossip run (convergence time)."""
        self.cluster.sim.run_for(duration)

    def partition(self, *groups):
        """Partition replicas; all coordinators ride with the first group."""
        group_lists = [list(group) for group in groups]
        group_lists[0].extend(c.name for c in self.coordinators)
        self.cluster.network.partitions.split(*group_lists)

    def heal(self):
        self.cluster.network.partitions.heal()

    def crash_replica(self, index):
        self.replicas[index].crash()

    def replica_views(self, key):
        """Each replica's local LWW value for ``key`` (None if absent) —
        the divergence/convergence probe."""
        views = []
        for replica in self.replicas:
            versions = replica.store.get(key, ())
            resolved = last_writer_wins(versions)
            views.append(resolved.value if resolved else None)
        return views

    def converged(self, key):
        """Do all live replicas in the key's preference list agree?"""
        names = set(self.coordinator.preference_list(key))
        frontiers = [
            tuple(replica.store.get(key, ()))
            for replica in self.replicas
            if replica.name in names and not replica.crashed
        ]
        return all(frontier == frontiers[0] for frontier in frontiers)
