"""FleetSpec — the pure, picklable description of a partitioned run.

Everything a worker process needs to rebuild its slice of the fleet is
derived from this one dataclass: shard ids and protocols, the routing
table, the precomputed transfer workload, timing constants.  Nothing in
here touches a simulator, so the spec can be computed once in the parent
and shipped to every worker byte-identically.

The workload is *precomputed* as plain ``(txid, src, dst, delta)``
tuples: the legacy :meth:`ShardedCluster.run_workload` draws transfers
from ``random.Random(0x5AD0 + seed)`` interleaved with simulation
progress, but the draws themselves depend only on the seed and the
(static) routing table — so the exact same sequence can be rolled out
ahead of time and replayed by the driver, wave by wave, at virtual-time
boundaries that do not depend on the worker count.
"""

import random
from dataclasses import dataclass, field

from ..shard.cluster import KEY_WIDTH
from ..shard.keyspace import HashPartitioner, RangePartitioner, ShardMap

__all__ = [
    "FleetSpec", "domain_of", "CTL_DOMAIN",
    "build_shard_map", "build_plan", "key_name",
]

#: Domain id of the control tier (transaction coordinator + workload
#: driver).  Node names without a ``gid/`` prefix route here.
CTL_DOMAIN = "ctl"


def domain_of(name):
    """The synchronization domain a node name belongs to: its group id
    (``"s3/r1"`` -> ``"s3"``), or the control tier for ungrouped names."""
    head, sep, _ = name.partition("/")
    return head if sep else CTL_DOMAIN


def key_name(i):
    """The ``i``-th generated key (mirrors ``ShardedCluster.key``)."""
    return "k%0*d" % (KEY_WIDTH, i)


@dataclass(frozen=True)
class FleetSpec:
    """One sharded run, described without reference to any simulator.

    ``epoch`` is the conservative lookahead: it must not exceed
    ``cross_low`` (the minimum cross-domain link latency), so that no
    message sent inside an epoch can be due for delivery before the
    next barrier.
    """

    seed: int = 0
    n_shards: int = 2
    replicas: int = 3
    protocol: str = "multi-paxos"
    partitioning: str = "range"
    key_space: int = 64
    txns: int = 24
    cross_ratio: float = 0.4
    batch: int = 8
    amount: int = 5
    workers: int = 1
    # -- synchronization constants ------------------------------------
    epoch: float = 4.0
    cross_low: float = 4.0
    cross_high: float = 6.0
    in_low: float = 0.5
    in_high: float = 1.5
    drain_epochs: int = 6
    op_timeout: float = 3000.0
    max_epochs: int = 20000
    # -- observers ----------------------------------------------------
    trace: bool = False
    telemetry: bool = False
    monitors: bool = False
    #: Fault-injection hook for tests/CI: ``(worker_index, epoch)`` makes
    #: that worker raise at that epoch barrier.
    fail_worker: tuple = None
    #: Force the in-process engine even for ``workers > 1`` (tests).
    inline: bool = False

    def __post_init__(self):
        if self.epoch > self.cross_low:
            raise ValueError(
                "epoch %.3f exceeds the cross-domain lookahead %.3f"
                % (self.epoch, self.cross_low))
        if self.workers < 1:
            raise ValueError("need at least one worker")

    # -- fleet layout --------------------------------------------------

    def shard_ids(self):
        return ["s%d" % i for i in range(self.n_shards)]

    def protocol_for(self, index):
        if self.protocol == "mixed":
            return "multi-paxos" if index % 2 == 0 else "raft"
        return self.protocol

    def uses_raft(self):
        return any(self.protocol_for(i) == "raft"
                   for i in range(self.n_shards))

    @property
    def settle(self):
        """Virtual time for leader elections before traffic starts
        (mirrors ``ShardedCluster.__init__``)."""
        return 25.0 if self.uses_raft() else 10.0

    def members_of(self, gid):
        return tuple("%s/r%d" % (gid, i) for i in range(self.replicas))

    def fleet_names(self):
        """Every network-registered node name in the fleet."""
        names = []
        for gid in self.shard_ids():
            names.extend(self.members_of(gid))
        names.append("txn-coord")
        return names

    def domains(self):
        """All synchronization domains, control tier first."""
        return [CTL_DOMAIN] + self.shard_ids()


def build_shard_map(spec):
    """The static routing table (mirrors ``ShardedCluster._build_map``).

    Parallel runs never split shards, so the map built here stays valid
    for the whole run and every worker can hold its own copy.
    """
    if spec.partitioning == "hash":
        return ShardMap(HashPartitioner(spec.n_shards))
    if spec.partitioning == "range":
        boundaries = [key_name(i * spec.key_space // spec.n_shards)
                      for i in range(1, spec.n_shards)]
        return ShardMap(RangePartitioner(boundaries))
    raise ValueError("unknown partitioning %r "
                     "(choices: hash, range)" % (spec.partitioning,))


def _random_transfer(rng, shard_map, spec):
    """One transfer draw, byte-for-byte the order of
    ``ShardedCluster._random_transfer``."""
    src = key_name(rng.randrange(spec.key_space))
    dst = src
    want_cross = rng.random() < spec.cross_ratio
    for _ in range(64):
        candidate = key_name(rng.randrange(spec.key_space))
        if candidate == src:
            continue
        crosses = shard_map.shard_of(candidate) != shard_map.shard_of(src)
        if crosses == want_cross:
            dst = candidate
            break
        if dst == src:
            dst = candidate  # fallback: any distinct key
    delta = rng.randrange(1, spec.amount + 1)
    return (src, dst, delta)


def build_plan(spec):
    """The full workload as waves of ``(txid, src, dst, delta)`` tuples.

    Two segments mirror the CLI's two ``run_workload`` calls
    (``max(txns // 2, 1)`` then ``max(txns - txns // 2, 1)``), each
    restarting the workload rng the way a fresh ``run_workload`` call
    does.  Transaction ids continue across segments (one
    coordinator-side counter).
    """
    shard_map = build_shard_map(spec)
    segments = []
    txid = 0
    for seg_txns in (max(spec.txns // 2, 1),
                     max(spec.txns - spec.txns // 2, 1)):
        rng = random.Random(0x5AD0 + spec.seed)
        waves = []
        remaining = seg_txns
        while remaining > 0:
            wave = []
            for _ in range(min(spec.batch, remaining)):
                remaining -= 1
                src, dst, delta = _random_transfer(rng, shard_map, spec)
                wave.append(("tx%d" % txid, src, dst, delta))
                txid += 1
            waves.append(wave)
        segments.append(waves)
    return segments
