"""ParallelRunner — ordered seed-fanout over worker processes.

``repro sweep <protocol> --seeds A..B --workers K`` runs one
independent sequential simulation per seed, K at a time.  Unlike the
epoch-barrier engine this needs no synchronization at all (different
seeds share nothing), so it is the embarrassing-parallel path: results
come back in seed order regardless of completion order, and a
one-worker sweep produces exactly the same rows as an eight-worker
one.
"""

import multiprocessing

__all__ = ["ParallelRunner", "run_seed", "sweep"]


class ParallelRunner:
    """Order-preserving map over a pool of forked workers.

    Falls back to an in-process loop when one worker suffices or the
    platform cannot fork — results are identical either way, only the
    wall clock changes.
    """

    def __init__(self, workers=1):
        self.workers = max(1, int(workers))

    def map(self, fn, items):
        items = list(items)
        if self.workers == 1 or len(items) <= 1 \
                or "fork" not in multiprocessing.get_all_start_methods():
            return [fn(item) for item in items]
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(self.workers, len(items))) as pool:
            return pool.map(fn, items)


def run_seed(task):
    """One sequential run of ``(protocol, seed)``; returns a plain dict
    (top-level so the multiprocessing pool can import it by name)."""
    protocol, seed = task
    from ..__main__ import _RUNNERS
    from ..core import Cluster
    cluster = Cluster(seed=seed)
    summary = _RUNNERS[protocol](cluster)
    return {
        "seed": seed,
        "summary": summary,
        "messages": cluster.metrics.messages_total,
        "events": cluster.sim.events_processed,
        "virtual_time": round(float(cluster.now), 1),
    }


def sweep(protocol, seeds, workers=1):
    """Run ``protocol`` once per seed, ``workers`` at a time; rows come
    back in seed order."""
    runner = ParallelRunner(workers)
    return runner.map(run_seed, [(protocol, seed) for seed in seeds])
