"""Named deterministic random streams for partitioned runs.

A parallel run must draw the *same* random numbers as the one-worker
run regardless of how the fleet is split across workers.  The sequential
kernel can get away with one simulator-wide stream because it has one
global event order; a partitioned run cannot — interleaving between
workers is a scheduling artifact.  The fix is classic PDES: give every
independent *domain* (a shard group, the control tier, a cross-domain
link) its own stream, keyed by stable names, so each domain's draw
sequence depends only on its own deterministic event order.

Seeds are derived with SHA-512 (never the builtin ``hash``, which is
salted per process) so every worker — and every future run — derives
the identical stream from the identical names.
"""

import hashlib
import random

__all__ = ["stream_seed", "named_stream"]

_TAG = b"repro-parallel"


def stream_seed(seed, *names):
    """A stable 64-bit seed derived from the run seed and a name path."""
    digest = hashlib.sha512()
    digest.update(_TAG)
    digest.update(str(seed).encode("utf-8"))
    for name in names:
        digest.update(b"\x00")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def named_stream(seed, *names):
    """A ``random.Random`` whose sequence is a pure function of
    ``(seed, *names)`` — identical on every worker of every run."""
    return random.Random(stream_seed(seed, *names))
