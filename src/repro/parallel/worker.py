"""One worker's slice of a partitioned fleet.

A :class:`FleetWorker` owns a private :class:`~repro.sim.Simulator`
hosting the shard groups (and, on worker 0, the transaction coordinator
plus the workload driver) of its assigned domains.  The engine drives
it epoch by epoch: inject the barrier-exchanged messages, run to the
epoch horizon, hand back the cross-domain outbox.  At the end it ships
everything the merge phase needs — trace rows, telemetry series,
monitor verdicts, consistency checks, workload summaries — as plain
picklable data.

Determinism notes:

* every process's ``rng`` is rebound to its domain's named stream
  before the simulation starts, so no draw depends on worker placement;
* the collector is a :class:`ParallelCollector`: identical to the
  sequential one except the cross-group ``phase_latency`` histogram
  lane, whose inter-arrival samples depend on how *other* groups'
  events interleave — the one observable that cannot survive
  partitioning (suppressed at every worker count, including one);
* the workload driver replays a precomputed plan at virtual-time
  boundaries (settle delay, 1-unit polls), never at "when the queue
  drained" — queue states are worker-local, virtual times are global.
"""

import time

from ..core.cluster import Cluster
from ..core.exceptions import LivenessFailure
from ..dtxn.coordinator import Transaction
from ..metrics.collector import MetricsCollector
from ..shard.group import PROTOCOL_ADAPTERS, ShardGroup
from ..shard.txn import ShardTxnCoordinator
from ..sim.process import Process
from ..trace.events import DELIVER, DROP, SEND
from .gateway import FleetNetwork
from .spec import CTL_DOMAIN, build_plan, build_shard_map, domain_of

__all__ = ["FleetWorker", "ParallelCollector", "WorkerCluster"]


class ParallelCollector(MetricsCollector):
    """Collector variant for partitioned runs.

    ``phase_latency`` measures the gap between *consecutive phase marks
    across the whole fleet* — a property of global event interleaving,
    which a partitioned run deliberately does not define.  Everything
    else (phase mark list, counters, tracer rows) is kept; the
    histogram lane is skipped at every worker count so one-worker runs
    stay byte-identical to eight-worker runs.
    """

    def mark_phase(self, protocol, phase, now):
        self.phase_marks.append((protocol, phase, now))
        registry = self.registry
        if registry is not None:
            key = (protocol, phase)
            inc = self._mark_handles.get(key)
            if inc is None:
                inc = registry.handle(
                    "counter", "phase_marks_total",
                    protocol=str(protocol), phase=str(phase)).inc
                self._mark_handles[key] = inc
            inc()
        if self.tracer is not None:
            self.tracer.on_phase(protocol, phase)


class WorkerCluster(Cluster):
    """A :class:`Cluster` whose fabric is a :class:`FleetNetwork`.

    Built empty, then re-wires metrics/network/monitors *before any
    node registers* — the stock constructor's instances hold no state
    yet, so swapping them is safe.
    """

    def __init__(self, spec, fleet_names):
        super().__init__(seed=spec.seed, trace=spec.trace,
                         telemetry=spec.telemetry, monitors=spec.monitors)
        self.metrics = ParallelCollector(tracer=self.tracer,
                                         registry=self.telemetry)
        self.network = FleetNetwork(
            self.sim, spec.seed, fleet_names,
            spec.cross_low, spec.cross_high, spec.in_low, spec.in_high,
            metrics=self.metrics, tracer=self.tracer,
            telemetry=self.telemetry)
        if spec.monitors:
            from ..monitor import MonitorHub
            self.monitors = MonitorHub(self.tracer, collector=self.metrics)


class _GroupStub:
    """The coordinator-facing face of a *remote* shard group: member
    names and the protocol's client-request class — nothing else."""

    __slots__ = ("gid", "members", "_request_cls")

    def __init__(self, gid, members, request_cls):
        self.gid = gid
        self.members = tuple(members)
        self._request_cls = request_cls

    def request(self, command, request_id):
        return self._request_cls(command, request_id)


def _make_update(src, dst, delta):
    def update(reads, src=src, dst=dst, delta=delta):
        return {src: (reads[src] or 0) - delta,
                dst: (reads[dst] or 0) + delta}
    return update


class _WorkloadDriver(Process):
    """Replays the precomputed transfer plan against the coordinator.

    The legacy path advances waves by running the simulator until every
    outcome lands; inside a partitioned run the driver *is* a simulated
    process, so it polls outcomes on a fixed virtual-time cadence
    instead.  All of its decision points are virtual-time boundaries —
    identical at any worker count.
    """

    POLL_INTERVAL = 1.0

    def __init__(self, sim, name, coordinator, shard_map, plan, settle,
                 op_timeout):
        super().__init__(sim, name)
        self.coordinator = coordinator
        self.shard_map = shard_map
        self.plan = plan
        self.settle = settle
        self.op_timeout = op_timeout
        self.done = False
        self.done_at = None
        self.summaries = []
        self._segment = 0
        self._wave_index = 0
        self._wave = []
        self._finished = []
        self._segment_started = None
        self._deadline = None

    def on_start(self):
        self.set_timer(self.settle, self._begin_segment)

    def _begin_segment(self):
        if self._segment >= len(self.plan):
            self.done = True
            self.done_at = self.sim.now
            return
        self._segment_started = self.sim.now
        self._finished = []
        self._wave_index = 0
        self._next_wave()

    def _next_wave(self):
        waves = self.plan[self._segment]
        if self._wave_index >= len(waves):
            self._close_segment()
            return
        plan_wave = waves[self._wave_index]
        self._wave_index += 1
        wave = []
        for txid, src, dst, delta in plan_wave:
            txn = Transaction(txid, (src, dst), _make_update(src, dst, delta))
            self.coordinator.submit(txn)
            wave.append(txn)
        self._wave = wave
        self._deadline = self.sim.now + self.op_timeout
        self.set_timer(self.POLL_INTERVAL, self._poll)

    def _poll(self):
        wave = self._wave
        if all(txn.outcome is not None for txn in wave):
            self._finished.extend(wave)
            self._next_wave()
            return
        if self.sim.now >= self._deadline:
            hung = [txn.txid for txn in wave if txn.outcome is None]
            raise LivenessFailure("workload transactions hung: %s"
                                  % ", ".join(hung))
        self.set_timer(self.POLL_INTERVAL, self._poll)

    def _close_segment(self):
        finished = self._finished
        duration = self.sim.now - self._segment_started
        committed = sum(1 for txn in finished
                        if txn.outcome == "committed")
        shard_of = self.shard_map.shard_of
        self.summaries.append({
            "txns": len(finished),
            "committed": committed,
            "aborted": len(finished) - committed,
            "cross_shard": sum(
                1 for txn in finished
                if len({shard_of(k) for k in txn.keys}) > 1),
            "fast_commits": self.coordinator.fast_commits,
            "virtual_time": duration,
            "committed_per_vtime": committed / duration
            if duration > 0 else 0.0,
        })
        self._segment += 1
        self._begin_segment()


class FleetWorker:
    """Hosts one worker's domains and runs them epoch by epoch."""

    def __init__(self, spec, widx, domains):
        self.spec = spec
        self.widx = widx
        self.domains = list(domains)
        cluster = WorkerCluster(spec, spec.fleet_names())
        self.cluster = cluster
        self.sim = cluster.sim
        local = set(self.domains)
        self.groups = {}
        for index, gid in enumerate(spec.shard_ids()):
            if gid not in local:
                continue
            group = ShardGroup(cluster, gid, spec.replicas,
                               protocol=spec.protocol_for(index))
            self.groups[gid] = group
            if spec.monitors:
                group.attach_monitors(f=(spec.replicas - 1) // 2)
        self.coordinator = None
        self.driver = None
        if CTL_DOMAIN in local:
            shard_map = build_shard_map(spec)
            stubs = [
                _GroupStub(gid, spec.members_of(gid),
                           PROTOCOL_ADAPTERS[spec.protocol_for(index)][1])
                for index, gid in enumerate(spec.shard_ids())
            ]
            self.coordinator = cluster.add_node(
                ShardTxnCoordinator, "txn-coord", shard_map, stubs)
            self.driver = _WorkloadDriver(
                self.sim, "driver", self.coordinator, shard_map,
                build_plan(spec), spec.settle, spec.op_timeout)
            cluster.nodes.append(self.driver)
        # Placement-independent randomness: every process draws from its
        # domain's stream, never the worker simulator's.
        network = cluster.network
        for node in cluster.nodes:
            node.rng = network.domain_rng(domain_of(node.name))
        cluster.start_all()

    # -- epoch protocol ------------------------------------------------

    def run_epoch(self, epoch_index, horizon, injected):
        """Inject barrier messages, run to ``horizon``, return status."""
        fail = self.spec.fail_worker
        if fail is not None and fail[0] == self.widx \
                and fail[1] == epoch_index:
            raise RuntimeError(
                "injected fault: worker %d failing at epoch %d"
                % (self.widx, epoch_index))
        sim = self.sim
        network = self.cluster.network
        deliver = network.deliver_cross
        for entry in injected:
            deliver_time, src_domain, dst_domain, link_seq, src, dst, \
                message = entry
            sim.schedule_at(deliver_time, deliver, src, dst, message,
                            (src_domain, dst_domain, link_seq))
        start = time.process_time()
        sim.run(until=horizon)
        cpu = time.process_time() - start
        outbox = network.outbox
        network.outbox = []
        return {
            "outbox": outbox,
            "cpu": cpu,
            "driver_done": self.driver.done if self.driver is not None
            else True,
        }

    # -- final results -------------------------------------------------

    def finalize(self, virtual_time):
        """Ship everything the merge needs, as plain picklable data."""
        spec = self.spec
        cluster = self.cluster
        payload = {
            "widx": self.widx,
            "events": self.sim.events_processed,
            "summary": cluster.metrics.snapshot(),
            "consistency": {gid: group.check_consistency()
                            for gid, group in sorted(self.groups.items())},
            "per_shard": self._per_shard(),
        }
        if cluster.telemetry is not None:
            payload["series"] = [
                (name, labels, instrument.value)
                for name, labels, instrument in cluster.telemetry.series()
                if instrument.kind == "counter"
            ]
        if cluster.tracer is not None:
            payload["trace"] = self._trace_rows()
        if spec.monitors:
            cluster.monitors.finish()
            payload["monitors"] = [
                {
                    "name": monitor.name,
                    "category": monitor.category,
                    "group": monitor.group,
                    "anomalies": [a.to_dict() for a in monitor.anomalies],
                    "decisions": getattr(monitor, "decisions", None),
                }
                for monitor in cluster.monitors.monitors
            ]
        if self.coordinator is not None:
            c = self.coordinator
            payload["coordinator"] = {
                "commits": c.commits,
                "aborts": c.aborts,
                "fast_commits": c.fast_commits,
                "decisions_replicated": c.decisions_replicated,
                "timeout_aborts": c.timeout_aborts,
                "conflicts": c.conflicts_seen,
                "reroutes": c.reroutes,
            }
        if self.driver is not None:
            payload["workload"] = list(self.driver.summaries)
            payload["driver_done_at"] = self.driver.done_at
        return payload

    def _per_shard(self):
        per_shard = {}
        for gid, group in sorted(self.groups.items()):
            machines = group.machines(live_only=True) or \
                group.machines(live_only=False)
            best = max(machines, key=lambda sm: sm.ops_applied)
            per_shard[gid] = {
                "protocol": group.protocol,
                "ops_applied": best.ops_applied,
                "commits": best.commits,
                "fast_applies": best.fast_applies,
                "keys": len(best.data),
            }
        return per_shard

    def _trace_rows(self):
        """Worker-local trace rows with cross-worker message identity.

        Each row carries a ``ref`` naming its message independently of
        worker placement: local messages as ``("l", widx, msg_id)``
        (sender and receiver share a worker, so the local id is already
        an identity), cross-domain ones as ``("x", src_domain,
        dst_domain, link_seq)`` (the link identity both sides recorded).
        """
        network = self.cluster.network
        send_refs = network.cross_send_refs
        recv_refs = network.cross_recv_refs
        widx = self.widx
        rows = []
        for index, event in enumerate(self.cluster.trace.events):
            msg_id = event.msg_id
            ref = None
            if event.kind in (SEND, DELIVER, DROP) and msg_id != -1:
                link = send_refs.get(msg_id)
                if link is None:
                    link = recv_refs.get(msg_id)
                if link is not None:
                    ref = ("x",) + link
                elif msg_id >= 0:
                    ref = ("l", widx, msg_id)
            rows.append((event.kind, event.time, event.node, event.peer,
                         event.mtype, event.detail, ref, index))
        return rows
