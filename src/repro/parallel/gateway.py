"""FleetNetwork — the worker-local network fabric with a cross-domain
outbox.

Each worker hosts a slice of the fleet's synchronization domains (shard
groups plus the control tier).  Traffic *within* one domain is delivered
locally with a per-domain random delay stream; traffic *between*
domains — even two domains hosted by the same worker — never touches
the local event queue.  It is appended to an outbox and exchanged at
the next epoch barrier, where the engine merges every worker's outbox
in a globally deterministic order and routes each message to the worker
hosting its destination.

Routing *all* cross-domain messages through the barrier (not just the
ones that happen to cross a worker boundary) is what makes worker
placement invisible: a domain's inbound message sequence is a pure
function of the fleet's behaviour, not of which worker hosts whom.

Delay streams:

* one ``("domain", d)`` stream per domain, shared with the domain's
  processes' own draws (election jitter, backoff) — a domain's entire
  randomness is one sequence consumed in its own deterministic order;
* one ``("link", src_domain, dst_domain)`` stream per directed domain
  pair for cross-domain latencies, with a per-link sequence number that
  makes the barrier merge order total.

Cross-domain latency is drawn from ``[cross_low, cross_high)`` with
``cross_low >= epoch``: a message sent during an epoch can never be due
before the next barrier, which is exactly the conservative-lookahead
condition.  Partitions and interceptors are not supported in
partitioned runs (the engine rejects those scenarios up front).
"""

from ..net.network import Network
from .spec import domain_of
from .streams import named_stream

__all__ = ["FleetNetwork"]


class FleetNetwork(Network):
    """Worker-local :class:`Network` splitting traffic at domain edges.

    Parameters
    ----------
    fleet_names:
        Every node name in the whole fleet — used to validate
        cross-domain destinations that are not registered locally.
    """

    def __init__(self, sim, seed, fleet_names, cross_low, cross_high,
                 in_low, in_high, metrics=None, tracer=None,
                 telemetry=None):
        super().__init__(sim, metrics=metrics, tracer=tracer,
                         telemetry=telemetry)
        self._seed = seed
        self._fleet_names = frozenset(fleet_names)
        self._in_low = in_low
        self._in_span = in_high - in_low
        self._cross_low = cross_low
        self._cross_span = cross_high - cross_low
        self._domain_rngs = {}
        self._domain_cache = {}
        self._links = {}  # (src_domain, dst_domain) -> [rng, seq]
        #: Cross-domain sends of the running epoch, as picklable entries
        #: ``(deliver_time, src_domain, dst_domain, link_seq, src, dst,
        #: message)``.  The engine drains this at every barrier.
        self.outbox = []
        # Trace-identity maps: local msg_id -> link key for cross sends,
        # negative injection token -> link key for cross deliveries.
        # The merge phase uses these to re-unite a SEND recorded on the
        # sender's worker with its DELIVER recorded on the receiver's.
        self.cross_send_refs = {}
        self.cross_recv_refs = {}
        self._next_cross_token = -2  # -1 is the tracer's "no id" value

    # -- streams -----------------------------------------------------------

    def domain_rng(self, domain):
        """The domain's random stream (also bound to its processes)."""
        rng = self._domain_rngs.get(domain)
        if rng is None:
            rng = named_stream(self._seed, "domain", domain)
            self._domain_rngs[domain] = rng
        return rng

    def _link(self, src_domain, dst_domain):
        link = self._links.get((src_domain, dst_domain))
        if link is None:
            link = [named_stream(self._seed, "link", src_domain,
                                 dst_domain), 0]
            self._links[(src_domain, dst_domain)] = link
        return link

    # -- sending -----------------------------------------------------------

    def send(self, src, dst, message, _size=None):
        dom = self._domain_cache
        src_domain = dom.get(src)
        if src_domain is None:
            src_domain = dom[src] = domain_of(src)
        dst_domain = dom.get(dst)
        if dst_domain is None:
            dst_domain = dom[dst] = domain_of(dst)
        if src_domain == dst_domain:
            return self._send_local(src_domain, src, dst, message, _size)
        return self._send_cross(src_domain, dst_domain, src, dst,
                                message, _size)

    def _count_send(self, src, dst, message, size):
        """The base class's per-link metric/telemetry bumps."""
        cached = self._link_handles.get((message.__class__, src, dst))
        if cached is None:
            cached = self._resolve_link(src, dst, message)
        slot, handles = cached
        if slot is not None:
            if size is None:
                size = message.size_estimate()
            slot[0] += 1
            slot[1] += size
        if handles is not None:
            if size is None:
                size = message.size_estimate()
            handles[0].value += 1
            handles[1].value += size
            handles[2].value += 1

    def _send_local(self, domain, src, dst, message, size):
        """In-domain unicast: same accounting as the base class, delay
        drawn from the domain's own stream."""
        if dst not in self._nodes:
            raise KeyError("unknown destination %r" % (dst,))
        self._count_send(src, dst, message, size)
        rng = self._domain_rngs.get(domain)
        if rng is None:
            rng = self.domain_rng(domain)
        delay = self._in_low + self._in_span * rng.random()
        sim = self.sim
        tracer = self.tracer
        if tracer is None:
            sim._queue.push_transient(sim._now + delay, self._deliver,
                                      (src, dst, message))
        else:
            token = tracer.on_send(src, dst, message)
            sim._queue.push_transient(sim._now + delay,
                                      self._deliver_traced,
                                      (src, dst, message, token))
        return True

    def _send_cross(self, src_domain, dst_domain, src, dst, message, size):
        """Cross-domain unicast: accounted on the sending worker, queued
        for exchange at the next epoch barrier."""
        if dst not in self._fleet_names:
            raise KeyError("unknown destination %r" % (dst,))
        self._count_send(src, dst, message, size)
        link = self._link(src_domain, dst_domain)
        delay = self._cross_low + self._cross_span * link[0].random()
        link[1] += 1
        link_seq = link[1]
        tracer = self.tracer
        if tracer is not None:
            token = tracer.on_send(src, dst, message)
            self.cross_send_refs[token] = (src_domain, dst_domain, link_seq)
        self.outbox.append((self.sim._now + delay, src_domain, dst_domain,
                            link_seq, src, dst, message))
        return True

    # -- barrier injection -------------------------------------------------

    def deliver_cross(self, src, dst, message, link_key):
        """Deliver one barrier-exchanged message to a local node.

        Scheduled by the worker (via ``schedule_at``) when the engine
        hands it the entry; runs at the entry's deliver time.  Receive
        accounting mirrors the local delivery path; the trace row gets a
        fresh negative token mapped back to the link identity so the
        merge can pair it with the sender's SEND row.
        """
        node = self._nodes.get(dst)
        tracer = self.tracer
        if node is None or node.crashed:
            if tracer is not None:
                token = self._next_cross_token
                self._next_cross_token -= 1
                self.cross_recv_refs[token] = link_key
                tracer.on_drop(src, dst, message, "crashed", token)
            self._count_drop(message, "crashed")
            return
        if tracer is not None:
            token = self._next_cross_token
            self._next_cross_token -= 1
            self.cross_recv_refs[token] = link_key
            tracer.on_deliver(src, dst, message, token)
        self._count_receive(dst)
        node.deliver(message, src)
