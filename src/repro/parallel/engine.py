"""The conservative parallel engine: epoch barriers over worker fleets.

Classic conservative PDES (Chandy–Misra lookahead, specialised to a
barrier protocol): the fleet's synchronization domains are partitioned
across workers, every cross-domain link has latency at least
``cross_low``, and the run advances in epochs of length
``epoch <= cross_low``.  Within an epoch each worker simulates its
domains completely independently — no message sent during the epoch
can be due before the epoch ends, so no worker can miss an input.  At
the barrier the engine gathers every worker's cross-domain outbox,
sorts it into one global order ``(deliver_time, src_domain,
dst_domain, link_seq)``, and routes each entry to the worker hosting
its destination domain, which injects it before running the next
epoch.

Because the merge order, every random stream, and every worker-local
event order are independent of the partitioning, a run at any worker
count produces *byte-identical* traces, telemetry and reports — the
golden suite enforces it.

Termination cannot use queue emptiness (heartbeat timers keep every
queue busy forever): worker 0 reports when the workload driver has
finished, the engine then runs ``drain_epochs`` more epochs so
in-flight decisions and consistency-relevant catch-up settle, and the
final barrier's horizon becomes the run's virtual time everywhere.

Worker faults (a crashed process, an exception inside a worker's
simulator, the ``REPRO_PARALLEL_FAIL`` injection hook) surface as
:class:`WorkerFailure` after every other worker is shut down cleanly.
"""

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field, replace

from .partition import assign_domains
from .worker import FleetWorker

__all__ = ["WorkerFailure", "RunResult", "run_parallel_shards", "FAIL_ENV"]

#: Environment hook for CI fault injection: ``"<worker>:<epoch>"`` makes
#: that worker raise at that epoch barrier.
FAIL_ENV = "REPRO_PARALLEL_FAIL"


class WorkerFailure(RuntimeError):
    """A worker died or misbehaved; the run was shut down cleanly."""


@dataclass
class RunResult:
    """Everything a merged report needs from one parallel run."""

    spec: object
    assignment: list
    epochs: int
    virtual_time: float
    total_events: int
    #: Sum over epochs of the slowest worker's CPU time plus the
    #: engine's merge CPU — the run's critical path.  On a machine with
    #: at least ``workers`` free cores this converges to wall time; on
    #: a loaded one it is the honest denominator for scaling claims.
    critical_path_seconds: float
    wall_seconds: float
    #: Per-worker finalize payloads, indexed by worker.
    results: list = field(default_factory=list)

    @property
    def workers(self):
        return len(self.results)


class _InlineHandle:
    """In-process worker — the ``workers == 1`` engine, unit tests, and
    the fallback when ``fork`` is unavailable."""

    def __init__(self, spec, widx, domains):
        self.widx = widx
        self.worker = FleetWorker(spec, widx, domains)
        self._result = None

    def start_epoch(self, epoch, horizon, injected):
        try:
            self._status = self.worker.run_epoch(epoch, horizon, injected)
        except Exception as exc:
            raise WorkerFailure(
                "worker %d failed at epoch %d: %s"
                % (self.widx, epoch, exc)) from exc

    def join_epoch(self):
        return self._status

    def start_finalize(self, virtual_time):
        self._result = self.worker.finalize(virtual_time)

    def join_finalize(self):
        return self._result

    def close(self):
        pass


def _worker_main(conn, spec, widx, domains):
    """Child-process loop: build the worker, then serve epoch/finalize
    commands until told to exit.  Any exception (construction included)
    is shipped back as a traceback string."""
    try:
        worker = FleetWorker(spec, widx, domains)
        conn.send(("ready",))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "epoch":
                _kind, epoch, horizon, injected = msg
                conn.send(("status",
                           worker.run_epoch(epoch, horizon, injected)))
            elif kind == "finalize":
                conn.send(("result", worker.finalize(msg[1])))
                return
            else:  # "exit"
                return
    except EOFError:
        pass  # parent went away first (it is already erroring out)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _ProcessHandle:
    """One forked worker process behind a pipe."""

    def __init__(self, ctx, spec, widx, domains):
        self.widx = widx
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main,
                                args=(child, spec, widx, domains),
                                daemon=True)
        self.proc.start()
        child.close()
        self._expect("ready")

    def _recv(self):
        try:
            return self.conn.recv()
        except EOFError:
            raise WorkerFailure(
                "worker %d died without reporting an error" % self.widx)

    def _expect(self, kind):
        msg = self._recv()
        if msg[0] == "error":
            raise WorkerFailure("worker %d failed:\n%s"
                                % (self.widx, msg[1]))
        if msg[0] != kind:
            raise WorkerFailure(
                "worker %d protocol error: expected %r, got %r"
                % (self.widx, kind, msg[0]))
        return msg

    def start_epoch(self, epoch, horizon, injected):
        self.conn.send(("epoch", epoch, horizon, injected))

    def join_epoch(self):
        return self._expect("status")[1]

    def start_finalize(self, virtual_time):
        self.conn.send(("finalize", virtual_time))

    def join_finalize(self):
        return self._expect("result")[1]

    def close(self):
        try:
            self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5.0)


def _spawn(spec, assignment):
    use_processes = (spec.workers > 1 and not spec.inline
                     and "fork" in multiprocessing.get_all_start_methods())
    handles = []
    if use_processes:
        ctx = multiprocessing.get_context("fork")
        for widx, domains in enumerate(assignment):
            handles.append(_ProcessHandle(ctx, spec, widx, domains))
    else:
        for widx, domains in enumerate(assignment):
            handles.append(_InlineHandle(spec, widx, domains))
    return handles


def run_parallel_shards(spec):
    """Run one sharded fleet under the parallel engine; returns a
    :class:`RunResult` whose merged outputs are byte-identical at every
    worker count."""
    fail_env = os.environ.get(FAIL_ENV)
    if fail_env:
        widx, _, at_epoch = fail_env.partition(":")
        spec = replace(spec, fail_worker=(int(widx), int(at_epoch or 0)))
    assignment = assign_domains(spec)
    domain_owner = {domain: widx
                    for widx, domains in enumerate(assignment)
                    for domain in domains}
    wall_start = time.perf_counter()
    handles = []
    try:
        handles = _spawn(spec, assignment)
        pending = [[] for _ in handles]
        critical_path = 0.0
        epoch = 0
        done_epoch = None
        while True:
            horizon = (epoch + 1) * spec.epoch
            for handle in handles:
                handle.start_epoch(epoch, horizon, pending[handle.widx])
            pending = [[] for _ in handles]
            statuses = [handle.join_epoch() for handle in handles]
            merge_start = time.process_time()
            outbox = []
            for status in statuses:
                outbox.extend(status["outbox"])
            # The deterministic merge: one global order, independent of
            # which worker contributed which entry.
            outbox.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
            for entry in outbox:
                pending[domain_owner[entry[2]]].append(entry)
            critical_path += max(s["cpu"] for s in statuses) \
                + (time.process_time() - merge_start)
            if done_epoch is None and statuses[0]["driver_done"]:
                done_epoch = epoch
            if done_epoch is not None \
                    and epoch >= done_epoch + spec.drain_epochs:
                virtual_time = horizon
                break
            epoch += 1
            if epoch >= spec.max_epochs:
                raise WorkerFailure(
                    "run did not finish within %d epochs "
                    "(virtual time %.1f)" % (spec.max_epochs, horizon))
        for handle in handles:
            handle.start_finalize(virtual_time)
        results = [handle.join_finalize() for handle in handles]
        return RunResult(
            spec=spec,
            assignment=assignment,
            epochs=epoch + 1,
            virtual_time=virtual_time,
            total_events=sum(res["events"] for res in results),
            critical_path_seconds=critical_path,
            wall_seconds=time.perf_counter() - wall_start,
            results=results,
        )
    finally:
        for handle in handles:
            handle.close()
