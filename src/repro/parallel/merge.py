"""Deterministic merge of per-worker outputs into single-run artifacts.

A parallel run must be *indistinguishable on disk* from the one-worker
run: ``repro trace/stats/check`` read the merged artifacts with the
same schemas, and the golden suite byte-compares them across worker
counts.  Three merges make that true:

* **trace** — per-worker rows are sorted into one global order
  ``(time, node, per-node recording order)`` (node-less phase rows
  order by their own content), message ids are renumbered in merged
  send order, cross-worker send/deliver pairs are re-united through
  their link identity, and Lamport clocks are recomputed with the
  tracer's exact rules.  Every input to this is placement-independent,
  so the merged trace is too.
* **telemetry** — fleet runs record only counters (the one
  interleaving-dependent histogram lane is suppressed by
  ``ParallelCollector``), and counter sums are order-free.  A fresh
  registry is rebuilt from every worker's series and rendered through
  the stock ``run_report``.
* **conformance** — monitor batteries are group-scoped, so each
  verdict is computed entirely on the worker hosting its group; the
  merge just reassembles the report through the stock builder with the
  fleet-wide headline numbers.
"""

from collections import Counter
from types import SimpleNamespace

from ..telemetry.registry import MetricsRegistry
from ..telemetry.report import run_report
from ..trace.events import (DELIVER, DROP, PHASE, REQUEST, SEND,
                            TraceEvent)
from ..trace.trace import Trace

__all__ = [
    "merge_trace", "merge_registry", "merged_summary", "merged_stats",
    "build_stats_report", "build_check_report", "merged_workload",
    "merged_consistency",
]


# -- trace -------------------------------------------------------------------

def _row_key(row):
    # row = (kind, time, node, peer, mtype, detail, ref, local_idx)
    node = row[2]
    if node:
        # One node records on exactly one worker, so within (time, node)
        # the worker-local recording index is a total causal order.
        return (row[1], node, row[7])
    # Node-less rows (phase marks) order by content; identical rows tie
    # arbitrarily — they are interchangeable.
    return (row[1], node, (row[4], row[5]))


def merge_trace(run):
    """One :class:`Trace` from every worker's rows, byte-stable across
    worker counts."""
    rows = []
    for res in run.results:
        rows.extend(res.get("trace", ()))
    rows.sort(key=_row_key)
    clocks = {}
    send_clock = {}
    ref_ids = {}
    next_id = 0
    events = []
    append = events.append
    for seq, row in enumerate(rows):
        kind, time, node, peer, mtype, detail, ref, _idx = row
        if ref is None:
            msg_id = -1
        elif kind == SEND:
            msg_id = ref_ids[ref] = next_id
            next_id += 1
        else:
            msg_id = ref_ids[ref]
        if kind == SEND:
            lamport = clocks.get(node, 0) + 1
            clocks[node] = lamport
            send_clock[msg_id] = lamport
        elif kind == DELIVER:
            lamport = max(clocks.get(node, 0),
                          send_clock.pop(msg_id, 0)) + 1
            clocks[node] = lamport
        elif kind == PHASE or kind == REQUEST:
            lamport = 0
        else:  # TIMER, LOCAL, DROP
            lamport = clocks.get(node, 0) + 1
            clocks[node] = lamport
        append(TraceEvent(seq, time, kind, node, lamport, peer, mtype,
                          msg_id, detail))
    return Trace(events)


# -- telemetry ---------------------------------------------------------------

def merge_registry(run):
    """A fresh registry holding every worker's counters, summed.

    Fleet runs emit only counters (see :class:`ParallelCollector`), and
    counter addition commutes — so the merged registry is independent
    of worker count and iteration order (``series()`` sorts on read).
    """
    registry = MetricsRegistry()
    for res in run.results:
        for name, labels, value in res.get("series", ()):
            registry.counter(name, **dict(labels)).value += value
    return registry


def merged_summary(run):
    """The fleet-wide collector snapshot (same shape as
    ``MetricsCollector.snapshot``)."""
    by_type = Counter()
    bytes_total = 0
    messages_total = 0
    requests = 0
    unmatched = 0
    for res in run.results:
        summary = res["summary"]
        by_type.update(summary["by_type"])
        bytes_total += summary["bytes_total"]
        messages_total += summary["messages_total"]
        requests += summary["requests"]
        unmatched += summary["unmatched_requests"]
    return {
        "by_type": {mtype: by_type[mtype] for mtype in sorted(by_type)},
        "bytes_total": bytes_total,
        "mean_latency": None,
        "messages_total": messages_total,
        "requests": requests,
        "unmatched_requests": unmatched,
    }


class _SummaryShim:
    """Quacks like a collector for ``run_report(collector=...)``."""

    def __init__(self, snapshot):
        self._snapshot = snapshot

    def snapshot(self):
        return self._snapshot


def build_stats_report(run):
    """The standard telemetry run-report for a parallel run."""
    return run_report(merge_registry(run), _SummaryShim(merged_summary(run)),
                      protocol="shards", seed=run.spec.seed,
                      virtual_time=run.virtual_time)


# -- workload / stats --------------------------------------------------------

def merged_workload(run):
    """The driver's per-segment summaries (recorded on worker 0)."""
    for res in run.results:
        if "workload" in res:
            return res["workload"]
    return []


def merged_consistency(run):
    """``{gid: replicas-agree}`` across the whole fleet."""
    consistency = {}
    for res in run.results:
        consistency.update(res["consistency"])
    return {gid: consistency[gid] for gid in sorted(consistency)}


def merged_stats(run):
    """Fleet summary in the ``ShardedCluster.stats()`` shape."""
    spec = run.spec
    per_shard = {}
    coordinator = None
    for res in run.results:
        per_shard.update(res["per_shard"])
        if "coordinator" in res:
            coordinator = res["coordinator"]
    stats = {
        "shards": spec.n_shards,
        "replicas": spec.replicas,
        "partitioning": spec.partitioning,
        "epoch": 0,
        "commits": coordinator["commits"],
        "aborts": coordinator["aborts"],
        "fast_commits": coordinator["fast_commits"],
        "decisions_replicated": coordinator["decisions_replicated"],
        "timeout_aborts": coordinator["timeout_aborts"],
        "conflicts": coordinator["conflicts"],
        "reroutes": coordinator["reroutes"],
        "splits_done": 0,
        "per_shard": {gid: per_shard[gid] for gid in sorted(per_shard)},
    }
    return stats


# -- conformance -------------------------------------------------------------

class _FakeAnomaly:
    """An anomaly rebuilt from its shipped dict form."""

    __slots__ = ("_dict",)

    def __init__(self, data):
        self._dict = data

    @property
    def seq(self):
        return self._dict["seq"]

    @property
    def monitor(self):
        return self._dict["monitor"]

    @property
    def message(self):
        return self._dict["message"]

    def to_dict(self):
        return self._dict


def build_check_report(run):
    """The standard conformance report for a parallel run.

    Monitor verdicts were computed per group on the hosting workers
    (batteries are group-scoped, so no monitor ever needed another
    worker's events); this reassembles them through the stock report
    builder with fleet-wide headline numbers.
    """
    from ..monitor.conformance import _build_report
    spec = run.spec
    monitors = []
    anomalies = []
    for res in run.results:
        for entry in res.get("monitors", ()):
            fakes = [_FakeAnomaly(a) for a in entry["anomalies"]]
            anomalies.extend(fakes)
            monitors.append(SimpleNamespace(
                name=entry["name"], category=entry["category"],
                group=entry["group"], anomalies=fakes,
                decisions=entry["decisions"]))
    monitors.sort(key=lambda m: (m.group or "", m.name))
    anomalies.sort(key=lambda a: (a.seq if a.seq >= 0 else 1 << 60,
                                  a.monitor, a.message))
    workload = merged_workload(run)
    committed = sum(seg["committed"] for seg in workload)
    txns = sum(seg["txns"] for seg in workload)
    cross = sum(seg["cross_shard"] for seg in workload)
    consistent = all(merged_consistency(run).values())
    total_events = sum(len(res.get("trace", ())) for res in run.results)
    pseudo_cluster = SimpleNamespace(
        monitors=SimpleNamespace(monitors=monitors),
        metrics=SimpleNamespace(messages_total=
                                merged_summary(run)["messages_total"]),
        trace=range(total_events),
        now=run.virtual_time,
    )
    summary = "%d/%d committed (%d cross-shard); per-shard consistent=%s" \
        % (committed, txns, cross, consistent)
    return _build_report(
        "shards", spec.seed, None, pseudo_cluster,
        spec.n_shards * spec.replicas, (spec.replicas - 1) // 2,
        summary, anomalies)
