"""Deterministic parallel execution for sharded fleets.

Two parallelism shapes live here:

* :func:`run_parallel_shards` — ONE fleet, partitioned across worker
  processes by synchronization domain and advanced with conservative
  epoch barriers; the merged trace/stats/check artifacts are
  byte-identical at every worker count (the point: parallelism as a
  pure performance knob, never a semantics knob).
* :class:`ParallelRunner` / :func:`sweep` — MANY independent runs
  (seed fan-out), embarrassingly parallel, results in seed order.

See DESIGN.md's "Parallel execution" section for the lookahead
argument and the merge semantics.
"""

from .engine import FAIL_ENV, RunResult, WorkerFailure, run_parallel_shards
from .merge import (
    build_check_report,
    build_stats_report,
    merge_registry,
    merge_trace,
    merged_consistency,
    merged_stats,
    merged_summary,
    merged_workload,
)
from .partition import assign_domains
from .runner import ParallelRunner, sweep
from .spec import CTL_DOMAIN, FleetSpec, domain_of

__all__ = [
    "FAIL_ENV",
    "FleetSpec",
    "CTL_DOMAIN",
    "ParallelRunner",
    "RunResult",
    "WorkerFailure",
    "assign_domains",
    "build_check_report",
    "build_stats_report",
    "domain_of",
    "merge_registry",
    "merge_trace",
    "merged_consistency",
    "merged_stats",
    "merged_summary",
    "merged_workload",
    "run_parallel_shards",
    "sweep",
]
