"""Balance-aware assignment of synchronization domains to workers.

Longest-processing-time (LPT) greedy: sort domains by descending weight
(replica count; the control tier weighs one coordinator plus the
driver), then repeatedly give the heaviest unassigned domain to the
lightest worker.  Ties break on worker index, so the assignment is a
pure function of the spec — every run of every worker count computes
the identical layout.

The control tier is *pinned to worker 0*: the workload driver calls the
coordinator directly (same domain), and keeping them on the first
worker makes ``driver_done`` reporting trivial.
"""

from .spec import CTL_DOMAIN

__all__ = ["assign_domains", "domain_weights"]


def domain_weights(spec):
    """``[(domain, weight), ...]`` — replicas per shard; the control
    tier is weighted like two shards, matching its measured CPU share
    (every transaction's 2PC round-trips through the one coordinator,
    which costs about two consensus groups' worth of event processing).
    Weights only steer placement — placement is invisible to every
    observable — so this is a pure load-balance tunable."""
    weights = [(CTL_DOMAIN, 2.0 * spec.replicas)]
    for gid in spec.shard_ids():
        weights.append((gid, float(spec.replicas)))
    return weights


def assign_domains(spec):
    """Domains per worker: a list of ``workers`` sorted domain lists.

    Deterministic LPT with the control tier pinned to worker 0.  Workers
    beyond the domain count simply receive empty assignments (they idle
    through every epoch — correct, just useless).
    """
    workers = spec.workers
    loads = [0.0] * workers
    assignment = [[] for _ in range(workers)]
    shards = []
    for domain, weight in domain_weights(spec):
        if domain == CTL_DOMAIN:
            loads[0] += weight
            assignment[0].append(domain)
        else:
            shards.append((domain, weight))
    # Heaviest first; equal weights keep shard-id order for stability.
    shards.sort(key=lambda item: (-item[1], _shard_index(item[0])))
    for domain, weight in shards:
        target = min(range(workers), key=lambda w: (loads[w], w))
        loads[target] += weight
        assignment[target].append(domain)
    return [sorted(domains, key=_domain_sort_key)
            for domains in assignment]


def _shard_index(gid):
    return int(gid[1:])


def _domain_sort_key(domain):
    # Control tier first, then shards in numeric order.
    if domain == CTL_DOMAIN:
        return (0, 0)
    return (1, _shard_index(domain))
