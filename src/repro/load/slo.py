"""SLO-grade latency accounting for open-loop load runs.

The accountant measures every request from its *intended* arrival time
— the instant the open-loop schedule said it should exist — not from
when an injector got around to sending it.  Under overload the two
diverge sharply; measuring from send time is the classic coordinated
omission bug that makes a saturated system look merely busy.  Requests
that never complete are not dropped from the books either: they count
against the SLO at the full horizon, so a hung protocol cannot launder
its tail.

Windowed histograms over virtual time give p50/p99/p999 trajectories
(the storm/diurnal experiments read these), and :func:`detect_knee`
finds the saturation knee on a sweep: the highest offered load the
system absorbs before goodput collapses or the tail blows up.
"""

from repro.telemetry.instruments import DEFAULT_BUCKETS, Histogram, _finite

#: Latency buckets for load runs: the telemetry defaults plus deeper
#: overflow bounds — queueing collapse pushes tails far past the
#: quiescent-run regime and the knee detector needs resolution there.
LATENCY_BUCKETS = DEFAULT_BUCKETS + (2048.0, 4096.0, 8192.0)


class LatencyAccountant:
    """Coordinated-omission-safe latency and goodput bookkeeping.

    Parameters
    ----------
    window:
        Width of the virtual-time windows for the p50/p99/p999
        trajectory.
    slo:
        Latency objective in virtual-time units; completions slower
        than this (and requests that never complete) are violations.
    """

    def __init__(self, window=50.0, slo=None):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.slo = slo
        self.offered = 0
        self.completed = 0
        self.abandoned = 0
        self.violations = 0
        self.slow = 0  # completions outside the objective
        self.latency = Histogram(LATENCY_BUCKETS)
        self._windows = {}

    def arrive(self, intended):
        """Record one intended arrival (call before/at injection time)."""
        self.offered += 1

    def complete(self, intended, finished):
        """Record a completion; latency runs from the *intended* time."""
        elapsed = finished - intended
        if elapsed < 0:
            raise ValueError("completion precedes intended arrival")
        self.completed += 1
        self.latency.observe(elapsed)
        if self.slo is not None and elapsed > self.slo:
            self.violations += 1
            self.slow += 1
        index = int(intended // self.window)
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = Histogram(LATENCY_BUCKETS)
        window.observe(elapsed)

    def abandon(self, intended):
        """Record a request that never completed (counts against the SLO)."""
        self.abandoned += 1
        if self.slo is not None:
            self.violations += 1

    def report(self, duration):
        """Deterministic plain-dict digest over ``duration`` of virtual time."""
        goodput = self.completed
        if self.slo is not None:
            # Goodput = completions inside the objective.  Abandoned
            # requests already violate the SLO without being completions,
            # so only *slow completions* are subtracted here.
            goodput = self.completed - self.slow
        summary = {
            "offered": self.offered,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "offered_rate": _finite(self.offered / duration) if duration else None,
            "completed_rate": _finite(self.completed / duration) if duration else None,
            "goodput_rate": _finite(goodput / duration) if duration else None,
            "latency": self.latency.summary(),
            "windows": [
                {"start": _finite(index * self.window),
                 **self._windows[index].summary()}
                for index in sorted(self._windows)
            ],
        }
        if self.slo is not None:
            total = self.offered if self.offered else 1
            summary["slo"] = {
                "objective": _finite(self.slo),
                "violations": self.violations,
                "violation_ratio": _finite(self.violations / total),
            }
        return summary


def detect_knee(points, goodput_floor=0.9, p99_blowup=3.0):
    """Find the saturation knee on a sweep of offered-load points.

    ``points`` is a list of dicts with ``rate`` (nominal offered load),
    ``completed_rate`` and ``p99`` keys — and ideally ``offered`` /
    ``completed`` counts — in ascending ``rate`` order.  A point is
    *saturated* once completions fall below ``goodput_floor`` of the
    requests actually offered (arrivals are Poisson, so the realised
    offered count is the honest denominator, not the nominal rate), or
    once p99 exceeds ``p99_blowup`` times the p99 of the lightest-load
    point.

    Returns the last rate before the first saturated point (the knee),
    or ``None`` when the sweep never saturates or is saturated from its
    very first point — either way there is no observed knee.
    """
    if not points:
        return None
    baseline = points[0].get("p99")
    knee = None
    for point in points:
        offered = point.get("offered")
        if offered:
            ratio = (point.get("completed") or 0) / offered
        else:
            ratio = (point.get("completed_rate") or 0.0) / point["rate"]
        saturated = ratio < goodput_floor
        p99 = point.get("p99")
        if not saturated and baseline and p99 is not None:
            saturated = p99 > p99_blowup * baseline
        if saturated:
            return knee
        knee = point["rate"]
    return None
