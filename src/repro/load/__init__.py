"""Open-loop load engine: workloads, arrival processes, SLO accounting.

The package answers the question the observability layers were built
for: *what does each protocol's tail latency do under offered load?*
Workload shape (:mod:`~repro.load.workloads`), open-loop arrival
schedules (:mod:`~repro.load.arrivals`), coordinated-omission-safe
accounting (:mod:`~repro.load.slo`) and the injector engine
(:mod:`~repro.load.engine`) compose into ``python -m repro loadtest``.
"""

from .arrivals import DiurnalArrivals, HotKeyStorm, PoissonArrivals
from .engine import (
    PROTOCOLS,
    LoadSpec,
    run_loadtest,
    run_point,
    run_sweep,
)
from .render import render_point, render_sweep
from .slo import LATENCY_BUCKETS, LatencyAccountant, detect_knee
from .workloads import OpMix, ZipfKeys, generate_commands

__all__ = [
    "ZipfKeys",
    "OpMix",
    "generate_commands",
    "PoissonArrivals",
    "DiurnalArrivals",
    "HotKeyStorm",
    "LatencyAccountant",
    "LATENCY_BUCKETS",
    "detect_knee",
    "LoadSpec",
    "PROTOCOLS",
    "run_loadtest",
    "run_point",
    "run_sweep",
    "render_point",
    "render_sweep",
]
