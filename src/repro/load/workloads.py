"""Workload generation: key popularity distributions and operation mixes.

The paper's systems serve skewed traffic (hot keys, read-heavy mixes);
this module produces such workloads deterministically from the
simulation RNG so experiments remain replayable.

* :class:`ZipfKeys` — Zipf(s)-distributed key popularity over a fixed
  key space (s=0 is uniform; s≈1 is web-like skew).
* :class:`OpMix` — read/write/increment mixes over a key sampler.
* :func:`generate_commands` — a ready command list for any of the
  library's KV state machines.

Lived at ``repro.workloads`` until the load subsystem arrived; the old
path re-exports from here with a deprecation warning.
"""

import bisect
import itertools

#: Module-level cache of cumulative-weight tables keyed on
#: ``(n_keys, s)``.  Building the table is O(n_keys); sweep drivers
#: construct a :class:`ZipfKeys` per run over the same million-key
#: space, and the distribution depends only on the size and the skew —
#: not on the name prefix — so every equivalent sampler shares one
#: immutable tuple.
_CUMULATIVE_CACHE = {}


def _cumulative_weights(n_keys, s):
    """The shared inverse-CDF table for ``Zipf(s)`` over ``n_keys`` ranks."""
    table = _CUMULATIVE_CACHE.get((n_keys, s))
    if table is None:
        weights = [1.0 / ((rank + 1) ** s) for rank in range(n_keys)]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard against float drift
        table = _CUMULATIVE_CACHE[(n_keys, s)] = tuple(cumulative)
    return table


class ZipfKeys:
    """Zipf-distributed sampler over ``key-0 .. key-(n-1)``.

    P(rank k) ∝ 1 / (k+1)^s.  Sampling is inverse-CDF over precomputed
    cumulative weights — O(log n) per draw, exact, and driven entirely
    by the caller's RNG.  The weight table is interned per
    ``(n_keys, s)`` so repeated construction over a large key space
    (sweep drivers, per-point load runs) costs a dict hit, not O(n).
    """

    def __init__(self, n_keys, s=0.99, prefix="key"):
        if n_keys < 1:
            raise ValueError("need at least one key")
        if s < 0:
            raise ValueError("skew must be non-negative")
        self.n_keys = n_keys
        self.s = s
        self.prefix = prefix
        self._cumulative = _cumulative_weights(n_keys, s)

    def sample_rank(self, rng):
        """Draw one key *rank* (0 = hottest)."""
        rank = bisect.bisect_left(self._cumulative, rng.random())
        return min(rank, self.n_keys - 1)

    def sample(self, rng):
        """Draw one key name."""
        return "%s-%d" % (self.prefix, self.sample_rank(rng))

    def probability(self, rank):
        """Exact P(rank) for analysis/tests."""
        previous = self._cumulative[rank - 1] if rank else 0.0
        return self._cumulative[rank] - previous


class OpMix:
    """An operation mix over a key sampler.

    Ratios are (reads, writes, increments); they need not sum to 1 —
    they're normalised.  Write values are drawn from an itertools
    counter so every generated write is distinct (handy for staleness
    probes).
    """

    def __init__(self, keys, reads=0.5, writes=0.4, increments=0.1):
        total = reads + writes + increments
        if total <= 0:
            raise ValueError("at least one ratio must be positive")
        self.keys = keys
        self._read_cut = reads / total
        self._write_cut = (reads + writes) / total
        self._values = itertools.count()

    def sample(self, rng):
        """Draw one command tuple."""
        key = self.keys.sample(rng)
        point = rng.random()
        if point < self._read_cut:
            return ("get", key)
        if point < self._write_cut:
            return ("put", key, next(self._values))
        return ("incr", key)


def generate_commands(rng, count, n_keys=20, skew=0.99, reads=0.5,
                      writes=0.4, increments=0.1):
    """Generate ``count`` KV commands with the given shape."""
    mix = OpMix(ZipfKeys(n_keys, skew), reads, writes, increments)
    return [mix.sample(rng) for _ in range(count)]
