"""The open-loop load engine: injectors, per-protocol fleets, sweeps.

Millions of logical clients, each issuing requests on its own schedule,
superpose into one Poisson stream (the superposition theorem) — so the
engine never simulates clients individually.  A bounded set of
*injector* nodes carries the aggregate arrival process split evenly
between them, keeping the event count O(requests) no matter how large
the modeled population is.  Each injector draws its arrivals and keys
from a private :func:`~repro.parallel.streams.named_stream`, so the
traffic a given injector offers is a pure function of ``(seed, name)``
— independent of worker count, protocol timing, or the other injectors.

The serving side runs on :class:`~repro.net.delivery.QueuedDelayModel`:
finite per-replica ingress capacity is what turns offered load into
queueing delay and gives every protocol a measurable saturation knee —
the point where the paper's per-request message complexity (O(n)
leader-based vs O(n²) PBFT broadcast) becomes a latency cliff rather
than a table entry.

:func:`run_loadtest` drives one offered-load point and returns a
deterministic report; :func:`run_sweep` fans points out over
:class:`~repro.parallel.ParallelRunner` workers (byte-identical at any
worker count, since every point is an independent same-seed run) and
locates the knee with :func:`~repro.load.slo.detect_knee`.
"""

from ..core.cluster import Cluster
from ..core.node import Node
from ..net.delivery import QueuedDelayModel
from ..parallel.runner import ParallelRunner
from ..parallel.streams import named_stream
from ..sim.process import Process
from ..telemetry.instruments import _finite
from .arrivals import DiurnalArrivals, HotKeyStorm, PoissonArrivals
from .slo import LatencyAccountant, detect_knee
from .workloads import OpMix, ZipfKeys

#: Protocols the engine can drive, with (replicas, f) scenario scale.
PROTOCOLS = {
    "multi-paxos": (3, 1),
    "raft": (3, 1),
    "pbft": (4, 1),
    "shards": (None, None),  # scale comes from LoadSpec.shards/replicas
}

#: Ring-buffer bound for the tracer under monitors: monitors stream
#: events live, so verdicts never depend on retention — the bound only
#: keeps a long load run's memory flat.
_TRACE_CAPACITY = 4096


class LoadSpec:
    """Plain, picklable description of one load run.

    ``rate`` is the aggregate offered load in requests per virtual time
    unit; ``clients`` is the modeled logical population (documentation
    of scale — the arrival process is its superposition, so the number
    never affects event count).
    """

    def __init__(self, protocol="multi-paxos", rate=1.0, duration=200.0,
                 seed=0, arrivals="poisson", skew=0.99, n_keys=100_000,
                 clients=1_000_000, injectors=4, storm=False,
                 storm_fraction=0.8, slo=None, window=50.0, monitors=False,
                 service=0.05, reads=0.5, writes=0.4, increments=0.1,
                 shards=2, replicas=3, cross_ratio=0.25, key_space=64,
                 drain=300.0, resend_cap=8):
        if protocol not in PROTOCOLS:
            raise ValueError("unknown protocol %r (choices: %s)"
                             % (protocol, ", ".join(sorted(PROTOCOLS))))
        if arrivals not in ("poisson", "diurnal"):
            raise ValueError("arrivals must be 'poisson' or 'diurnal'")
        if rate <= 0:
            raise ValueError("rate must be positive")
        if injectors < 1:
            raise ValueError("need at least one injector")
        self.protocol = protocol
        self.rate = rate
        self.duration = duration
        self.seed = seed
        self.arrivals = arrivals
        self.skew = skew
        self.n_keys = n_keys
        self.clients = clients
        self.injectors = injectors
        self.storm = storm
        self.storm_fraction = storm_fraction
        self.slo = slo
        self.window = window
        self.monitors = monitors
        self.service = service
        self.reads = reads
        self.writes = writes
        self.increments = increments
        self.shards = shards
        self.replicas = replicas
        self.cross_ratio = cross_ratio
        self.key_space = key_space
        self.drain = drain
        self.resend_cap = resend_cap

    def replace(self, **overrides):
        """A copy with the given fields replaced."""
        spec = LoadSpec.__new__(LoadSpec)
        spec.__dict__.update(self.__dict__)
        spec.__dict__.update(overrides)
        return spec

    def describe(self):
        """Deterministic spec digest embedded in every report."""
        return {
            "protocol": self.protocol,
            "duration": _finite(self.duration),
            "seed": self.seed,
            "arrivals": self.arrivals,
            "skew": _finite(self.skew),
            "n_keys": self.n_keys,
            "clients": self.clients,
            "injectors": self.injectors,
            "storm": self.storm,
            "slo": _finite(self.slo),
            "service": _finite(self.service),
            "monitors": self.monitors,
        }


def _arrival_process(spec, per_injector_rate):
    if spec.arrivals == "diurnal":
        return DiurnalArrivals(per_injector_rate, period=spec.duration / 2.0)
    return PoissonArrivals(per_injector_rate)


class InjectorBase(Node):
    """One injector node: carries a slice of the aggregate open-loop
    stream and accounts every request it originates.

    The arrival chain is timer-driven: each firing schedules the next
    draw from the injector's private arrival process, so the schedule
    never depends on service behaviour — the open-loop contract.
    """

    def __init__(self, sim, network, name, targets, spec, accountant,
                 mix, load_start):
        super().__init__(sim, network, name)
        self.targets = list(targets)
        self.spec = spec
        self.accountant = accountant
        self.mix = mix
        self.rng = named_stream(spec.seed, "loadtest", name)
        process = _arrival_process(spec, spec.rate / spec.injectors)
        self._times = process.times(self.rng, spec.duration,
                                    start=load_start)
        self.outstanding = {}  # request key -> intended arrival time
        self.resends = {}
        self._seq = 0

    def on_start(self):
        self._schedule_next()

    def _schedule_next(self):
        arrival = next(self._times, None)
        if arrival is None:
            return
        self.set_timer(max(0.0, arrival - self.sim.now), self._fire, arrival)

    def _fire(self, intended):
        self.accountant.arrive(intended)
        self._inject(intended)
        self._schedule_next()

    def _inject(self, intended):
        raise NotImplementedError

    def _complete(self, request_key):
        intended = self.outstanding.pop(request_key, None)
        if intended is None:
            return False
        self.resends.pop(request_key, None)
        self.accountant.complete(intended, self.sim.now)
        return True

    def _may_resend(self, request_key):
        """Redirect-chasing budget: a request past the cap stops being
        resent (and will be accounted abandoned), so an election storm
        cannot amplify offered load unboundedly."""
        count = self.resends.get(request_key, 0)
        if count >= self.spec.resend_cap:
            return False
        self.resends[request_key] = count + 1
        return True

    def abandon_outstanding(self):
        """End-of-run accounting for requests that never completed."""
        for request_key in sorted(self.outstanding):
            self.accountant.abandon(self.outstanding[request_key])
        self.outstanding.clear()


class PaxosInjector(InjectorBase):
    """Open-loop injector speaking the Multi-Paxos client protocol."""

    def __init__(self, sim, network, name, targets, spec, accountant,
                 mix, load_start):
        super().__init__(sim, network, name, targets, spec, accountant,
                         mix, load_start)
        self.target = self.targets[0]
        self.commands = {}  # request id -> command, for redirect resends

    def _request(self, request_id, command):
        from ..protocols.multipaxos import ClientRequest
        return ClientRequest(command, request_id)

    def _inject(self, intended):
        request_id = "%s-%d" % (self.name, self._seq)
        self._seq += 1
        command = self.mix.sample(self.rng)
        self.outstanding[request_id] = intended
        self.commands[request_id] = command
        self.send(self.target, self._request(request_id, command))

    def handle_clientreply(self, msg, src):
        self.commands.pop(msg.request_id, None)
        self._complete(msg.request_id)

    def handle_redirect(self, msg, src):
        if msg.request_id not in self.outstanding:
            return
        if msg.leader_hint and msg.leader_hint != src:
            self.target = msg.leader_hint
        else:
            index = self.targets.index(self.target)
            self.target = self.targets[(index + 1) % len(self.targets)]
        if self._may_resend(msg.request_id):
            self.send(self.target,
                      self._request(msg.request_id,
                                    self.commands[msg.request_id]))


class RaftInjector(PaxosInjector):
    """Same shape as :class:`PaxosInjector`, speaking Raft's client
    message types."""

    def _request(self, request_id, command):
        from ..protocols.raft import RaftClientRequest
        return RaftClientRequest(command, request_id)

    def handle_raftclientreply(self, msg, src):
        self._complete(msg.request_id)

    def handle_raftredirect(self, msg, src):
        self.handle_redirect(msg, src)


class PbftInjector(InjectorBase):
    """Open-loop injector speaking the PBFT client protocol.

    PBFT identifies a request by ``(client, timestamp)``; per-injector
    sequence numbers as timestamps are globally unique because every
    reply carries the client name and replicas answer the requesting
    client only.  A reply is accepted once ``f + 1`` replicas agree on
    the result.  Replies also carry the view, so the injector tracks
    the current primary; a request unanswered for ``RETRY`` time units
    is retransmitted to *all* replicas (the standard PBFT client
    liveness path — backups relay to the primary or force a view
    change), bounded by the resend cap."""

    #: Client retransmit interval, matching PbftClient's default.
    RETRY = 30.0

    def __init__(self, sim, network, name, targets, spec, accountant,
                 mix, load_start, f):
        super().__init__(sim, network, name, targets, spec, accountant,
                         mix, load_start)
        self.f = f
        self.view = 0
        self._replies = {}   # timestamp -> {replica: result}
        self._requests = {}  # timestamp -> PbftRequest, for retransmits

    @property
    def _primary(self):
        return self.targets[self.view % len(self.targets)]

    def _inject(self, intended):
        from ..protocols.pbft import PbftRequest
        timestamp = float(self._seq)
        self._seq += 1
        operation = self.mix.sample(self.rng)
        request = PbftRequest(operation, timestamp, self.name, None)
        self.outstanding[timestamp] = intended
        self._replies[timestamp] = {}
        self._requests[timestamp] = request
        self.send(self._primary, request)
        self.set_timer(self.RETRY, self._retransmit, timestamp)

    def _retransmit(self, timestamp):
        if timestamp not in self.outstanding:
            return
        if not self._may_resend(timestamp):
            return
        self.multicast(self.targets, self._requests[timestamp])
        self.set_timer(self.RETRY, self._retransmit, timestamp)

    def handle_pbftreply(self, msg, src):
        if msg.view > self.view:
            self.view = msg.view
        replies = self._replies.get(msg.timestamp)
        if replies is None:
            return
        replies[src] = msg.result
        matching = {}
        for result in replies.values():
            key = repr(result)
            matching[key] = matching.get(key, 0) + 1
        if max(matching.values()) >= self.f + 1:
            del self._replies[msg.timestamp]
            self._requests.pop(msg.timestamp, None)
            self._complete(msg.timestamp)


class ShardTxnInjector(Process):
    """Open-loop transaction injector for the sharded fleet.

    Not a network node: transactions enter through the fleet's
    coordinator API and complete via :attr:`Transaction.on_finish`, so
    the injector only owns the arrival schedule and the accounting.
    A ``cross_ratio`` fraction of transfers deliberately spans shards,
    putting the 2PC-over-consensus path under the same open-loop
    arrivals as the single-shard fast path."""

    def __init__(self, sim, name, sharded, spec, accountant, keys,
                 load_start):
        super().__init__(sim, name)
        self.sharded = sharded
        self.spec = spec
        self.accountant = accountant
        self.keys = keys
        self.rng = named_stream(spec.seed, "loadtest", name)
        process = _arrival_process(spec, spec.rate / spec.injectors)
        self._times = process.times(self.rng, spec.duration,
                                    start=load_start)
        self.outstanding = {}  # txid -> intended arrival time

    def on_start(self):
        self._schedule_next()

    def _schedule_next(self):
        arrival = next(self._times, None)
        if arrival is None:
            return
        self.set_timer(max(0.0, arrival - self.sim.now), self._fire, arrival)

    def _pick_keys(self):
        sharded = self.sharded
        src = sharded.key(self.keys.sample_rank(self.rng)
                          % self.spec.key_space)
        want_cross = self.rng.random() < self.spec.cross_ratio
        dst = src
        for _ in range(32):
            candidate = sharded.key(self.rng.randrange(self.spec.key_space))
            if candidate == src:
                continue
            crosses = sharded.shard_of(candidate) != sharded.shard_of(src)
            if crosses == want_cross:
                return src, candidate
            if dst == src:
                dst = candidate  # fallback: any distinct key
        return src, dst

    def _fire(self, intended):
        self.accountant.arrive(intended)
        src, dst = self._pick_keys()
        if src == dst:
            # Degenerate single-key touch (tiny keyspaces only).
            txn = self.sharded.submit((src,), lambda reads: {})
        else:
            def update(reads, src=src, dst=dst):
                return {src: (reads[src] or 0) - 1,
                        dst: (reads[dst] or 0) + 1}
            txn = self.sharded.submit((src, dst), update)
        self.outstanding[txn.txid] = intended
        txn.on_finish = self._on_finish
        self._schedule_next()

    def _on_finish(self, txn):
        intended = self.outstanding.pop(txn.txid, None)
        if intended is not None:
            self.accountant.complete(intended, self.sim.now)

    def abandon_outstanding(self):
        for txid in sorted(self.outstanding):
            self.accountant.abandon(self.outstanding[txid])
        self.outstanding.clear()


def _build_core_fleet(cluster, spec):
    """Replica fleet + injector class for the non-sharded protocols."""
    if spec.protocol == "multi-paxos":
        from ..protocols.multipaxos import MultiPaxosReplica
        names = ["r%d" % i for i in range(3)]
        cluster.add_nodes(MultiPaxosReplica, names, names)
        return names, PaxosInjector, (), 10.0
    if spec.protocol == "raft":
        from ..protocols.raft import RaftNode
        names = ["n%d" % i for i in range(3)]
        cluster.add_nodes(RaftNode, names, names)
        return names, RaftInjector, (), 30.0
    if spec.protocol == "pbft":
        from ..protocols.pbft import PbftReplica
        f = 1
        names = ["r%d" % i for i in range(3 * f + 1)]
        cluster.add_nodes(PbftReplica, names, names, f)
        return names, PbftInjector, (f,), 10.0
    raise ValueError("not a core protocol: %r" % (spec.protocol,))


def _key_sampler(spec, sim, n_keys, load_start):
    keys = ZipfKeys(n_keys, spec.skew)
    if spec.storm:
        keys = HotKeyStorm(
            keys, clock=lambda: sim.now,
            start=load_start + 0.4 * spec.duration,
            duration=0.2 * spec.duration,
            fraction=spec.storm_fraction)
    return keys


def _monitor_block(hub):
    anomalies = hub.finish()
    return {"monitors": len(hub.monitors),
            "anomalies": len(anomalies),
            "ok": not anomalies}


def run_loadtest(spec):
    """Drive one offered-load point; returns a deterministic report.

    Same spec ⇒ byte-identical report: every number is derived from
    virtual time and seeded draws, never the wall clock."""
    accountant = LatencyAccountant(window=spec.window, slo=spec.slo)
    delivery = QueuedDelayModel(service=spec.service)
    if spec.protocol == "shards":
        report, hub = _run_shards_point(spec, delivery, accountant)
    else:
        report, hub = _run_core_point(spec, delivery, accountant)
    if hub is not None:
        report["monitors"] = _monitor_block(hub)
    return report


def _run_core_point(spec, delivery, accountant):
    from ..monitor import NULL_HUB
    cluster = Cluster(seed=spec.seed, delivery=delivery,
                      monitors=spec.monitors,
                      trace_capacity=_TRACE_CAPACITY if spec.monitors
                      else None)
    names, injector_class, extra, settle = _build_core_fleet(cluster, spec)
    if spec.monitors:
        cluster.attach_monitors(spec.protocol, len(names),
                                (len(names) - 1) // 3
                                if spec.protocol == "pbft"
                                else (len(names) - 1) // 2)
    cluster.start_all()
    cluster.sim.run_for(settle)
    load_start = cluster.now
    keys = _key_sampler(spec, cluster.sim, spec.n_keys, load_start)
    injectors = []
    for index in range(spec.injectors):
        mix = OpMix(keys, spec.reads, spec.writes, spec.increments)
        injector = cluster.add_node(
            injector_class, "inj%d" % index, names, spec, accountant,
            mix, load_start, *extra)
        injectors.append(injector)
        injector.start()
    cluster.run(until=load_start + spec.duration)
    deadline = load_start + spec.duration + spec.drain
    cluster.run_until(
        lambda: not any(injector.outstanding for injector in injectors),
        until=deadline)
    for injector in injectors:
        injector.abandon_outstanding()
    hub = cluster.monitors if cluster.monitors is not NULL_HUB else None
    return _point_report(spec, accountant, cluster.metrics), hub


def _run_shards_point(spec, delivery, accountant):
    from ..monitor import NULL_HUB
    from ..shard import ShardedCluster
    cluster = Cluster(seed=spec.seed, delivery=delivery,
                      monitors=spec.monitors,
                      trace_capacity=_TRACE_CAPACITY if spec.monitors
                      else None)
    sharded = ShardedCluster(
        n_shards=spec.shards, replicas=spec.replicas, seed=spec.seed,
        partitioning="hash", key_space=spec.key_space, cluster=cluster)
    load_start = sharded.now
    keys = _key_sampler(spec, cluster.sim, spec.key_space, load_start)
    injectors = []
    for index in range(spec.injectors):
        injector = ShardTxnInjector(
            cluster.sim, "inj%d" % index, sharded, spec, accountant,
            keys, load_start)
        injectors.append(injector)
        injector.start()
    cluster.run(until=load_start + spec.duration)
    deadline = load_start + spec.duration + spec.drain
    cluster.run_until(
        lambda: not any(injector.outstanding for injector in injectors),
        until=deadline)
    for injector in injectors:
        injector.abandon_outstanding()
    report = _point_report(spec, accountant, cluster.metrics)
    report["consistent"] = sharded.check_consistency()
    hub = cluster.monitors if cluster.monitors is not NULL_HUB else None
    return report, hub


def _point_report(spec, accountant, metrics):
    return {
        "spec": spec.describe(),
        "rate": _finite(spec.rate),
        "accounting": accountant.report(spec.duration),
        "messages": metrics.messages_total,
    }


def _point_summary(report):
    """The compact per-rate row a sweep keeps (windows dropped)."""
    accounting = report["accounting"]
    latency = accounting["latency"]
    row = {
        "rate": report["rate"],
        "offered": accounting["offered"],
        "completed": accounting["completed"],
        "abandoned": accounting["abandoned"],
        "completed_rate": accounting["completed_rate"],
        "goodput_rate": accounting["goodput_rate"],
        "p50": latency["p50"],
        "p99": latency["p99"],
        "p999": latency["p999"],
        "messages": report["messages"],
    }
    if "slo" in accounting:
        row["slo_violations"] = accounting["slo"]["violations"]
    if "monitors" in report:
        row["monitors_ok"] = report["monitors"]["ok"]
    if "consistent" in report:
        row["consistent"] = report["consistent"]
    return row


def run_point(item):
    """Top-level sweep worker (picklable for the fork pool)."""
    spec, rate = item
    return _point_summary(run_loadtest(spec.replace(rate=rate)))


def run_sweep(spec, rates, workers=1):
    """Sweep offered load over ``rates``; returns the knee report.

    Every point is an independent same-seed simulation, so the result
    is byte-identical at any worker count — the fork pool only changes
    the wall clock."""
    rates = sorted(float(rate) for rate in rates)
    runner = ParallelRunner(workers)
    points = runner.map(run_point, [(spec, rate) for rate in rates])
    return {
        "spec": spec.describe(),
        "points": points,
        "knee": _finite(detect_knee(points)),
    }
