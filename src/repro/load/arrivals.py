"""Open-loop arrival processes.

A closed-loop client waits for each reply before sending the next
request, so a slow server *slows the clock that generates load* and the
measured latency silently flatters the system (coordinated omission).
Real front-ends are open-loop: millions of independent users issue
requests on their own schedule regardless of how the backend is doing.
The processes here generate that schedule — a stream of *intended*
arrival times in virtual time, independent of service behaviour.

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate;
  the superposition of many thin, independent client streams.
* :class:`DiurnalArrivals` — a non-homogeneous Poisson process whose
  rate follows a sinusoidal day/night curve, sampled by Lewis-Shedler
  thinning against the peak rate.
* :class:`HotKeyStorm` — a key-sampler wrapper that redirects a
  fraction of draws to one hot key during a time window, modelling a
  flash crowd on a single entity.

All draws come from the caller's ``random.Random`` so same-seed streams
are byte-identical.
"""

import math


class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate`` requests per time unit."""

    def __init__(self, rate):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def rate_at(self, now):  # noqa: B027 - uniform interface with DiurnalArrivals
        """Instantaneous rate (constant for the homogeneous process)."""
        return self.rate

    def times(self, rng, duration, start=0.0):
        """Yield strictly increasing arrival times in ``(start, start+duration]``."""
        now = start
        end = start + duration
        while True:
            now += rng.expovariate(self.rate)
            if now > end:
                return
            yield now


class DiurnalArrivals:
    """Sinusoidal-rate Poisson arrivals (day/night traffic curve).

    Rate at time t is ``rate * (1 + amplitude * sin(2*pi*t/period))``,
    so the mean offered load stays ``rate`` while instantaneous load
    swings between ``rate*(1-amplitude)`` and ``rate*(1+amplitude)``.
    Sampling uses Lewis-Shedler thinning: draw candidates from a
    homogeneous process at the peak rate and accept each with
    probability rate(t)/peak.
    """

    def __init__(self, rate, amplitude=0.6, period=200.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period <= 0:
            raise ValueError("period must be positive")
        self.rate = rate
        self.amplitude = amplitude
        self.period = period

    def rate_at(self, now):
        """Instantaneous rate of the non-homogeneous process at ``now``."""
        phase = 2.0 * math.pi * (now / self.period)
        return self.rate * (1.0 + self.amplitude * math.sin(phase))

    def times(self, rng, duration, start=0.0):
        """Yield strictly increasing arrival times in ``(start, start+duration]``."""
        peak = self.rate * (1.0 + self.amplitude)
        now = start
        end = start + duration
        while True:
            now += rng.expovariate(peak)
            if now > end:
                return
            if rng.random() * peak <= self.rate_at(now):
                yield now


class HotKeyStorm:
    """Redirect a fraction of key draws to one hot key during a window.

    Wraps any sampler exposing ``sample``/``sample_rank`` (e.g.
    :class:`~repro.load.workloads.ZipfKeys`).  ``clock`` is a zero-arg
    callable returning current virtual time — the engine binds it to
    the simulator so the storm rides the same clock as the arrivals.
    """

    def __init__(self, keys, clock, start, duration, fraction=0.8, hot_rank=0):
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.keys = keys
        self.clock = clock
        self.start = start
        self.end = start + duration
        self.fraction = fraction
        self.hot_rank = hot_rank

    def active(self):
        """Whether the storm window covers the current instant."""
        now = self.clock()
        return self.start <= now < self.end

    def sample_rank(self, rng):
        if self.active() and rng.random() < self.fraction:
            return self.hot_rank
        return self.keys.sample_rank(rng)

    def sample(self, rng):
        return "%s-%d" % (self.keys.prefix, self.sample_rank(rng))
