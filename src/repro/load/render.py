"""ASCII rendering for loadtest reports: tables, curves, the knee."""


def _fmt(value, width=8, places=2):
    if value is None:
        return "-".rjust(width)
    if isinstance(value, bool):
        return ("yes" if value else "NO").rjust(width)
    if isinstance(value, int):
        return ("%d" % value).rjust(width)
    return ("%.*f" % (places, value)).rjust(width)


def _bar(value, peak, width=32):
    if not value or not peak:
        return ""
    return "#" * max(1, int(round(width * min(value, peak) / peak)))


def render_point(report):
    """Render one offered-load point: totals, tail, windowed p99."""
    spec = report["spec"]
    accounting = report["accounting"]
    latency = accounting["latency"]
    lines = [
        "loadtest — %s (seed %d, %s arrivals, skew %.2f%s)" % (
            spec["protocol"], spec["seed"], spec["arrivals"],
            spec["skew"] or 0.0, ", storm" if spec["storm"] else ""),
        "offered %.2f req/unit over %.0f units: %d offered, %d completed,"
        " %d abandoned" % (report["rate"], spec["duration"],
                           accounting["offered"], accounting["completed"],
                           accounting["abandoned"]),
        "latency from intended arrival: p50 %s  p99 %s  p999 %s  max %s"
        % (_fmt(latency["p50"], 0), _fmt(latency["p99"], 0),
           _fmt(latency["p999"], 0), _fmt(latency["max"], 0)),
    ]
    if "slo" in accounting:
        slo = accounting["slo"]
        lines.append("SLO %.1f: %d violation(s) (%.1f%% of offered)"
                     % (slo["objective"], slo["violations"],
                        100.0 * (slo["violation_ratio"] or 0.0)))
    windows = accounting["windows"]
    if windows:
        peak = max((w["p99"] or 0.0) for w in windows)
        lines.append("")
        lines.append("windowed p99 over virtual time:")
        for window in windows:
            lines.append("  t=%6.0f %8s |%s"
                         % (window["start"], _fmt(window["p99"], 0),
                            _bar(window["p99"], peak)))
    if "monitors" in report:
        monitors = report["monitors"]
        lines.append("monitors: %d attached, %d anomaly(ies) — %s"
                     % (monitors["monitors"], monitors["anomalies"],
                        "green" if monitors["ok"] else "TRIPPED"))
    if "consistent" in report:
        lines.append("per-shard consistency: %s" % report["consistent"])
    return "\n".join(lines)


def render_sweep(sweep):
    """Render a sweep: per-rate table plus throughput/p99 curves."""
    spec = sweep["spec"]
    points = [p for p in sweep["points"] if p]
    lines = [
        "offered-load sweep — %s (seed %d, %s arrivals)"
        % (spec["protocol"], spec["seed"], spec["arrivals"]),
        "%8s %8s %8s %8s %8s %8s %8s %8s" % (
            "rate", "offered", "done", "aband", "goodput", "p50", "p99",
            "p999"),
    ]
    for point in points:
        lines.append("%s %s %s %s %s %s %s %s" % (
            _fmt(point["rate"]), _fmt(point["offered"]),
            _fmt(point["completed"]), _fmt(point["abandoned"]),
            _fmt(point["goodput_rate"]), _fmt(point["p50"]),
            _fmt(point["p99"]), _fmt(point["p999"])))
    peak_rate = max((p["completed_rate"] or 0.0) for p in points) or None
    peak_p99 = max((p["p99"] or 0.0) for p in points) or None
    lines.append("")
    lines.append("goodput vs offered load (completed/unit):")
    for point in points:
        lines.append("  %6.2f |%-32s %s" % (
            point["rate"], _bar(point["completed_rate"], peak_rate),
            _fmt(point["completed_rate"], 0)))
    lines.append("")
    lines.append("p99 latency vs offered load:")
    for point in points:
        marker = " <- knee" if sweep["knee"] == point["rate"] else ""
        lines.append("  %6.2f |%-32s %s%s" % (
            point["rate"], _bar(point["p99"], peak_p99),
            _fmt(point["p99"], 0), marker))
    lines.append("")
    if sweep["knee"] is None:
        lines.append("knee: not reached (sweep never saturates, or "
                     "saturated from the first point)")
    else:
        lines.append("knee: %.2f req/unit — last offered load absorbed "
                     "without goodput collapse or p99 blow-up"
                     % sweep["knee"])
    return "\n".join(lines)
