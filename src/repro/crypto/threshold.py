"""Simulated (k, n)-threshold signatures.

HotStuff's linear message complexity rests on a (k, n)-threshold scheme:
each replica contributes a *partial* signature, and the leader combines
any k of them into one constant-size quorum certificate that every node
can verify.  We simulate the scheme with HMAC partials plus a combined
tag that binds the exact contributor set; the essential properties —

* fewer than k distinct partials cannot produce a valid combined
  signature,
* a combined signature is constant-size for metrics purposes,
* anyone can verify a combined signature against the group key

— all hold within the simulation.
"""

import hashlib
import hmac
from dataclasses import dataclass

from .hashing import canonical_bytes


@dataclass(frozen=True)
class PartialSignature:
    """One replica's share of a threshold signature over a value."""

    signer: str
    tag: bytes


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined quorum certificate: k-of-n proof over one value."""

    signers: frozenset
    tag: bytes

    def size_estimate(self):
        # The whole point of threshold signatures: constant size.
        return 32


class ThresholdScheme:
    """Dealer and verifier for one (k, n) threshold-signature group.

    Parameters
    ----------
    k:
        Combination threshold (e.g. 2f+1).
    members:
        The n participant names.
    """

    def __init__(self, k, members, seed=b"repro-threshold"):
        members = list(members)
        if not 1 <= k <= len(members):
            raise ValueError("need 1 <= k <= n, got k=%d n=%d" % (k, len(members)))
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        self.k = k
        self.members = members
        self._seed = seed
        self._group_key = hashlib.sha256(seed + b"|group").digest()
        self._share_keys = {}

    def _share_key(self, name):
        # Key derivation is deterministic per (seed, name); sign/verify
        # hit it once per partial signature, so memoise per scheme.
        key = self._share_keys.get(name)
        if key is None:
            key = hashlib.sha256(
                self._seed + b"|share|" + name.encode("utf-8")).digest()
            self._share_keys[name] = key
        return key

    def sign_share(self, name, *values):
        """Produce ``name``'s partial signature over ``values``."""
        if name not in self.members:
            raise KeyError("%r is not a member of this threshold group" % (name,))
        tag = hmac.new(self._share_key(name), canonical_bytes(list(values)), hashlib.sha256)
        return PartialSignature(name, tag.digest())

    def verify_share(self, partial, *values):
        """Check a single partial signature."""
        if partial.signer not in self.members:
            return False
        expected = hmac.new(
            self._share_key(partial.signer),
            canonical_bytes(list(values)),
            hashlib.sha256,
        ).digest()
        return hmac.compare_digest(expected, partial.tag)

    def combine(self, partials, *values):
        """Combine >= k valid partials from distinct signers into a
        :class:`ThresholdSignature`.

        Raises ``ValueError`` if too few valid distinct shares are given —
        the property that makes quorum certificates unforgeable.
        """
        valid_signers = set()
        for partial in partials:
            if self.verify_share(partial, *values):
                valid_signers.add(partial.signer)
        if len(valid_signers) < self.k:
            raise ValueError(
                "need %d valid shares, got %d" % (self.k, len(valid_signers))
            )
        signers = frozenset(valid_signers)
        return ThresholdSignature(signers, self._combined_tag(signers, values))

    def _combined_tag(self, signers, values):
        payload = canonical_bytes([sorted(signers), list(values)])
        return hmac.new(self._group_key, payload, hashlib.sha256).digest()

    def verify(self, threshold_sig, *values):
        """Verify a combined signature over ``values``."""
        if not isinstance(threshold_sig, ThresholdSignature):
            return False
        if len(threshold_sig.signers) < self.k:
            return False
        if not set(threshold_sig.signers) <= set(self.members):
            return False
        expected = self._combined_tag(threshold_sig.signers, values)
        return hmac.compare_digest(expected, threshold_sig.tag)
