"""Merkle trees, as used in Bitcoin block headers.

The block header commits to all transactions through the Merkle root;
light clients verify membership with a logarithmic audit path.  Both are
implemented here over SHA-256 with Bitcoin's duplicate-last-node rule
for odd levels.
"""

from .hashing import sha256_hex


def _leaf_hash(value):
    return sha256_hex("leaf", value)


def _node_hash(left, right):
    return sha256_hex("node", left, right)


class MerkleTree:
    """Merkle tree over an ordered sequence of transaction payloads."""

    def __init__(self, leaves):
        leaves = list(leaves)
        if not leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        self.leaves = leaves
        self._levels = [[_leaf_hash(leaf) for leaf in leaves]]
        while len(self._levels[-1]) > 1:
            current = self._levels[-1]
            if len(current) % 2 == 1:
                # Bitcoin's rule: duplicate the trailing node on odd levels.
                current = current + [current[-1]]
            nxt = [
                _node_hash(current[i], current[i + 1])
                for i in range(0, len(current), 2)
            ]
            self._levels.append(nxt)

    @property
    def root(self):
        """Hex Merkle root committing to every leaf in order."""
        return self._levels[-1][0]

    def proof(self, index):
        """Audit path for the leaf at ``index``: list of (sibling, is_right).

        ``is_right`` records whether the sibling sits to the right of the
        running hash when recomputing toward the root.
        """
        if not 0 <= index < len(self.leaves):
            raise IndexError("leaf index %d out of range" % (index,))
        path = []
        position = index
        for level in self._levels[:-1]:
            nodes = level if len(level) % 2 == 0 else level + [level[-1]]
            if position % 2 == 0:
                path.append((nodes[position + 1], True))
            else:
                path.append((nodes[position - 1], False))
            position //= 2
        return path

    @staticmethod
    def verify(leaf, proof, root):
        """Check a leaf payload against a root using an audit path."""
        running = _leaf_hash(leaf)
        for sibling, is_right in proof:
            if is_right:
                running = _node_hash(running, sibling)
            else:
                running = _node_hash(sibling, running)
        return running == root

    def __len__(self):
        return len(self.leaves)
