"""Simulated digital signatures and MACs.

The paper's substitution rule applies here: BFT protocols need
signatures only to stop Byzantine replicas from *forging other replicas'
statements inside the simulation*.  HMAC over a per-node secret drawn
from a :class:`KeyRegistry` provides exactly that property — a Byzantine
node object holds only its own signing handle, so any "forged" signature
it fabricates fails verification — at a tiny fraction of the cost of
public-key crypto, which matters when benchmarks sign tens of thousands
of messages.
"""

import hashlib
import hmac
from dataclasses import dataclass

from .hashing import canonical_bytes


@dataclass(frozen=True)
class Signature:
    """A signature: who claims to have signed, and the MAC tag."""

    signer: str
    tag: bytes

    def __repr__(self):
        return "Signature(%s, %s…)" % (self.signer, self.tag[:4].hex())


class Signer:
    """Per-node signing handle.  Obtained from :class:`KeyRegistry`."""

    def __init__(self, name, key):
        self.name = name
        self._key = key

    def sign(self, *values):
        tag = hmac.new(self._key, canonical_bytes(list(values)), hashlib.sha256)
        return Signature(self.name, tag.digest())


class KeyRegistry:
    """Trusted key-distribution authority for a simulation run.

    One registry per run plays the role of the PKI: it mints each node's
    secret key and can verify any signature.  Nodes receive only their
    own :class:`Signer`; verification goes through the registry (nodes
    hold a reference, mirroring "everyone knows everyone's public key").
    """

    def __init__(self, seed=b"repro-keys"):
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._seed = seed
        self._keys = {}

    def _key_for(self, name):
        key = self._keys.get(name)
        if key is None:
            key = hashlib.sha256(self._seed + b"|" + name.encode("utf-8")).digest()
            self._keys[name] = key
        return key

    def signer(self, name):
        """Issue the signing handle for ``name`` (idempotent)."""
        return Signer(name, self._key_for(name))

    def verify(self, signature, *values):
        """Check that ``signature`` is a valid signature by its claimed
        signer over ``values``."""
        if not isinstance(signature, Signature):
            return False
        expected = hmac.new(
            self._key_for(signature.signer),
            canonical_bytes(list(values)),
            hashlib.sha256,
        ).digest()
        return hmac.compare_digest(expected, signature.tag)

    def forge(self, claimed_signer, *values):
        """Produce an *invalid* signature purporting to be from
        ``claimed_signer`` — what a Byzantine node gets when it tries to
        impersonate.  Exists so attack tests are explicit about forgery."""
        bogus = hashlib.sha256(b"forged|" + canonical_bytes(list(values))).digest()
        return Signature(claimed_signer, bogus)
