"""Simulated cryptographic substrate.

Signatures and MACs (:mod:`signatures`), (k,n)-threshold signatures for
HotStuff (:mod:`threshold`), the MinBFT/CheapBFT trusted USIG counter
(:mod:`usig`), real-SHA-256 hashing with canonical encoding
(:mod:`hashing`) and Bitcoin-style Merkle trees (:mod:`merkle`).

See DESIGN.md's substitution table for why HMAC-based simulation
preserves every property the protocols rely on.
"""

from .hashing import HASH_SPACE, canonical_bytes, sha256_hex, sha256_int
from .merkle import MerkleTree
from .signatures import KeyRegistry, Signature, Signer
from .threshold import PartialSignature, ThresholdScheme, ThresholdSignature
from .usig import UI, Usig, UsigAuthority, UsigLogChecker

__all__ = [
    "HASH_SPACE",
    "KeyRegistry",
    "MerkleTree",
    "PartialSignature",
    "Signature",
    "Signer",
    "ThresholdScheme",
    "ThresholdSignature",
    "UI",
    "Usig",
    "UsigAuthority",
    "UsigLogChecker",
    "canonical_bytes",
    "sha256_hex",
    "sha256_int",
]
