"""Hashing helpers shared by the crypto substrate and the blockchain.

Real SHA-256 via :mod:`hashlib`; the only simulation-specific twist is a
canonical byte encoding for arbitrary Python values so that hashes are
stable across runs and processes.
"""

import hashlib


def canonical_bytes(value):
    """Encode ``value`` into deterministic bytes for hashing.

    Handles the types protocol messages are built from; containers are
    encoded recursively with type tags so e.g. ``(1, 2)`` and ``[1, 2]``
    hash differently from ``"12"``.
    """
    if value is None:
        return b"\x00N"
    if isinstance(value, bool):
        return b"\x00B" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"\x00I" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"\x00F" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"\x00S" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"\x00Y" + value
    if isinstance(value, (list, tuple)):
        parts = [b"\x00L", str(len(value)).encode("ascii")]
        for item in value:
            encoded = canonical_bytes(item)
            parts.append(str(len(encoded)).encode("ascii"))
            parts.append(b":")
            parts.append(encoded)
        return b"".join(parts)
    if isinstance(value, (set, frozenset)):
        return canonical_bytes(sorted(canonical_bytes(v) for v in value))
    if isinstance(value, dict):
        items = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in value.items()
        )
        return b"\x00D" + canonical_bytes([list(pair) for pair in items])
    # Dataclass-ish objects: hash their public attribute dict.
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        return b"\x00O" + canonical_bytes(
            {k: v for k, v in attrs.items() if not k.startswith("_")}
        )
    raise TypeError("cannot canonicalise %r of type %s" % (value, type(value)))


def sha256_hex(*values):
    """SHA-256 over the canonical encoding of ``values``, as hex."""
    digest = hashlib.sha256()
    for value in values:
        digest.update(canonical_bytes(value))
    return digest.hexdigest()


def sha256_int(*values):
    """SHA-256 over ``values`` as a 256-bit integer (for PoW target tests)."""
    return int(sha256_hex(*values), 16)


#: Largest possible SHA-256 output + 1; PoW difficulty D is expressed as a
#: target below this ceiling, exactly as in Bitcoin's header target bits.
HASH_SPACE = 1 << 256
