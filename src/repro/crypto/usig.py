"""USIG — the Unique Sequential Identifier Generator of MinBFT/CheapBFT.

The trusted hardware component the paper describes: it "generates unique
identifiers for every message", each "assigned incrementally", each "the
successor of the previous one".  Because the counter lives inside the
tamper-proof component, even a Byzantine replica cannot assign the same
counter value to two different messages — it can stay silent or send
garbage, but it cannot *equivocate* on sequencing.  That single property
is what lets MinBFT run with 2f+1 replicas and two phases.

We simulate tamper-proofness structurally: the monotone counter is
private to the :class:`Usig` object, which exposes only ``create_ui``
(increments, signs) and verification.  Byzantine node implementations in
this library receive the same object and therefore physically cannot
mint two UIs with one counter value.
"""

import hashlib
import hmac
from dataclasses import dataclass

from .hashing import canonical_bytes


@dataclass(frozen=True)
class UI:
    """A unique identifier: (issuer, counter, certificate)."""

    issuer: str
    counter: int
    cert: bytes

    def __repr__(self):
        return "UI(%s, #%d)" % (self.issuer, self.counter)


class Usig:
    """One replica's trusted USIG instance.

    Created via :class:`UsigAuthority`, which shares the verification
    secret among all replicas' USIGs (modelling remote attestation).
    """

    def __init__(self, name, key):
        self.name = name
        self._key = key
        self._counter = 0

    @property
    def counter(self):
        """Value of the last issued counter (0 before any issue)."""
        return self._counter

    def create_ui(self, *values):
        """Assign the next counter value to ``values`` and certify it."""
        self._counter += 1
        return UI(self.name, self._counter, self._cert(self.name, self._counter, values))

    def verify_ui(self, ui, *values):
        """Check that ``ui`` certifies exactly ``values`` for its counter."""
        if not isinstance(ui, UI):
            return False
        expected = self._cert(ui.issuer, ui.counter, values)
        return hmac.compare_digest(expected, ui.cert)

    def _cert(self, issuer, counter, values):
        payload = canonical_bytes([issuer, counter, list(values)])
        return hmac.new(self._key, payload, hashlib.sha256).digest()


class UsigAuthority:
    """Provisions USIG instances sharing one attestation secret.

    All USIGs from one authority can verify each other's UIs — the
    simulation's stand-in for hardware attestation between TPMs.
    """

    def __init__(self, seed=b"repro-usig"):
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._key = hashlib.sha256(seed + b"|attest").digest()
        self._issued = {}

    def provision(self, name):
        """Issue (once) the USIG for replica ``name``.

        Re-provisioning the same name returns the same instance: a
        restarted replica keeps its hardware counter, which is exactly
        what makes USIG-based protocols safe across crashes.
        """
        usig = self._issued.get(name)
        if usig is None:
            usig = Usig(name, self._key)
            self._issued[name] = usig
        return usig


class UsigLogChecker:
    """Receiver-side monotonicity tracking for a stream of UIs.

    MinBFT replicas must verify not just each UI's certificate but that
    the sequence from each sender has no gaps and never repeats —
    otherwise a faulty sender could silently omit a message for some
    receivers.  One checker per (receiver, sender) pair.
    """

    def __init__(self, usig, sender):
        self._usig = usig
        self.sender = sender
        self.expected = 1

    def accept(self, ui, *values):
        """Validate ``ui`` as the next identifier from ``sender``.

        Returns ``True`` and advances on success; ``False`` on a bad
        certificate, wrong issuer, replay or gap.
        """
        if ui.issuer != self.sender:
            return False
        if ui.counter != self.expected:
            return False
        if not self._usig.verify_ui(ui, *values):
            return False
        self.expected += 1
        return True
