"""DistributedKV — a Spanner-shaped store: partitions × replication.

The tutorial's Google Spanner figure as a public API: data hash-
partitioned across Multi-Paxos replica groups (the storage tier's
"abstract replication"), with cross-partition transactions driven by
2PL + 2PC (the execution tier).

::

    from repro.dtxn import DistributedKV

    db = DistributedKV(n_partitions=3, replicas_per_partition=3, seed=1)
    db.put("alice", 100)
    db.put("bob", 50)
    outcome = db.transfer("alice", "bob", 30)   # cross-partition txn
    assert outcome == "committed"
    db.crash_one_replica_per_partition()        # minority crashes
    assert db.transfer("bob", "alice", 10) == "committed"
"""

import itertools

from ..core.cluster import Cluster
from ..core.exceptions import LivenessFailure
from ..protocols.multipaxos import MultiPaxosReplica
from .coordinator import Transaction, TxnCoordinator
from .state_machine import TxnKVStateMachine


class DistributedKV:
    """Partitioned, replicated, transactional key-value store.

    Parameters
    ----------
    n_partitions:
        Number of Paxos groups data is hash-partitioned across.
    replicas_per_partition:
        Replication factor per group (2f+1 for f crash faults).
    """

    def __init__(self, n_partitions=2, replicas_per_partition=3, seed=0,
                 delivery=None, op_timeout=3000.0):
        self.cluster = Cluster(seed=seed, delivery=delivery)
        self.n_partitions = n_partitions
        self.op_timeout = op_timeout
        self.groups = {}
        self.replicas = {}
        for gid in range(n_partitions):
            names = ["g%dr%d" % (gid, i) for i in range(replicas_per_partition)]
            self.groups[gid] = names
            self.replicas[gid] = self.cluster.add_nodes(
                MultiPaxosReplica, names, names,
                state_machine_factory=TxnKVStateMachine,
            )
        self.coordinator = self.cluster.add_node(
            TxnCoordinator, "txn-coord", self.groups, self.group_of
        )
        self._txid_counter = itertools.count()
        self.cluster.start_all()
        # Let the per-group leader elections finish before serving.
        self.cluster.sim.run_for(10.0)

    # -- partitioning -----------------------------------------------------------

    def group_of(self, key):
        """Deterministic hash partitioning (stable across runs)."""
        digest = 0
        for char in str(key):
            digest = (digest * 131 + ord(char)) % (1 << 30)
        return digest % self.n_partitions

    # -- transactions -------------------------------------------------------------

    def run_transaction(self, keys, update, abort_if=None):
        """Run a multi-key transaction to completion.

        ``update({key: old}) -> {key: new}``; ``abort_if({key: old})`` may
        veto after reads.  Returns the :class:`Transaction` (check
        ``outcome`` / ``result``).
        """
        txid = "tx%d" % next(self._txid_counter)
        txn = Transaction(txid, tuple(keys), update, abort_if=abort_if)
        self.coordinator.submit(txn)
        deadline = self.cluster.now + self.op_timeout
        self.cluster.run_until(lambda: txn.outcome is not None
                               and txn.state.value == "done",
                               until=deadline)
        if txn.outcome is None:
            raise LivenessFailure("transaction %s did not finish" % txid)
        return txn

    def transfer(self, src, dst, amount):
        """The canonical bank transfer: read both, move funds, refuse
        overdrafts.  Returns "committed" or "aborted"."""
        def update(reads):
            return {src: (reads[src] or 0) - amount,
                    dst: (reads[dst] or 0) + amount}

        def overdraft(reads):
            return (reads[src] or 0) < amount

        return self.run_transaction((src, dst), update,
                                    abort_if=overdraft).outcome

    def txn_read(self, keys):
        """Transactionally consistent multi-key read."""
        txn = self.run_transaction(tuple(keys), lambda reads: {})
        return txn.result

    # -- single-key access ----------------------------------------------------------

    def put(self, key, value):
        txn = self.run_transaction((key,), lambda reads: {key: value})
        return txn.outcome

    def get(self, key):
        return self.txn_read((key,))[key]

    # -- fault injection -------------------------------------------------------------

    def crash_one_replica_per_partition(self):
        """Crash a follower in every group (a tolerable minority)."""
        crashed = []
        for replicas in self.replicas.values():
            for replica in replicas:
                if not replica.crashed and not replica.is_leader:
                    replica.crash()
                    crashed.append(replica.name)
                    break
        return crashed

    def crash_group(self, gid):
        """Crash *every* replica of a group — the participant failure 2PC
        cannot ride out; in-flight transactions must abort, not hang."""
        crashed = []
        for replica in self.replicas[gid]:
            if not replica.crashed:
                replica.crash()
                crashed.append(replica.name)
        return crashed

    def crash_group_leader(self, gid):
        for replica in self.replicas[gid]:
            if replica.is_leader and not replica.crashed:
                replica.crash()
                return replica.name
        return None

    # -- verification -----------------------------------------------------------------

    def settle(self, duration=80.0):
        self.cluster.sim.run_for(duration)

    def check_consistency(self):
        """Within each group: no conflicting committed log entries and
        identical state at equal progress."""
        from ..smr import check_log_consistency, check_state_machines
        for replicas in self.replicas.values():
            logs = [r.committed_log() for r in replicas]
            if not check_log_consistency(logs):
                return False
            machines = [r.state_machine for r in replicas if not r.crashed]
            if not check_state_machines(machines):
                return False
        return True

    def total_of(self, keys):
        """Sum of values across keys (the conserved quantity in the
        transfer workload)."""
        reads = self.txn_read(tuple(keys))
        return sum(v or 0 for v in reads.values())
