"""The transactional partition state machine.

The tutorial's Google Spanner slide layers "Transactions: 2PL + 2PC"
over Paxos-replicated storage partitions.  This state machine is what
each partition group replicates: a KV store plus a lock table plus
staged (prepared-but-uncommitted) transaction writes.  Because locking,
preparing, committing and aborting are *log commands*, every replica of
the partition reaches identical lock/stage state — the "make the
participant fault-tolerant via abstract replication" move the tutorial
draws over abstract 2PC.

Locking discipline: strict two-phase locking with **no-wait** conflict
handling — a lock request that conflicts fails immediately (the
coordinator aborts and retries).  No-wait keeps the state machine
deterministic and makes deadlock impossible by construction.
"""


class TxnKVStateMachine:
    """Deterministic partition state machine for 2PL + 2PC.

    Commands (all tuples):

    * ``("txn_lock", txid, keys)`` → ``("ok", {key: value})`` with all
      locks granted and current values read, or
      ``("conflict", holder_txid)`` with *no* locks taken.
    * ``("txn_prepare", txid, writes)`` → ``"prepared"`` after staging,
      or ``"no-locks"`` if the transaction doesn't hold its locks.
    * ``("txn_commit", txid)`` → ``"committed"`` (applies staged writes,
      releases locks).
    * ``("txn_abort", txid)`` → ``"aborted"`` (drops stage, releases).
    * ``("get", key)`` → value (non-transactional read).
    * ``("put", key, value)`` → previous value (non-transactional write;
      refused with ``"locked"`` if the key is locked).
    """

    def __init__(self):
        self.data = {}
        self.locks = {}  # key -> txid
        self.staged = {}  # txid -> {key: value}
        self.ops_applied = 0
        self.commits = 0
        self.aborts = 0
        self.conflicts = 0

    def apply(self, command):
        op = command[0]
        handler = getattr(self, "_op_%s" % op, None)
        if handler is None:
            raise ValueError("unknown operation %r" % (op,))
        self.ops_applied += 1
        return handler(*command[1:])

    # -- transactional ---------------------------------------------------------

    def _op_txn_lock(self, txid, keys):
        keys = tuple(keys)
        for key in keys:
            holder = self.locks.get(key)
            if holder is not None and holder != txid:
                self.conflicts += 1
                return ("conflict", holder)
        for key in keys:
            self.locks[key] = txid
        return ("ok", {key: self.data.get(key) for key in keys})

    def _op_txn_prepare(self, txid, writes):
        writes = dict(writes)
        for key in writes:
            if self.locks.get(key) != txid:
                return "no-locks"
        self.staged[txid] = writes
        return "prepared"

    def _op_txn_commit(self, txid):
        writes = self.staged.pop(txid, {})
        for key, value in writes.items():
            self.data[key] = value
        self._release(txid)
        self.commits += 1
        return "committed"

    def _op_txn_abort(self, txid):
        self.staged.pop(txid, None)
        self._release(txid)
        self.aborts += 1
        return "aborted"

    def _release(self, txid):
        for key in [k for k, holder in self.locks.items() if holder == txid]:
            del self.locks[key]

    # -- plain access ------------------------------------------------------------

    def _op_get(self, key):
        return self.data.get(key)

    def _op_put(self, key, value):
        if key in self.locks:
            return "locked"
        previous = self.data.get(key)
        self.data[key] = value
        return previous

    def snapshot(self):
        return dict(self.data)
