"""Distributed transactions: 2PL + 2PC over Paxos-replicated partitions
(the tutorial's Google Spanner architecture)."""

from .coordinator import Transaction, TxnCoordinator, TxnState
from .state_machine import TxnKVStateMachine
from .store import DistributedKV

__all__ = [
    "DistributedKV",
    "Transaction",
    "TxnCoordinator",
    "TxnKVStateMachine",
    "TxnState",
]
