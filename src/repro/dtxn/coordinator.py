"""The distributed-transaction coordinator: 2PC over Paxos groups.

One coordinator node drives each transaction through the tutorial's
Spanner stack:

1. **2PL acquire + read** — a replicated ``txn_lock`` command on every
   involved partition (parallel), returning current values;
2. **compute** — the transaction's update function runs on the reads;
3. **2PC prepare** — replicated ``txn_prepare`` staging the writes on
   each partition (once a partition's Paxos log holds the prepare, it
   survives any minority of replica crashes — 2PC's participant-side
   fragility is gone);
4. **2PC decision** — ``txn_commit`` everywhere (or ``txn_abort`` on any
   conflict/failure, releasing locks).

Conflicts use no-wait: the coordinator aborts, releases, backs off a
randomized delay, and retries the whole transaction — the same
randomized-retry medicine the tutorial prescribes for Paxos duels.

(Spanner also replicates the *coordinator's* commit decision in its own
Paxos group; here the decision is durable the moment prepares are
replicated on every participant, and the simulator's coordinator is a
client-side driver — the participant-side replication is the property
the tutorial's figure is about.)
"""

import enum
import itertools
from dataclasses import dataclass, field

from ..core.node import Node
from ..protocols.multipaxos import ClientRequest


class TxnState(enum.Enum):
    """Lifecycle of one distributed transaction."""

    LOCKING = "locking"
    PREPARING = "preparing"
    COMMITTING = "committing"
    ABORTING = "aborting"
    DONE = "done"


@dataclass
class Transaction:
    """One multi-partition transaction.

    ``keys`` is the full read/write set; ``update`` maps
    ``{key: old_value} -> {key: new_value}`` (pure, may write any subset
    of the keys).  ``abort_if`` lets business logic veto (e.g. overdraft)
    after reading — a clean abort, not a conflict.
    """

    txid: str
    keys: tuple
    update: object
    abort_if: object = None
    state: TxnState = TxnState.LOCKING
    attempts: int = 0
    reads: dict = field(default_factory=dict)
    outcome: str = None  # "committed" | "aborted"
    result: dict = None
    finished_at: float = None
    #: optional ``callback(txn)`` fired once when the txn reaches DONE;
    #: lets open-loop load injectors account completions without polling.
    on_finish: object = None


class TxnCoordinator(Node):
    """Client-side transaction driver over partition groups.

    Parameters
    ----------
    groups:
        Mapping group_id -> list of replica names of that Paxos group.
    key_of_group:
        Callable key -> group_id (the partitioning function).
    max_attempts:
        Retry budget per transaction before giving up with "aborted".
    participant_timeout:
        Stall deadline per 2PC round, in virtual time.  A round that has
        not gathered all its replies by then — a participant group
        wholly crashed or partitioned away — aborts the transaction
        deterministically (releasing locks on every still-reachable
        group) instead of hanging it.  ``None`` disables the deadline.
    """

    def __init__(self, sim, network, name, groups, key_of_group,
                 max_attempts=12, backoff=(2.0, 8.0),
                 participant_timeout=120.0):
        super().__init__(sim, network, name)
        self.groups = {gid: list(names) for gid, names in groups.items()}
        self.key_of_group = key_of_group
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.participant_timeout = participant_timeout
        self.leader_hint = {gid: names[0] for gid, names in self.groups.items()}
        self._txns = {}
        self._request_seq = itertools.count()
        self._pending = {}  # request_id -> (txid, group_id, kind)
        self._round = {}  # txid -> {"kind", "waiting": set, "replies": dict}
        self._round_timer = {}  # txid -> stall-deadline Timer
        self.conflicts_seen = 0
        self.commits = 0
        self.aborts = 0
        self.timeout_aborts = 0

    def make_request(self, gid, command, request_id):
        """The client-request message replicating ``command`` on group
        ``gid``.  Subclasses override this (per group) to speak to
        non-Multi-Paxos groups."""
        return ClientRequest(command, request_id)

    # -- public -----------------------------------------------------------------

    def submit(self, txn):
        """Start driving ``txn``; progress is visible on ``txn.state``."""
        self._txns[txn.txid] = txn
        self.trace_local("txn_begin", req=txn.txid, keys=len(txn.keys))
        self._begin_attempt(txn)
        return txn

    def groups_of(self, txn):
        by_group = {}
        for key in txn.keys:
            by_group.setdefault(self.key_of_group(key), []).append(key)
        return by_group

    # -- attempt driving ------------------------------------------------------------

    def _begin_attempt(self, txn):
        if txn.attempts >= self.max_attempts:
            self._finish(txn, "aborted")
            return
        txn.attempts += 1
        txn.state = TxnState.LOCKING
        txn.reads = {}
        self._start_round(txn, "txn_lock", {
            gid: ("txn_lock", txn.txid, tuple(keys))
            for gid, keys in self.groups_of(txn).items()
        })

    def _start_round(self, txn, kind, commands):
        # Requests of a superseded round must stop retrying: a stale
        # lock request landing after its round was aborted would take
        # locks nobody will ever release through this round.
        self._cancel_pending(txn.txid)
        self._round[txn.txid] = {
            "kind": kind,
            "waiting": set(commands),
            "replies": {},
        }
        self.trace_local("txn_round", req=txn.txid, kind=kind,
                         attempt=txn.attempts)
        self._arm_round_timer(txn)
        for gid, command in commands.items():
            self._send_command(txn.txid, gid, kind, command)

    def _send_command(self, txid, gid, kind, command):
        request_id = "%s-%s-%d" % (txid, kind, next(self._request_seq))
        self._pending[request_id] = (txid, gid, kind, command)
        self.send(self.leader_hint[gid],
                  self.make_request(gid, command, request_id))
        # Retry against another replica if the leader is slow/dead.
        self.set_timer(15.0, self._retry, request_id)

    def _retry(self, request_id):
        entry = self._pending.get(request_id)
        if entry is None:
            return
        txid, gid, kind, command = entry
        names = self.groups[gid]
        current = self.leader_hint[gid]
        self.leader_hint[gid] = names[(names.index(current) + 1) % len(names)]
        self.send(self.leader_hint[gid],
                  self.make_request(gid, command, request_id))
        self.set_timer(15.0, self._retry, request_id)

    def _cancel_pending(self, txid):
        """Forget every outstanding request of ``txid`` (their retry
        timers die on the next firing)."""
        stale = [rid for rid, entry in self._pending.items()
                 if entry[0] == txid]
        for rid in stale:
            del self._pending[rid]

    # -- stall deadline ----------------------------------------------------------

    def _arm_round_timer(self, txn):
        self._disarm_round_timer(txn.txid)
        if self.participant_timeout is not None:
            self._round_timer[txn.txid] = self.set_timer(
                self.participant_timeout, self._round_stalled, txn)

    def _disarm_round_timer(self, txid):
        timer = self._round_timer.pop(txid, None)
        if timer is not None:
            timer.cancel()

    def _round_stalled(self, txn):
        """The stall deadline fired with the round still open: some
        participant never answered through every replica we tried.
        2PC's answer is a *deterministic abort* — release locks on every
        group that can still hear us (fire-and-forget; the unreachable
        group holds no prepared writes we are obliged to keep) and
        finish the transaction as aborted."""
        round_ = self._round.get(txn.txid)
        if round_ is None or not round_["waiting"] \
                or txn.state is TxnState.DONE:
            return  # round closed (e.g. waiting out a retry backoff)
        self.timeout_aborts += 1
        self.trace_local("txn_timeout", req=txn.txid, kind=round_["kind"])
        self._cancel_pending(txn.txid)
        self._round.pop(txn.txid, None)
        txn.state = TxnState.ABORTING
        for gid in self.groups_of(txn):
            request_id = "%s-timeout-abort-%d" % (txn.txid,
                                                  next(self._request_seq))
            self.send(self.leader_hint[gid],
                      self.make_request(gid, ("txn_abort", txn.txid),
                                        request_id))
        self._finish(txn, "aborted")

    def handle_redirect(self, msg, src):
        entry = self._pending.get(msg.request_id)
        if entry is None:
            return
        txid, gid, kind, command = entry
        if msg.leader_hint and msg.leader_hint in self.groups[gid]:
            self.leader_hint[gid] = msg.leader_hint
        self.send(self.leader_hint[gid],
                  self.make_request(gid, command, msg.request_id))

    def handle_clientreply(self, msg, src):
        entry = self._pending.pop(msg.request_id, None)
        if entry is None:
            return  # duplicate reply
        txid, gid, kind, _command = entry
        round_ = self._round.get(txid)
        if round_ is None or round_["kind"] != kind:
            return  # stale round (e.g. reply after an abort began)
        round_["replies"][gid] = msg.result
        round_["waiting"].discard(gid)
        if not round_["waiting"]:
            self.trace_local("txn_round_done", req=txid, kind=kind)
            self._round_complete(self._txns[txid], kind, round_["replies"])

    # -- round transitions -------------------------------------------------------------

    def _round_complete(self, txn, kind, replies):
        if kind == "txn_lock":
            conflicts = [r for r in replies.values() if r[0] == "conflict"]
            if conflicts:
                self.conflicts_seen += len(conflicts)
                self._abort_then_retry(txn, replies)
                return
            for reply in replies.values():
                txn.reads.update(reply[1])
            if txn.abort_if is not None and txn.abort_if(txn.reads):
                txn.state = TxnState.ABORTING
                self._start_round(txn, "txn_abort", {
                    gid: ("txn_abort", txn.txid)
                    for gid in self.groups_of(txn)
                })
                txn.outcome = "aborted-by-logic"
                return
            writes = txn.update(dict(txn.reads))
            txn.state = TxnState.PREPARING
            by_group = {}
            for key, value in writes.items():
                by_group.setdefault(self.key_of_group(key), {})[key] = value
            commands = {}
            for gid in self.groups_of(txn):
                group_writes = by_group.get(gid, {})
                commands[gid] = ("txn_prepare", txn.txid,
                                 tuple(sorted(group_writes.items())))
            self._start_round(txn, "txn_prepare", commands)
        elif kind == "txn_prepare":
            if all(reply == "prepared" for reply in replies.values()):
                txn.state = TxnState.COMMITTING
                self._start_round(txn, "txn_commit", {
                    gid: ("txn_commit", txn.txid)
                    for gid in self.groups_of(txn)
                })
            else:
                self._abort_then_retry(txn, replies)
        elif kind == "txn_commit":
            self._finish(txn, "committed")
        elif kind == "txn_abort":
            if txn.outcome == "aborted-by-logic":
                self._finish(txn, "aborted")
            else:
                delay = self.rng.uniform(*self.backoff)
                self.set_timer(delay, self._begin_attempt, txn)

    def _abort_then_retry(self, txn, replies):
        txn.state = TxnState.ABORTING
        # Release whatever we might hold on every involved group.
        self._start_round(txn, "txn_abort", {
            gid: ("txn_abort", txn.txid) for gid in self.groups_of(txn)
        })

    def _finish(self, txn, outcome):
        txn.outcome = outcome
        txn.state = TxnState.DONE
        txn.finished_at = self.sim.now
        txn.result = dict(txn.reads)
        self.trace_local("txn_finish", req=txn.txid, outcome=outcome)
        if outcome == "committed":
            self.commits += 1
        else:
            self.aborts += 1
        if txn.on_finish is not None:
            txn.on_finish(txn)
        self._round.pop(txn.txid, None)
        self._disarm_round_timer(txn.txid)
        self._cancel_pending(txn.txid)
