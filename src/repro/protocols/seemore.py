"""SeeMoRe (Amiri et al., ICDE 2020): consensus across a hybrid cloud.

The setting from the slides: nodes in the **private cloud are trusted**
(crash-only, but scarce), nodes in the **public cloud are untrusted**
(Byzantine, but plentiful).  With at most c crash faults (private) and m
malicious faults (public), the network has **3m + 2c + 1** nodes, and
SeeMoRe picks one of three modes:

* **Mode 1 — trusted primary, centralized coordination**: a private-cloud
  primary proposes; all backups ack straight back to the primary.  Two
  phases, O(n) messages, quorum **2m + c + 1**.
* **Mode 2 — trusted primary, decentralized coordination**: the private
  primary proposes, but decision-making runs among **3m + 1 public
  proxies** talking to each other, relieving the private cloud of the
  second phase.  Two phases, O(n²), quorum **2m + 1**.
* **Mode 3 — untrusted primary, decentralized coordination**: even the
  primary sits in the public cloud, so a validation phase is added (the
  primary may equivocate).  Three phases, O(n²), quorum **2m + 1** —
  PBFT-shaped, but only among the proxies.

Experiment E13 measures phases / message counts / quorum sizes per mode.
"""

import enum
from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.node import Node
from ..core.quorums import hybrid_minimum_nodes
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="seemore",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.HYBRID,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="3m+2c+1",
        phases=2,
        complexity="O(N)",
        notes="three modes: 2 or 3 phases, O(N) or O(N^2)",
    )
)


class Mode(enum.Enum):
    """SeeMoRe's three deployment modes."""

    TRUSTED_CENTRALIZED = 1
    TRUSTED_DECENTRALIZED = 2
    UNTRUSTED_DECENTRALIZED = 3


@dataclass(frozen=True)
class SmRequest(Message):
    operation: object
    timestamp: float
    client: str


@dataclass(frozen=True)
class SmPropose(Message):
    seq: int
    operation: object
    timestamp: float
    client: str


@dataclass(frozen=True)
class SmAck(Message):
    """Mode 1: backup acknowledgement straight to the primary."""

    seq: int
    operation: object


@dataclass(frozen=True)
class SmValidate(Message):
    """Mode 3: proxies validate the untrusted primary's proposal."""

    seq: int
    operation: object


@dataclass(frozen=True)
class SmAccept(Message):
    """Modes 2/3: decentralized decision-making among proxies."""

    seq: int
    operation: object


@dataclass(frozen=True)
class SmCommit(Message):
    seq: int
    operation: object
    timestamp: float
    client: str


@dataclass(frozen=True)
class SmReply(Message):
    replica: str
    timestamp: float
    result: object


class SeeMoReReplica(Node):
    """A SeeMoRe node; behaviour depends on the mode and its placement.

    Parameters
    ----------
    private:
        Names of private-cloud (trusted, crash-only) nodes.
    public:
        Names of public-cloud (untrusted) nodes.
    proxies:
        The 3m+1 public nodes running decentralized decision-making
        (modes 2 and 3).
    """

    def __init__(self, sim, network, name, private, public, m, c, mode,
                 proxies=(), state_machine_factory=None):
        super().__init__(sim, network, name)
        self.private = list(private)
        self.public = list(public)
        self.peers = self.private + self.public
        self.n = len(self.peers)
        if self.n < hybrid_minimum_nodes(m, c):
            raise ConfigurationError(
                "SeeMoRe needs n >= 3m+2c+1 (n=%d, m=%d, c=%d)"
                % (self.n, m, c)
            )
        self.m = m
        self.c = c
        self.mode = Mode(mode)
        self.proxies = list(proxies)
        if self.mode is not Mode.TRUSTED_CENTRALIZED and \
                len(self.proxies) < 3 * m + 1:
            raise ConfigurationError("decentralized modes need 3m+1 proxies")
        if state_machine_factory is None:
            from .multipaxos import ListStateMachine
            state_machine_factory = ListStateMachine
        self.state_machine = state_machine_factory()

        self.next_seq = 0
        self.executed = []  # (seq, operation)
        self._executed_seqs = set()
        self._acks = {}  # seq -> {name}
        self._validates = {}  # seq -> {name: operation}
        self._accepts = {}  # seq -> {name: operation}
        self._requests = {}  # seq -> (operation, timestamp, client)
        self._seen = set()  # (client, timestamp)

    # -- placement ----------------------------------------------------------

    @property
    def primary_name(self):
        if self.mode is Mode.UNTRUSTED_DECENTRALIZED:
            return self.public[0]
        return self.private[0]

    @property
    def is_primary(self):
        return self.name == self.primary_name

    @property
    def is_proxy(self):
        return self.name in self.proxies

    def _quorum(self):
        # Centralized: 2m+c+1 of all nodes; decentralized: 2m+1 proxies.
        if self.mode is Mode.TRUSTED_CENTRALIZED:
            return 2 * self.m + self.c + 1
        return 2 * self.m + 1

    # -- request entry ----------------------------------------------------------

    def handle_smrequest(self, msg, src):
        if not self.is_primary:
            self.send(self.primary_name, msg)
            return
        key = (msg.client, msg.timestamp)
        if key in self._seen:
            return
        self._seen.add(key)
        seq = self.next_seq
        self.next_seq += 1
        self._requests[seq] = (msg.operation, msg.timestamp, msg.client)
        propose = SmPropose(seq, msg.operation, msg.timestamp, msg.client)
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("seemore-%d" % self.mode.value,
                                            "propose", self.sim.now)
        if self.mode is Mode.TRUSTED_CENTRALIZED:
            targets = [p for p in self.peers if p != self.name]
        elif self.mode is Mode.TRUSTED_DECENTRALIZED:
            targets = [p for p in self.proxies if p != self.name]
        else:
            targets = [p for p in self.peers if p != self.name]
        self.multicast(targets, propose)
        if self.mode is Mode.TRUSTED_CENTRALIZED:
            self._acks[seq] = {self.name}

    # -- mode 1: centralized ------------------------------------------------------

    def handle_smpropose(self, msg, src):
        if src != self.primary_name:
            return
        self._requests[msg.seq] = (msg.operation, msg.timestamp, msg.client)
        if self.mode is Mode.TRUSTED_CENTRALIZED:
            self.send(src, SmAck(msg.seq, msg.operation))
        elif self.mode is Mode.TRUSTED_DECENTRALIZED:
            if self.is_proxy:
                # Trusted primary cannot equivocate: accept directly.
                self._broadcast_accept(msg.seq, msg.operation)
        else:
            if self.is_proxy:
                # Untrusted primary: validate before accepting.
                if self.network.metrics is not None:
                    self.network.metrics.mark_phase("seemore-3", "validate",
                                                    self.sim.now)
                validate = SmValidate(msg.seq, msg.operation)
                self._record_validate(msg.seq, msg.operation, self.name)
                for proxy in self.proxies:
                    if proxy != self.name:
                        self.send(proxy, validate)

    def handle_smack(self, msg, src):
        if not (self.is_primary and self.mode is Mode.TRUSTED_CENTRALIZED):
            return
        acks = self._acks.setdefault(msg.seq, {self.name})
        acks.add(src)
        if len(acks) >= self._quorum() and msg.seq not in self._executed_seqs:
            operation, timestamp, client = self._requests[msg.seq]
            if self.network.metrics is not None:
                self.network.metrics.mark_phase("seemore-1", "decision",
                                                self.sim.now)
            commit = SmCommit(msg.seq, operation, timestamp, client)
            for peer in self.peers:
                if peer != self.name:
                    self.send(peer, commit)
            self._execute(msg.seq, operation, timestamp, client)

    # -- mode 3 validation ---------------------------------------------------------

    def handle_smvalidate(self, msg, src):
        if not self.is_proxy or self.mode is not Mode.UNTRUSTED_DECENTRALIZED:
            return
        self._record_validate(msg.seq, msg.operation, src)

    def _record_validate(self, seq, operation, sender):
        votes = self._validates.setdefault(seq, {})
        votes[sender] = operation
        matching = [s for s, op in votes.items() if op == operation]
        if len(matching) >= self._quorum() and seq not in self._accepts:
            self._broadcast_accept(seq, operation)

    # -- modes 2/3: decentralized decision ------------------------------------------

    def _broadcast_accept(self, seq, operation):
        if self.network.metrics is not None:
            self.network.metrics.mark_phase(
                "seemore-%d" % self.mode.value, "decision", self.sim.now
            )
        accept = SmAccept(seq, operation)
        self._record_accept(seq, operation, self.name)
        for proxy in self.proxies:
            if proxy != self.name:
                self.send(proxy, accept)

    def handle_smaccept(self, msg, src):
        if not self.is_proxy:
            return
        self._record_accept(msg.seq, msg.operation, src)

    def _record_accept(self, seq, operation, sender):
        votes = self._accepts.setdefault(seq, {})
        votes[sender] = operation
        matching = [s for s, op in votes.items() if op == operation]
        if len(matching) >= self._quorum() and seq not in self._executed_seqs:
            request = self._requests.get(seq)
            if request is None:
                return
            operation_, timestamp, client = request
            commit = SmCommit(seq, operation_, timestamp, client)
            for peer in self.peers:
                if peer not in self.proxies and peer != self.name:
                    self.send(peer, commit)
            self._execute(seq, operation_, timestamp, client)

    def handle_smcommit(self, msg, src):
        self._requests.setdefault(msg.seq, (msg.operation, msg.timestamp,
                                            msg.client))
        self._execute(msg.seq, msg.operation, msg.timestamp, msg.client)

    # -- execution -------------------------------------------------------------------

    def _execute(self, seq, operation, timestamp, client):
        if seq in self._executed_seqs:
            return
        self._executed_seqs.add(seq)
        result = self.state_machine.apply(operation)
        self.executed.append((seq, operation))
        self.send(client, SmReply(self.name, timestamp, result))


class SeeMoReClient(Node):
    """Waits for m+1 matching replies (one correct public node, or any
    trusted private node's worth of agreement)."""

    def __init__(self, sim, network, name, entry, operations, m):
        super().__init__(sim, network, name)
        self.entry = entry
        self.operations = list(operations)
        self.m = m
        self.results = []
        self.latencies = []
        self._next = 0
        self._replies = {}
        self._sent_at = None

    def on_start(self):
        self._send_next()

    def _send_next(self):
        if self.done:
            return
        self._replies = {}
        self._sent_at = self.sim.now
        self.send(self.entry,
                  SmRequest(self.operations[self._next], float(self._next),
                            self.name))

    def handle_smreply(self, msg, src):
        if self.done or msg.timestamp != float(self._next):
            return
        self._replies[src] = msg.result
        counts = {}
        for result in self._replies.values():
            counts[repr(result)] = counts.get(repr(result), 0) + 1
        if max(counts.values()) >= self.m + 1:
            self.results.append(msg.result)
            self.latencies.append(self.sim.now - self._sent_at)
            self._next += 1
            self._send_next()

    @property
    def done(self):
        return self._next >= len(self.operations)


@dataclass
class SeeMoReResult:
    replicas: list
    clients: list
    messages: int
    duration: float
    mode: Mode

    def logs_consistent(self):
        merged = {}
        for replica in self.replicas:
            for seq, op in replica.executed:
                if seq in merged and merged[seq] != op:
                    return False
                merged[seq] = op
        return True


def run_seemore(cluster, mode=1, m=1, c=1, operations=3, horizon=2000.0):
    """Drive SeeMoRe in the given mode with 3m+2c+1 nodes."""
    n = hybrid_minimum_nodes(m, c)
    n_private = 2 * c + 1 if mode != 3 else c + 1
    n_private = min(n_private, n - (3 * m + 1))
    n_private = max(n_private, 1)
    private = ["priv%d" % i for i in range(n_private)]
    public = ["pub%d" % i for i in range(n - n_private)]
    proxies = public[: 3 * m + 1]
    replicas = [
        cluster.add_node(SeeMoReReplica, name, private, public, m, c, mode,
                         proxies=proxies)
        for name in private + public
    ]
    entry = private[0] if mode != 3 else public[0]
    client = cluster.add_node(
        SeeMoReClient, "c0", entry,
        ["op-%d" % i for i in range(operations)], m,
    )
    cluster.start_all()
    cluster.run_until(lambda: client.done, until=horizon)
    return SeeMoReResult(
        replicas=replicas,
        clients=[client],
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
        mode=Mode(mode),
    )
