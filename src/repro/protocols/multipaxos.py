"""Multi-Paxos: a separate Paxos instance per log entry, optimised.

The slides' construction: add an *index* argument to Prepare and Accept
(selecting the log entry), then apply the key optimisation — run phase 1
only when the leader changes ("view change" / "recovery mode"); phase 2
is the "normal mode".  Each message carries the ballot from the last
phase 1 plus the request number, and replicas respond only to messages
with the right ballot.

The client interaction follows the four numbered steps on the slides:
the client sends a command to a server; the server uses Paxos to choose
it for a log entry; the server waits for previous entries to be applied,
applies the command to the state machine; and returns the result.

Replicas monitor the leader with heartbeats; on silence, the next
replica in ring order runs phase 1 with a higher ballot, learns every
accepted entry from a quorum, re-proposes anything uncommitted, and
takes over — the C&C leader-election + value-discovery phases made
explicit.
"""

from dataclasses import dataclass

from ..core.ballot import Ballot
from ..core.node import Node
from ..core.quorums import MajorityQuorum
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

PROFILE = register_profile(
    ProtocolProfile(
        name="multi-paxos",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.CRASH,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="2f+1",
        phases=2,
        complexity="O(N)",
        notes="phase 1 amortised over the log; phase 2 per command",
    )
)


# -- messages ---------------------------------------------------------------


@dataclass(frozen=True)
class ClientRequest(Message):
    command: object
    request_id: str


@dataclass(frozen=True)
class ClientReply(Message):
    request_id: str
    result: object


@dataclass(frozen=True)
class Redirect(Message):
    """Sent to clients that contacted a non-leader."""

    request_id: str
    leader_hint: str


@dataclass(frozen=True)
class MPPrepare(Message):
    """View-change phase 1: join ballot, report the whole accepted log."""

    ballot: Ballot


@dataclass(frozen=True)
class MPPrepareAck(Message):
    ballot: Ballot
    accepted: tuple  # ((index, ballot, value), ...)
    commit_index: int


@dataclass(frozen=True)
class MPAccept(Message):
    """Normal-mode phase 2 for one log index."""

    ballot: Ballot
    index: int
    value: object


@dataclass(frozen=True)
class MPAccepted(Message):
    ballot: Ballot
    index: int


@dataclass(frozen=True)
class MPCommit(Message):
    """Asynchronous decision propagation, piggybacking the commit index."""

    ballot: Ballot
    index: int
    value: object


@dataclass(frozen=True)
class Heartbeat(Message):
    ballot: Ballot
    commit_index: int


# -- replica ----------------------------------------------------------------


@dataclass
class _EntryState:
    accept_num: Ballot
    value: object
    committed: bool = False


@dataclass(frozen=True)
class LogCommand:
    """A client command plus its request id, stored as the log value so
    any future leader can deduplicate client retries."""

    command: object
    request_id: str


class MultiPaxosReplica(Node):
    """A Multi-Paxos server: acceptor + learner + (sometimes) leader.

    Parameters
    ----------
    peers:
        All replica names (including this one), in a fixed global order
        that determines leadership succession.
    state_machine_factory:
        Zero-arg callable building this replica's deterministic state
        machine; it must expose ``apply(command) -> result``.
    election_timeout:
        Silence interval after which a replica attempts takeover.
    """

    HEARTBEAT_INTERVAL = 1.0

    def __init__(
        self,
        sim,
        network,
        name,
        peers,
        state_machine_factory=None,
        election_timeout=5.0,
    ):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.quorums = MajorityQuorum(self.peers)
        if state_machine_factory is None:
            state_machine_factory = ListStateMachine
        self.state_machine = state_machine_factory()
        self.election_timeout = election_timeout

        self.ballot_num = Ballot.ZERO
        self.log = {}  # index -> _EntryState
        self.commit_index = -1
        self.applied_index = -1
        self.apply_results = {}

        self.is_leader = False
        self.leader_hint = self.peers[0]
        self.next_index = 0
        self._pending = {}  # index -> set of ack senders
        self._client_of = {}  # index -> (client, request_id)
        self._applied_requests = {}  # request_id -> result (dedup cache)
        self._prepare_acks = {}
        self._preparing = None
        self._heartbeat_timer = None
        self._election_timer = None
        self.view_changes = 0

    # -- lifecycle --------------------------------------------------------

    def on_start(self):
        if self.name == self.peers[0]:
            # Bootstrap: the first replica claims leadership via phase 1,
            # exactly once — afterwards only failures trigger phase 1.
            self._start_prepare()
        else:
            self._arm_election_timer()

    def on_crash(self):
        self.is_leader = False

    def on_restart(self):
        # Ballot state and the log are durable; leadership is not.
        self.is_leader = False
        self._arm_election_timer()

    # -- leader election (phase 1 / view change) ---------------------------

    def _arm_election_timer(self):
        if self._election_timer is not None:
            self._election_timer.cancel()
        jitter = self.rng.uniform(0.0, self.election_timeout)
        self._election_timer = self.set_timer(
            self.election_timeout + jitter, self._start_prepare
        )

    def _start_prepare(self):
        if self.crashed:
            return
        self.view_changes += 1
        self.ballot_num = self.ballot_num.successor(self.name)
        self._preparing = self.ballot_num
        self._prepare_acks = {}
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("multi-paxos", "prepare", self.sim.now)
        for peer in self.peers:
            if peer == self.name:
                self._record_prepare_ack(self.name, self._own_accepted(), self.commit_index)
            else:
                self.send(peer, MPPrepare(self.ballot_num))
        self._arm_election_timer()

    def _own_accepted(self):
        return tuple(
            (index, entry.accept_num, entry.value)
            for index, entry in self.log.items()
        )

    def handle_mpprepare(self, msg, src):
        if msg.ballot >= self.ballot_num:
            self.ballot_num = msg.ballot
            self.is_leader = False
            self.leader_hint = msg.ballot.pid
            self._arm_election_timer()
            self.send(
                src,
                MPPrepareAck(msg.ballot, self._own_accepted(), self.commit_index),
            )

    def handle_mpprepareack(self, msg, src):
        if self._preparing is None or msg.ballot != self._preparing:
            return
        self._record_prepare_ack(src, msg.accepted, msg.commit_index)

    def _record_prepare_ack(self, src, accepted, commit_index):
        self._prepare_acks[src] = (accepted, commit_index)
        if not self.quorums.is_phase1_quorum(self._prepare_acks.keys()):
            return
        self._become_leader()

    def _become_leader(self):
        self._preparing = None
        self.is_leader = True
        self.leader_hint = self.name
        self.trace_local("lead", ballot=self.ballot_num)
        if self._election_timer is not None:
            self._election_timer.cancel()
        # Value discovery: adopt, per index, the value of the highest
        # accept ballot seen in the quorum, then re-propose uncommitted
        # entries under the new ballot.
        best = {}
        max_commit = self.commit_index
        for accepted, commit_index in self._prepare_acks.values():
            max_commit = max(max_commit, commit_index)
            for index, accept_num, value in accepted:
                current = best.get(index)
                if current is None or accept_num > current[0]:
                    best[index] = (accept_num, value)
        for index, (accept_num, value) in sorted(best.items()):
            entry = self.log.get(index)
            if entry is None or accept_num > entry.accept_num:
                self.log[index] = _EntryState(accept_num, value,
                                              committed=index <= max_commit)
            elif index <= max_commit:
                # An entry adopted in an earlier (failed) election may
                # carry a stale committed=False; the quorum's commit
                # index proves it committed (values agree by quorum
                # intersection).
                entry.committed = True
        self.next_index = max(best.keys(), default=self.commit_index) + 1
        # Catch up on everything the quorum knows to be committed...
        self._advance_commit(max_commit)
        # ...and re-run agreement for anything still uncommitted.
        for index in sorted(best):
            if index > max_commit:
                self._propose(index, best[index][1])
        self._heartbeat_timer = self.set_periodic_timer(
            self.HEARTBEAT_INTERVAL, self._send_heartbeat
        )

    def _send_heartbeat(self):
        if not self.is_leader:
            return
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, Heartbeat(self.ballot_num, self.commit_index))

    def handle_heartbeat(self, msg, src):
        if msg.ballot >= self.ballot_num:
            self.ballot_num = msg.ballot
            self.leader_hint = src
            if self.is_leader and msg.ballot.pid != self.name:
                self.is_leader = False
            self._arm_election_timer()
            self._advance_commit(msg.commit_index)

    # -- normal mode (phase 2) ---------------------------------------------

    def handle_clientrequest(self, msg, src):
        if not self.is_leader:
            self.send(src, Redirect(msg.request_id, self.leader_hint))
            return
        if msg.request_id in self._applied_requests:
            # Retry of a completed command: re-reply, never re-propose.
            self.send(src, ClientReply(msg.request_id,
                                       self._applied_requests[msg.request_id]))
            return
        for index, entry in self.log.items():
            value = entry.value
            if isinstance(value, LogCommand) and \
                    value.request_id == msg.request_id:
                # Already in the log, still committing.
                self._client_of[index] = (src, msg.request_id)
                return
        index = self.next_index
        self.next_index += 1
        self._client_of[index] = (src, msg.request_id)
        self._propose(index, LogCommand(msg.command, msg.request_id))

    def _propose(self, index, value):
        if self.network.metrics is not None:
            self.network.metrics.mark_phase("multi-paxos", "accept", self.sim.now)
        if isinstance(value, LogCommand):
            self.trace_local("propose", index=index, req=value.request_id)
        else:
            self.trace_local("propose", index=index)
        self.log[index] = _EntryState(self.ballot_num, value)
        self._pending[index] = {self.name}
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, MPAccept(self.ballot_num, index, value))

    def handle_mpaccept(self, msg, src):
        if msg.ballot >= self.ballot_num:
            self.ballot_num = msg.ballot
            self.leader_hint = src
            self._arm_election_timer()
            self.log[msg.index] = _EntryState(msg.ballot, msg.value)
            self.send(src, MPAccepted(msg.ballot, msg.index))

    def handle_mpaccepted(self, msg, src):
        if not self.is_leader or msg.ballot != self.ballot_num:
            return
        pending = self._pending.get(msg.index)
        if pending is None:
            return
        pending.add(src)
        if not self.quorums.is_phase2_quorum(pending):
            return
        del self._pending[msg.index]
        value = self.log[msg.index].value
        if isinstance(value, LogCommand):
            self.trace_local("commit", index=msg.index,
                             req=value.request_id)
        else:
            self.trace_local("commit", index=msg.index)
        self._commit(msg.index)
        for peer in self.peers:
            if peer != self.name:
                self.send(
                    peer,
                    MPCommit(self.ballot_num, msg.index, self.log[msg.index].value),
                )

    def handle_mpcommit(self, msg, src):
        entry = self.log.get(msg.index)
        if entry is None or entry.value != msg.value:
            self.log[msg.index] = _EntryState(msg.ballot, msg.value)
        self._commit(msg.index)

    def _commit(self, index):
        entry = self.log.get(index)
        if entry is None:
            return
        entry.committed = True
        self.commit_index = max(self.commit_index, index)
        self._apply_ready()

    def _advance_commit(self, commit_index):
        for index in range(self.applied_index + 1, commit_index + 1):
            entry = self.log.get(index)
            if entry is not None:
                entry.committed = True
        self.commit_index = max(self.commit_index, commit_index)
        self._apply_ready()

    def _apply_ready(self):
        """Apply committed entries strictly in order — the slides' step 3:
        'server waits for previous log entries to be applied'."""
        while True:
            nxt = self.applied_index + 1
            entry = self.log.get(nxt)
            if entry is None or not entry.committed:
                return
            value = entry.value
            command = value.command if isinstance(value, LogCommand) else value
            result = self.state_machine.apply(command)
            self.applied_index = nxt
            if isinstance(value, LogCommand):
                self.trace_local("apply", index=nxt, op=command,
                                 req=value.request_id)
            else:
                self.trace_local("apply", index=nxt, op=command)
            self.apply_results[nxt] = result
            if isinstance(value, LogCommand):
                self._applied_requests[value.request_id] = result
            client = self._client_of.pop(nxt, None)
            if client is not None:
                dst, request_id = client
                self.send(dst, ClientReply(request_id, result))

    # -- introspection ------------------------------------------------------

    def committed_log(self):
        """Committed (index, value) pairs in index order — the safety
        object the consistency checker compares across replicas."""
        return [
            (index, self.log[index].value)
            for index in sorted(self.log)
            if self.log[index].committed
        ]


class ListStateMachine:
    """Default state machine: append-only command history."""

    def __init__(self):
        self.history = []

    def apply(self, command):
        self.history.append(command)
        return len(self.history) - 1

    def snapshot(self):
        return list(self.history)

    def restore(self, snapshot, ops_applied=0):
        self.history = list(snapshot)


class MultiPaxosClient(Node):
    """Closed-loop client: one outstanding command, follows redirects."""

    def __init__(self, sim, network, name, replicas, commands, retry_timeout=8.0):
        super().__init__(sim, network, name)
        self.replicas = list(replicas)
        self.commands = list(commands)
        self.retry_timeout = retry_timeout
        self.target = self.replicas[0]
        self.results = []
        self.sent_at = {}
        self.latencies = []
        self._next = 0
        self._timer = None

    def on_start(self):
        self._send_next()

    def _send_next(self):
        if self._next >= len(self.commands):
            return
        request_id = "%s-%d" % (self.name, self._next)
        self.sent_at[request_id] = self.sim.now
        self.send(self.target, ClientRequest(self.commands[self._next], request_id))
        self._arm_timer()

    def _arm_timer(self):
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.set_timer(self.retry_timeout, self._retry)

    def _retry(self):
        # Leader may have crashed: rotate target and resend.
        index = self.replicas.index(self.target)
        self.target = self.replicas[(index + 1) % len(self.replicas)]
        self._send_next()

    def handle_redirect(self, msg, src):
        if msg.leader_hint and msg.leader_hint != src:
            self.target = msg.leader_hint
        else:
            index = self.replicas.index(self.target)
            self.target = self.replicas[(index + 1) % len(self.replicas)]
        self._send_next()

    def handle_clientreply(self, msg, src):
        expected = "%s-%d" % (self.name, self._next)
        if msg.request_id != expected:
            return  # stale duplicate
        self.results.append(msg.result)
        self.latencies.append(self.sim.now - self.sent_at[msg.request_id])
        self._next += 1
        if self._timer is not None:
            self._timer.cancel()
        self._send_next()

    @property
    def done(self):
        return self._next >= len(self.commands)


# -- driver -----------------------------------------------------------------


@dataclass
class MultiPaxosResult:
    replicas: list
    clients: list
    messages: int
    duration: float

    def committed_logs(self):
        return [replica.committed_log() for replica in self.replicas]

    def logs_consistent(self):
        """No two replicas disagree on any committed index (prefix-
        consistency: shorter logs must be prefixes of longer ones)."""
        logs = self.committed_logs()
        merged = {}
        for log in logs:
            for index, value in log:
                if index in merged and merged[index] != value:
                    return False
                merged[index] = value
        return True


def run_multipaxos(
    cluster,
    n_replicas=3,
    n_clients=1,
    commands_per_client=5,
    crash_leader_at=None,
    horizon=2000.0,
    state_machine_factory=None,
):
    """Drive a Multi-Paxos cluster with closed-loop clients."""
    replica_names = ["r%d" % i for i in range(n_replicas)]
    replicas = cluster.add_nodes(
        MultiPaxosReplica,
        replica_names,
        replica_names,
        state_machine_factory=state_machine_factory,
    )
    clients = [
        cluster.add_node(
            MultiPaxosClient,
            "c%d" % i,
            replica_names,
            ["cmd-%d-%d" % (i, j) for j in range(commands_per_client)],
        )
        for i in range(n_clients)
    ]
    if crash_leader_at is not None:
        cluster.sim.schedule(crash_leader_at, replicas[0].crash)
    cluster.start_all()
    cluster.run_until(lambda: all(c.done for c in clients), until=horizon)
    return MultiPaxosResult(
        replicas=replicas,
        clients=clients,
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
