"""UpRight (Clement et al., SOSP 2009): hybrid-fault cluster services.

The tutorial's numbers: to tolerate at most **m malicious and at most c
crash** faults simultaneously, UpRight runs **n = 3m + 2c + 1** replicas
with quorums of **u = 2m + c + 1**, which intersect in **m + 1** nodes —
at least one correct.  Setting c = 0 recovers PBFT (3m+1, 2m+1);
setting m = 0 recovers Paxos (2c+1, c+1): the formula interpolates
between the two classical regimes, which is exactly what experiment E13
sweeps.

The agreement core reuses the PBFT engine with re-parameterised quorums
(UpRight's own agreement combines Zyzzyva speculation with Aardvark
robustness; the quorum arithmetic — the reproducible claim — is
identical).
"""

from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.quorums import hybrid_minimum_nodes
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from .pbft import PbftClient, PbftReplica

PROFILE = register_profile(
    ProtocolProfile(
        name="upright",
        synchrony=Synchrony.PARTIALLY_SYNCHRONOUS,
        failure_model=FailureModel.HYBRID,
        strategy=Strategy.OPTIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="3m+2c+1",
        phases=3,
        complexity="O(N^2)",
        notes="quorum 2m+c+1, intersection m+1; interpolates Paxos<->PBFT",
    )
)


class UpRightReplica(PbftReplica):
    """PBFT engine with UpRight's (m, c) quorum arithmetic."""

    def __init__(self, sim, network, name, peers, m, c,
                 state_machine_factory=None, checkpoint_interval=64):
        if len(peers) < hybrid_minimum_nodes(m, c):
            raise ConfigurationError(
                "UpRight needs n >= 3m+2c+1 (n=%d, m=%d, c=%d)"
                % (len(peers), m, c)
            )
        # Initialise the PBFT core with f=m (drives the weak-certificate
        # size m+1 used for view-change amplification), then widen the
        # quorum to 2m+c+1.
        super().__init__(sim, network, name, peers, m,
                         state_machine_factory=state_machine_factory,
                         checkpoint_interval=checkpoint_interval)
        self.m = m
        self.c = c
        self.quorum = 2 * m + c + 1

    def _config_ok(self):
        return self.n >= hybrid_minimum_nodes(self.m, self.c)


# PbftReplica's constructor enforces n >= 3f+1; with f=m and
# n = 3m+2c+1 >= 3m+1 that check always passes, so no override is needed.


@dataclass
class UpRightResult:
    replicas: list
    clients: list
    messages: int
    duration: float

    def executed_logs(self):
        return [r.executed_requests for r in self.replicas if not r.crashed]

    def logs_consistent(self):
        merged = {}
        for log in self.executed_logs():
            for seq, op in log:
                if seq in merged and merged[seq] != op:
                    return False
                merged[seq] = op
        return True


def run_upright(cluster, m=1, c=1, operations=3, crash_indices=(),
                silent_indices=(), horizon=3000.0):
    """Drive an UpRight cluster of 3m+2c+1 replicas.

    ``crash_indices`` fail-stop at t=0; ``silent_indices`` model malicious
    replicas that participate in nothing (the strongest *denial* behaviour
    — equivocation is separately covered by the PBFT tests, and UpRight
    inherits PBFT's defences here).
    """
    n = hybrid_minimum_nodes(m, c)
    names = ["r%d" % i for i in range(n)]
    replicas = cluster.add_nodes(UpRightReplica, names, names, m, c)
    client = cluster.add_node(
        PbftClient, "c0", names,
        ["op-%d" % i for i in range(operations)], m,
    )
    for index in crash_indices:
        replicas[index].crash()
    for index in silent_indices:
        # A silent Byzantine node: drop every outbound message.
        name = replicas[index].name
        cluster.network.add_interceptor(
            lambda src, dst, msg, _name=name: False if src == _name else None
        )
    cluster.start_all()
    cluster.run_until(lambda: client.done, until=horizon)
    return UpRightResult(
        replicas=replicas,
        clients=[client],
        messages=cluster.metrics.messages_total,
        duration=cluster.now,
    )
