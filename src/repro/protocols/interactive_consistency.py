"""Reaching Agreement in the Presence of Faults (Pease, Shostak, Lamport 1980).

The paper's founding result: with m Byzantine processes, agreement needs
n >= 3m+1.  The tutorial walks the vector-exchange algorithm for m=1:

1. each process sends its private value to the others,
2. each collects the received values into a vector,
3. every process passes its vector to every other process,
4. for entry i, each process takes the **majority** of the i-th elements
   of the received vectors; no majority → UNKNOWN.

With N=4 and one faulty process the honest processes compute identical
result vectors that are correct for every honest entry (the faulty entry
may be UNKNOWN — consistently so).  With N=3 the same algorithm yields
all-UNKNOWN: below 3m+1 the faulty process can always force a tie.

The module also implements the classic recursive OM(m) oral-messages
algorithm for general m, used by the property tests to check the bound
n >= 3m+1 at several (n, m) points.
"""

from dataclasses import dataclass

from ..core.node import Node
from ..core.registry import register_profile
from ..core.taxonomy import (
    Awareness,
    FailureModel,
    ProtocolProfile,
    Strategy,
    Synchrony,
)
from ..net.message import Message

UNKNOWN = "UNKNOWN"

PROFILE = register_profile(
    ProtocolProfile(
        name="interactive-consistency",
        synchrony=Synchrony.SYNCHRONOUS,
        failure_model=FailureModel.BYZANTINE,
        strategy=Strategy.PESSIMISTIC,
        awareness=Awareness.KNOWN,
        nodes_label="3f+1",
        phases=2,
        complexity="O(N^2)",
        notes="oral messages; vector exchange for f=1",
    )
)


@dataclass(frozen=True)
class ValueMsg(Message):
    """Step 1: a process's private value."""

    value: object


@dataclass(frozen=True)
class VectorMsg(Message):
    """Step 3: a process's collected vector (tuple indexed by process)."""

    vector: tuple


class ICProcess(Node):
    """An honest participant in the vector-exchange algorithm.

    The synchronous rounds are driven by fixed virtual times: round
    boundaries at ``round_length`` and ``2 * round_length`` — safe with
    any delivery model whose delays stay below ``round_length``.
    """

    def __init__(self, sim, network, name, peers, value, round_length=2.0):
        super().__init__(sim, network, name)
        self.peers = list(peers)
        self.index = self.peers.index(name)
        self.value = value
        self.round_length = round_length
        self.got = {name: value}
        self.received_vectors = {}
        self.result = None

    def on_start(self):
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, ValueMsg(self.value))
        self.set_timer(self.round_length, self._send_vector)
        self.set_timer(2 * self.round_length, self._compute_result)

    def handle_valuemsg(self, msg, src):
        self.got[src] = msg.value

    def _vector(self):
        return tuple(self.got.get(peer, UNKNOWN) for peer in self.peers)

    def _send_vector(self):
        vector = self._vector()
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, VectorMsg(vector))

    def handle_vectormsg(self, msg, src):
        self.received_vectors[src] = msg.vector

    def _compute_result(self):
        """Step 4: entry-wise majority over the received vectors."""
        vectors = list(self.received_vectors.values())
        result = []
        for i in range(len(self.peers)):
            values = [vector[i] for vector in vectors if len(vector) == len(self.peers)]
            result.append(majority(values))
        self.result = tuple(result)


class ByzantineICProcess(ICProcess):
    """A faulty participant: tells a different lie to every receiver.

    Step 1 sends distinct bogus values (the slides' x, y, z); step 3
    sends a fresh garbage vector per receiver (a, b, c, d).
    """

    def on_start(self):
        for k, peer in enumerate(self.peers):
            if peer != self.name:
                self.send(peer, ValueMsg("bogus-%s-%d" % (self.name, k)))
        self.set_timer(self.round_length, self._send_vector)
        # A Byzantine process computes no meaningful result.

    def _send_vector(self):
        for k, peer in enumerate(self.peers):
            if peer != self.name:
                garbage = tuple(
                    "junk-%s-%d-%d" % (self.name, k, i)
                    for i in range(len(self.peers))
                )
                self.send(peer, VectorMsg(garbage))


def majority(values):
    """Strict majority of ``values``; :data:`UNKNOWN` when none exists."""
    if not values:
        return UNKNOWN
    counts = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    best_value, best_count = max(counts.items(), key=lambda item: item[1])
    if best_count * 2 > len(values):
        return best_value
    return UNKNOWN


@dataclass
class ICResult:
    processes: list
    faulty: list

    def honest(self):
        return [p for p in self.processes if not isinstance(p, ByzantineICProcess)]

    def honest_results(self):
        return [p.result for p in self.honest()]

    def agreement(self):
        """Every honest process computed the same result vector."""
        results = self.honest_results()
        return all(r == results[0] for r in results)

    def validity(self):
        """Every honest process's entry equals its true private value in
        every honest result vector."""
        honest = self.honest()
        for process in honest:
            if process.result is None:
                return False
            for other in honest:
                if process.result[other.index] != other.value:
                    return False
        return True


def run_interactive_consistency(cluster, n=4, faulty=(2,), round_length=2.0,
                                horizon=50.0):
    """Run the vector-exchange algorithm with the given faulty indices."""
    names = ["P%d" % (i + 1) for i in range(n)]
    processes = []
    for i, name in enumerate(names):
        factory = ByzantineICProcess if i in faulty else ICProcess
        processes.append(
            cluster.add_node(factory, name, names, i + 1, round_length=round_length)
        )
    cluster.start_all()
    cluster.run(until=horizon)
    return ICResult(processes=processes, faulty=[names[i] for i in faulty])


# -- recursive oral messages OM(m) -------------------------------------------


def om_decide(m, commander_value, n, traitors, sender=0, receivers=None,
              lie=None, depth_path=()):
    """The Lamport/Shostak/Pease OM(m) algorithm as a pure computation.

    Returns the per-lieutenant decisions as a dict ``{index: value}`` for
    the loyal lieutenants.  ``traitors`` is a set of process indices; a
    traitor relays ``lie(path, receiver)`` instead of the true value
    (default: a value keyed by the recursion path, maximally confusing).

    This runs the full exponential message recursion, so keep n small
    (n <= 7 in tests).
    """
    if receivers is None:
        receivers = [i for i in range(n) if i != sender]
    if lie is None:
        def lie(path, receiver):
            return "L%s>%d" % ("/".join(map(str, path)), receiver)

    def om(m_level, sender_, value, receivers_, path):
        # What each receiver ends up *deciding* the sender said.
        received = {}
        for receiver in receivers_:
            if sender_ in traitors:
                received[receiver] = lie(path + (sender_,), receiver)
            else:
                received[receiver] = value
        if m_level == 0:
            return received
        decided = {}
        # Each receiver relays what it received to the other receivers,
        # then takes the majority of its own value and the relayed ones.
        relayed = {}  # receiver -> {relayer: value}
        for relayer in receivers_:
            sub_receivers = [r for r in receivers_ if r != relayer]
            sub = om(m_level - 1, relayer, received[relayer], sub_receivers,
                     path + (sender_,))
            for receiver, value_ in sub.items():
                relayed.setdefault(receiver, {})[relayer] = value_
        for receiver in receivers_:
            values = [received[receiver]]
            values.extend(
                relayed.get(receiver, {}).get(r)
                for r in receivers_
                if r != receiver
            )
            decided[receiver] = majority([v for v in values if v is not None])
        return decided

    decisions = om(m, sender, commander_value, list(receivers), depth_path)
    return {i: v for i, v in decisions.items() if i not in traitors}


def om_satisfies_ic(m, n, traitors, commander_value="ATTACK"):
    """Check the two Byzantine Generals conditions for one OM(m) run:

    * IC1 — all loyal lieutenants decide the same value,
    * IC2 — if the commander is loyal, they decide its value.
    """
    decisions = om_decide(m, commander_value, n, set(traitors))
    values = set(decisions.values())
    ic1 = len(values) <= 1
    ic2 = True
    if 0 not in traitors and decisions:
        ic2 = values == {commander_value}
    return ic1 and ic2
